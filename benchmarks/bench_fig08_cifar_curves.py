"""Fig. 8 — CIFAR learning curves: epochs and machines.

Same protocol as fig. 7 on the GIST-like workload (D = 320 in the paper,
scaled here), with the paper's CIFAR mu schedule family (mu0 = 0.005,
a = 1.2, 26 iterations). Checks: e = 8 is practically exact; e = 1 only a
small degradation; P in {1, 16, 64} jitters, no systematic degradation.
"""

import pytest

from repro.core.evaluation import PrecisionEvaluator
from repro.core.penalty import GeometricSchedule
from repro.data.synthetic import make_gist_like
from repro.utils.ascii_plot import ascii_table

from conftest import run_learning_curve, standardised

N, D, L = 2500, 96, 16
SCHEDULE = GeometricSchedule(mu0=5e-3, factor=1.2, n_iters=26)


@pytest.fixture(scope="module")
def workload():
    cloud = standardised(make_gist_like(N + 80, D, n_clusters=10, rng=1))
    X, Q = cloud[:N], cloud[N:]
    # Paper protocol: (K, k) = (1000, 100) on 50k points; scaled to base.
    ev = PrecisionEvaluator(Q, X, K=50, k=50)
    return X, ev


def test_fig08_epochs_effect(benchmark, report, workload):
    X, ev = workload
    epochs_list = [1, 2, 8]

    hists = benchmark.pedantic(
        lambda: {
            e: run_learning_curve(X, L, SCHEDULE, epochs=e, evaluator=ev)[1]
            for e in epochs_list
        },
        rounds=1, iterations=1,
    )

    report()
    report("=" * 72)
    report("Figure 8 (left): CIFAR stand-in, P=1, epochs e in {1,2,8}")
    rows = []
    for i in range(0, 26, 5):
        rows.append([i] + [round(hists[e].e_q[i], 1) for e in epochs_list]
                    + [round(hists[e].e_ba[i], 1) for e in epochs_list])
    report(ascii_table(
        ["iter"] + [f"E_Q e={e}" for e in epochs_list]
        + [f"E_BA e={e}" for e in epochs_list], rows))

    assert hists[8].e_q[-1] <= hists[1].e_q[-1] * 1.10
    assert hists[1].e_q[-1] <= hists[8].e_q[-1] * 1.6
    for e in epochs_list:
        assert hists[e].e_ba[-1] < hists[e].e_ba[0]


def test_fig08_machines_effect(benchmark, report, workload):
    X, ev = workload
    Ps = [1, 16, 64]

    hists = benchmark.pedantic(
        lambda: {
            P: run_learning_curve(X, L, SCHEDULE, n_machines=P, epochs=2,
                                  evaluator=ev)[1]
            for P in Ps
        },
        rounds=1, iterations=1,
    )

    report()
    report("Figure 8 (right): fixed e=2, machines P in {1,16,64}")
    rows = []
    for i in range(0, 26, 5):
        rows.append([i] + [round(hists[P].e_q[i], 1) for P in Ps])
    rows.append(["last"] + [round(hists[P].e_q[-1], 1) for P in Ps])
    report(ascii_table(["iter"] + [f"E_Q P={P}" for P in Ps], rows))
    report("  final precision: " + "  ".join(
        f"P={P}: {hists[P].precision[-1]:.4f}" for P in Ps))

    finals = [hists[P].e_q[-1] for P in Ps]
    assert max(finals) <= min(finals) * 1.5
