"""Fig. 11 — SIFT-1B learning curves: E_BA and recall per iteration.

Paper observations: the RBF hash function outperforms the linear one in
recall; "the error in the nested model, E_BA, does not decrease
monotonically. This is because MAC optimises instead the penalised
function E_Q" — the bench prints both curves per encoder and checks the
recall ordering and the E_Q-vs-E_BA distinction.
"""


from repro.utils.ascii_plot import ascii_table


def test_fig11_sift1b_learning_curves(benchmark, report, sift1b_models):
    m = sift1b_models
    ba_lin, h_lin = m["linear"]
    ba_rbf, h_rbf = m["rbf"]

    # The timed kernel: one recall evaluation of the trained RBF model
    # (the per-iteration monitoring cost of the figure).
    benchmark(lambda: m["ev"](ba_rbf))

    report()
    report("=" * 72)
    report("Figure 11: SIFT-1B stand-in learning curves (10 MAC iterations)")
    rows = []
    for i in range(len(h_lin)):
        rows.append([
            i,
            round(h_lin.e_ba[i], 1), round(h_lin.recall[i], 4),
            round(h_rbf.e_ba[i], 1), round(h_rbf.recall[i], 4),
        ])
    report(ascii_table(
        ["iter", "E_BA lin", "recall lin", "E_BA rbf", "recall rbf"], rows))

    # RBF outperforms linear in recall at the end (paper: 66.1% vs 61.5%).
    assert h_rbf.recall[-1] >= h_lin.recall[-1]
    # Both runs end with finite, improved E_Q relative to iteration 0.
    assert h_lin.e_q[-1] < h_lin.e_q[0]
    assert h_rbf.e_q[-1] < h_rbf.e_q[0]
    # Recall never collapses below half its best along the run.
    for h in (h_lin, h_rbf):
        assert h.recall[-1] >= max(h.recall) * 0.5
