"""Elasticity & checkpointing cost on the wall-clock engines (section 4.3).

Machine addition and checkpoint/restore are backend capabilities now, so
their operational cost can be *measured* where it matters:

* **join-iteration cost** — wall time of the iteration whose boundary
  admits a new machine (worker spawn + shared-memory/framed shard ship +
  mesh handshake + ring/home/protocol re-plan, reported as ``replan_s``)
  against the preceding healthy iteration and the steady state after the
  ring has grown;
* **checkpoint/restore latency vs shard size** — how long
  ``Backend.checkpoint()`` (collect worker shards + RNG streams +
  assembled model into one :class:`ClusterState`) and
  ``Backend.restore()`` (fresh pool, re-ship everything) take as the
  per-machine shard grows — the restartability tax for long fits.
"""

import time

import numpy as np

from repro.autoencoder import BinaryAutoencoder
from repro.autoencoder.adapter import BAAdapter
from repro.autoencoder.init import init_codes_pca
from repro.data.synthetic import make_gist_like
from repro.distributed.backends import get_backend
from repro.distributed.partition import make_shards, partition_indices
from repro.utils.ascii_plot import ascii_table

N, D, L, P = 3_000, 48, 16, 4
JOIN_ROWS = 600
CKPT_SIZES = [1_000, 3_000, 9_000]
WALLCLOCK = ("multiprocess", "tcp")


def ba_problem(X, Z, P=P):
    ba = BinaryAutoencoder.linear(D, L)
    adapter = BAAdapter(ba)
    parts = partition_indices(len(X), P, rng=0)
    return adapter, make_shards(X, adapter.features(X), Z, parts)


def join_cost(name, X, Z, X_join):
    """(healthy, join-iteration, post-join, replan) wall seconds."""
    adapter, shards = ba_problem(X, Z)
    with get_backend(name)(epochs=1, seed=0, shuffle_within=False) as backend:
        backend.setup(adapter, shards)
        healthy = backend.run_iteration(1e-3).wall_time
        backend.add_machine(X_join)
        stats = backend.run_iteration(2e-3)
        assert stats.machines_added == 1 and stats.n_machines == P + 1
        post = backend.run_iteration(4e-3).wall_time
    return healthy, stats.wall_time, post, stats.replan_s


def checkpoint_latency(name, n_rows):
    """(rows/machine, checkpoint s, state MB, restore s) for one size."""
    X = make_gist_like(n_rows, D, n_clusters=6, rng=7)
    Z, _ = init_codes_pca(X, L, subset=min(1000, n_rows), rng=0)
    adapter, shards = ba_problem(X, Z)
    with get_backend(name)(epochs=1, seed=0, shuffle_within=False) as backend:
        backend.setup(adapter, shards)
        backend.run_iteration(1e-3)
        t0 = time.perf_counter()
        state = backend.checkpoint()
        ckpt_s = time.perf_counter() - t0
    nbytes = sum(
        s.X.nbytes + s.F.nbytes + s.Z.nbytes + s.indices.nbytes
        for s in state.shards.values()
    )
    with get_backend(name)(epochs=1, seed=0, shuffle_within=False) as backend:
        t0 = time.perf_counter()
        backend.restore(state)
        restore_s = time.perf_counter() - t0
        stats = backend.run_iteration(2e-3)
        assert np.isfinite(stats.e_q)
    return n_rows // P, ckpt_s, nbytes / 1e6, restore_s


def test_join_and_checkpoint_cost(benchmark, report):
    X = make_gist_like(N, D, n_clusters=6, rng=5)
    Z, _ = init_codes_pca(X, L, subset=1000, rng=0)
    X_join = make_gist_like(JOIN_ROWS, D, n_clusters=6, rng=8)

    def run_all():
        joins = {name: join_cost(name, X, Z, X_join) for name in WALLCLOCK}
        ckpts = {
            name: [checkpoint_latency(name, n) for n in CKPT_SIZES]
            for name in WALLCLOCK
        }
        return joins, ckpts

    joins, ckpts = benchmark.pedantic(run_all, rounds=1, iterations=1)

    report()
    report("=" * 72)
    report(f"Join-iteration cost (N={N}, D={D}, L={L} -> M={2*L}, P={P}, "
           f"{JOIN_ROWS}-row joiner)")
    rows = []
    for name, (healthy, join_iter, post, replan) in joins.items():
        rows.append([
            name,
            f"{healthy * 1e3:.0f}",
            f"{join_iter * 1e3:.0f}",
            f"{replan * 1e3:.0f}",
            f"{post * 1e3:.0f}",
            f"{join_iter / healthy:.2f}x",
        ])
    report(ascii_table(
        ["backend", "healthy ms", "join-iter ms", "replan ms",
         "post-join ms", "join/healthy"],
        rows,
    ))
    report("replan = spawn + shard ship + mesh/ring/home re-plan, from "
           "IterationStats.replan_s.")

    report()
    report("Checkpoint/restore latency vs shard size")
    rows = []
    for name, series in ckpts.items():
        for rows_per_machine, ckpt_s, mb, restore_s in series:
            rows.append([
                name,
                f"{rows_per_machine:,}",
                f"{mb:.1f}",
                f"{ckpt_s * 1e3:.0f}",
                f"{restore_s * 1e3:.0f}",
            ])
    report(ascii_table(
        ["backend", "rows/machine", "state MB", "checkpoint ms", "restore ms"],
        rows,
    ))
    report("checkpoint gathers worker shards + RNG streams + the model; "
           "restore respawns the pool and re-ships everything.")

    from conftest import write_bench_json

    write_bench_json("elastic", {
        "joins": {
            name: {
                "healthy_iter_s": healthy,
                "join_iter_s": join_iter,
                "post_join_iter_s": post,
                "replan_s": replan,
            }
            for name, (healthy, join_iter, post, replan) in joins.items()
        },
        "checkpoint": {
            name: [
                {
                    "rows_per_machine": rows_pm,
                    "checkpoint_s": ckpt_s,
                    "state_mb": mb,
                    "restore_s": restore_s,
                }
                for rows_pm, ckpt_s, mb, restore_s in series
            ]
            for name, series in ckpts.items()
        },
    })

    for name, (healthy, join_iter, _, replan) in joins.items():
        assert np.isfinite(join_iter) and join_iter > 0 and replan >= 0
    for series in ckpts.values():
        for _, ckpt_s, _, restore_s in series:
            assert ckpt_s > 0 and restore_s > 0
