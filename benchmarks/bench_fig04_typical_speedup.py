"""Fig. 4 — the typical theoretical speedup curve.

Paper parameters: N = 10^6, M = 512, e = 1, t_wr = 1, t_zr = 5,
t_wc = 10^3 (rho1 = 0.0025, rho2 = 0.0005, rho = 0.003). The curve is
near-perfect up to P = M = 512, peaks at P*_1 = sqrt(rho1 M N) ~ 1131 with
S* ~ 633, and decays beyond.
"""

import numpy as np

from repro.perfmodel.presets import FIG4_PARAMS
from repro.perfmodel.speedup import global_max, speedup
from repro.utils.ascii_plot import ascii_plot, ascii_table


def compute_curve():
    Ps = np.arange(1, 2001)
    return Ps, speedup(Ps, FIG4_PARAMS)


def test_fig04_typical_speedup(benchmark, report):
    Ps, S = benchmark(compute_curve)
    P_star, S_star = global_max(FIG4_PARAMS)

    report()
    report("=" * 72)
    report("Figure 4: typical theoretical speedup curve")
    report(f"  N=1e6, M=512, e=1, t_wr=1, t_zr=5, t_wc=1e3")
    report(f"  rho1={FIG4_PARAMS.rho1:.4f} rho2={FIG4_PARAMS.rho2:.4f} "
           f"rho={FIG4_PARAMS.rho:.4f}")
    report()
    marks = [1, 64, 128, 256, 512, 1024, int(round(P_star)), 2000]
    rows = [(P, float(speedup(P, FIG4_PARAMS)),
             "P*_1 (max)" if P == int(round(P_star))
             else ("M" if P == 512 else ""))
            for P in marks]
    report(ascii_table(["P", "S(P)", "note"], rows))
    report()
    report(ascii_plot({"S(P)": (Ps, S)}, xlabel="machines P",
                      ylabel="speedup", title="S(P), paper fig. 4"))
    report(f"  global max: S*={S_star:.1f} at P*={P_star:.0f} "
           f"(paper: max past M=512, S>600)")

    # Shape assertions: near-perfect at the divisors of M (the paper marks
    # exactly those), maximum past M, decay after the maximum.
    divisors = np.array([1, 2, 4, 8, 16, 32, 64, 128, 256, 512])
    assert np.allclose(speedup(divisors, FIG4_PARAMS), divisors, rtol=0.15)
    assert np.allclose(speedup(divisors[:7], FIG4_PARAMS), divisors[:7], rtol=0.03)
    assert P_star > 512 and S_star > 512
    assert S[1999] < S_star
