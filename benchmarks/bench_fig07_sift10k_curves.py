"""Fig. 7 — SIFT-10K learning curves: epochs and machines.

Left columns of the figure: single machine, e in {1, 2, 4, 8} — more
epochs solve the W step more exactly, so E_Q(e=8) <= E_Q(e=1), but "fewer
epochs, even just one, cause only a small degradation". Right columns:
fixed e, P in {1, 8, 16, 32} — varying P only changes the minibatch
visiting order, so the curves jitter around the P = 1 curve without
systematic degradation.

Workload substitution: synthetic SIFT-like cloud (scaled down to N = 3000,
D = 64 for CI), standardised features, the paper's mu schedule family
(mu0 = 1e-6, a = 2, 20 iterations) and its precision protocol
(K, k) = (100, 100) scaled to the base size.
"""

import pytest

from repro.core.evaluation import PrecisionEvaluator
from repro.core.penalty import GeometricSchedule
from repro.data.synthetic import make_sift_like
from repro.utils.ascii_plot import ascii_table

from conftest import run_learning_curve, standardised

N, D, L = 3000, 64, 16
SCHEDULE = GeometricSchedule(mu0=1e-4, factor=2.0, n_iters=20)


@pytest.fixture(scope="module")
def workload():
    cloud = standardised(make_sift_like(N + 100, D, n_clusters=12, rng=0))
    X, Q = cloud[:N], cloud[N:]
    ev = PrecisionEvaluator(Q, X, K=100, k=100)
    return X, ev


def test_fig07_epochs_effect(benchmark, report, workload):
    X, ev = workload
    epochs_list = [1, 2, 8]

    def run_all():
        return {
            e: run_learning_curve(X, L, SCHEDULE, epochs=e, evaluator=ev)[1]
            for e in epochs_list
        }

    hists = benchmark.pedantic(run_all, rounds=1, iterations=1)

    report()
    report("=" * 72)
    report("Figure 7 (left): SIFT-10K stand-in, P=1, epochs e in {1,2,8}")
    rows = []
    for i in range(0, 20, 4):
        rows.append([i] + [round(hists[e].e_q[i], 1) for e in epochs_list]
                    + [round(hists[e].precision[i], 4) for e in epochs_list])
    rows.append(["last"] + [round(hists[e].e_q[-1], 1) for e in epochs_list]
                + [round(hists[e].precision[-1], 4) for e in epochs_list])
    report(ascii_table(
        ["iter"] + [f"E_Q e={e}" for e in epochs_list]
        + [f"prec e={e}" for e in epochs_list], rows))

    report("  NOTE: on this synthetic cloud the tPCA initialisation is already")
    report("  near neighbour-optimal, so precision settles slightly below its")
    report("  starting value while E_Q/E_BA improve (deviation from the paper's")
    report("  real-image curves; see EXPERIMENTS.md). Early stopping recovers")
    report("  the best iterate, as in the paper.")

    # More epochs -> W step solved more exactly -> final E_Q no worse.
    assert hists[8].e_q[-1] <= hists[1].e_q[-1] * 1.10
    # "Fewer epochs, even just one, cause only a small degradation."
    assert hists[1].e_q[-1] <= hists[8].e_q[-1] * 1.6
    # E_Q decreases substantially over the run for every e.
    for e in epochs_list:
        assert hists[e].e_q[-1] < hists[e].e_q[0]
    # Precision stays in a stable band (no collapse) for every e.
    for e in epochs_list:
        assert hists[e].precision[-1] >= hists[e].precision[0] * 0.6


def test_fig07_machines_effect(benchmark, report, workload):
    X, ev = workload
    Ps = [1, 8, 32]

    def run_all():
        return {
            P: run_learning_curve(X, L, SCHEDULE, n_machines=P, epochs=1,
                                  evaluator=ev)[1]
            for P in Ps
        }

    hists = benchmark.pedantic(run_all, rounds=1, iterations=1)

    report()
    report("Figure 7 (right): fixed e=1, machines P in {1,8,32}")
    rows = []
    for i in range(0, 20, 4):
        rows.append([i] + [round(hists[P].e_q[i], 1) for P in Ps])
    rows.append(["last"] + [round(hists[P].e_q[-1], 1) for P in Ps])
    report(ascii_table(["iter"] + [f"E_Q P={P}" for P in Ps], rows))
    report("  final precision: " + "  ".join(
        f"P={P}: {hists[P].precision[-1]:.4f}" for P in Ps))

    # P > 1 jitters but does not systematically degrade the learning curve.
    finals = [hists[P].e_q[-1] for P in Ps]
    assert max(finals) <= min(finals) * 1.5
    precs = [hists[P].precision[-1] for P in Ps]
    assert max(precs) - min(precs) < 0.15
