"""Z-step solver tradeoff (section 3.1): enumeration vs alternating bits.

"This problem can be solved exactly for small L by enumeration or
approximately for larger L by alternating optimisation over bits,
initialised by solving the relaxed problem." The bench measures both
solvers' runtime scaling with L and the optimality gap of alternation.
"""

import time

import numpy as np

from repro.autoencoder.zstep import (
    zstep_alternate,
    zstep_enumerate,
    zstep_objective,
    zstep_relaxed,
)
from repro.utils.ascii_plot import ascii_table


def problem(n, D, L, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, D))
    B = rng.normal(size=(D, L))
    c = rng.normal(size=D)
    H = rng.integers(0, 2, size=(n, L)).astype(np.uint8)
    return X, B, c, H


def test_zstep_solvers(benchmark, report):
    n, D, mu = 2000, 32, 0.5
    rows = []
    gaps = {}
    for L in (4, 8, 12):
        X, B, c, H = problem(n, D, L)
        t0 = time.perf_counter()
        Z_exact = zstep_enumerate(X, B, c, H, mu)
        t_enum = time.perf_counter() - t0
        t0 = time.perf_counter()
        Z_alt = zstep_alternate(X, B, c, H, mu)
        t_alt = time.perf_counter() - t0
        e_exact = zstep_objective(X, B, c, H, mu, Z_exact).sum()
        e_alt = zstep_objective(X, B, c, H, mu, Z_alt).sum()
        gaps[L] = e_alt / e_exact
        rows.append([L, round(t_enum * 1e3, 1), round(t_alt * 1e3, 1),
                     round(e_exact, 1), round(e_alt, 1), round(gaps[L], 4)])

    # Timed kernel: the alternating solver at L = 24 (enumeration refuses).
    X, B, c, H = problem(n, D, 24)
    Z24 = benchmark(lambda: zstep_alternate(X, B, c, H, mu))

    report()
    report("=" * 72)
    report(f"Z-step solvers, n={n} points, D={D}, mu={mu}")
    report(ascii_table(
        ["L", "enum (ms)", "alt (ms)", "E exact", "E alternating",
         "gap ratio"], rows))
    report("  enumeration cost doubles per bit; alternation stays linear "
           "and lands within a few percent of the optimum.")

    # Alternation is near-optimal (local minima cost only a few percent).
    assert all(1.0 <= g < 1.10 for g in gaps.values())
    # Alternation never violates the exact optimum.
    assert all(g >= 1.0 - 1e-12 for g in gaps.values())
    # The relaxed initialisation alone is strictly worse than polishing.
    X, B, c, H = problem(n, D, 8, seed=1)
    e_rel = zstep_objective(X, B, c, H, mu, zstep_relaxed(X, B, c, H, mu)).sum()
    e_alt = zstep_objective(X, B, c, H, mu, zstep_alternate(X, B, c, H, mu)).sum()
    assert e_alt <= e_rel
    # L = 24 output is valid binary codes.
    assert set(np.unique(Z24)) <= {0, 1}
