"""Ablation (section 5.4) — grouping decoder rows into M = 2L submodels.

The BA has L encoder submodels (size ~D) and D decoder rows (size ~L).
Ungrouped, the D tiny decoder messages dominate hop counts and latency;
grouped into L encoder-sized bundles, M = 2L equal submodels travel.
The bench compares ring-simulation W-step time and message counts for the
two layouts, plus the theory-side effect on the speedup curve.
"""


from repro.distributed.costmodel import CostModel
from repro.perfmodel.speedup import SpeedupParams, speedup
from repro.utils.ascii_plot import ascii_table

from conftest import timing_cluster

N, D, L, P, E = 20_000, 128, 16, 16, 1


def run_layouts():
    cost = CostModel(t_wr=1.0, t_wc=500.0, t_zr=5.0)
    out = {}
    for label, groups in [("grouped (M=2L)", L), ("ungrouped (M=L+D)", D)]:
        cluster = timing_cluster(N, L, D, P, E, cost, n_decoder_groups=groups)
        stats = cluster.w_step(0.0)
        out[label] = stats
    return out


def test_ablation_grouping(benchmark, report):
    results = benchmark.pedantic(run_layouts, rounds=1, iterations=1)

    report()
    report("=" * 72)
    report("Ablation: decoder grouping (section 5.4), P=16, e=1")
    rows = [
        [label, 2 * L if "2L" in label else L + D, s.n_messages,
         round(s.comm_time, 0), round(s.sim_time, 0)]
        for label, s in results.items()
    ]
    report(ascii_table(
        ["layout", "M", "hops", "comm time", "W-step sim time"], rows))

    grouped = results["grouped (M=2L)"]
    ungrouped = results["ungrouped (M=L+D)"]
    # Grouping slashes hop count (and with it latency overhead).
    assert grouped.n_messages < ungrouped.n_messages / 3
    assert grouped.comm_time < ungrouped.comm_time
    assert grouped.sim_time < ungrouped.sim_time

    # Theory side: with per-hop cost fixed, fewer/larger submodels win at
    # this P; the M = 2L curve dominates near P = 2L.
    g = SpeedupParams(N=N, M=2 * L, e=E, t_wr=1.0, t_wc=500.0, t_zr=5.0)
    u = SpeedupParams(N=N, M=L + D, e=E, t_wr=1.0, t_wc=500.0, t_zr=5.0)
    report(f"  theory S(16): grouped={float(speedup(16, g)):.1f} "
           f"ungrouped={float(speedup(16, u)):.1f} (same-cost hops)")
