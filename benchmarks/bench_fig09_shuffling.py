"""Fig. 9 — the effect of minibatch shuffling in the W step.

The paper compares CIFAR runs with and without shuffling (within-machine
minibatch order + random ring per epoch): "Shuffling generally reduces the
error (this is particularly clear in E_Q ...) and increases the precision
with no increase in runtime." Without cross-machine shuffling there is
still a small intrinsic shuffling because submodels start at different
machines.
"""

import numpy as np
import pytest

from repro.core.penalty import GeometricSchedule
from repro.data.synthetic import make_gist_like
from repro.utils.ascii_plot import ascii_table

from conftest import run_learning_curve, standardised

N, D, L = 2500, 96, 16
SCHEDULE = GeometricSchedule(mu0=5e-3, factor=1.2, n_iters=26)


@pytest.fixture(scope="module")
def X():
    return standardised(make_gist_like(N, D, n_clusters=10, rng=1))


def run_pair(X, P, seeds=(0, 1, 2)):
    """Average final E_Q over seeds, shuffled vs unshuffled."""
    plain, shuffled = [], []
    for seed in seeds:
        _, h0 = run_learning_curve(
            X, L, SCHEDULE, n_machines=P, epochs=2,
            shuffle_within=False, shuffle_ring=False, seed=seed,
        )
        _, h1 = run_learning_curve(
            X, L, SCHEDULE, n_machines=P, epochs=2,
            shuffle_within=True, shuffle_ring=True, seed=seed,
        )
        plain.append(h0.e_q[-1])
        shuffled.append(h1.e_q[-1])
    return float(np.mean(plain)), float(np.mean(shuffled))


def test_fig09_shuffling(benchmark, report, X):
    results = benchmark.pedantic(
        lambda: {P: run_pair(X, P) for P in (4, 16)}, rounds=1, iterations=1
    )

    report()
    report("=" * 72)
    report("Figure 9: W-step shuffling on/off (CIFAR stand-in, e=2)")
    rows = [
        [P, round(plain, 1), round(shuf, 1), round(plain / shuf, 4)]
        for P, (plain, shuf) in results.items()
    ]
    report(ascii_table(
        ["P", "final E_Q unshuffled", "final E_Q shuffled", "ratio"], rows))
    report("  (paper: shuffling generally reduces E_Q, at no runtime cost)")

    # Shuffling must not hurt, and helps on average.
    ratios = [plain / shuf for plain, shuf in results.values()]
    assert all(r > 0.97 for r in ratios)
    assert np.mean(ratios) >= 1.0
