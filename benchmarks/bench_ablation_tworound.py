"""Ablation (section 4.2) — e communication rounds vs the 2-round W step.

Running the e epochs consecutively inside each machine cuts communication
from e+1 to 2 full-model rounds at the cost of less cross-machine
shuffling, which "should not be a problem if the data are randomly
distributed over machines". The bench compares communication volume,
virtual-clock W time and final E_Q of the two schemes at e = 4.
"""


from repro.autoencoder import BinaryAutoencoder
from repro.core.parmac import ParMACTrainerBA
from repro.core.penalty import GeometricSchedule
from repro.data.synthetic import make_gist_like
from repro.distributed.costmodel import CostModel
from repro.utils.ascii_plot import ascii_table

from conftest import standardised

N, D, L, P, E = 2000, 64, 16, 8, 4
SCHEDULE = GeometricSchedule(5e-3, 1.5, 12)


def run_scheme(X, scheme):
    ba = BinaryAutoencoder.linear(D, L)
    trainer = ParMACTrainerBA(
        ba, SCHEDULE, n_machines=P, epochs=E, scheme=scheme, backend="sync",
        cost=CostModel(t_wr=1.0, t_wc=300.0, t_zr=2.0), seed=0,
    )
    history = trainer.fit(X)
    last = history.records[-1]
    return {
        "e_q": last.e_q,
        "comm_time": sum(r.extra["comm_time"] for r in history.records),
        "bytes": sum(r.extra["bytes_sent"] for r in history.records),
        "w_time": sum(r.extra["w_sim_time"] for r in history.records),
    }


def test_ablation_tworound(benchmark, report):
    X = standardised(make_gist_like(N, D, n_clusters=8, rng=3))
    results = benchmark.pedantic(
        lambda: {s: run_scheme(X, s) for s in ("rounds", "tworound")},
        rounds=1, iterations=1,
    )

    report()
    report("=" * 72)
    report(f"Ablation: W-step scheme, e={E}, P={P} "
           f"(rounds: e+1={E+1} comm rounds; tworound: 2)")
    rows = [
        [s, round(r["e_q"], 1), round(r["comm_time"], 0),
         r["bytes"], round(r["w_time"], 0)]
        for s, r in results.items()
    ]
    report(ascii_table(
        ["scheme", "final E_Q", "total comm time", "bytes sent",
         "total W sim time"], rows))

    rounds, two = results["rounds"], results["tworound"]
    # Communication volume drops by ~(e+1)/2.
    assert two["bytes"] < rounds["bytes"] * 0.5
    assert two["comm_time"] < rounds["comm_time"] * 0.5
    assert two["w_time"] < rounds["w_time"]
    # Learning quality is preserved (within a modest factor).
    assert two["e_q"] <= rounds["e_q"] * 1.3
