"""Degradation curves under chaos: throughput bends, accuracy doesn't.

The chaos layer (``repro.distributed.chaos``) injects seeded packet
loss, delay/jitter and slow-node stragglers identically into the
simulated engines (charged to the virtual clock) and the wall-clock
ones (slept off between framing and the wire). This bench sweeps three
severity axes — loss rate, link delay/jitter, straggler factor — on one
simulated engine (``sync``) and one real-socket engine (``tcp``) side
by side, and records per severity the final E_Q and the mean iteration
time.

The headline the curves must show is the deterministic-delivery
contract: **iteration time climbs with severity while E_Q stays exactly
flat** — on every engine, at every severity, the trained model is
bit-for-bit the chaos-free one, because chaos perturbs when messages
travel, never what is computed. The sim's cost model is calibrated to
rough per-point wall costs so its virtual seconds sit on the same axis
as the TCP engine's measured seconds.

Writes ``BENCH_chaos.json`` via the shared helper in conftest.py.

Run standalone (the nightly chaos lane does)::

    PYTHONPATH=src python benchmarks/bench_chaos.py --smoke

or through pytest: ``pytest benchmarks/bench_chaos.py``.
"""

import argparse
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from conftest import write_bench_json  # noqa: E402  (shared bench helper)

from repro.autoencoder import BinaryAutoencoder  # noqa: E402
from repro.autoencoder.adapter import BAAdapter  # noqa: E402
from repro.autoencoder.init import init_codes_pca  # noqa: E402
from repro.data.synthetic import make_gist_like  # noqa: E402
from repro.distributed import ChaosConfig  # noqa: E402
from repro.distributed.backends import get_backend  # noqa: E402
from repro.distributed.costmodel import CostModel  # noqa: E402
from repro.distributed.partition import make_shards, partition_indices  # noqa: E402
from repro.utils.ascii_plot import ascii_table  # noqa: E402

ENGINES = ["sync", "tcp"]

FULL = {"n": 3000, "d": 32, "bits": 12, "P": 4, "iters": 3,
        "loss": [0.0, 0.1, 0.3, 0.5],
        "delay_ms": [0.0, 5.0, 20.0, 50.0],
        "straggler": [1.0, 1.5, 2.0, 4.0]}
SMOKE = {"n": 600, "d": 16, "bits": 8, "P": 3, "iters": 2,
         "loss": [0.0, 0.2, 0.5],
         "delay_ms": [0.0, 10.0, 40.0],
         "straggler": [1.0, 2.0, 4.0]}

#: Rough per-point wall costs, so the sync engine's virtual seconds and
#: the TCP engine's measured seconds share an axis.
SIM_COST = CostModel(t_wr=2e-6, t_wc=1e-4, t_zr=2e-6)

#: Loss is charged as retransmits; a wall-visible detection timeout
#: makes the loss curve legible on the measured-seconds axis too.
RETRANSMIT_MS = 20.0


def chaos_for(axis: str, severity: float) -> ChaosConfig | None:
    if axis == "loss":
        if severity == 0.0:
            return None
        return ChaosConfig(packet_loss_rate=severity,
                           retransmit_ms=RETRANSMIT_MS, seed=13)
    if axis == "delay_ms":
        if severity == 0.0:
            return None
        return ChaosConfig(delay_ms=severity, jitter_ms=severity / 2, seed=13)
    if axis == "straggler":
        if severity == 1.0:
            return None
        return ChaosConfig(stragglers={0: severity}, seed=13)
    raise ValueError(axis)


def run_fit(cfg, engine: str, chaos: ChaosConfig | None):
    """One short fit; returns final E_Q, mean iteration seconds, final
    submodels and the summed chaos counters."""
    X = make_gist_like(cfg["n"], cfg["d"], n_clusters=6, rng=5)
    ba = BinaryAutoencoder.linear(cfg["d"], cfg["bits"])
    adapter = BAAdapter(ba)
    Z, _ = init_codes_pca(X, cfg["bits"], subset=500, rng=0)
    parts = partition_indices(cfg["n"], cfg["P"], rng=0)
    shards = make_shards(X, adapter.features(X), Z, parts)
    mus = [1e-3 * 2.0**i for i in range(cfg["iters"])]
    with get_backend(engine)(
        epochs=2, batch_size=100, seed=0, shuffle_within=False,
        cost=SIM_COST, chaos=chaos,
    ) as backend:
        backend.setup(adapter, shards)
        results = [backend.run_iteration(mu) for mu in mus]
    counters = {}
    for r in results:
        for key, value in r.extra.items():
            if key.startswith("chaos_"):
                counters[key] = counters.get(key, 0) + value
    finals = {s.sid: adapter.get_params(s).copy()
              for s in adapter.submodel_specs()}
    return {
        "e_q": float(results[-1].e_q),
        "iteration_s": float(np.mean([r.time for r in results])),
        "finals": finals,
        "counters": counters,
    }


def measure(cfg) -> dict:
    out = {"config": {k: v for k, v in cfg.items()}, "curves": {}}
    baseline_finals = {}
    for axis in ("loss", "delay_ms", "straggler"):
        severities = cfg[axis]
        curve = {"severities": list(severities)}
        for engine in ENGINES:
            e_qs, times, events = [], [], []
            for severity in severities:
                run = run_fit(cfg, engine, chaos_for(axis, severity))
                e_qs.append(run["e_q"])
                times.append(run["iteration_s"])
                events.append({k: v for k, v in run["counters"].items()
                               if k in ("chaos_drops", "chaos_delay_s",
                                        "chaos_straggler_s")})
                # Deterministic delivery, checked at the bits: every
                # severity of every axis trains the same model as the
                # engine's chaos-free baseline.
                base = baseline_finals.setdefault(engine, run["finals"])
                for sid, theta in run["finals"].items():
                    assert np.array_equal(theta, base[sid]), (
                        axis, severity, engine, sid)
            curve[engine] = {"e_q": e_qs, "iteration_s": times,
                             "events": events}
        out["curves"][axis] = curve
    return out


def report_lines(results) -> list:
    lines = ["=" * 72,
             "Chaos degradation curves (E_Q flat by contract; "
             "iteration seconds climb)"]
    for axis, curve in results["curves"].items():
        rows = []
        for i, severity in enumerate(curve["severities"]):
            rows.append([
                severity,
                round(curve["sync"]["iteration_s"][i], 4),
                round(curve["tcp"]["iteration_s"][i], 4),
                round(curve["sync"]["e_q"][i], 4),
                round(curve["tcp"]["e_q"][i], 4),
            ])
        lines.append(f"axis: {axis}")
        lines.append(ascii_table(
            ["severity", "sync iter s", "tcp iter s", "sync E_Q", "tcp E_Q"],
            rows))
    return lines


def check(results) -> list:
    """Acceptance: E_Q flat everywhere; time strictly degrades on the
    virtual clock and visibly degrades on the wall clock."""
    failures = []
    for axis, curve in results["curves"].items():
        for engine in ENGINES:
            e_qs = curve[engine]["e_q"]
            if not all(eq == e_qs[0] for eq in e_qs):
                failures.append(f"{axis}/{engine}: E_Q moved under chaos")
        sim_t = curve["sync"]["iteration_s"]
        if not all(b > a for a, b in zip(sim_t, sim_t[1:])):
            failures.append(f"{axis}/sync: virtual time not increasing")
        if axis == "straggler":
            # A straggler's extra wall time is (factor-1) x a few ms of
            # compute at bench sizes — real but inside scheduler noise,
            # so judge the injected sleep the workers recorded instead.
            slept = [e.get("chaos_straggler_s", 0.0)
                     for e in curve["tcp"]["events"]]
            if not all(b > a for a, b in zip(slept, slept[1:])):
                failures.append(
                    f"{axis}/tcp: injected straggler sleep not increasing")
        else:
            tcp_t = curve["tcp"]["iteration_s"]
            if not tcp_t[-1] > tcp_t[0]:
                failures.append(f"{axis}/tcp: wall time did not degrade")
    # The two engines must agree on the model, not just within
    # themselves (cross-engine parity at severity 0 covers all, since
    # every severity equals its engine's baseline).
    loss = results["curves"]["loss"]
    if loss["sync"]["e_q"][0] != loss["tcp"]["e_q"][0]:
        failures.append("sync and tcp disagree on the chaos-free E_Q")
    return failures


def test_chaos_degradation_curves(benchmark, report):
    """Pytest entry: smoke-size sweep with the flat-E_Q acceptance."""
    results = benchmark.pedantic(lambda: measure(SMOKE), rounds=1, iterations=1)
    report()
    for line in report_lines(results):
        report(line)
    write_bench_json("chaos", results)
    assert check(results) == []


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small problem sizes (nightly CI lane)",
    )
    parser.add_argument(
        "--out", default=None,
        help="directory for BENCH_chaos.json (default: benchmarks/)",
    )
    args = parser.parse_args(argv)
    results = measure(SMOKE if args.smoke else FULL)
    for line in report_lines(results):
        print(line)
    path = write_bench_json("chaos", results, directory=args.out)
    print(f"wrote {path}")
    failures = check(results)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
