"""Real wall-clock speedup with the multiprocessing backend (MPI stand-in).

The simulated engines measure virtual time; this bench measures actual
elapsed time per MAC iteration with a persistent pool of real OS
processes — shards shipped once over shared memory, submodels passed over
queues — the laptop-scale analogue of the paper's MPI runs. Python
process overhead means the absolute speedups are modest, but the
per-iteration W-step time must not grow with P (the work is genuinely
split), unlike a serial implementation.
"""

import os

import numpy as np

from repro.autoencoder import BinaryAutoencoder
from repro.autoencoder.adapter import BAAdapter
from repro.autoencoder.init import init_codes_pca
from repro.data.synthetic import make_gist_like
from repro.distributed.backends import get_backend
from repro.distributed.partition import make_shards, partition_indices
from repro.utils.ascii_plot import ascii_table

N, D, L = 12_000, 96, 16
MUS = [1e-3, 2e-3, 4e-3]


def run_P(X, Z, P):
    ba = BinaryAutoencoder.linear(D, L)
    adapter = BAAdapter(ba)
    parts = partition_indices(len(X), P, rng=0)
    shards = make_shards(X, adapter.features(X), Z, parts)
    with get_backend("multiprocess")(epochs=1, batch_size=100, seed=0) as backend:
        backend.setup(adapter, shards)
        results = [backend.run_iteration(mu) for mu in MUS]
    # Skip the first iteration (process warm-up noise).
    w = np.mean([r.extra["w_time"] for r in results[1:]])
    z = np.mean([r.extra["z_time"] for r in results[1:]])
    return w, z, results[-1].e_q


def test_mp_wallclock_speedup(benchmark, report):
    X = make_gist_like(N, D, n_clusters=8, rng=5)
    Z, _ = init_codes_pca(X, L, subset=2000, rng=0)

    def run_all():
        return {P: run_P(X, Z, P) for P in (1, 2, 4, 8)}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    report()
    report("=" * 72)
    report(f"Real multiprocessing ring: wall-clock per-iteration times "
           f"(N={N}, D={D}, L={L})")
    base_w, base_z, _ = results[1]
    rows = [
        [P, round(w, 3), round(z, 3), round(base_w / w, 2),
         round(base_z / z, 2), round(eq, 0)]
        for P, (w, z, eq) in results.items()
    ]
    report(ascii_table(
        ["P", "W step (s)", "Z step (s)", "W speedup", "Z speedup",
         "final E_Q"], rows))

    # Parallel speedup needs parallel hardware: on a single-core box the
    # workers time-share and wall-clock gains are physically impossible,
    # so only assert them where cores exist.
    cores = os.cpu_count() or 1
    if cores >= 4:
        # The embarrassingly parallel Z step must show genuine speedup.
        _, z1, _ = results[1]
        _, z4, _ = results[4]
        assert z1 / z4 > 1.5
        # The W step must not slow down as P grows (work is actually
        # split; queue overhead may eat some of the gain at this scale).
        w1 = results[1][0]
        for P in (2, 4, 8):
            assert results[P][0] < w1 * 1.5
    else:
        report(f"(only {cores} CPU core(s): skipping speedup assertions)")
    # Results remain sane at every P.
    assert all(np.isfinite(eq) for _, _, eq in results.values())
