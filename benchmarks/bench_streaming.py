"""Streaming ingest throughput and post-fault iteration cost (section 4.3).

ParMAC's resilience claims are now backend capabilities, so they can be
*measured* on the wall-clock engines:

* **ingest throughput** — rows/s from ``Backend.ingest`` through the
  drain at the next iteration boundary, where each batch is coded by
  the nested model and shipped to its owning worker (an incremental
  shared-memory segment on ``multiprocess``, an INGEST control frame on
  ``tcp``);
* **post-fault iteration cost** — wall time of the iteration in which a
  worker is SIGKILLed under ``fault_policy="drop_shard"`` (detection +
  survivor abort + mesh re-plan + re-run) against the preceding healthy
  iteration, plus the steady-state iteration time after the ring has
  shrunk — the degradation curve's three regimes.
"""

import os
import signal
import time

import numpy as np

from repro.autoencoder import BinaryAutoencoder
from repro.autoencoder.adapter import BAAdapter
from repro.autoencoder.init import init_codes_pca
from repro.data.synthetic import make_gist_like
from repro.distributed.backends import get_backend
from repro.distributed.partition import make_shards, partition_indices
from repro.utils.ascii_plot import ascii_table

N, D, L, P = 3_000, 48, 16, 4
INGEST_ROWS = 2_000
WALLCLOCK = ("multiprocess", "tcp")


def ba_problem(X, Z):
    ba = BinaryAutoencoder.linear(D, L)
    adapter = BAAdapter(ba)
    parts = partition_indices(len(X), P, rng=0)
    return adapter, make_shards(X, adapter.features(X), Z, parts)


def ingest_throughput(name, X, Z, X_stream):
    """Rows/s through ingest + boundary drain, and the drained rows."""
    adapter, shards = ba_problem(X, Z)
    with get_backend(name)(epochs=1, seed=0, shuffle_within=False) as backend:
        backend.setup(adapter, shards)
        backend.run_iteration(1e-3)  # steady state before streaming
        per_machine = np.array_split(X_stream, P)
        t0 = time.perf_counter()
        for p, Xm in enumerate(per_machine):
            backend.ingest(p, Xm)
        stats = backend.run_iteration(2e-3)
        elapsed = time.perf_counter() - t0
        assert stats.rows_ingested == len(X_stream)
        drain_only = stats.extra["wall_time"]
    return len(X_stream) / elapsed, elapsed - drain_only


def fault_cost(name, X, Z):
    """(healthy, fault-iteration, post-fault) wall seconds under drop_shard."""
    adapter, shards = ba_problem(X, Z)
    with get_backend(name)(
        epochs=1, seed=0, shuffle_within=False,
        fault_policy="drop_shard", worker_timeout=120,
    ) as backend:
        backend.setup(adapter, shards)
        healthy = backend.run_iteration(1e-3).wall_time
        os.kill(backend.worker_pids[P - 1], signal.SIGKILL)
        stats = backend.run_iteration(2e-3)
        assert stats.shards_lost == 1 and stats.n_machines == P - 1
        faulted = stats.wall_time
        post = backend.run_iteration(4e-3).wall_time
    return healthy, faulted, post


def test_streaming_and_fault_cost(benchmark, report):
    X = make_gist_like(N, D, n_clusters=6, rng=5)
    Z, _ = init_codes_pca(X, L, subset=1000, rng=0)
    X_stream = make_gist_like(INGEST_ROWS, D, n_clusters=6, rng=6)

    def run_all():
        out = {}
        for name in WALLCLOCK:
            rows_s, ship_s = ingest_throughput(name, X, Z, X_stream)
            out[name] = (rows_s, ship_s, *fault_cost(name, X, Z))
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    report()
    report("=" * 72)
    report(f"Streaming & drop_shard cost (N={N}, D={D}, L={L} -> M={2*L}, "
           f"P={P}, {INGEST_ROWS} streamed rows)")
    rows = []
    for name, (rows_s, ship_s, healthy, faulted, post) in results.items():
        rows.append([
            name,
            f"{rows_s:,.0f}",
            f"{ship_s * 1e3:.1f}",
            f"{healthy * 1e3:.0f}",
            f"{faulted * 1e3:.0f}",
            f"{post * 1e3:.0f}",
            f"{faulted / healthy:.2f}x",
        ])
    report(ascii_table(
        ["backend", "ingest rows/s", "ship ms", "healthy ms",
         "fault-iter ms", "post-fault ms", "fault/healthy"],
        rows,
    ))
    report("ingest rows/s counts queue -> code -> ship -> train-boundary;")
    report("fault-iter includes death detection, survivor abort and re-plan.")

    from conftest import write_bench_json

    write_bench_json("streaming", {
        "config": {"N": N, "D": D, "L": L, "P": P, "ingest_rows": INGEST_ROWS},
        "backends": {
            name: {
                "ingest_rows_per_s": rows_s,
                "ship_s": ship_s,
                "healthy_iter_s": healthy,
                "fault_iter_s": faulted,
                "post_fault_iter_s": post,
            }
            for name, (rows_s, ship_s, healthy, faulted, post) in results.items()
        },
    })

    for name, (rows_s, _, healthy, faulted, _) in results.items():
        assert rows_s > 0 and np.isfinite(faulted) and faulted >= 0
