"""Stacked Z-step kernels and overlapped ring sends: wall-clock speedups.

The PR-6 "hot paths" items, measured:

* **Stacked vs legacy BA alternating solver.** The legacy formulation
  materialises an n x D residual copy per bit per sweep; the stacked one
  maintains the n x L linear-term matrix ``G = R B`` with a rank-1 update
  per flipped bit (see ``repro.autoencoder.zstep``). Both are
  bit-identical from a shared initialisation. Acceptance floor for this
  repo: >= 3x on the wide-code 256-dimensional layer.

* **Enumeration shared-work caches.** The code table, Gram matrix and
  per-code quadratic depend only on ``(L, B, dtype)``, constant across
  the chunks and shards of one iteration; the stacked path computes them
  once and reuses them bitwise.

* **Activation-cached net Z step.** ``z_step_reference`` runs roughly
  three full forward passes per descent step; ``z_step`` computes one
  set of layer activations per candidate and shares it between objective
  and gradient, updating cached rows under the per-point safeguard.

* **Overlapped ring sends, end to end.** With ``overlap_send`` the TCP
  workers hand outgoing submodel batches to a double-buffered background
  sender and keep training; this times real iterations over sockets with
  the flag off and on and checks the learned bits are identical.

Writes ``BENCH_zstep.json`` via the shared helper in conftest.py (the
wire-dtype sweep in bench_tcp_wire.py merges its section into the same
file).

Run standalone (the nightly lane does)::

    PYTHONPATH=src python benchmarks/bench_zstep_stacked.py --smoke

or through pytest: ``pytest benchmarks/bench_zstep_stacked.py``.
"""

import argparse
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from conftest import write_bench_json  # noqa: E402  (shared bench helper)

from repro.autoencoder import BinaryAutoencoder  # noqa: E402
from repro.autoencoder.adapter import BAAdapter  # noqa: E402
from repro.autoencoder.init import init_codes_pca  # noqa: E402
from repro.autoencoder.zstep import (  # noqa: E402
    zstep_alternate,
    zstep_enumerate,
    zstep_relaxed,
)
from repro.distributed.backends import get_backend  # noqa: E402
from repro.distributed.partition import make_shards, partition_indices  # noqa: E402
from repro.nets.deepnet import DeepNet  # noqa: E402
from repro.nets.mac_net import MACTrainerNet  # noqa: E402

FULL = {
    "alt": {"n": 4000, "D": 256, "L": 32, "reps": 3},
    "enum": {"n": 4000, "D": 64, "L": 14, "reps": 5},
    "net": {"n": 1500, "dims": [32, 256, 16], "reps": 3},
    "overlap": {"n": 2400, "D": 48, "L": 16, "P": 3, "mus": [1e-3, 2e-3, 4e-3]},
}
SMOKE = {
    "alt": {"n": 600, "D": 256, "L": 32, "reps": 2},
    "enum": {"n": 1000, "D": 48, "L": 12, "reps": 3},
    "net": {"n": 400, "dims": [16, 256, 8], "reps": 2},
    "overlap": {"n": 900, "D": 32, "L": 12, "P": 3, "mus": [1e-3, 2e-3]},
}


def _best_of(fn, reps):
    """Best-of-``reps`` wall time and the last return value."""
    best, out = float("inf"), None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def ba_problem(cfg, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(cfg["n"], cfg["D"]))
    B = rng.normal(size=(cfg["D"], cfg["L"]))
    c = rng.normal(size=cfg["D"])
    H = rng.random(size=(cfg["n"], cfg["L"]))
    return X, B, c, H, 0.5


def measure_alternate(cfg) -> dict:
    """Legacy vs stacked alternating solver from one shared Z0."""
    X, B, c, H, mu = ba_problem(cfg)
    Z0 = zstep_relaxed(X, B, c, H, mu)
    t_leg, Z_leg = _best_of(
        lambda: zstep_alternate(X, B, c, H, mu, Z0, impl="legacy"), cfg["reps"]
    )
    t_stk, Z_stk = _best_of(
        lambda: zstep_alternate(X, B, c, H, mu, Z0, impl="stacked"), cfg["reps"]
    )
    assert np.array_equal(Z_leg, Z_stk), "stacked alternate changed the bits"
    return {
        "config": dict(cfg),
        "legacy_s": t_leg,
        "stacked_s": t_stk,
        "speedup": t_leg / t_stk,
        "bit_identical": True,
    }


def measure_enumerate(cfg) -> dict:
    """Per-call enumeration cost once the shared-work caches are warm."""
    X, B, c, H, mu = ba_problem(cfg)
    t_leg, Z_leg = _best_of(
        lambda: zstep_enumerate(X, B, c, H, mu, impl="legacy"), cfg["reps"]
    )
    zstep_enumerate(X, B, c, H, mu, impl="stacked")  # warm the caches
    t_stk, Z_stk = _best_of(
        lambda: zstep_enumerate(X, B, c, H, mu, impl="stacked"), cfg["reps"]
    )
    assert np.array_equal(Z_leg, Z_stk), "cached enumerate changed the bits"
    return {
        "config": dict(cfg),
        "legacy_s": t_leg,
        "stacked_s": t_stk,
        "speedup": t_leg / t_stk,
        "bit_identical": True,
    }


def measure_net(cfg) -> dict:
    """Reference vs activation-cached net Z step on a wide hidden layer."""
    rng = np.random.default_rng(0)
    dims = cfg["dims"]
    X = rng.normal(size=(cfg["n"], dims[0]))
    Y = np.tanh(X @ rng.normal(size=(dims[0], dims[-1])))
    trainer = MACTrainerNet(DeepNet.create(dims, rng=1), seed=0)
    Zs = trainer.init_coords(X)
    mu = 0.5
    t_ref, Z_ref = _best_of(lambda: trainer.z_step_reference(X, Y, Zs, mu), cfg["reps"])
    t_stk, Z_stk = _best_of(lambda: trainer.z_step(X, Y, Zs, mu), cfg["reps"])
    assert all(np.array_equal(a, b) for a, b in zip(Z_ref, Z_stk)), (
        "activation-cached net Z step changed the coordinates"
    )
    return {
        "config": dict(cfg),
        "reference_s": t_ref,
        "stacked_s": t_stk,
        "speedup": t_ref / t_stk,
        "bit_identical": True,
    }


def _overlap_run(cfg, X, Z, *, overlap_send):
    """Real-socket iterations; returns (mean iteration seconds, finals,
    last stats)."""
    ba = BinaryAutoencoder.linear(cfg["D"], cfg["L"])
    adapter = BAAdapter(ba)
    parts = partition_indices(len(X), cfg["P"], rng=0)
    shards = make_shards(X, adapter.features(X), Z, parts)
    with get_backend("tcp")(
        epochs=2, batch_size=100, seed=0, shuffle_within=False,
        overlap_send=overlap_send,
    ) as backend:
        backend.setup(adapter, shards)
        t0 = time.perf_counter()
        results = [backend.run_iteration(mu) for mu in cfg["mus"]]
        elapsed = time.perf_counter() - t0
    finals = {s.sid: adapter.get_params(s).copy() for s in adapter.submodel_specs()}
    return elapsed / len(cfg["mus"]), finals, results[-1]


def measure_overlap(cfg) -> dict:
    """End-to-end TCP iterations with the background sender off vs on."""
    rng = np.random.default_rng(3)
    X = rng.normal(size=(cfg["n"], cfg["D"]))
    Z, _ = init_codes_pca(X, cfg["L"], subset=min(1000, cfg["n"]), rng=0)
    t_off, finals_off, _ = _overlap_run(cfg, X, Z, overlap_send=False)
    t_on, finals_on, last = _overlap_run(cfg, X, Z, overlap_send=True)
    assert last.extra["overlap_send"] is True
    bit_identical = all(
        np.array_equal(theta, finals_on[sid]) for sid, theta in finals_off.items()
    )
    assert bit_identical, "overlap_send changed the learned parameters"
    return {
        "config": {k: v for k, v in cfg.items()},
        "iteration_s_serial": t_off,
        "iteration_s_overlap": t_on,
        "iteration_speedup": t_off / t_on,
        "bit_identical": bit_identical,
    }


def measure(cfgs) -> dict:
    return {
        "alternate": measure_alternate(cfgs["alt"]),
        "enumerate": measure_enumerate(cfgs["enum"]),
        "net": measure_net(cfgs["net"]),
        "overlap": measure_overlap(cfgs["overlap"]),
    }


def report_lines(results) -> list:
    alt, enum_, net = results["alternate"], results["enumerate"], results["net"]
    ov = results["overlap"]
    a_cfg, o_cfg = alt["config"], ov["config"]
    return [
        "=" * 72,
        f"Stacked Z step (BA alternate: n={a_cfg['n']}, D={a_cfg['D']}, "
        f"L={a_cfg['L']}; shared relaxed Z0)",
        f"  legacy  alternate : {alt['legacy_s'] * 1e3:8.1f} ms",
        f"  stacked alternate : {alt['stacked_s'] * 1e3:8.1f} ms",
        f"  speedup           : {alt['speedup']:8.2f}x   (bit-identical)",
        f"  enumerate (cached): {enum_['speedup']:8.2f}x   "
        f"(L={enum_['config']['L']}, warm caches, bit-identical)",
        f"  net z_step        : {net['speedup']:8.2f}x   "
        f"(dims={net['config']['dims']}, vs reference, bit-identical)",
        f"Overlapped ring sends (tcp engine: N={o_cfg['n']}, L={o_cfg['L']} "
        f"-> M={2 * o_cfg['L']}, P={o_cfg['P']}, e=2)",
        f"  iteration serial  : {ov['iteration_s_serial'] * 1e3:8.1f} ms",
        f"  iteration overlap : {ov['iteration_s_overlap'] * 1e3:8.1f} ms",
        f"  speedup           : {ov['iteration_speedup']:8.2f}x   "
        f"(bit-identical)",
    ]


def test_zstep_stacked_speedup(benchmark, report):
    """Pytest entry: smoke-size run with the >= 3x acceptance assertion."""
    results = benchmark.pedantic(lambda: measure(SMOKE), rounds=1, iterations=1)
    report()
    for line in report_lines(results):
        report(line)
    write_bench_json("zstep", results, merge=True)
    assert results["alternate"]["speedup"] >= 3.0
    assert results["alternate"]["bit_identical"]
    assert results["net"]["bit_identical"]
    assert results["overlap"]["bit_identical"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small problem sizes (nightly CI lane)",
    )
    parser.add_argument(
        "--out", default=None,
        help="directory for BENCH_zstep.json (default: benchmarks/)",
    )
    args = parser.parse_args(argv)
    results = measure(SMOKE if args.smoke else FULL)
    for line in report_lines(results):
        print(line)
    path = write_bench_json("zstep", results, directory=args.out, merge=True)
    print(f"wrote {path}")
    if results["alternate"]["speedup"] < 3.0:
        print("FAIL: stacked alternating Z step below the 3x acceptance floor")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
