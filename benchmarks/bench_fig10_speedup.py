"""Fig. 10 — experimental vs theoretical speedup for CIFAR / SIFT-1M / SIFT-1B.

"Experiment" = the discrete-event async engine executing the real ring
protocol with the paper's fitted virtual-clock constants (t_wr = 1,
t_wc = 10^4, t_zr = 200 for CIFAR / 40 for SIFT); "theory" = the section-5
closed form. The paper's observations to reproduce:

* nearly perfect speedups for P <= M = 2L and holding well beyond (top);
* speedups flatten as the number of epochs grows (communication grows);
* SIFT-1B (M = 128, N = 10^8): near-perfect over the whole P range
  (the paper's own experiment row for SIFT-1B is "too long to run" —
  its fig. 10 right column is theory, as here).
"""

import numpy as np
import pytest

from repro.distributed.costmodel import CostModel
from repro.perfmodel.presets import FIG10_CIFAR, FIG10_SIFT1B, FIG10_SIFT1M
from repro.perfmodel.speedup import SpeedupParams, speedup
from repro.utils.ascii_plot import ascii_plot, ascii_table

from conftest import measured_speedup

PS = [1, 2, 4, 8, 16, 32, 64, 96, 128]

WORKLOADS = {
    # name: (params, n_bits, D)
    "CIFAR":   (FIG10_CIFAR, 16, 320),
    "SIFT-1M": (FIG10_SIFT1M, 16, 128),
}


def run_workload(name, e):
    params, L, D = WORKLOADS[name]
    params = SpeedupParams(N=params.N, M=params.M, e=e, t_wr=params.t_wr,
                           t_wc=params.t_wc, t_zr=params.t_zr)
    cost = CostModel(t_wr=params.t_wr, t_wc=params.t_wc, t_zr=params.t_zr)
    exp = measured_speedup(params.N, L, D, PS, e, cost)
    theo = speedup(np.array(PS), params)
    return exp, theo


@pytest.mark.parametrize("name", list(WORKLOADS))
def test_fig10_experiment_vs_theory(benchmark, report, name):
    (exp1, theo1) = benchmark.pedantic(lambda: run_workload(name, 1),
                                       rounds=1, iterations=1)
    exp8, theo8 = run_workload(name, 8)

    report()
    report("=" * 72)
    report(f"Figure 10 ({name}): speedup, ring-simulation experiment vs theory")
    rows = [
        [P, round(float(e1), 1), round(float(t1), 1),
         round(float(e8), 1), round(float(t8), 1)]
        for P, e1, t1, e8, t8 in zip(PS, exp1, theo1, exp8, theo8)
    ]
    report(ascii_table(
        ["P", "exp e=1", "theory e=1", "exp e=8", "theory e=8"], rows))
    report()
    report(ascii_plot(
        {"exp e=1": (PS, exp1), "theory e=1": (PS, theo1),
         "exp e=8": (PS, exp8)},
        xlabel="machines P", ylabel="speedup",
        title=f"S(P) {name} (M=2L={WORKLOADS[name][0].M})",
    ))

    M = WORKLOADS[name][0].M
    # Experiment tracks theory within 20% everywhere.
    assert np.allclose(exp1, theo1, rtol=0.20)
    # Nearly perfect speedup for P <= M (e = 1).
    mask = np.array(PS) <= M
    assert np.allclose(exp1[mask], np.array(PS)[mask], rtol=0.20)
    # More epochs flatten the speedup at high P.
    assert exp8[-1] <= exp1[-1] + 1e-9


def test_fig10_sift1b_theory(benchmark, report):
    # N = 10^8, M = 128: the timing-only engine handles it via TimingShard.
    Ps = [1, 64, 128, 256, 512, 1024]
    cost = CostModel(t_wr=1.0, t_wc=FIG10_SIFT1B.t_wc, t_zr=FIG10_SIFT1B.t_zr)
    exp = benchmark.pedantic(
        lambda: measured_speedup(FIG10_SIFT1B.N, 64, 128, Ps, 1, cost),
        rounds=1, iterations=1,
    )
    theo = speedup(np.array(Ps), FIG10_SIFT1B)

    report()
    report("=" * 72)
    report("Figure 10 (SIFT-1B, N=1e8, M=128): near-perfect over whole range")
    rows = [[P, round(float(e), 1), round(float(t), 1)]
            for P, e, t in zip(Ps, exp, theo)]
    report(ascii_table(["P", "ring simulation", "theory"], rows))

    assert np.allclose(exp, theo, rtol=0.15)
    # Paper: "the speedup is nearly perfect over a very wide range" —
    # within 10% of perfect up to P = 512, still >= 75% efficient at 1024.
    assert np.allclose(exp[:-1], Ps[:-1], rtol=0.10)
    assert exp[-1] >= 0.75 * Ps[-1]
