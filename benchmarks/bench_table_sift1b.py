"""Section 8.4 table — SIFT-1B: recall@R and runtime, linear vs kernel SVM.

Paper numbers (N = 10^8, L = 64, 128 distributed processors / 64 shared):

    encoder      recall@100   time distrib.   time shared
    linear SVM      61.5%        29.30 h        11.04 h
    kernel SVM      66.1%        83.44 h        32.19 h

Shape to reproduce on the scaled stand-in: RBF > linear in recall; the RBF
encoder costs several times more runtime (it trains on m >> D kernel
features); the shared-memory preset is ~3x faster than the distributed one.
"""


from repro.distributed.costmodel import CostModel
from repro.perfmodel.presets import CLUSTER_PRESETS
from repro.utils.ascii_plot import ascii_table

from conftest import timing_cluster

N_ITERS = 10
P = 16


def virtual_runtime(preset: str, n_features: int, D: int, L: int, N: int) -> float:
    """Virtual-clock time of the full 10-iteration run on a preset.

    The per-point W-step cost scales with the encoder's feature dimension
    (kernel features cost m/D times more than raw ones).
    """
    p = CLUSTER_PRESETS[preset]
    scale = n_features / D
    cost = CostModel(t_wr=p["t_wr"] * scale, t_wc=p["t_wc"],
                     t_zr=p["t_zr"] * scale)
    cluster = timing_cluster(N=N, n_bits=L, D=D, P=P, e=2, cost=cost)
    total = 0.0
    for _ in range(N_ITERS):
        total += cluster.w_step(0.0).sim_time + cluster.z_step(0.0).sim_time
    return total


def test_table_sift1b(benchmark, report, sift1b_models):
    m = sift1b_models
    X, ev, L, D = m["X"], m["ev"], m["L"], m["D"]
    ba_lin, h_lin = m["linear"]
    ba_rbf, h_rbf = m["rbf"]
    n_rbf_features = ba_rbf.encoder.n_features

    # Virtual runtimes are extrapolated to a compute-dominated N = 10^6
    # (as in the real SIFT-1B regime, where per-shard work dwarfs the
    # per-hop communication); recall comes from the scaled training run.
    N_VIRT = 1_000_000
    times = benchmark.pedantic(
        lambda: {
            (enc, preset): virtual_runtime(preset, dim, D, L, N_VIRT)
            for enc, dim in [("linear", D), ("rbf", n_rbf_features)]
            for preset in ("distributed", "shared")
        },
        rounds=1, iterations=1,
    )

    report()
    report("=" * 72)
    report("Section 8.4 table: SIFT-1B stand-in (N scaled 1e8 -> 4e3, L=32)")
    rows = []
    for enc, ba, hist in [("linear SVM", ba_lin, h_lin),
                          ("kernel SVM (RBF)", ba_rbf, h_rbf)]:
        key = "linear" if enc.startswith("linear") else "rbf"
        rows.append([
            enc,
            round(float(hist.recall[-1]), 4),
            round(times[(key, "distributed")], 0),
            round(times[(key, "shared")], 0),
        ])
    report(ascii_table(
        ["encoder", "recall@10", "virt time distrib", "virt time shared"],
        rows,
        title="(paper: 61.5% / 66.1% recall@100; 29.3h/83.4h distrib, "
              "11.0h/32.2h shared)",
    ))

    # Recall: kernel > linear.
    assert h_rbf.recall[-1] >= h_lin.recall[-1]
    # Runtime: kernel costs a multiple of linear (paper: ~2.8x; here the
    # feature-dimension ratio m/D = 4.7 is diluted by communication time).
    assert times[("rbf", "distributed")] > 1.5 * times[("linear", "distributed")]
    # Shared-memory preset is ~3-4x faster on both encoders.
    for enc in ("linear", "rbf"):
        ratio = times[(enc, "distributed")] / times[(enc, "shared")]
        assert 2.0 < ratio < 5.0
