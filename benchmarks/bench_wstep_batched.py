"""Batched co-resident-unit W step: wall-clock speedup and precision cost.

The ROADMAP "hot paths" items, measured:

* **Batched vs per-unit W step.** A deep net's submodels are single
  hidden units, so the legacy W step runs one Python-level SGD loop per
  unit per machine visit — for a 256-unit layer that is 256 interpreted
  loops over the same shard rows per visit. With ``batch_units`` the
  co-resident units of a layer collapse into one stacked GEMM per
  minibatch (see ``repro.distributed.batching``); this bench reports the
  W-step wall-clock ratio at ``shuffle_within=False``, where batching
  engages. Acceptance floor for this repo: >= 3x on the 256-unit layer.

* **float32 vs float64 end to end.** ``DeepNet.create(..., dtype=...)``
  now threads the compute precision through shards, engines and wire, so
  the section-9 claim ("reduced-precision values ... with little effect
  on the accuracy") is measurable: per-iteration wall time and the final
  E_Q gap between the two precisions.

Writes ``BENCH_wstep.json`` via the shared helper in conftest.py.

Run standalone (the nightly lane does)::

    PYTHONPATH=src python benchmarks/bench_wstep_batched.py --smoke

or through pytest: ``pytest benchmarks/bench_wstep_batched.py``.
"""

import argparse
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from conftest import write_bench_json  # noqa: E402  (shared bench helper)

from repro.core.penalty import GeometricSchedule  # noqa: E402
from repro.core.trainer import ParMACTrainer  # noqa: E402
from repro.nets.adapter import NetAdapter, make_net_shards  # noqa: E402
from repro.nets.deepnet import DeepNet  # noqa: E402
from repro.nets.mac_net import MACTrainerNet  # noqa: E402
from repro.optim.schedules import InverseSchedule  # noqa: E402
from repro.distributed.partition import partition_indices  # noqa: E402

FULL = {"n": 4000, "d_in": 32, "units": 256, "d_out": 16, "P": 2, "iters": 2}
SMOKE = {"n": 600, "d_in": 16, "units": 256, "d_out": 8, "P": 2, "iters": 1}


def net_problem(cfg, dtype=np.float64, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(cfg["n"], cfg["d_in"]))
    Y = np.tanh(X @ rng.normal(size=(cfg["d_in"], cfg["d_out"])))
    net = DeepNet.create(
        [cfg["d_in"], cfg["units"], cfg["d_out"]], rng=1, dtype=dtype
    )
    # A 256-unit output fan-in needs a gentler step size than the front
    # end's default, or SGD diverges and the precision gap is meaningless.
    adapter = NetAdapter(
        net, z_steps=3, w_schedule=InverseSchedule(eta0=0.02, t0=100.0)
    )
    Zs = MACTrainerNet(net, seed=seed).init_coords(X)
    parts = partition_indices(cfg["n"], cfg["P"], rng=seed)
    return adapter, make_net_shards(X, Y, Zs, parts)


def run_fit(cfg, *, batch_units, dtype=np.float64):
    """One short fit; returns (mean W-step seconds, mean iter seconds,
    final E_Q)."""
    adapter, shards = net_problem(cfg, dtype)
    trainer = ParMACTrainer(
        adapter,
        GeometricSchedule(0.5, 2.0, cfg["iters"]),
        backend="sync",
        epochs=1,
        batch_size=100,
        shuffle_within=False,
        seed=0,
        backend_options={"batch_units": batch_units},
    )
    t0 = time.perf_counter()
    history = trainer.fit(shards)
    elapsed = time.perf_counter() - t0
    trainer.close()
    w_times = [r.extra["w_time"] for r in history.records]
    return {
        "w_step_s": float(np.mean(w_times)),
        "iteration_s": elapsed / len(history),
        "e_q": float(history.records[-1].e_q),
        "batched_w": bool(history.records[-1].extra["batched_w"]),
    }


def measure(cfg) -> dict:
    legacy = run_fit(cfg, batch_units=False)
    batched = run_fit(cfg, batch_units=True)
    assert batched["batched_w"] and not legacy["batched_w"]
    f64 = run_fit(cfg, batch_units=True, dtype=np.float64)
    f32 = run_fit(cfg, batch_units=True, dtype=np.float32)
    return {
        "config": dict(cfg),
        "wstep": {
            "legacy_s": legacy["w_step_s"],
            "batched_s": batched["w_step_s"],
            "speedup": legacy["w_step_s"] / batched["w_step_s"],
            "e_q_rel_gap": abs(batched["e_q"] - legacy["e_q"])
            / abs(legacy["e_q"]),
        },
        "precision": {
            "float64": {"iteration_s": f64["iteration_s"], "e_q": f64["e_q"]},
            "float32": {"iteration_s": f32["iteration_s"], "e_q": f32["e_q"]},
            "iteration_speedup": f64["iteration_s"] / f32["iteration_s"],
            "e_q_rel_gap": abs(f32["e_q"] - f64["e_q"]) / abs(f64["e_q"]),
        },
    }


def report_lines(results) -> list:
    w, prec = results["wstep"], results["precision"]
    cfg = results["config"]
    return [
        "=" * 72,
        f"Batched W step ({cfg['units']}-unit layer, N={cfg['n']}, "
        f"P={cfg['P']}, shuffle_within=False, sync engine)",
        f"  per-unit W step : {w['legacy_s'] * 1e3:8.1f} ms",
        f"  batched  W step : {w['batched_s'] * 1e3:8.1f} ms",
        f"  speedup         : {w['speedup']:8.2f}x   "
        f"(E_Q rel gap {w['e_q_rel_gap']:.2e})",
        f"float32 vs float64 (batched, end to end)",
        f"  iter f64 / f32  : {prec['float64']['iteration_s'] * 1e3:.1f} / "
        f"{prec['float32']['iteration_s'] * 1e3:.1f} ms "
        f"({prec['iteration_speedup']:.2f}x)",
        f"  E_Q f64 / f32   : {prec['float64']['e_q']:.4f} / "
        f"{prec['float32']['e_q']:.4f} (rel gap {prec['e_q_rel_gap']:.2e})",
    ]


def test_wstep_batched_speedup(benchmark, report):
    """Pytest entry: smoke-size run with the >= 3x acceptance assertion."""
    results = benchmark.pedantic(lambda: measure(SMOKE), rounds=1, iterations=1)
    report()
    for line in report_lines(results):
        report(line)
    write_bench_json("wstep", results)
    assert results["wstep"]["speedup"] >= 3.0
    assert results["wstep"]["e_q_rel_gap"] < 1e-6
    assert results["precision"]["e_q_rel_gap"] < 1e-3


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small problem sizes (nightly CI lane)",
    )
    parser.add_argument(
        "--out", default=None,
        help="directory for BENCH_wstep.json (default: benchmarks/)",
    )
    args = parser.parse_args(argv)
    results = measure(SMOKE if args.smoke else FULL)
    for line in report_lines(results):
        print(line)
    path = write_bench_json("wstep", results, directory=args.out)
    print(f"wrote {path}")
    if results["wstep"]["speedup"] < 3.0:
        print("FAIL: batched W step below the 3x acceptance floor")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
