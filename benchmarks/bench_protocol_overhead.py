"""Protocol overhead (fig. 6 / section 7): cost of the ring machinery.

Measures the in-process engines' message throughput (visits processed per
second of wall clock, timing-only) and verifies the exact message/hop
counts the counter protocol prescribes — the analogue of checking the MPI
code's `visitedsubmodels` loop bound.
"""


from repro.distributed.costmodel import CostModel
from repro.utils.ascii_plot import ascii_table

from conftest import timing_cluster


def run_w_step(P, M_bits, e, engine):
    cluster = timing_cluster(N=10_000, n_bits=M_bits, D=32, P=P, e=e,
                             cost=CostModel(t_wc=1.0), engine=engine)
    return cluster.w_step(0.0)


def test_protocol_hop_counts(benchmark, report):
    stats = benchmark.pedantic(lambda: run_w_step(16, 16, 2, "async"),
                               rounds=3, iterations=1)

    P, e, M = 16, 2, 32
    expected_hops = M * (P * (e + 1) - 2)
    report()
    report("=" * 72)
    report("Protocol overhead: ring message accounting (P=16, e=2, M=32)")
    report(ascii_table(
        ["quantity", "value", "formula"],
        [
            ["hops", stats.n_messages, f"M(P(e+1)-2) = {expected_hops}"],
            ["bytes", stats.bytes_sent, "hops x |theta|"],
            ["sim comm time", round(stats.comm_time, 1), "hops x t_wc"],
        ],
    ))
    assert stats.n_messages == expected_hops
    assert stats.comm_time == float(expected_hops) - M * 0  # t_wc = 1


def test_engine_throughput(benchmark, report):
    # Wall-clock throughput of the discrete-event engine itself.
    def run():
        return run_w_step(32, 16, 4, "async")

    stats = benchmark(run)
    visits = 32 * (32 * 5 - 1)
    report()
    report(f"Async engine handles {visits} visits per W step "
           f"(P=32, e=4, M=32); see pytest-benchmark table for rate.")
    assert stats.n_messages > 0
