"""Retrieval serving: batched packed-scan throughput vs per-query baseline.

The ``repro.serve`` acceptance numbers, measured rather than asserted:

* **Baseline.** One request at a time, the way the repo served queries
  before this package existed: encode a single query, run ``hamming_knn``
  (full ``hamming_cdist`` row + argpartition) against the base. Python
  and kernel-launch overhead dominate — this is the per-query QPS floor.

* **Batched service.** ``RetrievalService`` coalescing a saturating burst
  into ``max_batch``-query stacked encodes + shared ``hamming_topk``
  scans. Acceptance floor for this repo: >= 5x the baseline QPS.

* **Latency vs offered load.** Open-loop Poisson arrivals at increasing
  offered QPS; p50/p95/p99 from scheduled-arrival to completion, plus the
  batching-window and shard-count sweeps and L in {16, 32, 64}.

* **Scan memory bound.** tracemalloc peaks: the blocked streaming kernel
  against the materialised ``n_q x n_base`` distance matrix the offline
  path would allocate — the kernel's peak must stay below it.

Writes ``BENCH_serve.json`` via the shared helper in conftest.py.

Run standalone (the nightly lane does)::

    PYTHONPATH=src python benchmarks/bench_serve.py --smoke

or through pytest: ``pytest benchmarks/bench_serve.py``.
"""

import argparse
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from conftest import write_bench_json  # noqa: E402  (shared bench helper)

from repro.autoencoder import BinaryAutoencoder  # noqa: E402
from repro.retrieval.hamming import hamming_cdist, hamming_knn, pack_bits  # noqa: E402
from repro.serve import (  # noqa: E402
    HammingIndex,
    RetrievalService,
    ShardedHammingIndex,
    hamming_topk,
    run_open_loop,
)

# The 5x speedup target measures what batching amortises: per-request
# Python/dispatch overhead (~85-95 us/query warm on the unbatched path,
# nearly independent of n_base at these sizes). That overhead dominates
# at moderate base sizes, so the headline comparison runs there; at much
# larger n_base both paths converge to the same memory-bound scan and
# the lever is sharding across cores instead (the shard sweep — a
# scaling demonstration on multicore hosts, a pure exactness
# demonstration on the single-core CI box). Baseline and saturation
# throughput are each the median of `rounds` timed runs after one
# discarded warm-up round (both paths ramp noticeably while allocator
# pools and the batcher thread settle): the CI box has one core and
# noisy neighbours. `block` is sized so the kernel's scratch panes stay
# below the materialised-cdist peak the memory check compares against.
FULL = {
    "n_base": 1500, "n_q": 1000, "D": 64, "k": 10, "L": 32,
    "Ls": [16, 32, 64],
    "shards": [1, 2, 4],
    "windows_ms": [0.5, 2.0, 8.0],
    "loads_qps": [500, 2000, 8000],
    "n_requests": 800,
    "baseline_queries": 200,
    "block": 512,
    "max_batch": 128,
    "rounds": 5,
}
SMOKE = {
    "n_base": 1000, "n_q": 300, "D": 48, "k": 10, "L": 32,
    "Ls": [16, 32],
    "shards": [1, 2],
    "windows_ms": [0.5, 2.0],
    "loads_qps": [500, 2000],
    "n_requests": 300,
    "baseline_queries": 100,
    "block": 256,
    "max_batch": 128,
    "rounds": 5,
}


def random_hash_model(D, L, seed=0):
    """A random-hyperplane hash in BA clothing: realistic encode cost
    (one GEMM + threshold in ``compute_dtype``) without training time."""
    ba = BinaryAutoencoder.linear(D, L)
    rng = np.random.default_rng(seed)
    ba.encoder.A[...] = rng.normal(size=ba.encoder.A.shape)
    ba.encoder.a[...] = rng.normal(scale=0.1, size=ba.encoder.a.shape)
    return ba


def serving_problem(cfg, L, seed=0):
    rng = np.random.default_rng(seed)
    X_base = rng.normal(size=(cfg["n_base"], cfg["D"]))
    X_q = rng.normal(size=(cfg["n_q"], cfg["D"]))
    model = random_hash_model(cfg["D"], L, seed=seed)
    packed = pack_bits(model.encode(X_base))
    return model, X_base, X_q, packed


def measure_baseline(cfg, model, X_q, packed) -> dict:
    """Per-query unbatched path: single-row encode + full-row hamming_knn."""
    n = cfg["baseline_queries"]
    k = cfg["k"]
    rates = []
    # One discarded warm-up round: the first pass pays allocator and
    # import-path costs that steady-state serving never sees.
    for i in range(n):
        code = pack_bits(model.encode(X_q[i : i + 1]))
        hamming_knn(code, packed, k)
    for _ in range(cfg.get("rounds", 1)):
        t0 = time.perf_counter()
        for i in range(n):
            code = pack_bits(model.encode(X_q[i : i + 1]))
            hamming_knn(code, packed, k)
        rates.append(n / (time.perf_counter() - t0))
    qps = float(np.median(rates))
    return {"n_queries": n, "rounds": len(rates), "qps": qps, "qps_rounds": rates}


def _saturate(service, X_q, n_requests, k) -> dict:
    """Burst-submit ``n_requests`` and measure completion throughput."""
    # Warm the pipeline (allocator pools, branch-predictable scan state)
    # so the timed burst measures steady state, not the first batch.
    for future in [service.submit(X_q[i % len(X_q)], k) for i in range(64)]:
        future.result(timeout=60.0)
    t0 = time.perf_counter()
    futures = [
        service.submit(X_q[i % len(X_q)], k) for i in range(n_requests)
    ]
    for future in futures:
        future.result(timeout=60.0)
    elapsed = time.perf_counter() - t0
    return {"n_requests": n_requests, "elapsed_s": elapsed, "qps": n_requests / elapsed}


def measure_throughput(cfg, model, X_q, packed, baseline_qps) -> dict:
    """Saturation QPS of the batched service vs the per-query baseline."""
    index = HammingIndex.from_codes(packed, model.n_bits, block=cfg["block"])
    with RetrievalService(
        model, index, k=cfg["k"], max_wait_ms=2.0, max_batch=cfg["max_batch"]
    ) as service:
        _saturate(service, X_q, cfg["n_requests"], cfg["k"])  # warm-up, discarded
        rounds = [
            _saturate(service, X_q, cfg["n_requests"], cfg["k"])
            for _ in range(cfg.get("rounds", 1))
        ]
        stats = service.stats.snapshot()
    sat = sorted(rounds, key=lambda r: r["qps"])[len(rounds) // 2]
    return {
        **sat,
        "qps_rounds": [r["qps"] for r in rounds],
        "baseline_qps": baseline_qps,
        "speedup_vs_baseline": sat["qps"] / baseline_qps,
        "mean_batch": stats["mean_batch"],
        "n_batches": stats["n_batches"],
    }


def measure_latency_vs_load(cfg, model, X_q, packed) -> list:
    """Open-loop Poisson p50/p95/p99 at each offered load."""
    index = HammingIndex.from_codes(packed, model.n_bits, block=cfg["block"])
    rows = []
    with RetrievalService(
        model, index, k=cfg["k"], max_wait_ms=2.0, max_batch=cfg["max_batch"]
    ) as service:
        for load in cfg["loads_qps"]:
            out = run_open_loop(
                service, X_q, float(load), k=cfg["k"],
                n_requests=cfg["n_requests"], rng=0,
            )
            rows.append(
                {
                    "offered_qps": load,
                    "achieved_qps": out["achieved_qps"],
                    **out["latency"],
                    "rows_per_s": out["throughput"]["rows_per_s"],
                }
            )
    return rows


def measure_windows(cfg, model, X_q, packed) -> list:
    """Batching-window sweep at a moderate open-loop load."""
    load = float(cfg["loads_qps"][len(cfg["loads_qps"]) // 2])
    rows = []
    for window_ms in cfg["windows_ms"]:
        index = HammingIndex.from_codes(packed, model.n_bits, block=cfg["block"])
        with RetrievalService(
            model, index, k=cfg["k"], max_wait_ms=window_ms,
            max_batch=cfg["max_batch"],
        ) as service:
            out = run_open_loop(
                service, X_q, load, k=cfg["k"],
                n_requests=cfg["n_requests"], rng=0,
            )
            stats = service.stats.snapshot()
        rows.append(
            {
                "window_ms": window_ms,
                "offered_qps": load,
                "mean_batch": stats["mean_batch"],
                **out["latency"],
            }
        )
    return rows


def measure_shards(cfg, model, X_q, packed) -> list:
    """Saturation QPS vs shard count (thread mode, plus one process run)."""
    rows = []
    configs = [("thread", s) for s in cfg["shards"]]
    configs.append(("process", cfg["shards"][-1]))
    for mode, n_shards in configs:
        if n_shards == 1:
            index = HammingIndex.from_codes(packed, model.n_bits, block=cfg["block"])
        else:
            index = ShardedHammingIndex(
                packed, model.n_bits, n_shards, mode=mode, block=cfg["block"]
            )
        with RetrievalService(
            model, index, k=cfg["k"], max_wait_ms=2.0, max_batch=cfg["max_batch"]
        ) as service:
            sat = _saturate(service, X_q, cfg["n_requests"], cfg["k"])
        rows.append({"mode": mode, "n_shards": n_shards, "qps": sat["qps"]})
    return rows


def measure_bits(cfg) -> list:
    """Saturation QPS per code length L (codes get wider, scans heavier)."""
    rows = []
    for L in cfg["Ls"]:
        model, _, X_q, packed = serving_problem(cfg, L)
        index = HammingIndex.from_codes(packed, L, block=cfg["block"])
        with RetrievalService(
            model, index, k=cfg["k"], max_wait_ms=2.0, max_batch=cfg["max_batch"]
        ) as service:
            sat = _saturate(service, X_q, cfg["n_requests"], cfg["k"])
        rows.append({"L": L, "n_words": (L + 63) // 64, "qps": sat["qps"]})
    return rows


def measure_memory(cfg, model, X_q, packed) -> dict:
    """tracemalloc peaks: streaming kernel vs materialised distance matrix."""
    queries = pack_bits(model.encode(X_q[: cfg["max_batch"]]))
    tracemalloc.start()
    hamming_topk(queries, packed, cfg["k"], block=cfg["block"])
    _, topk_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    tracemalloc.start()
    hamming_cdist(queries, packed)
    _, cdist_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    full_matrix_bytes = cfg["n_q"] * cfg["n_base"] * 2
    return {
        "batch": len(queries),
        "block": cfg["block"],
        "topk_peak_bytes": topk_peak,
        "cdist_peak_bytes": cdist_peak,
        "full_matrix_bytes_at_n_q": full_matrix_bytes,
        "bounded": bool(topk_peak < cdist_peak),
    }


def measure(cfg) -> dict:
    model, _, X_q, packed = serving_problem(cfg, cfg["L"])
    baseline = measure_baseline(cfg, model, X_q, packed)
    return {
        "config": dict(cfg),
        "baseline": baseline,
        "throughput": measure_throughput(cfg, model, X_q, packed, baseline["qps"]),
        "latency_vs_load": measure_latency_vs_load(cfg, model, X_q, packed),
        "windows": measure_windows(cfg, model, X_q, packed),
        "shards": measure_shards(cfg, model, X_q, packed),
        "bits": measure_bits(cfg),
        "memory": measure_memory(cfg, model, X_q, packed),
    }


def report_lines(results) -> list:
    cfg = results["config"]
    base, thr, mem = results["baseline"], results["throughput"], results["memory"]
    lines = [
        "=" * 72,
        f"Hamming retrieval serving (n_base={cfg['n_base']}, L={cfg['L']}, "
        f"k={cfg['k']}, max_batch={cfg['max_batch']})",
        f"  per-query baseline : {base['qps']:10.0f} qps",
        f"  batched service    : {thr['qps']:10.0f} qps  "
        f"(mean batch {thr['mean_batch']:.1f})",
        f"  speedup            : {thr['speedup_vs_baseline']:10.1f}x   (floor 5x)",
        "  open-loop latency vs offered load:",
    ]
    for row in results["latency_vs_load"]:
        lines.append(
            f"    {row['offered_qps']:7.0f} qps offered | "
            f"p50 {row['p50_ms']:7.2f} ms | p95 {row['p95_ms']:7.2f} ms | "
            f"p99 {row['p99_ms']:7.2f} ms | {row['rows_per_s']:8.0f} rows/s"
        )
    lines.append("  batching window sweep:")
    for row in results["windows"]:
        lines.append(
            f"    window {row['window_ms']:5.1f} ms | mean batch "
            f"{row['mean_batch']:5.1f} | p50 {row['p50_ms']:7.2f} ms | "
            f"p99 {row['p99_ms']:7.2f} ms"
        )
    lines.append("  shard sweep (saturation):")
    for row in results["shards"]:
        lines.append(
            f"    {row['n_shards']} shard(s) [{row['mode']:7s}] | "
            f"{row['qps']:8.0f} qps"
        )
    lines.append("  code length sweep (saturation):")
    for row in results["bits"]:
        lines.append(f"    L={row['L']:3d} | {row['qps']:8.0f} qps")
    lines.append(
        f"  scan memory: topk peak {mem['topk_peak_bytes'] / 1e6:.1f} MB vs "
        f"cdist peak {mem['cdist_peak_bytes'] / 1e6:.1f} MB "
        f"(full n_q x n_base matrix would be "
        f"{mem['full_matrix_bytes_at_n_q'] / 1e6:.1f} MB)"
    )
    return lines


def check(results) -> list:
    """Acceptance assertions; returns failure strings (empty = pass)."""
    failures = []
    if results["throughput"]["speedup_vs_baseline"] < 5.0:
        failures.append(
            "batched service below the 5x-vs-per-query acceptance floor: "
            f"{results['throughput']['speedup_vs_baseline']:.1f}x"
        )
    if not results["memory"]["bounded"]:
        failures.append("streaming scan peak memory not below the cdist peak")
    return failures


def test_serve_throughput(benchmark, report):
    """Pytest entry: smoke-size run with the acceptance assertions."""
    results = benchmark.pedantic(lambda: measure(SMOKE), rounds=1, iterations=1)
    report()
    for line in report_lines(results):
        report(line)
    write_bench_json("serve", results)
    assert not check(results)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small problem sizes (nightly CI lane)",
    )
    parser.add_argument(
        "--out", default=None,
        help="directory for BENCH_serve.json (default: benchmarks/)",
    )
    args = parser.parse_args(argv)
    results = measure(SMOKE if args.smoke else FULL)
    for line in report_lines(results):
        print(line)
    path = write_bench_json("serve", results, directory=args.out)
    print(f"wrote {path}")
    failures = check(results)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
