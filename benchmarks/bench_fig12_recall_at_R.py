"""Fig. 12 — recall@R vs R: truncated PCA vs linear vs RBF encoders.

The paper's left plot: final recall@R curves for the three hash functions,
with the RBF curve dominating the linear one and both beating the tPCA
initialisation across the whole range of R.
"""

import numpy as np

from repro.retrieval.groundtruth import euclidean_knn
from repro.retrieval.hamming import pack_bits
from repro.retrieval.metrics import recall_curve
from repro.utils.ascii_plot import ascii_plot, ascii_table

RS = [1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 4000]


def curves(m):
    X, Q = m["X"], m["Q"]
    nn1 = euclidean_knn(Q, X, 1)[:, 0]
    out = {}
    for label, encode in [
        ("tPCA", m["tpca"].encode),
        ("linear", m["linear"][0].encode),
        ("RBF", m["rbf"][0].encode),
    ]:
        out[label] = recall_curve(
            pack_bits(encode(Q)), pack_bits(encode(X)), nn1, RS
        )
    return out


def test_fig12_recall_at_R(benchmark, report, sift1b_models):
    result = benchmark.pedantic(lambda: curves(sift1b_models),
                                rounds=1, iterations=1)

    report()
    report("=" * 72)
    report("Figure 12: recall@R for tPCA / linear / RBF (SIFT-1B stand-in)")
    rows = [[R] + [round(float(result[k][i]), 4) for k in ("tPCA", "linear", "RBF")]
            for i, R in enumerate(RS)]
    report(ascii_table(["R", "tPCA", "linear", "RBF"], rows))
    report()
    report(ascii_plot(
        {k: (RS, v) for k, v in result.items()},
        logx=True, xlabel="R (log scale)", ylabel="recall@R",
        title="recall@R (paper fig. 12 left)",
    ))

    tpca, lin, rbf = result["tPCA"], result["linear"], result["RBF"]
    # All curves are monotone in R and reach 1 at R = N.
    for c in (tpca, lin, rbf):
        assert (np.diff(c) >= 0).all()
        assert c[-1] == 1.0
    # RBF dominates tPCA at small R — the regime retrieval cares about
    # (at large R all curves converge to 1 and may cross).
    assert (rbf[:5] >= tpca[:5] - 1e-9).all()
    # RBF beats linear at small R (the paper's headline contrast).
    assert rbf[3] >= lin[3]
    # The trained RBF encoder improves on the initialisation at small R.
    # (On this synthetic workload the *linear* encoder does not beat tPCA
    # — the cloud's neighbourhood structure is exactly its principal
    # subspace; recorded as a deviation in EXPERIMENTS.md.)
    assert rbf[:6].mean() > tpca[:6].mean()
