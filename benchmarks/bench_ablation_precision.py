"""Ablation (section 9) — reduced-precision submodel communication.

"One can store and communicate reduced-precision values for data and
parameters with little effect of the accuracy." The bench trains the same
BA with float64 / float32 / float16 wire formats and reports communication
volume/time against the E_Q reached.
"""

import numpy as np

from repro.autoencoder import BinaryAutoencoder
from repro.autoencoder.adapter import BAAdapter
from repro.autoencoder.init import init_codes_pca
from repro.core.penalty import GeometricSchedule
from repro.data.synthetic import make_gist_like
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.costmodel import CostModel
from repro.distributed.partition import make_shards, partition_indices
from repro.utils.ascii_plot import ascii_table

from conftest import standardised

N, D, L, P = 2000, 64, 16, 8
SCHEDULE = GeometricSchedule(5e-3, 1.5, 10)


def run_precision(X, dtype):
    ba = BinaryAutoencoder.linear(D, L)
    adapter = BAAdapter(ba)
    Z, _ = init_codes_pca(X, L, rng=0)
    parts = partition_indices(len(X), P, rng=0)
    shards = make_shards(X, adapter.features(X), Z, parts)
    cluster = SimulatedCluster(
        adapter, shards, epochs=2,
        cost=CostModel(t_wr=1.0, t_wc=300.0, t_zr=2.0),
        message_dtype=dtype, seed=0,
    )
    total_bytes = 0
    total_comm = 0.0
    for mu in SCHEDULE:
        w, _ = cluster.iteration(mu)
        total_bytes += w.bytes_sent
        total_comm += w.comm_time
    return cluster.e_q(SCHEDULE.values()[-1]), total_bytes, total_comm


def test_ablation_precision(benchmark, report):
    X = standardised(make_gist_like(N, D, n_clusters=8, rng=6))
    results = benchmark.pedantic(
        lambda: {
            label: run_precision(X, dtype)
            for label, dtype in [("float64", None), ("float32", np.float32),
                                 ("float16", np.float16)]
        },
        rounds=1, iterations=1,
    )

    report()
    report("=" * 72)
    report("Ablation: reduced-precision submodel communication (section 9)")
    base_eq = results["float64"][0]
    rows = [
        [label, round(eq, 1), round(eq / base_eq, 4), by, round(ct, 0)]
        for label, (eq, by, ct) in results.items()
    ]
    report(ascii_table(
        ["wire format", "final E_Q", "vs float64", "bytes sent",
         "comm time"], rows))

    eq64, by64, _ = results["float64"]
    eq32, by32, _ = results["float32"]
    eq16, by16, _ = results["float16"]
    # Communication halves/quarters exactly.
    assert by32 * 2 == by64 and by16 * 4 == by64
    # Accuracy effect is small: float32 within 2%, float16 within 15%.
    assert abs(eq32 - eq64) / eq64 < 0.02
    assert abs(eq16 - eq64) / eq64 < 0.15
