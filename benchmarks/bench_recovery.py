"""Self-healing cost: the respawn tax and kill-to-recovery latency.

``fault_policy="respawn"`` buys zero-loss bit-identical recovery with
two observable costs, both measured here where they matter:

* **boundary-snapshot tax** — every iteration under respawn re-collects
  the whole-cluster boundary (worker shards + SGD streams + route RNG),
  so a healthy iteration pays a steady overhead vs ``fail_fast``;
* **kill-to-recovery latency** — a scheduled mid-iteration SIGKILL
  (:class:`~repro.distributed.chaos.CrashEvent`) turns one iteration
  into detect + backoff + full pool rebuild + boundary re-ship + retry;
  the crash iteration's wall time against its healthy neighbours is the
  honest price of not losing the shard;
* **degraded-serve latency** — a sharded index with a scan deadline
  answers *through* a shard kill: the partial answer's latency and
  coverage, then the post-respawn full-coverage search.
"""

import time

import numpy as np

from repro.autoencoder import BinaryAutoencoder
from repro.autoencoder.adapter import BAAdapter
from repro.autoencoder.init import init_codes_pca
from repro.data.synthetic import make_gist_like
from repro.distributed.backends import get_backend
from repro.distributed.chaos import ChaosConfig, CrashEvent
from repro.distributed.partition import make_shards, partition_indices
from repro.retrieval.hamming import pack_bits
from repro.serve import ShardedHammingIndex
from repro.utils.ascii_plot import ascii_table

N, D, L, P = 3_000, 48, 16, 3
N_BASE, N_QUERY = 60_000, 16
WALLCLOCK = ("multiprocess", "tcp")


def ba_problem(X, Z):
    ba = BinaryAutoencoder.linear(D, L)
    adapter = BAAdapter(ba)
    parts = partition_indices(len(X), P, rng=0)
    return adapter, make_shards(X, adapter.features(X), Z, parts)


def snapshot_tax(name, X, Z, n_iters=3):
    """Mean healthy-iteration wall seconds under fail_fast vs respawn."""
    walls = {}
    for policy in ("fail_fast", "respawn"):
        adapter, shards = ba_problem(X, Z)
        with get_backend(name)(
            epochs=1, seed=0, shuffle_within=False, fault_policy=policy
        ) as backend:
            backend.setup(adapter, shards)
            ws = [backend.run_iteration(1e-3 * 2**i).wall_time
                  for i in range(n_iters)]
        walls[policy] = float(np.mean(ws))
    return walls["fail_fast"], walls["respawn"]


def recovery_latency(name, X, Z):
    """(healthy s, crash-iteration s, respawn wait s) for one SIGKILL."""
    adapter, shards = ba_problem(X, Z)
    chaos = ChaosConfig(crashes=(CrashEvent(machine=1, iteration=1),))
    with get_backend(name)(
        epochs=1, seed=0, shuffle_within=False,
        fault_policy="respawn", respawn_backoff=0.0, chaos=chaos,
    ) as backend:
        backend.setup(adapter, shards)
        healthy = backend.run_iteration(1e-3).wall_time
        crash_stats = backend.run_iteration(2e-3)
        assert crash_stats.extra["respawns"] == 1
        assert crash_stats.shards_lost == 0
        post = backend.run_iteration(4e-3).wall_time
    return healthy, crash_stats.wall_time, crash_stats.extra["respawn_wait_s"], post


def degraded_serve():
    """Healthy / partial / recovered search latency through a shard kill."""
    import os
    import signal

    rng = np.random.default_rng(0)
    base = pack_bits(rng.integers(0, 2, size=(N_BASE, 32)).astype(np.uint8))
    queries = pack_bits(rng.integers(0, 2, size=(N_QUERY, 32)).astype(np.uint8))
    idx = ShardedHammingIndex(base, 32, 3, mode="process", scan_timeout_s=2.0)
    try:
        def timed_search():
            t0 = time.perf_counter()
            res = idx.search(queries, 10)
            return time.perf_counter() - t0, res

        timed_search()  # warm the workers
        healthy = min(timed_search()[0] for _ in range(5))
        proc = idx._procs[1]
        os.kill(proc.pid, signal.SIGKILL)
        proc.join(timeout=5.0)
        partial_s, partial = timed_search()
        assert partial.partial and idx.shard_respawns == 1
        recovered_s, recovered = timed_search()
        assert not recovered.partial
        return healthy, partial_s, float(partial.coverage), recovered_s
    finally:
        idx.close()


def test_recovery_cost(benchmark, report):
    X = make_gist_like(N, D, n_clusters=6, rng=5)
    Z, _ = init_codes_pca(X, L, subset=1000, rng=0)

    def run_all():
        taxes = {name: snapshot_tax(name, X, Z) for name in WALLCLOCK}
        recoveries = {name: recovery_latency(name, X, Z) for name in WALLCLOCK}
        return taxes, recoveries, degraded_serve()

    taxes, recoveries, serve = benchmark.pedantic(run_all, rounds=1, iterations=1)

    report()
    report("=" * 72)
    report(f"Respawn boundary-snapshot tax (N={N}, D={D}, L={L}, P={P})")
    rows = [
        [name, f"{ff * 1e3:.0f}", f"{rs * 1e3:.0f}", f"{rs / ff:.2f}x"]
        for name, (ff, rs) in taxes.items()
    ]
    report(ascii_table(
        ["backend", "fail_fast ms", "respawn ms", "tax"], rows
    ))
    report("respawn re-collects every worker's shard + SGD stream each "
           "iteration so a death can rewind bit-identically.")

    report()
    report("Kill-to-recovery latency (scheduled mid-W SIGKILL, zero backoff)")
    rows = [
        [name, f"{h * 1e3:.0f}", f"{c * 1e3:.0f}", f"{w * 1e3:.0f}",
         f"{p * 1e3:.0f}", f"{c / h:.2f}x"]
        for name, (h, c, w, p) in recoveries.items()
    ]
    report(ascii_table(
        ["backend", "healthy ms", "crash-iter ms", "respawn-wait ms",
         "post ms", "crash/healthy"],
        rows,
    ))
    report("crash-iter = detect + pool rebuild + boundary re-ship + "
           "bit-identical retry; shards_lost stays 0.")

    report()
    healthy_s, partial_s, coverage, recovered_s = serve
    report(f"Degraded serving ({N_BASE:,} x 32-bit codes, 3 process shards, "
           "2 s scan deadline, shard 1 SIGKILLed)")
    report(ascii_table(
        ["healthy ms", "partial ms", "coverage", "recovered ms"],
        [[f"{healthy_s * 1e3:.1f}", f"{partial_s * 1e3:.1f}",
          f"{coverage:.2f}", f"{recovered_s * 1e3:.1f}"]],
    ))
    report("the partial answer is exact over the surviving shards; the "
           "worker respawns from retained descriptors before the next "
           "search.")

    from conftest import write_bench_json

    write_bench_json("recovery", {
        "snapshot_tax": {
            name: {"fail_fast_s": ff, "respawn_s": rs, "tax": rs / ff}
            for name, (ff, rs) in taxes.items()
        },
        "kill_to_recovery": {
            name: {
                "healthy_s": h,
                "crash_iteration_s": c,
                "respawn_wait_s": w,
                "post_s": p,
                "ratio": c / h,
            }
            for name, (h, c, w, p) in recoveries.items()
        },
        "degraded_serve": {
            "healthy_s": healthy_s,
            "partial_s": partial_s,
            "partial_coverage": coverage,
            "recovered_s": recovered_s,
        },
    })
