"""Fig. 13 — communication vs computation time by node placement.

P = 16 processors allocated as 1x16 (one node, pure shared memory) through
16x1 (16 nodes, pure distributed). Intra-node hops are cheap, inter-node
hops expensive. The paper's finding: computation time stays constant while
communication time grows as processors spread over more nodes. Its
shared-memory reference point (1x16 equivalent) measured 2.57 s comm /
8.76 s comp.
"""

import numpy as np

from repro.distributed.costmodel import CostModel
from repro.utils.ascii_plot import ascii_table

from conftest import timing_cluster

P = 16
CONFIGS = [(1, 16), (2, 8), (4, 4), (8, 2), (16, 1)]  # nodes x procs/node
T_WC_INTER = 2_000.0
T_WC_INTRA = 100.0


def run_config(n_nodes, per_node):
    node_of = {p: p // per_node for p in range(P)}
    cost = CostModel(t_wr=1.0, t_wc=T_WC_INTER, t_wc_intra=T_WC_INTRA,
                     t_zr=5.0, node_of=node_of)
    cluster = timing_cluster(N=20_000, n_bits=16, D=64, P=P, e=2, cost=cost)
    w = cluster.w_step(0.0)
    return w.comp_time, w.comm_time


def test_fig13_comm_vs_comp(benchmark, report):
    results = benchmark.pedantic(
        lambda: [run_config(n, k) for n, k in CONFIGS], rounds=1, iterations=1
    )

    report()
    report("=" * 72)
    report("Figure 13: comm vs comp time across node placements (P=16)")
    rows = [
        [f"{n}x{k}", round(comp, 0), round(comm, 0),
         round(comm / comp, 3)]
        for (n, k), (comp, comm) in zip(CONFIGS, results)
    ]
    report(ascii_table(["nodes x procs", "computation", "communication",
                        "comm/comp"], rows))
    report("  (paper: computation ~constant, communication grows towards 16x1;"
           " shared-memory 1x16 point: 2.57s comm / 8.76s comp)")

    comps = np.array([c for c, _ in results])
    comms = np.array([c for _, c in results])
    # Computation identical in every placement.
    assert np.allclose(comps, comps[0], rtol=1e-9)
    # Communication strictly grows as processors spread over nodes.
    assert (np.diff(comms) > 0).all()
    # Pure distributed pays the most; pure shared-memory the least.
    assert comms[-1] / comms[0] > 5.0
