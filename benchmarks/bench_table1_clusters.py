"""Table 1 — hardware specification of the two clusters (substituted).

The physical specs are not reproducible; the substitution (DESIGN.md) is
the pair of virtual-clock cluster presets whose time constants mirror the
measured contrast: the shared-memory machine computes ~3.5x faster and
communicates ~10x cheaper than the 10GbE distributed cluster. The bench
prints the preset table and measures one simulated iteration per preset —
the shared-memory system must come out 3-4x faster end to end, as the
paper reports for SIFT-1B (29.3 h vs 11.0 h).
"""

from repro.perfmodel.presets import CLUSTER_PRESETS, cluster_cost_model
from repro.utils.ascii_plot import ascii_table

from conftest import timing_cluster


def iteration_time(preset: str) -> float:
    cost = cluster_cost_model(preset)
    cluster = timing_cluster(N=100_000, n_bits=16, D=128, P=16, e=2, cost=cost)
    w = cluster.w_step(0.0)
    z = cluster.z_step(0.0)
    return w.sim_time + z.sim_time


def test_table1_cluster_presets(benchmark, report):
    times = benchmark.pedantic(
        lambda: {name: iteration_time(name) for name in CLUSTER_PRESETS},
        rounds=3, iterations=1,
    )

    report()
    report("=" * 72)
    report("Table 1 (substituted): simulated cluster presets")
    rows = []
    for name, p in CLUSTER_PRESETS.items():
        rows.append([name, p["t_wr"], p["t_wc"], p["t_zr"],
                     round(times[name], 0), p["description"]])
    report(ascii_table(
        ["preset", "t_wr", "t_wc", "t_zr", "iter time (virt)", "description"],
        rows,
    ))
    ratio = times["distributed"] / times["shared"]
    report(f"  distributed/shared iteration-time ratio: {ratio:.2f} "
           f"(paper observed 3-4x for SIFT-1B: 29.30h/11.04h = 2.65)")

    # The shared-memory preset must be 2-5x faster, matching the paper.
    assert 2.0 < ratio < 5.0
