"""Shared benchmark fixtures and helpers.

Every bench prints the rows/series of the table or figure it regenerates
(visible in bench_output.txt via capsys.disabled) and times a
representative kernel with pytest-benchmark. Benches with a headline
number additionally write a machine-readable ``BENCH_<name>.json``
summary via :func:`write_bench_json`, so the nightly lane (and future
perf-trajectory tooling) can diff runs without scraping tables.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest


def write_bench_json(name: str, payload: dict, directory=None, *,
                     merge: bool = False) -> Path:
    """Write one bench's machine-readable summary to ``BENCH_<name>.json``.

    The default destination is this benchmarks/ directory; set the
    ``BENCH_JSON_DIR`` environment variable (or pass ``directory``) to
    redirect, e.g. to a CI artefact folder. Values are coerced through
    ``float`` when not JSON-native, so numpy scalars are fine.

    ``merge=True`` folds ``payload``'s top-level keys into an existing
    ``BENCH_<name>.json`` instead of replacing the file — used when
    several benches contribute sections to one summary (e.g. the wire
    dtype sweep adding to ``BENCH_zstep.json``). Corrupt or unreadable
    existing files are overwritten rather than fatal.
    """
    directory = Path(
        directory or os.environ.get("BENCH_JSON_DIR") or Path(__file__).parent
    )
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    if merge and path.exists():
        try:
            existing = json.loads(path.read_text())
        except (OSError, ValueError):
            existing = {}
        if isinstance(existing, dict):
            payload = {**existing, **payload}
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=float) + "\n"
    )
    return path

from repro.autoencoder import BinaryAutoencoder
from repro.autoencoder.adapter import BAAdapter
from repro.distributed.backends import get_backend
from repro.distributed.costmodel import CostModel
from repro.distributed.partition import TimingShard


@pytest.fixture()
def report(capsys):
    """Print through pytest's capture so the output lands in the log."""

    def _report(text=""):
        with capsys.disabled():
            print(text)

    return _report


def timing_cluster(N, n_bits, D, P, e, cost, *, engine="async", scheme="rounds",
                   n_decoder_groups=None):
    """Timing-only simulated cluster: real protocol, virtual clock, no math.

    Built through the execution-backend registry so the benches exercise
    the same construction path as the generic trainer.
    """
    ba = BinaryAutoencoder.linear(D, n_bits)
    adapter = BAAdapter(ba, n_decoder_groups=n_decoder_groups)
    base, extra = divmod(N, P)
    shards = [TimingShard(base + (1 if p < extra else 0)) for p in range(P)]
    backend = get_backend(engine)(
        epochs=e, scheme=scheme, cost=cost, seed=0, execute_updates=False
    )
    backend.setup(adapter, shards)
    return backend.cluster


def measured_speedup(N, n_bits, D, Ps, e, cost, **kwargs):
    """Virtual-clock iteration-time speedups S(P) = T(1)/T(P)."""

    def one(P):
        cluster = timing_cluster(N, n_bits, D, P, e, cost, **kwargs)
        w = cluster.w_step(0.0)
        z = cluster.z_step(0.0)
        return w.sim_time + z.sim_time

    T1 = one(1)
    return np.array([T1 / one(P) for P in Ps])


def standardised(X):
    """Zero-mean unit-variance features (keeps the paper's mu scales usable
    on synthetic data of arbitrary magnitude)."""
    mu = X.mean(axis=0)
    sd = X.std(axis=0)
    sd[sd == 0] = 1.0
    return (X - mu) / sd


@pytest.fixture(scope="session")
def sift1b_models():
    """Scaled SIFT-1B stand-in with trained linear and RBF BAs.

    Shared by the fig. 11 / fig. 12 / section-8.4-table benches so the
    (expensive) training happens once per session. N is scaled from 10^8
    to 4000; L = 32 (the paper uses 64); RBF uses 300 centres (paper: 2000).
    """
    from repro.core.evaluation import RecallEvaluator
    from repro.core.mac import MACTrainerBA
    from repro.core.penalty import GeometricSchedule
    from repro.data.synthetic import make_sift_like
    from repro.retrieval.baselines import TruncatedPCAHash

    N, D, L = 4000, 64, 32
    cloud = standardised(make_sift_like(N + 100, D, n_clusters=15, rng=2))
    X, Q = cloud[:N], cloud[N:]
    ev = RecallEvaluator(Q, X, R=10)
    schedule = GeometricSchedule(mu0=1e-3, factor=2.0, n_iters=10)

    tpca = TruncatedPCAHash(L).fit(X, subset=1000, rng=0)

    ba_lin = BinaryAutoencoder.linear(D, L)
    hist_lin = MACTrainerBA(ba_lin, schedule, w_epochs=2, evaluator=ev,
                            seed=0).fit(X)

    ba_rbf = BinaryAutoencoder.rbf(X, n_centres=300, n_bits=L, rng=0)
    hist_rbf = MACTrainerBA(ba_rbf, schedule, w_epochs=2, evaluator=ev,
                            seed=0).fit(X)

    return {
        "X": X, "Q": Q, "ev": ev, "L": L, "D": D,
        "tpca": tpca,
        "linear": (ba_lin, hist_lin),
        "rbf": (ba_rbf, hist_rbf),
    }


def run_learning_curve(X, n_bits, schedule, *, n_machines=1, epochs=1,
                       evaluator=None, shuffle_within=True, shuffle_ring=False,
                       seed=0):
    """Train a linear BA with ParMAC and return its TrainingHistory.

    Uses the sync engine (deterministic) with a pure-compute cost model so
    the time axis is SGD work; this is the workhorse for the fig. 7-9
    learning-curve benches.
    """
    from repro.core.parmac import ParMACTrainerBA

    ba = BinaryAutoencoder.linear(X.shape[1], n_bits)
    trainer = ParMACTrainerBA(
        ba,
        schedule,
        n_machines=n_machines,
        epochs=epochs,
        backend="sync",
        batch_size=100,
        shuffle_within=shuffle_within,
        shuffle_ring=shuffle_ring,
        cost=CostModel(t_wr=1.0, t_wc=0.0, t_zr=1.0),
        evaluator=evaluator,
        seed=seed,
    )
    history = trainer.fit(X)
    return ba, history
