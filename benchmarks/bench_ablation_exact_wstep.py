"""Ablation (section 6) — SGD W step vs exact allreduced W step.

ParMAC's only approximation to MAC is the stochastic W step. The exact
alternative (per-machine gradients summed by allreduce; closed-form normal
equations for the decoder) recovers MAC exactly but "is far slower than
using SGD". The bench sweeps e and prints the E_Q gap to exact, plus the
communication cost of each strategy.
"""


from repro.autoencoder import BinaryAutoencoder
from repro.autoencoder.adapter import BAAdapter
from repro.autoencoder.init import init_codes_pca
from repro.autoencoder.zstep import zstep
from repro.data.synthetic import make_clustered
from repro.distributed.allreduce import exact_w_step_ba
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.partition import make_shards, partition_indices
from repro.utils.ascii_plot import ascii_table

N, D, L, P = 1500, 32, 8, 4
MUS = [1e-3 * 2**i for i in range(8)]
SVM_STEPS = 40


def run_exact(X):
    ba = BinaryAutoencoder.linear(D, L)
    adapter = BAAdapter(ba)
    Z, _ = init_codes_pca(X, L, rng=0)
    parts = partition_indices(len(X), P, rng=0)
    shards = make_shards(X, X, Z, parts)
    for mu in MUS:
        exact_w_step_ba(ba, shards, svm_steps=SVM_STEPS)
        for s in shards:
            s.Z = zstep(s.X, ba.decoder.B, ba.decoder.c,
                        adapter._encode_features(s.F), mu, Z0=s.Z)
    return sum(adapter.e_q_shard(s, MUS[-1]) for s in shards)


def run_sgd(X, epochs):
    ba = BinaryAutoencoder.linear(D, L)
    adapter = BAAdapter(ba)
    Z, _ = init_codes_pca(X, L, rng=0)
    parts = partition_indices(len(X), P, rng=0)
    shards = make_shards(X, X, Z, parts)
    cluster = SimulatedCluster(adapter, shards, epochs=epochs, seed=0)
    for mu in MUS:
        cluster.iteration(mu)
    return cluster.e_q(MUS[-1])


def test_ablation_exact_wstep(benchmark, report):
    X = make_clustered(N, D, n_clusters=6, rng=4)

    def run_all():
        exact = run_exact(X)
        sgd = {e: run_sgd(X, e) for e in (1, 2, 4, 8)}
        return exact, sgd

    exact, sgd = benchmark.pedantic(run_all, rounds=1, iterations=1)

    report()
    report("=" * 72)
    report("Ablation: exact (allreduce) vs SGD W step — final E_Q")
    # Communication: SGD ships the model e+1 times per iteration; the
    # exact W step ships one gradient per full-batch step per submodel.
    rows = [["exact allreduce", round(exact, 1), 1.0,
             f"{SVM_STEPS} allreduces/iter"]]
    for e, val in sgd.items():
        rows.append([f"SGD e={e}", round(val, 1), round(val / exact, 3),
                     f"{e + 1} model rounds/iter"])
    report(ascii_table(["W step", "final E_Q", "ratio to exact",
                        "communication"], rows))
    report("  (paper: 'one to two epochs in the W step make ParMAC very "
           "similar to MAC using an exact step')")

    ratios = [sgd[e] / exact for e in (1, 2, 4, 8)]
    # Monotone convergence towards exact as e grows.
    assert all(a >= b - 0.05 for a, b in zip(ratios, ratios[1:]))
    assert ratios[-1] < 1.35
    # Communication rounds: SGD needs e+1 model laps, exact needs one
    # allreduce per gradient step — 40 vs at most 9 here.
    assert SVM_STEPS > max(e + 1 for e in (1, 2, 4, 8))
