"""Wire cost of the TCP ring: framed bytes and hops, batched vs not.

The paper's speedup model charges each W step M x (e+1) ring traversals
of communication; what that costs in practice depends on how the
messages hit the wire. This bench trains the same BA over real sockets
with per-hop batching on and off and reports, per MAC iteration, the
measured frame count, wire bytes (headers included) and raw payload
bytes — the numbers `IterationStats` now surfaces so the perfmodel's
first-principles predictions (MLSYSIM-style) can be validated against
an actual socket transport.

Batching must cut frames (syscalls, latency opportunities) by roughly
the number of submodels resident per machine while leaving hops — a
protocol invariant — and the trained bits unchanged.
"""

import numpy as np

from repro.autoencoder import BinaryAutoencoder
from repro.autoencoder.adapter import BAAdapter
from repro.autoencoder.init import init_codes_pca
from repro.data.synthetic import make_gist_like
from repro.distributed.backends import get_backend
from repro.distributed.partition import make_shards, partition_indices
from repro.utils.ascii_plot import ascii_table

N, D, L, P = 3_000, 48, 16, 4
MUS = [1e-3, 2e-3, 4e-3]


def run(X, Z, *, batch_hops):
    ba = BinaryAutoencoder.linear(D, L)
    adapter = BAAdapter(ba)
    parts = partition_indices(len(X), P, rng=0)
    shards = make_shards(X, adapter.features(X), Z, parts)
    with get_backend("tcp")(
        epochs=2, batch_size=100, seed=0, shuffle_within=False,
        batch_hops=batch_hops,
    ) as backend:
        backend.setup(adapter, shards)
        results = [backend.run_iteration(mu) for mu in MUS]
    finals = {s.sid: adapter.get_params(s).copy() for s in adapter.submodel_specs()}
    return results, finals


def test_tcp_wire_cost(benchmark, report):
    X = make_gist_like(N, D, n_clusters=6, rng=5)
    Z, _ = init_codes_pca(X, L, subset=1000, rng=0)

    def run_both():
        return {bh: run(X, Z, batch_hops=bh) for bh in (True, False)}

    runs = benchmark.pedantic(run_both, rounds=1, iterations=1)

    report()
    report("=" * 72)
    report(f"TCP ring wire cost per MAC iteration "
           f"(N={N}, D={D}, L={L} -> M={2*L}, P={P}, e=2)")
    rows = []
    for bh, (results, _) in runs.items():
        hops = np.mean([r.hops for r in results])
        frames = np.mean([r.extra["frames"] for r in results])
        wire = np.mean([r.bytes_sent for r in results])
        payload = np.mean([r.extra["payload_bytes"] for r in results])
        rows.append([
            "on" if bh else "off", int(hops), int(frames),
            round(hops / frames, 1), int(wire), int(payload),
            round(wire / payload, 3),
        ])
    report(ascii_table(
        ["batching", "hops", "frames", "msgs/frame", "wire B", "payload B",
         "overhead x"], rows))

    batched, unbatched = runs[True][0], runs[False][0]
    # Hops are fixed by the counter protocol, batching or not.
    assert all(b.hops == u.hops for b, u in zip(batched, unbatched))
    # Unbatched = one frame per hop; batched strictly coalesces.
    assert all(u.extra["frames"] == u.hops for u in unbatched)
    assert all(b.extra["frames"] < b.hops for b in batched)
    # Framing overhead stays small next to the payload.
    assert all(r.bytes_sent < 1.25 * r.extra["payload_bytes"] for r in batched)
    # And the wire format does not change the learned bits.
    for sid, theta in runs[True][1].items():
        assert np.array_equal(theta, runs[False][1][sid])
