"""Wire cost of the TCP ring: framed bytes and hops, batched vs not.

The paper's speedup model charges each W step M x (e+1) ring traversals
of communication; what that costs in practice depends on how the
messages hit the wire. This bench trains the same BA over real sockets
with per-hop batching on and off and reports, per MAC iteration, the
measured frame count, wire bytes (headers included) and raw payload
bytes — the numbers `IterationStats` now surfaces so the perfmodel's
first-principles predictions (MLSYSIM-style) can be validated against
an actual socket transport.

Batching must cut frames (syscalls, latency opportunities) by roughly
the number of submodels resident per machine while leaving hops — a
protocol invariant — and the trained bits unchanged.

The dtype sweep measures the other wire lever: casting submodel
parameters to ``message_dtype`` before framing (paper section 9,
"reduced-precision values ... with little effect on the accuracy").
Per dtype it reports bytes per hop and the E_Q drift against the
full-precision wire, and merges the section into ``BENCH_zstep.json``
next to the stacked-kernel numbers.
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from conftest import write_bench_json  # noqa: E402  (shared bench helper)

from repro.autoencoder import BinaryAutoencoder
from repro.autoencoder.adapter import BAAdapter
from repro.autoencoder.init import init_codes_pca
from repro.data.synthetic import make_gist_like
from repro.distributed.backends import get_backend
from repro.distributed.partition import make_shards, partition_indices
from repro.utils.ascii_plot import ascii_table

N, D, L, P = 3_000, 48, 16, 4
MUS = [1e-3, 2e-3, 4e-3]


def run(X, Z, *, batch_hops, message_dtype=None):
    ba = BinaryAutoencoder.linear(D, L)
    adapter = BAAdapter(ba)
    parts = partition_indices(len(X), P, rng=0)
    shards = make_shards(X, adapter.features(X), Z, parts)
    with get_backend("tcp")(
        epochs=2, batch_size=100, seed=0, shuffle_within=False,
        batch_hops=batch_hops, message_dtype=message_dtype,
    ) as backend:
        backend.setup(adapter, shards)
        results = [backend.run_iteration(mu) for mu in MUS]
    finals = {s.sid: adapter.get_params(s).copy() for s in adapter.submodel_specs()}
    return results, finals


def test_tcp_wire_cost(benchmark, report):
    X = make_gist_like(N, D, n_clusters=6, rng=5)
    Z, _ = init_codes_pca(X, L, subset=1000, rng=0)

    def run_both():
        return {bh: run(X, Z, batch_hops=bh) for bh in (True, False)}

    runs = benchmark.pedantic(run_both, rounds=1, iterations=1)

    report()
    report("=" * 72)
    report(f"TCP ring wire cost per MAC iteration "
           f"(N={N}, D={D}, L={L} -> M={2*L}, P={P}, e=2)")
    rows = []
    for bh, (results, _) in runs.items():
        hops = np.mean([r.hops for r in results])
        frames = np.mean([r.extra["frames"] for r in results])
        wire = np.mean([r.bytes_sent for r in results])
        payload = np.mean([r.extra["payload_bytes"] for r in results])
        rows.append([
            "on" if bh else "off", int(hops), int(frames),
            round(hops / frames, 1), int(wire), int(payload),
            round(wire / payload, 3),
        ])
    report(ascii_table(
        ["batching", "hops", "frames", "msgs/frame", "wire B", "payload B",
         "overhead x"], rows))

    batched, unbatched = runs[True][0], runs[False][0]
    # Hops are fixed by the counter protocol, batching or not.
    assert all(b.hops == u.hops for b, u in zip(batched, unbatched))
    # Unbatched = one frame per hop; batched strictly coalesces.
    assert all(u.extra["frames"] == u.hops for u in unbatched)
    assert all(b.extra["frames"] < b.hops for b in batched)
    # Framing overhead stays small next to the payload.
    assert all(r.bytes_sent < 1.25 * r.extra["payload_bytes"] for r in batched)
    # And the wire format does not change the learned bits.
    for sid, theta in runs[True][1].items():
        assert np.array_equal(theta, runs[False][1][sid])


def test_tcp_wire_dtype_sweep(benchmark, report):
    """Message-dtype sweep: bytes/hop shrink with the wire width while the
    E_Q drift stays small (section 9's reduced-precision claim)."""
    X = make_gist_like(N, D, n_clusters=6, rng=5)
    Z, _ = init_codes_pca(X, L, subset=1000, rng=0)
    dtypes = [None, "float32", "float16"]

    def run_sweep():
        return {dt: run(X, Z, batch_hops=True, message_dtype=dt) for dt in dtypes}

    runs = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    report()
    report("=" * 72)
    report(f"TCP wire dtype sweep (N={N}, D={D}, L={L} -> M={2*L}, P={P}, e=2)")
    base_eq = runs[None][0][-1].e_q
    sweep = {}
    rows = []
    for dt, (results, _) in runs.items():
        last = results[-1]
        bph = np.mean([r.bytes_sent / r.hops for r in results])
        drift = abs(last.e_q - base_eq) / abs(base_eq)
        sweep[dt or "float64"] = {
            "bytes_per_hop": float(bph),
            "e_q": float(last.e_q),
            "e_q_rel_drift": float(drift),
        }
        rows.append([dt or "float64", int(bph), round(last.e_q, 5),
                     f"{drift:.2e}"])
    report(ascii_table(["wire dtype", "bytes/hop", "E_Q", "E_Q drift"], rows))
    write_bench_json("zstep", {"wire_dtypes": sweep}, merge=True)

    # Halving the wire width must actually halve the dominant payload...
    assert sweep["float32"]["bytes_per_hop"] < 0.6 * sweep["float64"]["bytes_per_hop"]
    assert sweep["float16"]["bytes_per_hop"] < 0.6 * sweep["float32"]["bytes_per_hop"]
    # ...while the objective barely moves (float16 gets a looser rein).
    assert sweep["float32"]["e_q_rel_drift"] < 1e-3
    assert sweep["float16"]["e_q_rel_drift"] < 1e-1
