"""Fig. 5 — the 2x4 grid of theoretical speedup curves.

Paper settings: N = 50 000; M in {1..512} (powers of two); e in {1, 8};
t_wr = 1; t_wc in {1, 100, 1000}; t_zr in {1, 100}. Observations the grid
must reproduce (section 5.3):

* near-perfect speedup for P <= M, between M and P otherwise;
* more communication (large t_wc / small t_zr / more epochs) lowers S;
* curves for different M can partly overlap where (M/P)/ceil(M/P) agrees.
"""

import numpy as np

from repro.perfmodel.speedup import SpeedupParams, speedup
from repro.utils.ascii_plot import ascii_table

N = 50_000
MS = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512]
GRID = [  # (e, t_wc, t_zr) rows of the paper's figure
    (1, 1.0, 1.0), (8, 1.0, 1.0),
    (1, 1.0, 100.0), (8, 1.0, 100.0),
    (1, 100.0, 1.0), (8, 100.0, 1.0),
    (1, 1000.0, 100.0), (8, 1000.0, 100.0),
]
P_PROBE = [32, 64, 96, 128]


def compute_grid():
    out = {}
    for e, t_wc, t_zr in GRID:
        for M in MS:
            p = SpeedupParams(N=N, M=M, e=e, t_wr=1.0, t_wc=t_wc, t_zr=t_zr)
            out[(e, t_wc, t_zr, M)] = speedup(np.array(P_PROBE), p)
    return out


def test_fig05_speedup_grid(benchmark, report):
    grid = benchmark(compute_grid)

    report()
    report("=" * 72)
    report("Figure 5: theoretical speedup S(P) grid (N=50000, t_wr=1)")
    for e, t_wc, t_zr in GRID:
        rows = [
            [M] + [round(float(s), 1) for s in grid[(e, t_wc, t_zr, M)]]
            for M in MS
        ]
        report()
        report(ascii_table(
            ["M"] + [f"S({P})" for P in P_PROBE], rows,
            title=f"-- e={e}, t_wc={t_wc:g}, t_zr={t_zr:g} --",
        ))

    # Observation 1: M is the controlling parameter — larger M, larger S.
    for probe in range(len(P_PROBE)):
        col = [grid[(1, 100.0, 1.0, M)][probe] for M in MS]
        assert all(a <= b + 1e-9 for a, b in zip(col, col[1:]))
    # Observation 2: near-perfect speedup when M >= P (cheap comm, heavy Z).
    assert grid[(1, 1.0, 100.0, 512)][0] > 0.95 * 32
    assert grid[(1, 1.0, 100.0, 512)][3] > 0.95 * 128
    # Observation 3: more epochs of communication lower the speedup.
    for M in (32, 128, 512):
        assert grid[(8, 1000.0, 100.0, M)][3] <= grid[(1, 1000.0, 100.0, M)][3] + 1e-9
    # Observation 4: expensive Z step (perfectly parallel) raises speedup.
    for M in (8, 32):
        assert grid[(1, 100.0, 1.0, M)][3] < grid[(1, 1.0, 100.0, M)][3]
