"""Seeded random-number-generator management.

Every stochastic component in the library takes a ``seed`` (or ``rng``)
argument and routes it through :func:`check_random_state`, so that whole
training runs — including distributed ones — are bit-reproducible.
"""

from __future__ import annotations

import numpy as np

__all__ = ["check_random_state", "spawn_rngs", "seed_entropy"]


def check_random_state(seed) -> np.random.Generator:
    """Turn ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed : None, int, numpy.random.Generator or numpy.random.SeedSequence
        ``None`` gives a nondeterministic generator; an ``int`` or
        ``SeedSequence`` seeds a fresh PCG64 generator; a ``Generator`` is
        passed through unchanged (shared mutable state).

    Returns
    -------
    numpy.random.Generator
    """
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if isinstance(seed, np.random.Generator):
        return seed
    raise TypeError(
        f"seed must be None, an int, a SeedSequence or a Generator, got {type(seed)!r}"
    )


def spawn_rngs(seed, n: int) -> list[np.random.Generator]:
    """Create ``n`` independent generators derived from one seed.

    Used to give each simulated machine its own RNG stream so that results
    do not depend on the interleaving of machine execution.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children deterministically from the parent's bit generator.
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def seed_entropy(seed):
    """Entropy for an *independent* stream derived from ``seed``.

    Returns a value acceptable as ``numpy.random.SeedSequence(entropy=...)``
    without consuming any random stream: an int/SeedSequence passes its
    entropy through; a ``Generator`` is reduced to a stable integer digest
    of its current bit-generator state (read-only — no values are drawn, so
    the generator's own stream is untouched); ``None`` stays ``None``
    (the caller gets a nondeterministic stream).

    Used to give side channels — e.g. the per-join RNG streams of a
    cluster — their own seed lineage, so drawing from them can never
    perturb the primary (route/machine) streams.
    """
    if seed is None:
        return None
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    if isinstance(seed, np.random.SeedSequence):
        return seed.entropy
    if isinstance(seed, np.random.Generator):

        def ints(obj):
            if isinstance(obj, (bool,)):
                return
            if isinstance(obj, (int, np.integer)):
                yield int(obj)
            elif isinstance(obj, dict):
                for v in obj.values():
                    yield from ints(v)
            elif isinstance(obj, (list, tuple)):
                for v in obj:
                    yield from ints(v)

        digest = 0
        for v in ints(seed.bit_generator.state):
            digest = (digest * 1000003 + (v & (2**64 - 1))) % (2**128)
        return digest
    raise TypeError(
        f"seed must be None, an int, a SeedSequence or a Generator, got {type(seed)!r}"
    )
