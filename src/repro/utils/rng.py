"""Seeded random-number-generator management.

Every stochastic component in the library takes a ``seed`` (or ``rng``)
argument and routes it through :func:`check_random_state`, so that whole
training runs — including distributed ones — are bit-reproducible.
"""

from __future__ import annotations

import numpy as np

__all__ = ["check_random_state", "spawn_rngs"]


def check_random_state(seed) -> np.random.Generator:
    """Turn ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed : None, int, numpy.random.Generator or numpy.random.SeedSequence
        ``None`` gives a nondeterministic generator; an ``int`` or
        ``SeedSequence`` seeds a fresh PCG64 generator; a ``Generator`` is
        passed through unchanged (shared mutable state).

    Returns
    -------
    numpy.random.Generator
    """
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if isinstance(seed, np.random.Generator):
        return seed
    raise TypeError(
        f"seed must be None, an int, a SeedSequence or a Generator, got {type(seed)!r}"
    )


def spawn_rngs(seed, n: int) -> list[np.random.Generator]:
    """Create ``n`` independent generators derived from one seed.

    Used to give each simulated machine its own RNG stream so that results
    do not depend on the interleaving of machine execution.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children deterministically from the parent's bit generator.
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
