"""Small shared utilities: RNG handling, argument validation, parameter packing."""

from repro.utils.rng import check_random_state, spawn_rngs
from repro.utils.validation import (
    check_array,
    check_binary_codes,
    check_positive,
    check_positive_int,
)

__all__ = [
    "check_random_state",
    "spawn_rngs",
    "check_array",
    "check_binary_codes",
    "check_positive",
    "check_positive_int",
]
