"""Argument validation helpers shared across the library."""

from __future__ import annotations

import numbers

import numpy as np

__all__ = [
    "check_array",
    "check_binary_codes",
    "check_float_dtype",
    "check_positive",
    "check_positive_int",
]


def check_float_dtype(dtype, *, name: str = "dtype") -> np.dtype:
    """Validate a floating-point dtype spec and return it as ``np.dtype``.

    ``None`` means "the library default" and resolves to float64. This is
    the single gate every ``compute_dtype`` / ``message_dtype`` knob goes
    through, so an integer or object dtype fails at configuration time
    with one consistent message instead of deep inside a GEMM.
    """
    if dtype is None:
        return np.dtype(np.float64)
    dtype = np.dtype(dtype)
    if dtype.kind != "f":
        raise ValueError(f"{name} must be a float dtype, got {dtype}")
    return dtype


def check_array(X, *, name: str = "X", ndim: int = 2, dtype=np.float64) -> np.ndarray:
    """Coerce ``X`` to a contiguous ndarray of the given rank and dtype.

    Raises ``ValueError`` on wrong rank, NaN or Inf entries.
    """
    X = np.ascontiguousarray(X, dtype=dtype)
    if X.ndim != ndim:
        raise ValueError(f"{name} must be {ndim}-dimensional, got shape {X.shape}")
    if X.size and not np.isfinite(X).all():
        raise ValueError(f"{name} contains NaN or Inf values")
    return X


def check_binary_codes(Z, *, name: str = "Z") -> np.ndarray:
    """Validate a binary code matrix with entries in {0, 1}.

    Returns a ``uint8`` copy with shape ``(n_points, n_bits)``.
    """
    Z = np.asarray(Z)
    if Z.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got shape {Z.shape}")
    vals = np.unique(Z)
    if not np.isin(vals, (0, 1)).all():
        raise ValueError(f"{name} must contain only 0/1 entries, found values {vals[:5]}")
    return Z.astype(np.uint8, copy=True)


def check_positive(x, *, name: str) -> float:
    """Validate a strictly positive real scalar and return it as float."""
    if not isinstance(x, numbers.Real) or isinstance(x, bool):
        raise TypeError(f"{name} must be a real number, got {type(x)!r}")
    x = float(x)
    if not np.isfinite(x) or x <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {x}")
    return x


def check_positive_int(x, *, name: str) -> int:
    """Validate a strictly positive integer and return it as int."""
    if isinstance(x, bool) or not isinstance(x, numbers.Integral):
        raise TypeError(f"{name} must be an integer, got {type(x)!r}")
    x = int(x)
    if x <= 0:
        raise ValueError(f"{name} must be >= 1, got {x}")
    return x
