"""Minimal ASCII line plots for benchmark output.

The benchmark harness regenerates the paper's figures as data series; these
helpers render them as terminal plots so the *shape* (near-perfect speedup
up to M, saturation, crossovers) is visible directly in ``bench_output.txt``
without any plotting dependency.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ascii_plot", "ascii_table"]


def ascii_plot(
    series: dict,
    *,
    width: int = 72,
    height: int = 20,
    xlabel: str = "",
    ylabel: str = "",
    logx: bool = False,
    title: str = "",
) -> str:
    """Render ``{label: (x, y)}`` series as a character grid.

    Each series gets a distinct marker; axes are linearly (or log-x)
    scaled to the joint data range.
    """
    if not series:
        raise ValueError("no series to plot")
    markers = "*o+x#@%&"
    xs_all = np.concatenate([np.asarray(x, dtype=float) for x, _ in series.values()])
    ys_all = np.concatenate([np.asarray(y, dtype=float) for _, y in series.values()])
    if logx:
        if (xs_all <= 0).any():
            raise ValueError("logx requires positive x values")
        xs_all = np.log10(xs_all)
    x_lo, x_hi = float(xs_all.min()), float(xs_all.max())
    y_lo, y_hi = float(ys_all.min()), float(ys_all.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for (label, (x, y)), marker in zip(series.items(), markers):
        x = np.asarray(x, dtype=float)
        if logx:
            x = np.log10(x)
        y = np.asarray(y, dtype=float)
        cols = np.clip(((x - x_lo) / (x_hi - x_lo) * (width - 1)).round(), 0, width - 1)
        rows = np.clip(((y - y_lo) / (y_hi - y_lo) * (height - 1)).round(), 0, height - 1)
        for c, r in zip(cols.astype(int), rows.astype(int)):
            grid[height - 1 - r][c] = marker

    lines = []
    if title:
        lines.append(title)
    y_top = f"{y_hi:.3g}"
    y_bot = f"{y_lo:.3g}"
    pad = max(len(y_top), len(y_bot))
    for i, row in enumerate(grid):
        label = y_top if i == 0 else (y_bot if i == height - 1 else "")
        lines.append(f"{label:>{pad}} |{''.join(row)}|")
    x_lo_lab = f"{10**x_lo:.3g}" if logx else f"{x_lo:.3g}"
    x_hi_lab = f"{10**x_hi:.3g}" if logx else f"{x_hi:.3g}"
    axis = f"{'':>{pad}} +{'-' * width}+"
    lines.append(axis)
    xcaption = f"{x_lo_lab}{xlabel:^{max(0, width - len(x_lo_lab) - len(x_hi_lab))}}{x_hi_lab}"
    lines.append(f"{'':>{pad}}  {xcaption}")
    legend = "   ".join(
        f"{m}={label}" for (label, _), m in zip(series.items(), markers)
    )
    lines.append(f"{'':>{pad}}  [{legend}]" + (f"  y: {ylabel}" if ylabel else ""))
    return "\n".join(lines)


def ascii_table(headers: list, rows: list, *, title: str = "") -> str:
    """Fixed-width table with one header row."""
    cells = [[str(h) for h in headers]] + [
        [f"{v:.4g}" if isinstance(v, float) else str(v) for v in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(c.rjust(w) for c, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
