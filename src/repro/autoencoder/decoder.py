"""BA linear decoder ``f(z) = B z + c``.

In the W step the decoder is "D independent problems ... each a linear
least-squares problem" fitting X from Z (paper section 3.1). Serial MAC
solves it exactly; ParMAC updates it with SGD as decoder submodels travel
the ring. Rows of B (output dimensions) can be grouped into submodels of
encoder-comparable size (section 5.4).
"""

from __future__ import annotations

import numpy as np

from repro.optim.linreg import LinearRegression
from repro.optim.schedules import InverseSchedule
from repro.optim.sgd import SGDState
from repro.utils.validation import check_float_dtype, check_positive_int

__all__ = ["LinearDecoder"]


class LinearDecoder:
    """Linear map from L-bit codes back to the D-dimensional input space.

    Attributes
    ----------
    B : ndarray (n_outputs, n_bits)
    c : ndarray (n_outputs,)
    """

    def __init__(self, n_bits: int, n_outputs: int, *, schedule=None,
                 dtype=np.float64):
        self.n_bits = check_positive_int(n_bits, name="n_bits")
        self.n_outputs = check_positive_int(n_outputs, name="n_outputs")
        self.schedule = schedule if schedule is not None else InverseSchedule(eta0=0.05, t0=50.0)
        self.dtype = check_float_dtype(dtype)
        self.B = np.zeros((self.n_outputs, self.n_bits), dtype=self.dtype)
        self.c = np.zeros(self.n_outputs, dtype=self.dtype)

    # ------------------------------------------------------------------ API
    def decode(self, Z: np.ndarray) -> np.ndarray:
        """Reconstructions ``Z B^T + c`` from float or uint8 codes."""
        return np.asarray(Z, dtype=self.dtype) @ self.B.T + self.c

    # -------------------------------------------------------- exact solve
    def fit_lstsq(self, Z: np.ndarray, X: np.ndarray) -> "LinearDecoder":
        """Exact least-squares fit of (B, c) to reconstruct X from Z."""
        reg = LinearRegression(self.n_bits, self.n_outputs, dtype=self.dtype)
        reg.fit_lstsq(np.asarray(Z, dtype=self.dtype), X)
        self.B = reg.W
        self.c = reg.c
        return self

    # ------------------------------------------------------------ training
    def fit_rows_sgd(
        self,
        rows: np.ndarray,
        Z: np.ndarray,
        X_rows: np.ndarray,
        state: SGDState,
        *,
        batch_size: int = 32,
        shuffle: bool = True,
        rng=None,
    ) -> SGDState:
        """One SGD pass updating a group of decoder rows on one shard.

        ``rows`` selects output dimensions; ``X_rows`` is the matching
        (n, len(rows)) slice of the shard inputs. This is the travelling-
        submodel work unit for a decoder group.
        """
        rows = np.asarray(rows, dtype=np.int64)
        reg = LinearRegression(self.n_bits, len(rows), schedule=self.schedule,
                               dtype=self.dtype)
        reg.W = self.B[rows].copy()
        reg.c = self.c[rows].copy()
        state = reg.partial_fit(
            np.asarray(Z, dtype=self.dtype),
            X_rows,
            state,
            batch_size=batch_size,
            shuffle=shuffle,
            rng=rng,
        )
        self.B[rows] = reg.W
        self.c[rows] = reg.c
        return state

    # -------------------------------------------------------- (de)serialise
    def row_params(self, rows: np.ndarray) -> np.ndarray:
        """Flat parameters ``[B[rows].ravel(), c[rows]]`` of a row group."""
        rows = np.asarray(rows, dtype=np.int64)
        return np.concatenate([self.B[rows].ravel(), self.c[rows]])

    def set_row_params(self, rows: np.ndarray, theta: np.ndarray) -> None:
        rows = np.asarray(rows, dtype=np.int64)
        theta = np.asarray(theta, dtype=self.dtype).ravel()
        k = len(rows) * self.n_bits
        if theta.shape != (k + len(rows),):
            raise ValueError(f"expected {k + len(rows)} params, got {theta.shape}")
        self.B[rows] = theta[:k].reshape(len(rows), self.n_bits)
        self.c[rows] = theta[k:]

    def copy(self) -> "LinearDecoder":
        new = LinearDecoder(self.n_bits, self.n_outputs, schedule=self.schedule,
                            dtype=self.dtype)
        new.B = self.B.copy()
        new.c = self.c.copy()
        return new
