"""Binary autoencoders optimised with the method of auxiliary coordinates.

The BA (paper section 3.1) maps a real vector ``x`` to an L-bit code with a
step encoder ``h(x) = step(A x + a)`` and reconstructs it with a linear
decoder ``f(z) = B z + c``. The nested objective ``E_BA`` is NP-complete to
optimise directly (zero/undefined gradients through the step), which is why
MAC introduces per-point binary codes ``Z`` and the quadratic penalty
``E_Q``. This package provides the model pieces and the per-point Z-step
solvers; the training drivers live in :mod:`repro.core`.
"""

from repro.autoencoder.encoder import LinearEncoder, RBFEncoder, gaussian_kernel_features
from repro.autoencoder.decoder import LinearDecoder
from repro.autoencoder.binary_autoencoder import BinaryAutoencoder
from repro.autoencoder.zstep import (
    zstep,
    zstep_alternate,
    zstep_enumerate,
    zstep_objective,
    zstep_relaxed,
)
from repro.autoencoder.init import init_codes_pca, init_codes_random

__all__ = [
    "LinearEncoder",
    "RBFEncoder",
    "gaussian_kernel_features",
    "LinearDecoder",
    "BinaryAutoencoder",
    "zstep",
    "zstep_enumerate",
    "zstep_alternate",
    "zstep_relaxed",
    "zstep_objective",
    "init_codes_pca",
    "init_codes_random",
]
