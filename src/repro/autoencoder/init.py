"""Initialisation of the auxiliary binary codes Z.

The paper initialises "the binary codes from truncated PCA ran on a subset
of the training set (small enough that it fits in one machine)"
(section 8.1). A random initialisation is provided for ablations.
"""

from __future__ import annotations

import numpy as np

from repro.retrieval.baselines import TruncatedPCAHash
from repro.utils.rng import check_random_state
from repro.utils.validation import check_positive_int

__all__ = ["init_codes_pca", "init_codes_random"]


def init_codes_pca(
    X: np.ndarray, n_bits: int, *, subset: int | None = None, rng=None
) -> tuple[np.ndarray, TruncatedPCAHash]:
    """Truncated-PCA code initialisation.

    Fits tPCA (optionally on a random subset) and returns the binary codes
    for all of ``X`` plus the fitted hash (used as the tPCA baseline in the
    recall figures).
    """
    hash_ = TruncatedPCAHash(n_bits).fit(X, subset=subset, rng=rng)
    return hash_.encode(X), hash_


def init_codes_random(n: int, n_bits: int, *, rng=None) -> np.ndarray:
    """Uniformly random binary codes of shape (n, n_bits)."""
    n = check_positive_int(n, name="n")
    n_bits = check_positive_int(n_bits, name="n_bits")
    rng = check_random_state(rng)
    return rng.integers(0, 2, size=(n, n_bits), dtype=np.uint8)
