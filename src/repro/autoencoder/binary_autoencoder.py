"""The binary autoencoder model: encoder + decoder + objectives.

Holds the model state and the two objective functions of paper section 3.1:

* ``E_BA(h, f) = sum_n ||x_n - f(h(x_n))||^2``  (eq. 1, the nested error)
* ``E_Q(h, f, Z; mu) = sum_n ||x_n - f(z_n)||^2 + mu ||z_n - h(x_n)||^2``
  (eq. 3, the quadratic-penalty surrogate MAC actually minimises)

Training drivers live in :mod:`repro.core.mac` (serial MAC) and
:mod:`repro.core.parmac` (distributed ParMAC).
"""

from __future__ import annotations

import numpy as np

from repro.autoencoder.decoder import LinearDecoder
from repro.autoencoder.encoder import LinearEncoder, RBFEncoder
from repro.utils.validation import check_positive_int

__all__ = ["BinaryAutoencoder"]


class BinaryAutoencoder:
    """Binary autoencoder ``x -> h(x) -> f(h(x))``.

    Parameters
    ----------
    encoder : LinearEncoder or RBFEncoder
    decoder : LinearDecoder
        Must agree with the encoder on the number of bits.
    """

    def __init__(self, encoder: LinearEncoder, decoder: LinearDecoder):
        if encoder.n_bits != decoder.n_bits:
            raise ValueError(
                f"encoder has {encoder.n_bits} bits but decoder expects {decoder.n_bits}"
            )
        if encoder.dtype != decoder.dtype:
            raise ValueError(
                f"encoder computes in {encoder.dtype} but decoder in "
                f"{decoder.dtype}; both halves must share one compute dtype"
            )
        self.encoder = encoder
        self.decoder = decoder

    # ------------------------------------------------------------ factory
    @classmethod
    def linear(cls, n_features: int, n_bits: int, *, lam: float = 1e-4,
               dtype=np.float64) -> "BinaryAutoencoder":
        """Linear-encoder BA for D-dimensional inputs and L-bit codes.

        ``dtype`` sets the end-to-end compute precision (paper section 9).
        """
        n_features = check_positive_int(n_features, name="n_features")
        n_bits = check_positive_int(n_bits, name="n_bits")
        return cls(
            LinearEncoder(n_features, n_bits, lam=lam, dtype=dtype),
            LinearDecoder(n_bits, n_features, dtype=dtype),
        )

    @classmethod
    def rbf(
        cls,
        X: np.ndarray,
        n_centres: int,
        n_bits: int,
        *,
        sigma=None,
        lam: float = 1e-4,
        rng=None,
        dtype=np.float64,
    ) -> "BinaryAutoencoder":
        """RBF-encoder BA with centres sampled from ``X`` (section 8.4).

        The decoder still reconstructs the raw input space.
        """
        enc = RBFEncoder.from_data(X, n_centres, n_bits, sigma=sigma, lam=lam,
                                   rng=rng, dtype=dtype)
        dec = LinearDecoder(n_bits, np.asarray(X).shape[1], dtype=dtype)
        return cls(enc, dec)

    # ------------------------------------------------------------------ API
    @property
    def n_bits(self) -> int:
        return self.encoder.n_bits

    @property
    def compute_dtype(self) -> np.dtype:
        """The model's end-to-end compute precision."""
        return self.encoder.dtype

    def encode(self, X: np.ndarray) -> np.ndarray:
        """L-bit binary codes, uint8 (n, L)."""
        return self.encoder.encode(X)

    def decode(self, Z: np.ndarray) -> np.ndarray:
        """Reconstructions from codes."""
        return self.decoder.decode(Z)

    def reconstruct(self, X: np.ndarray) -> np.ndarray:
        """Round trip ``f(h(x))``."""
        return self.decode(self.encode(X))

    # ------------------------------------------------------------ objectives
    def e_ba(self, X: np.ndarray) -> float:
        """Nested reconstruction error ``E_BA`` (eq. 1), summed over points."""
        X = np.asarray(X, dtype=self.compute_dtype)
        R = X - self.reconstruct(X)
        return float((R * R).sum())

    def e_q(self, X: np.ndarray, Z: np.ndarray, mu: float) -> float:
        """Quadratic-penalty objective ``E_Q`` (eq. 3), summed over points."""
        if mu < 0:
            raise ValueError(f"mu must be >= 0, got {mu}")
        cd = self.compute_dtype
        X = np.asarray(X, dtype=cd)
        Zf = np.asarray(Z, dtype=cd)
        R = X - self.decode(Zf)
        dzh = Zf - self.encode(X).astype(cd)
        return float((R * R).sum() + mu * (dzh * dzh).sum())

    def constraint_violation(self, X: np.ndarray, Z: np.ndarray) -> int:
        """Number of bits where ``Z != h(X)`` — 0 means the penalty-method
        constraints are satisfied and MAC stops."""
        return int((np.asarray(Z) != self.encode(X)).sum())

    def copy(self) -> "BinaryAutoencoder":
        return BinaryAutoencoder(self.encoder.copy(), self.decoder.copy())
