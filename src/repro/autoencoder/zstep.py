"""Per-point Z-step solvers for the binary autoencoder.

The Z step solves, independently for every data point (paper section 3.1):

    min_{z in {0,1}^L}  ||x - B z - c||^2 + mu ||z - h(x)||^2

a binary proximal operator. Expanding with binary identities
(``z_l^2 = z_l``) the objective is a binary quadratic:

    E(z) = z^T (B^T B) z - 2 z . (B^T (x - c) + mu h) + mu sum(z) + const(x)

Three solvers, as in the paper:

* **enumeration** — exact for small L by scoring all 2^L codes (used for
  SIFT-10K / SIFT-1M with L=16);
* **alternating** — coordinate minimisation over bits, each sweep never
  increasing the objective, converging to a local minimum;
* **relaxed** — the [0,1]-box relaxation solved in closed form and
  truncated at 1/2, used to initialise the alternating solver.

All solvers are vectorised across points: the per-point problems share
``B^T B`` so the quadratic term is computed once.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_binary_codes


def _solver_dtype(B) -> np.dtype:
    """Compute precision of a Z-step solve: the decoder matrix's float
    dtype (float64 when ``B`` is not floating) — the solvers run entirely
    in the model's compute precision (paper section 9)."""
    dtype = np.asarray(B).dtype
    return dtype if dtype.kind == "f" else np.dtype(np.float64)

__all__ = [
    "zstep_objective",
    "zstep_enumerate",
    "zstep_alternate",
    "zstep_relaxed",
    "zstep",
]

# Enumeration scores all 2^L codes; beyond this many bits we refuse and the
# dispatcher switches to the alternating solver (the paper does the same).
MAX_ENUM_BITS = 16


def zstep_objective(
    X: np.ndarray, B: np.ndarray, c: np.ndarray, H: np.ndarray, mu: float, Z: np.ndarray
) -> np.ndarray:
    """Per-point Z-step objective values (n,) for codes ``Z``."""
    cd = _solver_dtype(B)
    Zf = np.asarray(Z, dtype=cd)
    Hf = np.asarray(H, dtype=cd)
    R = np.asarray(X, dtype=cd) - Zf @ B.T - c
    dzh = Zf - Hf
    return (R * R).sum(axis=1) + mu * (dzh * dzh).sum(axis=1)


def _all_codes(L: int, dtype=np.float64) -> np.ndarray:
    """All 2^L binary codes as a (2^L, L) float array (bit l = column l)."""
    ints = np.arange(2**L, dtype=np.uint32)
    return ((ints[:, None] >> np.arange(L, dtype=np.uint32)[None, :]) & 1).astype(
        dtype
    )


def zstep_enumerate(
    X: np.ndarray,
    B: np.ndarray,
    c: np.ndarray,
    H: np.ndarray,
    mu: float,
    *,
    chunk: int = 2048,
) -> np.ndarray:
    """Exact Z step by enumerating all 2^L codes.

    Memory is bounded by ``chunk * 2^L`` scores at a time. Raises for
    ``L > MAX_ENUM_BITS``.
    """
    L = B.shape[1]
    if L > MAX_ENUM_BITS:
        raise ValueError(
            f"enumeration over 2^{L} codes refused (max {MAX_ENUM_BITS} bits); "
            "use zstep_alternate"
        )
    if mu < 0:
        raise ValueError(f"mu must be >= 0, got {mu}")
    cd = _solver_dtype(B)
    X = np.asarray(X, dtype=cd)
    Hf = np.asarray(H, dtype=cd)
    C = _all_codes(L, cd)  # (2^L, L)
    # Per-code quadratic term: z^T BtB z + mu * sum(z); shared by all points.
    BtB = B.T @ B
    quad = np.einsum("kl,lm,km->k", C, BtB, C) + mu * C.sum(axis=1)
    # Per-point linear term coefficient.
    Lin = (X - c) @ B + mu * Hf  # (n, L)
    n = len(X)
    Z = np.empty((n, L), dtype=np.uint8)
    for start in range(0, n, chunk):
        scores = quad[None, :] - 2.0 * Lin[start : start + chunk] @ C.T
        best = np.argmin(scores, axis=1)
        Z[start : start + chunk] = C[best].astype(np.uint8)
    return Z


def zstep_relaxed(
    X: np.ndarray, B: np.ndarray, c: np.ndarray, H: np.ndarray, mu: float
) -> np.ndarray:
    """Truncated solution of the [0,1]-relaxed Z step.

    The relaxed problem is unconstrained quadratic with solution
    ``(B^T B + mu I) z = B^T (x - c) + mu h``; we clip to [0,1] and
    threshold at 1/2 (ties -> 1, matching the step convention).
    """
    if mu < 0:
        raise ValueError(f"mu must be >= 0, got {mu}")
    cd = _solver_dtype(B)
    X = np.asarray(X, dtype=cd)
    Hf = np.asarray(H, dtype=cd)
    L = B.shape[1]
    G = B.T @ B + mu * np.eye(L, dtype=cd)
    Lin = (X - c) @ B + mu * Hf  # (n, L)
    # Guard the mu = 0, rank-deficient-decoder corner with a pseudo-inverse.
    try:
        Zrel = np.linalg.solve(G, Lin.T).T
    except np.linalg.LinAlgError:
        Zrel = (np.linalg.pinv(G) @ Lin.T).T
    return (np.clip(Zrel, 0.0, 1.0) >= 0.5).astype(np.uint8)


def zstep_alternate(
    X: np.ndarray,
    B: np.ndarray,
    c: np.ndarray,
    H: np.ndarray,
    mu: float,
    Z0: np.ndarray | None = None,
    *,
    max_sweeps: int = 20,
) -> np.ndarray:
    """Alternating optimisation over bits, initialised from ``Z0``.

    For bit ``l`` with the other bits fixed, setting ``z_l = 1`` rather than
    0 changes the objective by

        delta_l = ||b_l||^2 - 2 b_l . r_base + mu (1 - 2 h_l)

    where ``r_base = x - c - sum_{m != l} z_m b_m`` is the residual with bit
    l removed; we set ``z_l = 1`` iff ``delta_l <= 0`` (tie -> 1). Each bit
    update is exact given the others, so sweeps never increase the
    objective; we stop when a full sweep changes nothing.

    ``Z0`` defaults to the truncated relaxed solution (the paper's
    initialisation).
    """
    if max_sweeps < 1:
        raise ValueError(f"max_sweeps must be >= 1, got {max_sweeps}")
    cd = _solver_dtype(B)
    X = np.asarray(X, dtype=cd)
    Hf = np.asarray(H, dtype=cd)
    if Z0 is None:
        Z0 = zstep_relaxed(X, B, c, H, mu)
    Z = check_binary_codes(Z0).astype(cd)
    L = B.shape[1]
    b_norms = (B * B).sum(axis=0)  # ||b_l||^2 for each column l
    R = X - Z @ B.T - c  # current residual x - f(z)
    for _ in range(max_sweeps):
        changed = False
        for l in range(L):
            b_l = B[:, l]
            # Residual with bit l's contribution removed.
            r_base = R + np.outer(Z[:, l], b_l)
            delta = b_norms[l] - 2.0 * r_base @ b_l + mu * (1.0 - 2.0 * Hf[:, l])
            new_zl = (delta <= 0.0).astype(cd)
            diff = new_zl - Z[:, l]
            if np.any(diff != 0.0):
                changed = True
                R -= np.outer(diff, b_l)
                Z[:, l] = new_zl
        if not changed:
            break
    return Z.astype(np.uint8)


def zstep(
    X: np.ndarray,
    B: np.ndarray,
    c: np.ndarray,
    H: np.ndarray,
    mu: float,
    *,
    method: str = "auto",
    Z0: np.ndarray | None = None,
    max_enum_bits: int = 12,
    max_sweeps: int = 20,
) -> np.ndarray:
    """Dispatch to a Z-step solver.

    ``method='auto'`` enumerates exactly when ``L <= max_enum_bits`` and
    otherwise runs the alternating solver from the truncated relaxed
    initialisation — the paper's policy ("enumeration for SIFT-10K and
    SIFT-1M, and alternating optimisation ... otherwise").
    """
    if method == "auto":
        method = "enumerate" if B.shape[1] <= max_enum_bits else "alternate"
    if method == "enumerate":
        return zstep_enumerate(X, B, c, H, mu)
    if method == "alternate":
        return zstep_alternate(X, B, c, H, mu, Z0, max_sweeps=max_sweeps)
    if method == "relaxed":
        return zstep_relaxed(X, B, c, H, mu)
    raise ValueError(f"unknown Z-step method {method!r}")
