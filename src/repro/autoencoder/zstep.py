"""Per-point Z-step solvers for the binary autoencoder.

The Z step solves, independently for every data point (paper section 3.1):

    min_{z in {0,1}^L}  ||x - B z - c||^2 + mu ||z - h(x)||^2

a binary proximal operator. Expanding with binary identities
(``z_l^2 = z_l``) the objective is a binary quadratic:

    E(z) = z^T (B^T B) z - 2 z . (B^T (x - c) + mu h) + mu sum(z) + const(x)

Three solvers, as in the paper:

* **enumeration** — exact for small L by scoring all 2^L codes (used for
  SIFT-10K / SIFT-1M with L=16);
* **alternating** — coordinate minimisation over bits, each sweep never
  increasing the objective, converging to a local minimum;
* **relaxed** — the [0,1]-box relaxation solved in closed form and
  truncated at 1/2, used to initialise the alternating solver.

All solvers are vectorised across points: the per-point problems share
``B^T B`` so the quadratic term is computed once.

Every solver ships two implementations selected by ``impl``:

* ``"stacked"`` (default) — loop-free linear algebra: the alternating
  solver maintains ``G = R B`` (an n x L stack of per-bit linear terms)
  with one rank-1 update per flipped bit instead of materialising per-bit
  n x D residual copies, and enumeration reuses the code table and the
  per-code quadratic across calls (they depend only on ``(L, B, dtype)``,
  which is constant across the minibatch chunks and shards of one
  iteration).
* ``"legacy"`` — the original residual-sweeping formulation, kept as the
  reference the parity tests compare against.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_binary_codes


def _solver_dtype(B) -> np.dtype:
    """Compute precision of a Z-step solve: the decoder matrix's float
    dtype (float64 when ``B`` is not floating) — the solvers run entirely
    in the model's compute precision (paper section 9)."""
    dtype = np.asarray(B).dtype
    return dtype if dtype.kind == "f" else np.dtype(np.float64)

__all__ = [
    "zstep_objective",
    "zstep_enumerate",
    "zstep_alternate",
    "zstep_relaxed",
    "zstep",
]

# Enumeration scores all 2^L codes; beyond this many bits we refuse and the
# dispatcher switches to the alternating solver (the paper does the same).
MAX_ENUM_BITS = 16

# Shared-work caches. The code table depends only on (L, dtype); the Gram
# matrix and the per-code quadratic depend on the decoder content, which is
# frozen while a shard's Z solves sweep its minibatch chunks — so one
# iteration computes each entry once and every subsequent call reuses it
# bitwise-identically. Keyed by value (``tobytes``), never by object id, so
# a retrained decoder can never hit a stale entry.
_CODES_CACHE: dict[tuple[int, str], np.ndarray] = {}
_GRAM_CACHE: dict[tuple, np.ndarray] = {}
_QUAD_CACHE: dict[tuple, np.ndarray] = {}
_CSUM_CACHE: dict[tuple[int, str], np.ndarray] = {}
_CACHE_MAX = 8


def _cache_put(cache: dict, key, value: np.ndarray) -> np.ndarray:
    value.setflags(write=False)
    if len(cache) >= _CACHE_MAX:
        cache.pop(next(iter(cache)))
    cache[key] = value
    return value


def _gram(B: np.ndarray) -> np.ndarray:
    """Cached ``B^T B`` (read-only), keyed by the decoder's content."""
    B = np.asarray(B)
    key = (B.shape, B.dtype.str, B.tobytes())
    hit = _GRAM_CACHE.get(key)
    if hit is None:
        hit = _cache_put(_GRAM_CACHE, key, B.T @ B)
    return hit


def _code_quad(B: np.ndarray, C: np.ndarray) -> np.ndarray:
    """Cached per-code quadratic ``z^T (B^T B) z`` for all codes in ``C``."""
    B = np.asarray(B)
    key = (B.shape, B.dtype.str, C.dtype.str, B.tobytes())
    hit = _QUAD_CACHE.get(key)
    if hit is None:
        # One GEMM + an elementwise reduce beats the einsum contraction the
        # legacy path uses, and the result is reused across chunks/calls.
        hit = _cache_put(_QUAD_CACHE, key, ((C @ _gram(B)) * C).sum(axis=1))
    return hit


def _code_sums(L: int, dtype) -> np.ndarray:
    """Cached ``sum(z)`` per code (the mu-linear term's code part)."""
    key = (int(L), np.dtype(dtype).str)
    hit = _CSUM_CACHE.get(key)
    if hit is None:
        hit = _cache_put(_CSUM_CACHE, key, _all_codes(L, dtype).sum(axis=1))
    return hit


def zstep_objective(
    X: np.ndarray, B: np.ndarray, c: np.ndarray, H: np.ndarray, mu: float, Z: np.ndarray
) -> np.ndarray:
    """Per-point Z-step objective values (n,) for codes ``Z``."""
    cd = _solver_dtype(B)
    Zf = np.asarray(Z, dtype=cd)
    Hf = np.asarray(H, dtype=cd)
    R = np.asarray(X, dtype=cd) - Zf @ B.T - c
    dzh = Zf - Hf
    return (R * R).sum(axis=1) + mu * (dzh * dzh).sum(axis=1)


def _all_codes(L: int, dtype=np.float64) -> np.ndarray:
    """All 2^L binary codes as a (2^L, L) float array (bit l = column l).

    Cached (read-only) per ``(L, dtype)``: the table is pure structure, so
    reuse is trivially bit-identical and saves the dominant allocation of
    repeated enumeration calls.
    """
    key = (int(L), np.dtype(dtype).str)
    C = _CODES_CACHE.get(key)
    if C is None:
        ints = np.arange(2**L, dtype=np.uint32)
        C = ((ints[:, None] >> np.arange(L, dtype=np.uint32)[None, :]) & 1).astype(
            dtype
        )
        C = _cache_put(_CODES_CACHE, key, C)
    return C


def zstep_enumerate(
    X: np.ndarray,
    B: np.ndarray,
    c: np.ndarray,
    H: np.ndarray,
    mu: float,
    *,
    chunk: int = 2048,
    impl: str = "stacked",
) -> np.ndarray:
    """Exact Z step by enumerating all 2^L codes.

    Memory is bounded by ``chunk * 2^L`` scores at a time. Raises for
    ``L > MAX_ENUM_BITS``. ``impl="stacked"`` reuses the cached code table
    and per-code quadratic; ``impl="legacy"`` recomputes them per call.
    """
    L = B.shape[1]
    if L > MAX_ENUM_BITS:
        raise ValueError(
            f"enumeration over 2^{L} codes refused (max {MAX_ENUM_BITS} bits); "
            "use zstep_alternate"
        )
    if mu < 0:
        raise ValueError(f"mu must be >= 0, got {mu}")
    cd = _solver_dtype(B)
    X = np.asarray(X, dtype=cd)
    Hf = np.asarray(H, dtype=cd)
    C = _all_codes(L, cd)  # (2^L, L)
    # Per-code quadratic term: z^T BtB z + mu * sum(z); shared by all points.
    if impl == "legacy":
        BtB = B.T @ B
        quad = np.einsum("kl,lm,km->k", C, BtB, C) + mu * C.sum(axis=1)
    elif impl == "stacked":
        quad = _code_quad(B, C) + mu * _code_sums(L, cd)
    else:
        raise ValueError(f"unknown impl {impl!r}")
    # Per-point linear term coefficient.
    Lin = (X - c) @ B + mu * Hf  # (n, L)
    n = len(X)
    Z = np.empty((n, L), dtype=np.uint8)
    for start in range(0, n, chunk):
        scores = quad[None, :] - 2.0 * Lin[start : start + chunk] @ C.T
        best = np.argmin(scores, axis=1)
        Z[start : start + chunk] = C[best].astype(np.uint8)
    return Z


def zstep_relaxed(
    X: np.ndarray,
    B: np.ndarray,
    c: np.ndarray,
    H: np.ndarray,
    mu: float,
    *,
    impl: str = "stacked",
) -> np.ndarray:
    """Truncated solution of the [0,1]-relaxed Z step.

    The relaxed problem is unconstrained quadratic with solution
    ``(B^T B + mu I) z = B^T (x - c) + mu h``; we clip to [0,1] and
    threshold at 1/2 (ties -> 1, matching the step convention).
    ``impl="stacked"`` reuses the cached Gram matrix (the cached product is
    the same array ``B.T @ B`` produces, so both impls are bit-identical).
    """
    if mu < 0:
        raise ValueError(f"mu must be >= 0, got {mu}")
    cd = _solver_dtype(B)
    X = np.asarray(X, dtype=cd)
    Hf = np.asarray(H, dtype=cd)
    L = B.shape[1]
    if impl == "legacy":
        G = B.T @ B + mu * np.eye(L, dtype=cd)
    elif impl == "stacked":
        G = _gram(B) + mu * np.eye(L, dtype=cd)
    else:
        raise ValueError(f"unknown impl {impl!r}")
    Lin = (X - c) @ B + mu * Hf  # (n, L)
    # Guard the mu = 0, rank-deficient-decoder corner with a pseudo-inverse.
    try:
        Zrel = np.linalg.solve(G, Lin.T).T
    except np.linalg.LinAlgError:
        Zrel = (np.linalg.pinv(G) @ Lin.T).T
    return (np.clip(Zrel, 0.0, 1.0) >= 0.5).astype(np.uint8)


def zstep_alternate(
    X: np.ndarray,
    B: np.ndarray,
    c: np.ndarray,
    H: np.ndarray,
    mu: float,
    Z0: np.ndarray | None = None,
    *,
    max_sweeps: int = 20,
    impl: str = "stacked",
) -> np.ndarray:
    """Alternating optimisation over bits, initialised from ``Z0``.

    For bit ``l`` with the other bits fixed, setting ``z_l = 1`` rather than
    0 changes the objective by

        delta_l = ||b_l||^2 - 2 b_l . r_base + mu (1 - 2 h_l)

    where ``r_base = x - c - sum_{m != l} z_m b_m`` is the residual with bit
    l removed; we set ``z_l = 1`` iff ``delta_l <= 0`` (tie -> 1). Each bit
    update is exact given the others, so sweeps never increase the
    objective; we stop when a full sweep changes nothing.

    ``impl="stacked"`` never materialises ``r_base``: since
    ``r_base . b_l == (R B)_l + z_l ||b_l||^2``, it maintains the n x L
    stack ``G = R B`` with one GEMM up front and a rank-1 update per
    flipped bit — O(n L) per bit instead of O(n D). ``impl="legacy"`` is
    the original per-bit residual sweep.

    ``Z0`` defaults to the truncated relaxed solution (the paper's
    initialisation).
    """
    if max_sweeps < 1:
        raise ValueError(f"max_sweeps must be >= 1, got {max_sweeps}")
    if impl not in ("stacked", "legacy"):
        raise ValueError(f"unknown impl {impl!r}")
    cd = _solver_dtype(B)
    X = np.asarray(X, dtype=cd)
    Hf = np.asarray(H, dtype=cd)
    if Z0 is None:
        Z0 = zstep_relaxed(X, B, c, H, mu, impl=impl)
    Z = check_binary_codes(Z0).astype(cd)
    L = B.shape[1]
    b_norms = (B * B).sum(axis=0)  # ||b_l||^2 for each column l
    if impl == "legacy":
        R = X - Z @ B.T - c  # current residual x - f(z)
        for _ in range(max_sweeps):
            changed = False
            for l in range(L):
                b_l = B[:, l]
                # Residual with bit l's contribution removed.
                r_base = R + np.outer(Z[:, l], b_l)
                delta = b_norms[l] - 2.0 * r_base @ b_l + mu * (1.0 - 2.0 * Hf[:, l])
                new_zl = (delta <= 0.0).astype(cd)
                diff = new_zl - Z[:, l]
                if np.any(diff != 0.0):
                    changed = True
                    R -= np.outer(diff, b_l)
                    Z[:, l] = new_zl
            if not changed:
                break
        return Z.astype(np.uint8)
    BtB = _gram(B)
    # G = R @ B, the per-bit linear terms, built by one GEMM pair; flipping
    # bit l of some rows moves G by a rank-1 update with row l of B^T B.
    G = (X - c) @ B - Z @ BtB
    mu_term = mu * (1.0 - 2.0 * Hf)
    for _ in range(max_sweeps):
        changed = False
        for l in range(L):
            delta = b_norms[l] - 2.0 * (G[:, l] + Z[:, l] * b_norms[l]) + mu_term[:, l]
            new_zl = (delta <= 0.0).astype(cd)
            diff = new_zl - Z[:, l]
            rows = np.flatnonzero(diff)
            if rows.size:
                changed = True
                G[rows] -= diff[rows, None] * BtB[l][None, :]
                Z[rows, l] = new_zl[rows]
        if not changed:
            break
    return Z.astype(np.uint8)


def zstep(
    X: np.ndarray,
    B: np.ndarray,
    c: np.ndarray,
    H: np.ndarray,
    mu: float,
    *,
    method: str = "auto",
    Z0: np.ndarray | None = None,
    max_enum_bits: int = MAX_ENUM_BITS,
    max_sweeps: int = 20,
) -> np.ndarray:
    """Dispatch to a Z-step solver.

    ``method='auto'`` enumerates exactly when ``L <= max_enum_bits`` and
    otherwise runs the alternating solver from the truncated relaxed
    initialisation — the paper's policy ("enumeration for SIFT-10K and
    SIFT-1M, and alternating optimisation ... otherwise"). The cutoff
    defaults to :data:`MAX_ENUM_BITS`, the same bound ``zstep_enumerate``
    enforces, so auto dispatch uses exact enumeration everywhere it is
    allowed (L = 16 is the paper's SIFT setting).
    """
    if method == "auto":
        method = "enumerate" if B.shape[1] <= max_enum_bits else "alternate"
    if method == "enumerate":
        return zstep_enumerate(X, B, c, H, mu)
    if method == "alternate":
        return zstep_alternate(X, B, c, H, mu, Z0, max_sweeps=max_sweeps)
    if method == "relaxed":
        return zstep_relaxed(X, B, c, H, mu)
    raise ValueError(f"unknown Z-step method {method!r}")
