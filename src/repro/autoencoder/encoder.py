"""BA encoders: linear step encoder and RBF-kernel step encoder.

The encoder is L single-bit hash functions; in the W step each bit is fit
as an independent binary linear SVM predicting that bit of ``Z`` from ``X``
(paper section 3.1). The RBF variant (section 8.4) replaces the raw input
with ``m`` Gaussian kernel values against fixed centres — only the linear
weights on those features are trainable, so the MAC algorithm is unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.optim.schedules import BottouSchedule
from repro.optim.sgd import SGDState
from repro.optim.svm import LinearSVM
from repro.utils.rng import check_random_state
from repro.utils.validation import (
    check_array,
    check_float_dtype,
    check_positive,
    check_positive_int,
)

__all__ = ["LinearEncoder", "RBFEncoder", "gaussian_kernel_features"]


def gaussian_kernel_features(
    X: np.ndarray,
    centres: np.ndarray,
    sigma: float,
    *,
    quantize: bool = False,
) -> np.ndarray:
    """Gaussian RBF feature map ``k_j(x) = exp(-||x - c_j||^2 / (2 sigma^2))``.

    With ``quantize`` the values in ``(0, 1]`` are stored as uint8 in
    ``[0, 255]`` (rounded), matching the one-byte storage of section 8.4;
    callers rescale by ``1/255`` when converting back to float.
    """
    X = np.asarray(X, dtype=np.float64)
    centres = np.asarray(centres, dtype=np.float64)
    sigma = check_positive(sigma, name="sigma")
    x2 = (X * X).sum(axis=1)[:, None]
    c2 = (centres * centres).sum(axis=1)[None, :]
    d2 = np.maximum(x2 - 2.0 * X @ centres.T + c2, 0.0)
    K = np.exp(-d2 / (2.0 * sigma * sigma))
    if quantize:
        return np.round(K * 255.0).astype(np.uint8)
    return K


class LinearEncoder:
    """Step encoder ``h(x) = step(A x + a)`` with per-bit SVM training.

    Parameters
    ----------
    n_features : int
        Input dimension D.
    n_bits : int
        Code length L.
    lam : float
        L2 regularisation of each per-bit SVM.
    dtype : float dtype, optional
        Compute precision of the parameters, features and SGD updates
        (paper section 9's reduced-precision refinement); default float64.

    Attributes
    ----------
    A : ndarray (n_bits, n_features)
        Weight matrix; row l is the l-th hash function.
    a : ndarray (n_bits,)
        Biases.
    """

    def __init__(self, n_features: int, n_bits: int, *, lam: float = 1e-4,
                 schedule=None, dtype=np.float64):
        self.n_features = check_positive_int(n_features, name="n_features")
        self.n_bits = check_positive_int(n_bits, name="n_bits")
        self.lam = check_positive(lam, name="lam")
        self.schedule = schedule if schedule is not None else BottouSchedule(lam=lam)
        self.dtype = check_float_dtype(dtype)
        self.A = np.zeros((self.n_bits, self.n_features), dtype=self.dtype)
        self.a = np.zeros(self.n_bits, dtype=self.dtype)

    # ------------------------------------------------------------------ API
    def features(self, X: np.ndarray) -> np.ndarray:
        """Feature map seen by the linear hash functions (identity here)."""
        return np.asarray(X, dtype=self.dtype)

    def scores(self, X: np.ndarray) -> np.ndarray:
        """Pre-threshold activations ``X A^T + a`` of shape (n, n_bits)."""
        return self.features(X) @ self.A.T + self.a

    def encode(self, X: np.ndarray) -> np.ndarray:
        """Binary codes ``step(scores)`` (step(0) = 1), uint8 (n, n_bits)."""
        return (self.scores(X) >= 0.0).astype(np.uint8)

    # ------------------------------------------------------------ training
    def _svm_for_bit(self, l: int) -> LinearSVM:
        """Materialise bit ``l`` as a LinearSVM sharing this encoder's row."""
        svm = LinearSVM(self.n_features, lam=self.lam, schedule=self.schedule,
                        dtype=self.dtype)
        svm.w = self.A[l].copy()
        svm.b = self.a[l]
        return svm

    def fit_bit(
        self,
        l: int,
        X: np.ndarray,
        z_l: np.ndarray,
        state: SGDState,
        *,
        batch_size: int = 32,
        shuffle: bool = True,
        rng=None,
    ) -> SGDState:
        """One SGD pass fitting hash function ``l`` to binary targets ``z_l``.

        This is the travelling-submodel work unit for an encoder bit.
        """
        if not 0 <= l < self.n_bits:
            raise IndexError(f"bit index {l} out of range [0, {self.n_bits})")
        y = 2.0 * np.asarray(z_l, dtype=self.dtype) - 1.0
        svm = self._svm_for_bit(l)
        state = svm.partial_fit(
            self.features(X), y, state, batch_size=batch_size, shuffle=shuffle, rng=rng
        )
        self.A[l] = svm.w
        self.a[l] = svm.b
        return state

    def fit(
        self,
        X: np.ndarray,
        Z: np.ndarray,
        *,
        epochs: int = 5,
        batch_size: int = 32,
        rng=None,
    ) -> "LinearEncoder":
        """Serial W-step-h: fit all L SVMs to (X, Z) with ``epochs`` passes."""
        X = check_array(X, name="X", dtype=self.dtype)
        rng = check_random_state(rng)
        F = self.features(X)
        for l in range(self.n_bits):
            state = SGDState()
            for _ in range(epochs):
                self.fit_bit(l, F, Z[:, l], state, batch_size=batch_size, rng=rng)
        return self

    # -------------------------------------------------------- (de)serialise
    def bit_params(self, l: int) -> np.ndarray:
        """Flat parameters ``[A[l], a[l]]`` of hash function ``l``."""
        return np.concatenate([self.A[l], [self.a[l]]])

    def set_bit_params(self, l: int, theta: np.ndarray) -> None:
        theta = np.asarray(theta, dtype=self.dtype).ravel()
        if theta.shape != (self.n_features + 1,):
            raise ValueError(f"expected {self.n_features + 1} params, got {theta.shape}")
        self.A[l] = theta[:-1]
        self.a[l] = theta[-1]

    def copy(self) -> "LinearEncoder":
        new = LinearEncoder(self.n_features, self.n_bits, lam=self.lam,
                            schedule=self.schedule, dtype=self.dtype)
        new.A = self.A.copy()
        new.a = self.a.copy()
        return new


class RBFEncoder(LinearEncoder):
    """Kernel-SVM encoder: Gaussian RBF features, then a linear step encoder.

    Centres and bandwidth are fixed (picked at random from the training set
    in the paper, sigma tuned on a subset), so "only the weights are
    trainable and the MAC algorithm does not change except that it operates
    on an m-dimensional input vector of kernel values" (section 8.4).
    """

    def __init__(
        self,
        centres: np.ndarray,
        sigma: float,
        n_bits: int,
        *,
        lam: float = 1e-4,
        schedule=None,
        dtype=np.float64,
    ):
        centres = check_array(np.asarray(centres, dtype=np.float64), name="centres")
        super().__init__(n_features=len(centres), n_bits=n_bits, lam=lam,
                         schedule=schedule, dtype=dtype)
        self.centres = centres
        self.sigma = check_positive(sigma, name="sigma")
        self.input_dim = centres.shape[1]

    @classmethod
    def from_data(
        cls, X: np.ndarray, n_centres: int, n_bits: int, *, sigma=None,
        lam: float = 1e-4, rng=None, dtype=np.float64
    ) -> "RBFEncoder":
        """Pick ``n_centres`` random training points as centres.

        When ``sigma`` is None it is set to the median pairwise distance of
        the centres — a standard bandwidth heuristic playing the role of the
        paper's offline tuning, wide enough that no point yields all-zero
        kernel rows.
        """
        X = check_array(np.asarray(X, dtype=np.float64), name="X")
        rng = check_random_state(rng)
        n_centres = min(check_positive_int(n_centres, name="n_centres"), len(X))
        idx = rng.choice(len(X), size=n_centres, replace=False)
        centres = X[idx].copy()
        if sigma is None:
            diffs = centres[:, None, :] - centres[None, :, :]
            d = np.sqrt((diffs * diffs).sum(axis=2))
            off = d[np.triu_indices(n_centres, k=1)]
            sigma = float(np.median(off)) if off.size else 1.0
            if sigma <= 0:
                sigma = 1.0
        return cls(centres, sigma, n_bits, lam=lam, dtype=dtype)

    def features(self, X: np.ndarray) -> np.ndarray:
        """Kernel feature map; passes through already-mapped (n, m) inputs.

        A (n, m) float array whose width equals the number of centres is
        assumed to be precomputed kernel values (the ParMAC shards store
        those, quantised, rather than recomputing per visit).
        """
        X = np.asarray(X)
        if X.ndim == 2 and X.shape[1] == self.n_features and self.input_dim != self.n_features:
            return np.asarray(X, dtype=self.dtype)
        if X.ndim == 2 and X.shape[1] == self.input_dim:
            # The kernel map itself is evaluated in float64 for a stable
            # exp() — from the raw inputs, not dtype-truncated ones;
            # storage/compute precision applies to the result.
            return gaussian_kernel_features(
                np.asarray(X, dtype=np.float64), self.centres, self.sigma
            ).astype(self.dtype)
        raise ValueError(
            f"expected inputs of dim {self.input_dim} (raw) or {self.n_features} "
            f"(kernel features), got shape {X.shape}"
        )

    def copy(self) -> "RBFEncoder":
        new = RBFEncoder(self.centres, self.sigma, self.n_bits, lam=self.lam,
                         schedule=self.schedule, dtype=self.dtype)
        new.A = self.A.copy()
        new.a = self.a.copy()
        return new
