"""Bridge between the binary autoencoder and the ParMAC engines.

Submodel layout (paper section 5.4): the L single-bit hash functions are
one submodel each; the D decoder rows are grouped into ``n_decoder_groups``
(default L) groups of ~D/L rows so that encoder and decoder submodels have
comparable size, giving M = 2L effective submodels — the value used
throughout the speedup analysis.

During the W step the authoritative parameters are the ones travelling in
messages, so ``w_update`` works on raw flat vectors and never touches the
model; the engines call ``set_params`` with the final copies afterwards.
"""

from __future__ import annotations

import numpy as np

from repro.autoencoder.binary_autoencoder import BinaryAutoencoder
from repro.autoencoder.zstep import zstep
from repro.distributed.interfaces import SubmodelSpec
from repro.optim.linreg import LinearRegression
from repro.optim.sgd import SGDState
from repro.optim.svm import LinearSVM

__all__ = ["BAAdapter"]


class BAAdapter:
    """ParMAC adapter for a :class:`BinaryAutoencoder`.

    Parameters
    ----------
    model : BinaryAutoencoder
    n_decoder_groups : int, optional
        Decoder row groups (default: L, giving M = 2L submodels).
    zstep_method, max_enum_bits, max_sweeps :
        Passed through to :func:`repro.autoencoder.zstep.zstep`.
    """

    def __init__(
        self,
        model: BinaryAutoencoder,
        *,
        n_decoder_groups: int | None = None,
        zstep_method: str = "auto",
        max_enum_bits: int = 12,
        max_sweeps: int = 20,
    ):
        self.model = model
        L = model.n_bits
        D = model.decoder.n_outputs
        if n_decoder_groups is None:
            n_decoder_groups = min(L, D)
        if not 1 <= n_decoder_groups <= D:
            raise ValueError(
                f"n_decoder_groups must be in [1, {D}], got {n_decoder_groups}"
            )
        self.n_decoder_groups = int(n_decoder_groups)
        self.zstep_method = zstep_method
        self.max_enum_bits = int(max_enum_bits)
        self.max_sweeps = int(max_sweeps)
        # Decoder rows split into near-equal contiguous groups.
        self._groups = [
            tuple(int(r) for r in rows)
            for rows in np.array_split(np.arange(D), self.n_decoder_groups)
        ]
        self._specs = [
            SubmodelSpec(sid=l, kind="enc", index=l) for l in range(L)
        ] + [
            SubmodelSpec(sid=L + g, kind="dec", index=rows)
            for g, rows in enumerate(self._groups)
        ]

    # -------------------------------------------------------------- specs
    def submodel_specs(self) -> list[SubmodelSpec]:
        return list(self._specs)

    @property
    def n_submodels(self) -> int:
        return len(self._specs)

    # ------------------------------------------------------------- params
    def get_params(self, spec: SubmodelSpec) -> np.ndarray:
        if spec.kind == "enc":
            return self.model.encoder.bit_params(spec.index)
        if spec.kind == "dec":
            return self.model.decoder.row_params(np.asarray(spec.index))
        raise ValueError(f"unknown submodel kind {spec.kind!r}")

    def set_params(self, spec: SubmodelSpec, theta: np.ndarray) -> None:
        if spec.kind == "enc":
            self.model.encoder.set_bit_params(spec.index, theta)
        elif spec.kind == "dec":
            self.model.decoder.set_row_params(np.asarray(spec.index), theta)
        else:
            raise ValueError(f"unknown submodel kind {spec.kind!r}")

    # ------------------------------------------------------------- W step
    def w_update(
        self,
        spec: SubmodelSpec,
        theta: np.ndarray,
        state: SGDState,
        shard,
        mu: float,
        *,
        batch_size: int,
        shuffle: bool,
        rng,
    ) -> np.ndarray:
        """One SGD pass of one submodel over one shard (pure on the model).

        Neither BA subproblem depends on mu — the penalty weight scales out
        of each separable W-step objective (section 3.1) — but the argument
        is part of the generic adapter signature.
        """
        if spec.kind == "enc":
            svm = LinearSVM(
                self.model.encoder.n_features,
                lam=self.model.encoder.lam,
                schedule=self.model.encoder.schedule,
            )
            svm.set_params(theta)
            y = 2.0 * shard.Z[:, spec.index].astype(np.float64) - 1.0
            svm.partial_fit(
                shard.F, y, state, batch_size=batch_size, shuffle=shuffle, rng=rng
            )
            return svm.get_params()
        if spec.kind == "dec":
            rows = np.asarray(spec.index)
            reg = LinearRegression(
                self.model.n_bits, len(rows), schedule=self.model.decoder.schedule
            )
            reg.set_params(theta)
            reg.partial_fit(
                shard.Z.astype(np.float64),
                shard.X[:, rows],
                state,
                batch_size=batch_size,
                shuffle=shuffle,
                rng=rng,
            )
            return reg.get_params()
        raise ValueError(f"unknown submodel kind {spec.kind!r}")

    # ------------------------------------------------------------- Z step
    def _encode_features(self, F: np.ndarray) -> np.ndarray:
        """Codes from precomputed encoder features (shard.F)."""
        enc = self.model.encoder
        return (F @ enc.A.T + enc.a >= 0.0).astype(np.uint8)

    def z_update(self, shard, mu: float) -> int:
        """Exact/alternating Z step on one shard; returns bits changed."""
        dec = self.model.decoder
        H = self._encode_features(shard.F)
        Z_new = zstep(
            shard.X,
            dec.B,
            dec.c,
            H,
            mu,
            method=self.zstep_method,
            Z0=shard.Z,
            max_enum_bits=self.max_enum_bits,
            max_sweeps=self.max_sweeps,
        )
        changes = int((Z_new != shard.Z).sum())
        shard.Z = Z_new
        return changes

    # --------------------------------------------------------- objectives
    def e_q_shard(self, shard, mu: float) -> float:
        """Shard contribution to E_Q (eq. 3)."""
        Zf = shard.Z.astype(np.float64)
        R = shard.X - self.model.decoder.decode(Zf)
        dzh = Zf - self._encode_features(shard.F).astype(np.float64)
        return float((R * R).sum() + mu * (dzh * dzh).sum())

    def e_ba_shard(self, shard) -> float:
        """Shard contribution to E_BA (eq. 1)."""
        H = self._encode_features(shard.F)
        R = shard.X - self.model.decoder.decode(H)
        return float((R * R).sum())

    def violations_shard(self, shard) -> int:
        """Bits where the shard's codes disagree with the encoder."""
        return int((shard.Z != self._encode_features(shard.F)).sum())

    # ----------------------------------------------------------- streaming
    def features(self, X: np.ndarray) -> np.ndarray:
        """Encoder feature map for new raw points (streaming support)."""
        return self.model.encoder.features(X)

    def init_codes(self, F: np.ndarray) -> np.ndarray:
        """Codes for new points "by applying the nested model" (section 4.3)."""
        return self._encode_features(F)
