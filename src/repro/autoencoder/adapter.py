"""Bridge between the binary autoencoder and the ParMAC engines.

Submodel layout (paper section 5.4): the L single-bit hash functions are
one submodel each; the D decoder rows are grouped into ``n_decoder_groups``
(default L) groups of ~D/L rows so that encoder and decoder submodels have
comparable size, giving M = 2L effective submodels — the value used
throughout the speedup analysis.

During the W step the authoritative parameters are the ones travelling in
messages, so ``w_update`` works on raw flat vectors and never touches the
model; the engines call ``set_params`` with the final copies afterwards.
"""

from __future__ import annotations

import numpy as np

from repro.autoencoder.binary_autoencoder import BinaryAutoencoder
from repro.autoencoder.zstep import MAX_ENUM_BITS, zstep
from repro.distributed.interfaces import SubmodelSpec
from repro.optim.linreg import LinearRegression
from repro.optim.sgd import SGDState
from repro.optim.svm import LinearSVM

__all__ = ["BAAdapter"]


class BAAdapter:
    """ParMAC adapter for a :class:`BinaryAutoencoder`.

    Parameters
    ----------
    model : BinaryAutoencoder
    n_decoder_groups : int, optional
        Decoder row groups (default: L, giving M = 2L submodels).
    zstep_method, max_enum_bits, max_sweeps :
        Passed through to :func:`repro.autoencoder.zstep.zstep`.
    """

    def __init__(
        self,
        model: BinaryAutoencoder,
        *,
        n_decoder_groups: int | None = None,
        zstep_method: str = "auto",
        max_enum_bits: int = MAX_ENUM_BITS,
        max_sweeps: int = 20,
    ):
        self.model = model
        L = model.n_bits
        D = model.decoder.n_outputs
        if n_decoder_groups is None:
            n_decoder_groups = min(L, D)
        if not 1 <= n_decoder_groups <= D:
            raise ValueError(
                f"n_decoder_groups must be in [1, {D}], got {n_decoder_groups}"
            )
        self.n_decoder_groups = int(n_decoder_groups)
        self.zstep_method = zstep_method
        self.max_enum_bits = int(max_enum_bits)
        self.max_sweeps = int(max_sweeps)
        # Decoder rows split into near-equal contiguous groups.
        self._groups = [
            tuple(int(r) for r in rows)
            for rows in np.array_split(np.arange(D, dtype=np.intp), self.n_decoder_groups)
        ]
        self._specs = [
            SubmodelSpec(sid=l, kind="enc", index=l) for l in range(L)
        ] + [
            SubmodelSpec(sid=L + g, kind="dec", index=rows)
            for g, rows in enumerate(self._groups)
        ]

    # -------------------------------------------------------------- specs
    def submodel_specs(self) -> list[SubmodelSpec]:
        return list(self._specs)

    @property
    def n_submodels(self) -> int:
        return len(self._specs)

    @property
    def compute_dtype(self) -> np.dtype:
        """End-to-end compute precision (the model's parameter dtype)."""
        return self.model.compute_dtype

    def batch_key(self, spec: SubmodelSpec):
        """Encoder bits batch with encoder bits (shared SVM features),
        decoder groups with decoder groups (shared code inputs)."""
        return (spec.kind,)

    # ------------------------------------------------------------- params
    def get_params(self, spec: SubmodelSpec) -> np.ndarray:
        if spec.kind == "enc":
            return self.model.encoder.bit_params(spec.index)
        if spec.kind == "dec":
            return self.model.decoder.row_params(np.asarray(spec.index))
        raise ValueError(f"unknown submodel kind {spec.kind!r}")

    def set_params(self, spec: SubmodelSpec, theta: np.ndarray) -> None:
        if spec.kind == "enc":
            self.model.encoder.set_bit_params(spec.index, theta)
        elif spec.kind == "dec":
            self.model.decoder.set_row_params(np.asarray(spec.index), theta)
        else:
            raise ValueError(f"unknown submodel kind {spec.kind!r}")

    # ------------------------------------------------------------- W step
    def w_update(
        self,
        spec: SubmodelSpec,
        theta: np.ndarray,
        state: SGDState,
        shard,
        mu: float,
        *,
        batch_size: int,
        shuffle: bool,
        rng,
    ) -> np.ndarray:
        """One SGD pass of one submodel over one shard (pure on the model).

        Neither BA subproblem depends on mu — the penalty weight scales out
        of each separable W-step objective (section 3.1) — but the argument
        is part of the generic adapter signature.
        """
        cd = self.compute_dtype
        if spec.kind == "enc":
            svm = LinearSVM(
                self.model.encoder.n_features,
                lam=self.model.encoder.lam,
                schedule=self.model.encoder.schedule,
                dtype=cd,
            )
            svm.set_params(theta)
            y = 2.0 * shard.Z[:, spec.index].astype(cd) - 1.0
            svm.partial_fit(
                shard.F, y, state, batch_size=batch_size, shuffle=shuffle, rng=rng
            )
            return svm.get_params()
        if spec.kind == "dec":
            rows = np.asarray(spec.index)
            reg = LinearRegression(
                self.model.n_bits, len(rows), schedule=self.model.decoder.schedule,
                dtype=cd,
            )
            reg.set_params(theta)
            reg.partial_fit(
                shard.Z.astype(cd),
                shard.X[:, rows],
                state,
                batch_size=batch_size,
                shuffle=shuffle,
                rng=rng,
            )
            return reg.get_params()
        raise ValueError(f"unknown submodel kind {spec.kind!r}")

    def w_update_batch(
        self,
        specs,
        thetas,
        states,
        shard,
        mu: float,
        *,
        batch_size: int,
        shuffle: bool,
        rng,
    ) -> list[np.ndarray]:
        """One shared SGD pass for co-resident submodels of one kind.

        Encoder bits stack into one multi-column SVM pass (scores and the
        hinge-masked gradient are single GEMMs over all bits); decoder row
        groups stack into one multi-output regression pass. The shared
        sequential draw order is what ``shuffle_within=False`` guarantees;
        per-submodel schedules are preserved through each carried
        ``SGDState``.
        """
        if shuffle:
            raise ValueError(
                "batched W updates share one draw order; per-unit shuffling "
                "(shuffle_within=True) requires the per-unit w_update path"
            )
        kinds = {spec.kind for spec in specs}
        if kinds == {"enc"}:
            return self._w_update_batch_enc(specs, thetas, states, shard, batch_size)
        if kinds == {"dec"}:
            return self._w_update_batch_dec(specs, thetas, states, shard, batch_size)
        raise ValueError(
            f"a BA batch must be all-encoder or all-decoder, got kinds {sorted(kinds)}"
        )

    def _w_update_batch_enc(self, specs, thetas, states, shard, batch_size):
        """Stacked SVMSGD: all bits' hinge subgradients from two GEMMs."""
        enc = self.model.encoder
        cd = self.compute_dtype
        lam = enc.lam
        F = np.asarray(shard.F, dtype=cd)
        bits = np.fromiter((spec.index for spec in specs), dtype=np.intp)
        Yt = 2.0 * shard.Z[:, bits].astype(cd) - 1.0  # (n, m) in {-1, +1}
        Theta = np.stack([np.asarray(th, dtype=cd).ravel() for th in thetas])
        if Theta.shape[1] != enc.n_features + 1:
            raise ValueError(
                f"expected {enc.n_features + 1} params per bit, got {Theta.shape[1]}"
            )
        W = np.ascontiguousarray(Theta[:, :-1])
        b = np.ascontiguousarray(Theta[:, -1])
        n = shard.n
        for start in range(0, n, batch_size):
            sl = slice(start, min(start + batch_size, n))
            m_b = sl.stop - sl.start
            etas = np.array([enc.schedule.rate(st.t) for st in states]).astype(cd)
            scores = F[sl] @ W.T + b  # (m_b, m)
            # Hinge-active mask per bit; inactive terms contribute exact
            # zeros, so the masked GEMM equals the per-bit subset sums.
            Ya = Yt[sl] * ((Yt[sl] * scores) < 1.0)
            W -= etas[:, None] * (lam * W - (Ya.T @ F[sl]) / m_b)
            b -= etas * (-Ya.sum(axis=0) / m_b)
            for st in states:
                st.advance(m_b)
        return [np.concatenate([W[i], b[i : i + 1]]) for i in range(len(specs))]

    def _w_update_batch_dec(self, specs, thetas, states, shard, batch_size):
        """Stacked least-squares SGD over concatenated decoder row groups."""
        dec = self.model.decoder
        cd = self.compute_dtype
        L = self.model.n_bits
        groups = [np.asarray(spec.index, dtype=np.intp) for spec in specs]
        sizes = [len(rows) for rows in groups]
        Z = shard.Z.astype(cd)
        T = np.asarray(shard.X, dtype=cd)[:, np.concatenate(groups)]
        W_blocks, c_blocks = [], []
        for spec, theta, rows in zip(specs, thetas, groups):
            theta = np.asarray(theta, dtype=cd).ravel()
            kk = len(rows) * L
            if theta.shape != (kk + len(rows),):
                raise ValueError(
                    f"expected {kk + len(rows)} params for decoder group "
                    f"{spec.sid}, got {theta.shape}"
                )
            W_blocks.append(theta[:kk].reshape(len(rows), L))
            c_blocks.append(theta[kk:])
        W = np.ascontiguousarray(np.vstack(W_blocks))
        c = np.concatenate(c_blocks)
        # Each row's step size comes from its group's carried schedule.
        group_of_row = np.repeat(np.arange(len(specs), dtype=np.intp), sizes)
        n = shard.n
        for start in range(0, n, batch_size):
            sl = slice(start, min(start + batch_size, n))
            m_b = sl.stop - sl.start
            etas = np.array([dec.schedule.rate(st.t) for st in states]).astype(cd)
            eta_rows = etas[group_of_row]
            resid = Z[sl] @ W.T + c - T[sl]  # (m_b, total_rows)
            W -= eta_rows[:, None] * ((2.0 / m_b) * (resid.T @ Z[sl]))
            c -= eta_rows * ((2.0 / m_b) * resid.sum(axis=0))
            for st in states:
                st.advance(m_b)
        out, offset = [], 0
        for size in sizes:
            rows = slice(offset, offset + size)
            out.append(np.concatenate([W[rows].ravel(), c[rows]]))
            offset += size
        return out

    # ------------------------------------------------------------- Z step
    def _encode_features(self, F: np.ndarray) -> np.ndarray:
        """Codes from precomputed encoder features (shard.F)."""
        enc = self.model.encoder
        return (F @ enc.A.T + enc.a >= 0.0).astype(np.uint8)

    def z_update(self, shard, mu: float) -> int:
        """Exact/alternating Z step on one shard; returns bits changed."""
        dec = self.model.decoder
        H = self._encode_features(shard.F)
        Z_new = zstep(
            shard.X,
            dec.B,
            dec.c,
            H,
            mu,
            method=self.zstep_method,
            Z0=shard.Z,
            max_enum_bits=self.max_enum_bits,
            max_sweeps=self.max_sweeps,
        )
        changes = int((Z_new != shard.Z).sum())
        shard.Z = Z_new
        return changes

    # --------------------------------------------------------- objectives
    def e_q_shard(self, shard, mu: float) -> float:
        """Shard contribution to E_Q (eq. 3)."""
        cd = self.compute_dtype
        Zf = shard.Z.astype(cd)
        R = shard.X - self.model.decoder.decode(Zf)
        dzh = Zf - self._encode_features(shard.F).astype(cd)
        return float((R * R).sum() + mu * (dzh * dzh).sum())

    def e_ba_shard(self, shard) -> float:
        """Shard contribution to E_BA (eq. 1)."""
        H = self._encode_features(shard.F)
        R = shard.X - self.model.decoder.decode(H)
        return float((R * R).sum())

    def violations_shard(self, shard) -> int:
        """Bits where the shard's codes disagree with the encoder."""
        return int((shard.Z != self._encode_features(shard.F)).sum())

    # ----------------------------------------------------------- streaming
    def features(self, X: np.ndarray) -> np.ndarray:
        """Encoder feature map for new raw points (streaming support)."""
        return self.model.encoder.features(X)

    def init_codes(self, F: np.ndarray) -> np.ndarray:
        """Codes for new points "by applying the nested model" (section 4.3)."""
        return self._encode_features(F)
