"""Serving side of the paper's use case: batch encode + Hamming retrieval.

The training half of this repo produces a binary hash; this package is
the query-side hot path that makes it useful at production scale — a
packed-code index with a blocked streaming top-k scan kernel (never the
``n_q x n_base`` distance matrix), optional sharding across worker
threads or processes with an exact heap merge, a dynamically micro-
batching front end that coalesces concurrent queries into one stacked
encode GEMM plus one shared scan, and an open-loop Poisson load
generator with p50/p95/p99 + rows/s accounting. See
``benchmarks/bench_serve.py`` for the measured speedups and
``docs/architecture.md`` ("Serving") for the contracts.
"""

from repro.serve.index import (
    HammingIndex,
    ShardedHammingIndex,
    hamming_topk,
    merge_topk,
)
from repro.serve.loadgen import (
    LatencyStats,
    ThroughputStats,
    poisson_arrivals,
    run_open_loop,
)
from repro.serve.service import RetrievalService, ServiceStats

__all__ = [
    "hamming_topk",
    "merge_topk",
    "HammingIndex",
    "ShardedHammingIndex",
    "RetrievalService",
    "ServiceStats",
    "LatencyStats",
    "ThroughputStats",
    "poisson_arrivals",
    "run_open_loop",
]
