"""Packed-code Hamming index with a blocked streaming top-k scan kernel.

``examples/image_retrieval.py``'s offline evaluation calls
``hamming_cdist`` and materialises the full ``n_q x n_base`` distance
matrix — fine for scoring a figure, fatal for serving: at n_base = 10^9
and n_q = 64 that matrix alone is 128 GB. The serving hot path here never
builds it. :func:`hamming_topk` scans the base in blocks of ``block``
rows, XOR+popcounts one block against all queries (one word at a time
through reused scratch — never a (n_q, block, n_words) cube), and folds
the block into a bounded per-query top-k "heap" (two (n_q, k) arrays
kept sorted by the total order below). Peak scratch is

    ``n_q * block * 13`` bytes    (XOR word + distance/count + mask panes)
  + ``O(n_q * (k + block))``      (merge keys for improved rows)

independent of ``n_base`` — the documented memory bound. After the heap
is full, a block row enters the merge only if it strictly beats the
current kth-best distance (one compare + count per pruned block):
within one scan base indices only grow, so an equal-distance candidate
can never displace an earlier index under the tie order. Dense blocks
(always the first, rarely later ones) are first tightened by a per-row
value partition at the block's own kth distance — keeping boundary ties
— before the sparse gather/scatter merge.

**Total order / tie contract.** Every path — ``hamming_cdist`` + argsort,
:func:`hamming_topk`, and the sharded merge — ranks by the lexicographic
key (distance, base index): equal-distance neighbours in ascending index
order, exactly a sequential scan in database order. Selection runs on the
composite integer key ``distance * stride + id`` (``stride`` > any id),
which makes top-k selection a *total* order with no arbitrary argpartition
boundary choices. That is what makes the k-heap merge associative:
merging per-shard top-k results (:func:`merge_topk`) over any disjoint
shard partition returns results **exactly equal** — ids and distances,
tie order included — to one flat scan.

:class:`HammingIndex` wraps the kernel with an amortised-doubling code
buffer (``add()`` for streaming ingest without per-add copies).
:class:`ShardedHammingIndex` partitions the base across worker threads or
processes (``partition_indices`` contiguous splits; process shards ship
their codes through the mp backend's shared-memory block packing), scans
shards in parallel and merges exactly.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout

import numpy as np

from repro.distributed.partition import partition_indices
from repro.retrieval.hamming import HAS_BITWISE_COUNT, pack_bits, popcount

__all__ = [
    "hamming_topk",
    "merge_topk",
    "HammingIndex",
    "ScanResult",
    "ShardedHammingIndex",
]

#: Default base rows per scan block; 4096 rows x 1 word x 64 queries is a
#: 2 MB XOR cube — comfortably cache-resident scratch.
DEFAULT_BLOCK = 4096

_DIST_SENTINEL = np.uint16(np.iinfo(np.uint16).max)


def _check_packed(arr, *, name: str) -> np.ndarray:
    arr = np.asarray(arr, dtype=np.uint64)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional packed codes, got shape {arr.shape}")
    if arr.shape[1] * 64 >= int(_DIST_SENTINEL):
        raise ValueError(
            f"{name} has {arr.shape[1]} words; distances would overflow uint16"
        )
    return arr


def _block_dists(Q, blk, acc, xbuf, cbuf) -> np.ndarray:
    """Hamming distances of all queries to one base block, into ``acc``.

    One XOR + popcount pass per code word through preallocated scratch —
    no (n_q, block, n_words) cube, no per-block allocations on the
    native-popcount path. The first word's counts land directly in
    ``acc`` (no zero-fill, no add), so the common L <= 64 single-word
    case is exactly two vector passes per block.
    """
    b = len(blk)
    acc, xbuf, cbuf = acc[:, :b], xbuf[:, :b], cbuf[:, :b]
    for w in range(Q.shape[1]):
        np.bitwise_xor(Q[:, w][:, None], blk[None, :, w], out=xbuf)
        tgt = acc if w == 0 else cbuf
        if HAS_BITWISE_COUNT:
            np.bitwise_count(xbuf, out=tgt, casting="unsafe")
        else:
            tgt[...] = popcount(xbuf)
        if w:
            np.add(acc, cbuf, out=acc)
    return acc


def _select_rows(best_d, best_i, rows, cand_d, cand_i, stride) -> None:
    """Fold dense per-row candidates into the heap rows (composite key)."""
    k_eff = best_d.shape[1]
    cand_d = np.concatenate([best_d[rows], cand_d], axis=1)
    cand_i = np.concatenate([best_i[rows], cand_i], axis=1)
    key = cand_d.astype(np.int64) * stride + cand_i
    part = np.argpartition(key, k_eff - 1, axis=1)[:, :k_eff]
    r = np.arange(len(rows), dtype=np.intp)[:, None]
    order = np.argsort(key[r, part], axis=1)
    sel = part[r, order]
    best_d[rows] = cand_d[r, sel]
    best_i[rows] = cand_i[r, sel]


def hamming_topk(
    queries: np.ndarray,
    base: np.ndarray,
    k: int,
    *,
    block: int = DEFAULT_BLOCK,
    offset: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Top-k Hamming neighbours of each query by blocked streaming scan.

    Parameters
    ----------
    queries, base : uint64 arrays of shape (n_q, n_words) / (n_b, n_words)
    k : int
        Neighbours per query; capped at ``len(base)`` (sharded callers
        pass a global k that may exceed one shard).
    block : int
        Base rows per scan block — the memory/latency knob (see module
        docstring for the exact bound).
    offset : int
        Global id of ``base[0]``: returned ids are ``offset + row``, so a
        shard scans its slice yet reports global ids.

    Returns
    -------
    (ids, dists) : int64 (n_q, k_eff), uint16 (n_q, k_eff)
        Sorted by (distance, id); ``k_eff = min(k, len(base))``.
    """
    Q = _check_packed(queries, name="queries")
    B = _check_packed(base, name="base")
    if Q.shape[1] != B.shape[1]:
        raise ValueError(f"incompatible packed shapes {Q.shape} and {B.shape}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if block < 1:
        raise ValueError(f"block must be >= 1, got {block}")
    n_q, n_b = len(Q), len(B)
    k_eff = min(k, n_b)
    if n_b == 0 or n_q == 0:
        return (np.empty((n_q, 0), np.int64), np.empty((n_q, 0), np.uint16))

    stride = np.int64(offset + n_b + 1)
    best_d = np.full((n_q, k_eff), _DIST_SENTINEL, dtype=np.uint16)
    best_i = np.zeros((n_q, k_eff), dtype=np.int64)
    b0 = min(block, n_b)
    acc = np.empty((n_q, b0), dtype=np.uint16)
    xbuf = np.empty((n_q, b0), dtype=np.uint64)
    cbuf = np.empty((n_q, b0), dtype=np.uint16)
    ibuf = np.empty((n_q, b0), dtype=bool)

    # Candidates accumulate across blocks and merge lazily: pruning with
    # a (possibly stale) kth only ever drops entries already beaten by k
    # held elements, so deferral never changes the exact result — it
    # just turns per-block scatter merges into one merge per ~cap_pend
    # survivors (typically a single merge per scan after the first).
    pend_rr: list = []
    pend_id: list = []
    pend_d: list = []
    n_pend = 0
    cap_pend = 4 * n_q * k_eff

    def _flush() -> None:
        nonlocal n_pend
        if n_pend == 0:
            return
        multi = len(pend_rr) > 1
        rr = np.concatenate(pend_rr)
        ids = np.concatenate(pend_id)
        dv = np.concatenate(pend_d)
        pend_rr.clear(), pend_id.clear(), pend_d.clear()
        n_pend = 0
        if multi:
            # The slot arithmetic below needs row-grouped candidates;
            # one block's flatnonzero order already is, concatenations
            # are not. Stable keeps ascending ids within a row (the
            # composite key never relies on it, but it aids debugging).
            grp = np.argsort(rr, kind="stable")
            rr, ids, dv = rr[grp], ids[grp], dv[grp]
        counts = np.bincount(rr, minlength=n_q)
        rows = np.nonzero(counts)[0]
        m = int(counts.max())
        starts = np.zeros(n_q + 1, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        slot = np.arange(len(rr), dtype=np.int64) - starts[rr]
        pos = np.searchsorted(rows, rr)
        cand_d = np.full((len(rows), k_eff + m), _DIST_SENTINEL, dtype=np.uint16)
        cand_i = np.zeros((len(rows), k_eff + m), dtype=np.int64)
        cand_d[:, :k_eff] = best_d[rows]
        cand_i[:, :k_eff] = best_i[rows]
        cand_d[pos, k_eff + slot] = dv
        cand_i[pos, k_eff + slot] = ids
        key = cand_d.astype(np.int64) * stride + cand_i
        order = np.argsort(key, axis=1)[:, :k_eff]
        r = np.arange(len(rows), dtype=np.intp)[:, None]
        best_d[rows] = cand_d[r, order]
        best_i[rows] = cand_i[r, order]

    for start in range(0, n_b, block):
        blk = B[start : start + block]
        w = len(blk)
        d_blk = _block_dists(Q, blk, acc, xbuf, cbuf)
        # A block row enters only by strictly beating the kth-best
        # distance (sentinel on the first pass, so everything enters).
        # Strict < makes ties lose by construction — every id in this
        # block exceeds every id already held or pending. count_nonzero
        # is ~100x cheaper than nonzero, so most steady-state blocks
        # cost one compare + one count and move on.
        improved = np.less(d_blk, best_d[:, -1][:, None], out=ibuf[:, :w])
        n_hits = int(np.count_nonzero(improved))
        if n_hits == 0:
            continue
        if n_hits > n_q * k_eff and w > k_eff:
            # Dense pass (always the first block, rarely later ones):
            # tighten with a per-row value partition before paying the
            # per-hit gather. Keeping d <= kth-of-block preserves every
            # boundary tie, so the (distance, id) selection stays exact;
            # the survivors are ~k + ties per row.
            vk = np.partition(d_blk, k_eff - 1, axis=1)[:, k_eff - 1][:, None]
            np.logical_and(improved, d_blk <= vk, out=improved)
        # flatnonzero + divmod beats 2-d nonzero ~7x at these shapes.
        flat = np.flatnonzero(improved)
        rr = flat // w
        cc = flat - rr * w
        if len(flat) > n_q * max(64, 4 * k_eff):
            # Tie explosion (e.g. a block of duplicated codes): even the
            # tightened mask is dense — merge this block pane-at-a-time.
            rows = np.unique(rr)
            ids_blk = np.arange(start, start + w, dtype=np.int64) + offset
            _select_rows(
                best_d, best_i, rows, d_blk[rows],
                np.broadcast_to(ids_blk, (len(rows), w)), stride,
            )
            continue
        pend_rr.append(rr)
        pend_id.append(cc + (start + offset))
        pend_d.append(d_blk[rr, cc])
        n_pend += len(flat)
        if n_pend >= cap_pend or best_d[0, -1] == _DIST_SENTINEL:
            # Cap reached — or the heap is still all-sentinel (first
            # contributing block): merge now so later blocks prune
            # against a real kth instead of staying dense.
            _flush()
    _flush()
    return best_i, best_d


def merge_topk(
    parts: list[tuple[np.ndarray, np.ndarray]], k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Exactly merge per-shard top-k results into a global top-k.

    ``parts`` is a list of ``(ids, dists)`` pairs as returned by
    :func:`hamming_topk` with global ids (widths may differ when a shard
    is smaller than k). Selection uses the same composite (distance, id)
    key, so the merge is associative: any grouping of disjoint shards
    yields ids *and* distances identical to one flat scan — the
    sharded-equals-unsharded contract, asserted in tests.
    """
    if not parts:
        raise ValueError("parts must be non-empty")
    ids = np.concatenate([p[0] for p in parts], axis=1)
    ds = np.concatenate([p[1] for p in parts], axis=1)
    n_cand = ids.shape[1]
    k_eff = min(k, n_cand)
    if k_eff == 0:
        return ids[:, :0], ds[:, :0]
    stride = np.int64(ids.max(initial=0) + 1)
    key = ds.astype(np.int64) * stride + ids
    part = np.argpartition(key, k_eff - 1, axis=1)[:, :k_eff]
    rows = np.arange(len(ids), dtype=np.intp)[:, None]
    order = np.argsort(key[rows, part], axis=1)
    sel = part[rows, order]
    return ids[rows, sel], ds[rows, sel]


def _as_packed_codes(codes, n_words: int, *, n_bits: int, name: str) -> np.ndarray:
    """Accept packed uint64 codes or raw 0/1 bit matrices interchangeably."""
    arr = np.asarray(codes)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got shape {arr.shape}")
    if arr.dtype == np.uint64 and arr.shape[1] == n_words:
        return arr
    if arr.shape[1] == n_bits:
        return pack_bits(arr)
    raise ValueError(
        f"{name} must be (n, {n_words}) packed uint64 or (n, {n_bits}) bits, "
        f"got {arr.dtype} with shape {arr.shape}"
    )


class HammingIndex:
    """Growable packed-code index scanned with :func:`hamming_topk`.

    ``add()`` appends codes into an amortised-doubling uint64 buffer
    (streaming ingest is O(1) amortised per row, no per-add reallocation),
    assigning ids in arrival order — the id space every tie is broken on.
    """

    def __init__(self, n_bits: int, *, block: int = DEFAULT_BLOCK):
        if n_bits < 1:
            raise ValueError(f"n_bits must be >= 1, got {n_bits}")
        self.n_bits = int(n_bits)
        self.n_words = (self.n_bits + 63) // 64
        self.block = int(block)
        self._buf = np.empty((0, self.n_words), dtype=np.uint64)
        self._n = 0

    @classmethod
    def from_codes(cls, codes, n_bits: int, *, block: int = DEFAULT_BLOCK) -> "HammingIndex":
        index = cls(n_bits, block=block)
        index.add(codes)
        return index

    @property
    def n(self) -> int:
        return self._n

    @property
    def codes(self) -> np.ndarray:
        """The packed codes currently indexed (read-only view)."""
        view = self._buf[: self._n]
        view.flags.writeable = False
        return view

    def memory_bound(self, n_queries: int, k: int) -> int:
        """Documented peak scan-scratch bytes for an (n_queries, k) search."""
        blk = min(self.block, max(self._n, 1))
        # XOR word (8) + distance acc (2) + count (2) + mask (1) panes.
        panes = n_queries * blk * 13
        merge = n_queries * (min(k, max(self._n, 1)) + blk) * (8 + 8 + 2)
        return panes + merge

    def add(self, codes) -> np.ndarray:
        """Append codes (packed or 0/1 bits); returns the assigned ids."""
        packed = _as_packed_codes(codes, self.n_words, n_bits=self.n_bits, name="codes")
        n_new = len(packed)
        need = self._n + n_new
        if need > len(self._buf):
            cap = max(need, 2 * len(self._buf), 1024)
            buf = np.empty((cap, self.n_words), dtype=np.uint64)
            buf[: self._n] = self._buf[: self._n]
            self._buf = buf
        self._buf[self._n : need] = packed
        ids = np.arange(self._n, need, dtype=np.int64)
        self._n = need
        return ids

    def search(self, queries, k: int) -> tuple[np.ndarray, np.ndarray]:
        """(ids, dists) of the k nearest codes, in (distance, id) order."""
        if self._n == 0:
            raise ValueError("cannot search an empty index")
        if k > self._n:
            raise ValueError(f"k={k} exceeds index size {self._n}")
        queries = _as_packed_codes(
            queries, self.n_words, n_bits=self.n_bits, name="queries"
        )
        return hamming_topk(queries, self._buf[: self._n], k, block=self.block)


class _ShardScanner:
    """One shard's codes as id-ascending blocks, scanned exactly.

    The shard starts as one contiguous slice ``[offset, offset + n)`` of
    the global id space; streamed ``append()`` blocks carry later id
    ranges. A scan runs :func:`hamming_topk` per block and folds with
    :func:`merge_topk` — exact by the associativity contract.
    """

    def __init__(self, codes: np.ndarray, offset: int, *, block: int):
        self.blocks: list[tuple[int, np.ndarray]] = [(int(offset), codes)]
        self.block = block

    @property
    def n(self) -> int:
        return sum(len(codes) for _, codes in self.blocks)

    def append(self, codes: np.ndarray, offset: int) -> None:
        self.blocks.append((int(offset), codes))

    def scan(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        parts = [
            hamming_topk(queries, codes, k, block=self.block, offset=offset)
            for offset, codes in self.blocks
        ]
        return parts[0] if len(parts) == 1 else merge_topk(parts, k)


class ScanResult(tuple):
    """A search result: the ``(ids, dists)`` pair plus coverage metadata.

    Subclasses ``tuple`` so every existing call site keeps working
    unchanged (``ids, dists = index.search(...)``); degraded-serving
    callers additionally read:

    partial : bool
        True when at least one shard missed its scan deadline (or its
        worker died mid-scan) and the result covers only the responsive
        shards. The merged ``(ids, dists)`` are exact *over the covered
        rows* — the miss loses candidates, never corrupts ranks.
    coverage : float
        Fraction of indexed rows the responding shards hold (1.0 for a
        full result, 0.0 when every shard missed).
    shards_missed : tuple of int
        Ranks of the shards that did not contribute.
    """

    def __new__(cls, ids, dists, *, partial=False, coverage=1.0,
                shards_missed=()):
        self = super().__new__(cls, (ids, dists))
        self.partial = bool(partial)
        self.coverage = float(coverage)
        self.shards_missed = tuple(int(r) for r in shards_missed)
        return self

    @property
    def ids(self) -> np.ndarray:
        return self[0]

    @property
    def dists(self) -> np.ndarray:
        return self[1]


def _shard_worker(desc, offset, block, task_q, res_conn):
    """Process-shard loop: attach the shm codes, serve scans until None."""
    from repro.distributed.backends.mp import _attach_array_block

    seg, (codes,) = _attach_array_block(desc)
    scanner = _ShardScanner(codes, offset, block=block)
    try:
        while True:
            item = task_q.get()
            if item is None:
                break
            try:
                if item[0] == "add":
                    _, codes_new, off_new = item
                    scanner.append(codes_new, off_new)
                    res_conn.send(("ok", None))
                else:
                    _, queries, k = item
                    res_conn.send(("ok", scanner.scan(queries, k)))
            except Exception as exc:  # pragma: no cover - surfaced to caller
                res_conn.send(("error", repr(exc)))
    finally:
        res_conn.close()
        seg.close()


class ShardedHammingIndex:
    """Hamming index partitioned across parallel shard scanners.

    The base is split into ``n_shards`` contiguous slices with
    :func:`repro.distributed.partition.partition_indices` (``shuffle``
    off: shard s owns global ids ``[lo_s, hi_s)``). A search scans every
    shard in parallel — worker threads (``mode="thread"``) or persistent
    worker processes that received their slice through a shared-memory
    segment (``mode="process"``, the mp backend's block-shipping idiom) —
    then :func:`merge_topk` folds the per-shard heaps. Results are
    **exactly** those of the equivalent single :class:`HammingIndex`,
    ids, distances and tie order included.

    ``add()`` streams new codes to the *last* shard (the only one whose
    id range can stay contiguous with the global tail), preserving
    arrival-order ids and therefore the exactness contract; sustained
    ingest will skew that shard's size, so rebuild when balance matters.
    """

    def __init__(
        self,
        codes,
        n_bits: int,
        n_shards: int,
        *,
        mode: str = "thread",
        block: int = DEFAULT_BLOCK,
        ctx_method: str = "fork",
        scan_timeout_s: float | None = None,
    ):
        if mode not in ("thread", "process"):
            raise ValueError(f"mode must be 'thread' or 'process', got {mode!r}")
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if scan_timeout_s is not None and scan_timeout_s < 0:
            raise ValueError(f"scan_timeout_s must be >= 0, got {scan_timeout_s}")
        self.n_bits = int(n_bits)
        self.n_words = (self.n_bits + 63) // 64
        self.n_shards = int(n_shards)
        self.mode = mode
        self.block = int(block)
        #: Per-search deadline in seconds for the whole sharded gather
        #: (None = wait indefinitely, historical behaviour). A shard that
        #: misses it is reported through ``ScanResult.partial`` /
        #: ``coverage`` instead of stalling the search; in process mode
        #: its worker is respawned from the retained shared-memory
        #: segment so the *next* search is full-coverage again.
        self.scan_timeout_s = scan_timeout_s
        #: Shard workers automatically respawned after a deadline miss
        #: or mid-scan death (process mode; diagnostics).
        self.shard_respawns = 0
        packed = _as_packed_codes(codes, self.n_words, n_bits=self.n_bits, name="codes")
        packed = np.ascontiguousarray(packed)
        self._n = len(packed)
        if self._n < self.n_shards:
            raise ValueError(
                f"cannot shard {self._n} codes over {self.n_shards} shards"
            )
        parts = partition_indices(self._n, self.n_shards, shuffle=False)
        self._offsets = [int(idx[0]) for idx in parts]
        self._shard_rows = [len(idx) for idx in parts]
        self._closed = False
        if mode == "thread":
            self._scanners = [
                _ShardScanner(packed[idx[0] : idx[-1] + 1], idx[0], block=self.block)
                for idx in parts
            ]
            self._pool = ThreadPoolExecutor(
                max_workers=self.n_shards, thread_name_prefix="hamming-shard"
            )
        else:
            self._start_workers(packed, parts, ctx_method)

    # ----------------------------------------------------------- process mode
    def _start_workers(self, packed, parts, ctx_method) -> None:
        import multiprocessing as mp

        from repro.distributed.backends.mp import _pack_array_block

        self._ctx = mp.get_context(ctx_method)
        self._segments, self._task_qs, self._pipes, self._procs = [], [], [], []
        # Retained for degraded-mode recovery: the shard descriptors
        # (the shm segments stay mapped until close(), so a replacement
        # worker re-attaches the same bytes) and the tail shard's
        # streamed add blocks, replayed into a respawned tail worker.
        self._descs: list = []
        self._tail_blocks: list = []
        try:
            for idx in parts:
                seg, desc = _pack_array_block([packed[idx[0] : idx[-1] + 1]])
                desc["untrack"] = ctx_method != "fork"
                self._segments.append(seg)
                self._descs.append(desc)
                task_q, reader, proc = self._launch_shard(desc, int(idx[0]))
                self._task_qs.append(task_q)
                self._pipes.append(reader)
                self._procs.append(proc)
        except Exception:
            self.close()
            raise

    def _launch_shard(self, desc, offset: int):
        task_q = self._ctx.Queue()
        reader, writer = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_shard_worker,
            args=(desc, offset, self.block, task_q, writer),
            daemon=True,
        )
        proc.start()
        writer.close()
        return task_q, reader, proc

    def _respawn_worker(self, rank: int) -> None:
        """Replace one shard worker from its retained shm descriptor.

        Called after the worker missed a scan deadline (it may be slow,
        wedged, or dead — all get the same cure) or its pipe reported
        EOF. The old process is terminated so a late result can never
        leak into a later search, and the tail shard's streamed add
        blocks are replayed so the replacement serves the full id range.
        """
        proc = self._procs[rank]
        if proc.is_alive():
            proc.terminate()
        proc.join(timeout=5.0)
        try:
            self._task_qs[rank].close()
        except (ValueError, OSError):
            pass
        self._pipes[rank].close()
        task_q, reader, new_proc = self._launch_shard(
            self._descs[rank], self._offsets[rank]
        )
        self._task_qs[rank] = task_q
        self._pipes[rank] = reader
        self._procs[rank] = new_proc
        self.shard_respawns += 1
        if rank == self.n_shards - 1:
            for codes, off in self._tail_blocks:
                task_q.put(("add", codes, off))
                status, payload = reader.recv()
                if status != "ok":
                    raise RuntimeError(
                        f"tail shard replay failed after respawn: {payload}"
                    )

    def _collect(self, deadline: float | None):
        """Gather per-shard scan results; returns ``(parts, missed)``.

        ``parts`` is ``[(rank, payload), ...]`` for the shards that
        answered; ``missed`` lists shards that blew the deadline or whose
        worker died mid-scan. A shard *error* (bad input, scan bug) still
        raises — that is deterministic breakage, not degradation.
        """
        parts, missed = [], []
        for rank, pipe in enumerate(self._pipes):
            try:
                if deadline is not None and not pipe.poll(
                    max(0.0, deadline - time.monotonic())
                ):
                    missed.append(rank)
                    continue
                status, payload = pipe.recv()
            except (EOFError, OSError):
                missed.append(rank)
                continue
            if status != "ok":
                raise RuntimeError(f"shard {rank} failed: {payload}")
            parts.append((rank, payload))
        return parts, missed

    # ------------------------------------------------------------------- API
    @property
    def n(self) -> int:
        return self._n

    def add(self, codes) -> np.ndarray:
        """Append codes to the tail shard; returns the assigned global ids."""
        packed = _as_packed_codes(codes, self.n_words, n_bits=self.n_bits, name="codes")
        ids = np.arange(self._n, self._n + len(packed), dtype=np.int64)
        if self.mode == "thread":
            self._scanners[-1].append(np.ascontiguousarray(packed), self._n)
        else:
            block = np.ascontiguousarray(packed)
            self._task_qs[-1].put(("add", block, self._n))
            status, payload = self._pipes[-1].recv()
            if status != "ok":
                raise RuntimeError(f"tail shard ingest failed: {payload}")
            # Recorded *after* the ack so a respawned tail worker replays
            # exactly the blocks the dead one had acknowledged.
            self._tail_blocks.append((block, self._n))
        self._shard_rows[-1] += len(packed)
        self._n += len(packed)
        return ids

    def search(self, queries, k: int) -> ScanResult:
        """Exact sharded top-k as a :class:`ScanResult`.

        With ``scan_timeout_s`` unset this is exactly the unsharded
        index's search (full coverage, ``partial=False``). With a
        deadline, shards that miss it are dropped from the merge and
        reported via the result's ``partial`` / ``coverage`` /
        ``shards_missed`` fields; their workers (process mode) are
        respawned from the retained shm segments before returning, so
        coverage recovers by the next call.
        """
        if self._closed:
            raise RuntimeError("index is closed")
        if k > self._n:
            raise ValueError(f"k={k} exceeds index size {self._n}")
        queries = _as_packed_codes(
            queries, self.n_words, n_bits=self.n_bits, name="queries"
        )
        deadline = (
            None
            if self.scan_timeout_s is None
            else time.monotonic() + self.scan_timeout_s
        )
        if self.mode == "thread":
            futures = [
                self._pool.submit(scanner.scan, queries, k)
                for scanner in self._scanners
            ]
            parts, missed = [], []
            for rank, f in enumerate(futures):
                try:
                    if deadline is None:
                        parts.append((rank, f.result()))
                    else:
                        parts.append((rank, f.result(
                            timeout=max(0.0, deadline - time.monotonic())
                        )))
                except _FutureTimeout:
                    # The scan keeps running on its pool thread (threads
                    # cannot be killed); its shard just misses this
                    # result. No respawn needed — the thread pool reuses
                    # the worker once the stale scan finishes.
                    f.cancel()
                    missed.append(rank)
        else:
            for task_q in self._task_qs:
                task_q.put(("scan", queries, k))
            parts, missed = self._collect(deadline)
        if not missed:
            ids, ds = merge_topk([p for _, p in parts], k)
            return ScanResult(ids, ds)
        if self.mode == "process":
            for rank in missed:
                self._respawn_worker(rank)
        covered = self._n - sum(self._shard_rows[r] for r in missed)
        coverage = covered / self._n if self._n else 0.0
        if not parts:
            n_q = len(queries)
            return ScanResult(
                np.empty((n_q, 0), np.int64),
                np.empty((n_q, 0), np.uint16),
                partial=True, coverage=0.0, shards_missed=missed,
            )
        ids, ds = merge_topk([p for _, p in parts], k)
        return ScanResult(
            ids, ds, partial=True, coverage=coverage, shards_missed=missed
        )

    def close(self) -> None:
        """Stop shard workers and release shared-memory segments."""
        if self._closed:
            return
        self._closed = True
        if self.mode == "thread":
            self._pool.shutdown(wait=True)
            return
        for task_q in getattr(self, "_task_qs", []):
            try:
                task_q.put(None)
            except (ValueError, OSError):
                pass
        for proc in getattr(self, "_procs", []):
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - hygiene only
                proc.terminate()
                proc.join(timeout=1.0)
        for task_q in getattr(self, "_task_qs", []):
            task_q.close()
        for pipe in getattr(self, "_pipes", []):
            pipe.close()
        for seg in getattr(self, "_segments", []):
            try:
                seg.close()
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass

    def __enter__(self) -> "ShardedHammingIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort hygiene
        try:
            self.close()
        except Exception:
            pass
