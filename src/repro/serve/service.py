"""Retrieval service: dynamic micro-batching over encode + top-k scan.

The query hot path of the paper's use case (section 3.1): a query vector
is encoded to an L-bit code by the trained binary autoencoder, then its k
Hamming-nearest base codes are returned. Per-query, both steps are tiny —
a (1, D) GEMV and a scan — and Python/launch overhead dominates. The fix
is the same convoy idea as ``repro.distributed.batching``'s W-step
batching, applied to inference: concurrent requests arriving within a
``max_wait_ms`` window (capped at ``max_batch``) coalesce into **one**
stacked encode — a single (B, D) x (D, L) GEMM in the model's
``compute_dtype`` — and **one** shared scan pass over the index.

Batching changes how fast, not what: the scan is exact integer top-k
under the (distance, id) total order, so a request's result depends only
on its own query and the index contents — any arrival interleaving of
the same queries returns the same per-query results (tested). Requests
with different ``k`` share one scan at ``max(k)``; each answer is the
first ``k_i`` columns, exact by the prefix property of a total order.

The per-request machinery is deliberately thin — it *is* the overhead
batching amortises, so it must not reintroduce it. Requests join the
*open* batch directly at submit time (one lock-protected list append),
so a batch shares one completion event and one results pair across all
its tickets: per request there is no ``threading.Event`` allocation (a
measured 60% of a naive submit), no queue hop, no ``concurrent.futures``
machinery, and completion is a single ``event.set()`` per *batch*.
Every :class:`Ticket` slices its own rows out lazily on ``result()``
(on the caller's thread, not the batcher's).

Latency semantics: a request admitted to a batch waits at most
``max_wait_ms`` for company (the window opens at the *first* request of
the batch, closing early when ``max_batch`` is reached), then pays the
shared encode+scan once. Under load the window fills instantly and the
service runs back-to-back full batches — throughput scales with batch
size while the window bounds the idle-time latency tax at exactly
``max_wait_ms``.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

from repro.retrieval.hamming import pack_bits
from repro.serve.index import HammingIndex, ShardedHammingIndex

__all__ = [
    "RetrievalService",
    "ServiceStats",
    "Ticket",
    "ServiceClosed",
    "Overloaded",
]


class ServiceClosed(RuntimeError):
    """The service was closed; new submissions are rejected immediately.

    A ``RuntimeError`` subclass so callers that guarded the old generic
    error keep working; new callers can catch the specific condition.
    """


class Overloaded(RuntimeError):
    """Admission control rejected the request: too many pending queries.

    Raised by :meth:`RetrievalService.submit` when the in-flight count
    has reached ``max_pending`` — a fast, bounded-queue rejection the
    caller can retry or shed, instead of unbounded buffering that turns
    overload into latency collapse for every request.
    """


class _Batch:
    """One micro-batch: requests joined at submit, one shared completion.

    ``items`` grows under the service condition lock while the batch is
    the *open* one; once full (or once the batcher closes its window) it
    is swapped out and never mutated again. One Event and one results
    pair serve every ticket in the batch.
    """

    __slots__ = ("event", "items", "t_first", "ids", "dists", "error",
                 "t_done", "partial", "coverage")

    def __init__(self):
        self.event = threading.Event()
        self.items: list = []
        self.t_first = 0.0
        self.ids = None
        self.dists = None
        self.error: BaseException | None = None
        self.t_done: float | None = None
        self.partial = False
        self.coverage = 1.0


class Ticket:
    """Handle for one submitted query; resolves to ``(ids, dists)``.

    The request joined its batch at submit time, so the ticket is just a
    (batch, row) reference: ``result()`` waits on the batch's shared
    completion event and slices this request's rows out lazily on the
    caller's thread. ``t_done`` is the wall-clock completion instant
    stamped by the batcher — the honest timestamp for open-loop latency
    accounting, independent of when the caller gets around to collecting
    the result.
    """

    __slots__ = ("k", "_batch", "_row")

    def __init__(self, batch: _Batch, row: int, k: int):
        self.k = k
        self._batch = batch
        self._row = row

    def done(self) -> bool:
        return self._batch.event.is_set()

    @property
    def t_done(self) -> float | None:
        return self._batch.t_done

    @property
    def partial(self) -> bool:
        """True if the serving scan missed shard deadlines (degraded mode).

        Meaningful once ``done()``; shared by every ticket of the batch
        (one scan serves them all)."""
        return self._batch.partial

    @property
    def coverage(self) -> float:
        """Fraction of index rows the serving scan actually covered."""
        return self._batch.coverage

    def result(self, timeout: float | None = None):
        batch = self._batch
        if not batch.event.wait(timeout):
            raise TimeoutError("query did not complete in time")
        if batch.error is not None:
            raise batch.error
        return (
            batch.ids[self._row, : self.k].copy(),
            batch.dists[self._row, : self.k].copy(),
        )


class ServiceStats:
    """Counters the batcher thread maintains; read via ``snapshot()``."""

    def __init__(self):
        self.n_queries = 0
        self.n_batches = 0
        self.max_batch_seen = 0
        self.encode_s = 0.0
        self.scan_s = 0.0
        self.n_partial = 0
        self.n_rejected = 0

    def record(
        self, batch_size: int, encode_s: float, scan_s: float, *,
        partial: bool = False,
    ) -> None:
        self.n_queries += batch_size
        self.n_batches += 1
        self.max_batch_seen = max(self.max_batch_seen, batch_size)
        self.encode_s += encode_s
        self.scan_s += scan_s
        if partial:
            self.n_partial += 1

    def snapshot(self) -> dict:
        n_b = max(self.n_batches, 1)
        return {
            "n_queries": self.n_queries,
            "n_batches": self.n_batches,
            "mean_batch": self.n_queries / n_b,
            "max_batch": self.max_batch_seen,
            "encode_s": self.encode_s,
            "scan_s": self.scan_s,
            "n_partial": self.n_partial,
            "n_rejected": self.n_rejected,
        }


class RetrievalService:
    """Micro-batched encode + Hamming top-k retrieval over a trained model.

    Parameters
    ----------
    model :
        Trained hash model exposing ``encode(X) -> (n, L) uint8`` and
        (optionally) ``compute_dtype`` — a ``BinaryAutoencoder`` or any
        of the baseline hashes. Queries are stacked and cast once per
        batch, so the encode reuses the model's configured precision.
    index : HammingIndex | ShardedHammingIndex
        The packed-code index to scan. Built by the caller (see
        :meth:`from_data` for the one-liner) so the sharding mode, block
        size and ingest history stay under the caller's control.
    k : int
        Default neighbours per query (overridable per request).
    max_wait_ms : float
        Batching window: how long the first request of a batch waits for
        company before the batch is served regardless of size.
    max_batch : int
        Hard batch-size cap; a full window closes early.
    max_pending : int | None
        Admission-control cap on in-flight queries (submitted, not yet
        served). ``submit`` raises :class:`Overloaded` immediately when
        the cap is hit — bounded queueing instead of latency collapse.
        ``None`` (the default) disables the cap.
    """

    def __init__(
        self,
        model,
        index,
        *,
        k: int = 10,
        max_wait_ms: float = 2.0,
        max_batch: int = 64,
        max_pending: int | None = None,
    ):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1 or None, got {max_pending}")
        if not isinstance(index, (HammingIndex, ShardedHammingIndex)):
            raise TypeError(f"index must be a Hamming index, got {type(index)!r}")
        self.model = model
        self.index = index
        self.k = int(k)
        self.max_wait_s = float(max_wait_ms) / 1e3
        self.max_batch = int(max_batch)
        self.max_pending = None if max_pending is None else int(max_pending)
        self.stats = ServiceStats()
        self._open = _Batch()
        self._ready: deque[_Batch] = deque()
        self._pending = 0
        self._cond = threading.Condition()
        self._index_lock = threading.Lock()
        self._closed = False
        self._batcher = threading.Thread(
            target=self._loop, name="retrieval-batcher", daemon=True
        )
        self._batcher.start()

    @classmethod
    def from_data(
        cls,
        model,
        X_base: np.ndarray,
        *,
        n_shards: int = 1,
        shard_mode: str = "thread",
        encode_batch: int = 4096,
        block: int | None = None,
        scan_timeout_s: float | None = None,
        **kwargs,
    ) -> "RetrievalService":
        """Encode a base set in batches and stand up a service over it."""
        X_base = np.asarray(X_base)
        code_blocks = [
            model.encode(X_base[start : start + encode_batch])
            for start in range(0, len(X_base), encode_batch)
        ]
        n_bits = code_blocks[0].shape[1]
        packed = np.concatenate([pack_bits(blk) for blk in code_blocks])
        index_kwargs = {} if block is None else {"block": block}
        if n_shards == 1:
            index = HammingIndex.from_codes(packed, n_bits, **index_kwargs)
        else:
            index = ShardedHammingIndex(
                packed, n_bits, n_shards, mode=shard_mode,
                scan_timeout_s=scan_timeout_s, **index_kwargs
            )
        return cls(model, index, **kwargs)

    # ------------------------------------------------------------------- API
    def submit(self, x: np.ndarray, k: int | None = None) -> Ticket:
        """Enqueue one query vector; returns its :class:`Ticket`."""
        x = np.asarray(x)
        if x.ndim != 1:
            raise ValueError(f"x must be a single 1-d query vector, got shape {x.shape}")
        k = self.k if k is None else int(k)
        if k < 1 or k > self.index.n:
            raise ValueError(f"k={k} out of range for index of size {self.index.n}")
        with self._cond:
            if self._closed:
                raise ServiceClosed("service is closed")
            if self.max_pending is not None and self._pending >= self.max_pending:
                self.stats.n_rejected += 1
                raise Overloaded(
                    f"{self._pending} queries in flight (max_pending="
                    f"{self.max_pending}); retry later or shed load"
                )
            self._pending += 1
            batch = self._open
            row = len(batch.items)
            batch.items.append((x, k))
            # Wake the batcher only at the two edges it sleeps on: a
            # batch opening (its window starts now) and a batch filling
            # (serve it without waiting out the window).
            if row == 0:
                batch.t_first = time.perf_counter()
                self._cond.notify()
            elif row + 1 >= self.max_batch:
                self._ready.append(batch)
                self._open = _Batch()
                self._cond.notify()
        return Ticket(batch, row, k)

    def query(self, x: np.ndarray, k: int | None = None, *, timeout: float = 30.0):
        """Blocking single-query convenience around :meth:`submit`."""
        return self.submit(x, k).result(timeout=timeout)

    def add(self, X_new: np.ndarray) -> np.ndarray:
        """Ingest new base vectors (encode + pack + index.add); returns ids.

        Serialised against in-flight scans so a batch sees the index
        either before or after the ingest, never mid-append.
        """
        X_new = np.asarray(X_new)
        codes = pack_bits(self.model.encode(X_new))
        with self._index_lock:
            return self.index.add(codes)

    def close(self, timeout: float = 30.0) -> None:
        """Drain in-flight requests, stop the batcher, release the index.

        Raises :class:`TimeoutError` if the batcher fails to drain within
        ``timeout`` seconds, naming how many tickets are still in flight;
        the index is *not* released in that case (scans may still be
        touching it) — call ``close`` again to retry the drain.
        """
        with self._cond:
            self._closed = True
            self._cond.notify()
        self._batcher.join(timeout=timeout)
        if self._batcher.is_alive():
            with self._cond:
                n_inflight = self._pending
            raise TimeoutError(
                f"close() timed out after {timeout:g}s with {n_inflight} "
                f"in-flight ticket(s) still unserved"
            )
        if isinstance(self.index, ShardedHammingIndex):
            self.index.close()

    def __enter__(self) -> "RetrievalService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # --------------------------------------------------------------- batcher
    def _gather(self) -> _Batch | None:
        """Block for the next batch: the first request opens the window."""
        with self._cond:
            while True:
                if self._ready:
                    return self._ready.popleft()
                if self._open.items:
                    if not self._closed and self.max_wait_s > 0:
                        remaining = (
                            self._open.t_first + self.max_wait_s
                            - time.perf_counter()
                        )
                        if remaining > 0:
                            self._cond.wait(timeout=remaining)
                            continue
                    batch = self._open
                    self._open = _Batch()
                    return batch
                if self._closed:
                    return None
                # Timed wait (DEADLINE): an untimed wait here would wedge
                # the batcher forever if a submit-side notify were ever
                # lost; the periodic wake just re-checks and sleeps again.
                self._cond.wait(timeout=0.5)

    def _serve(self, batch: _Batch) -> None:
        items = batch.items
        try:
            dtype = getattr(self.model, "compute_dtype", np.float64)
            X = np.asarray(np.stack([x for x, _ in items]), dtype=dtype)
            t0 = time.perf_counter()
            packed = pack_bits(self.model.encode(X))
            t1 = time.perf_counter()
            with self._index_lock:
                res = self.index.search(packed, max(k for _, k in items))
            t2 = time.perf_counter()
            ids, dists = res
            batch.partial = bool(getattr(res, "partial", False))
            batch.coverage = float(getattr(res, "coverage", 1.0))
            self.stats.record(len(items), t1 - t0, t2 - t1, partial=batch.partial)
            batch.ids, batch.dists = ids, dists
        except BaseException as exc:
            batch.error = exc
        with self._cond:
            self._pending -= len(items)
        batch.t_done = time.perf_counter()
        batch.event.set()

    def _loop(self) -> None:
        while True:
            batch = self._gather()
            if batch is None:
                return
            self._serve(batch)
