"""Open-loop Poisson load generation and latency/throughput accounting.

An open-loop generator submits request i at its *scheduled* arrival time
regardless of whether earlier requests completed — the queueing-theory
honest way to measure a service (a closed loop self-throttles when the
service slows down, hiding exactly the latencies one is trying to
measure). Arrivals are Poisson: i.i.d. exponential inter-arrival gaps at
the offered rate. Latency for a request is measured from its scheduled
arrival to completion, so queueing delay under overload is charged to the
service, not forgiven.

``LatencyStats`` / ``ThroughputStats`` follow the percentile-accounting
shape ROADMAP points at (p50/p95/p99 + rows/s); both render to plain
dicts for the ``BENCH_serve.json`` summaries.
"""

from __future__ import annotations

import time

import numpy as np

from repro.utils.rng import check_random_state

__all__ = ["LatencyStats", "ThroughputStats", "poisson_arrivals", "run_open_loop"]


class LatencyStats:
    """Latency sample accumulator with percentile reporting."""

    def __init__(self):
        self._samples: list[float] = []

    def record(self, seconds: float) -> None:
        self._samples.append(float(seconds))

    @property
    def n(self) -> int:
        return len(self._samples)

    def percentile(self, q: float) -> float:
        if not self._samples:
            raise ValueError("no latency samples recorded")
        return float(np.percentile(np.asarray(self._samples), q))

    @property
    def p50(self) -> float:
        return self.percentile(50.0)

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    @property
    def p99(self) -> float:
        return self.percentile(99.0)

    @property
    def mean(self) -> float:
        if not self._samples:
            raise ValueError("no latency samples recorded")
        return float(np.mean(self._samples))

    def summary(self, *, scale: float = 1e3) -> dict:
        """Percentile summary; ``scale=1e3`` reports milliseconds."""
        return {
            "n": self.n,
            "mean_ms": self.mean * scale,
            "p50_ms": self.p50 * scale,
            "p95_ms": self.p95 * scale,
            "p99_ms": self.p99 * scale,
            "max_ms": float(max(self._samples)) * scale,
        }


class ThroughputStats:
    """Completed-rows-over-wall-clock accounting."""

    def __init__(self):
        self.rows = 0
        self._t0: float | None = None
        self._t1: float | None = None

    def start(self) -> None:
        self._t0 = time.perf_counter()

    def record(self, n_rows: int = 1) -> None:
        if self._t0 is None:
            self.start()
        self.rows += int(n_rows)
        self._t1 = time.perf_counter()

    @property
    def elapsed_s(self) -> float:
        if self._t0 is None or self._t1 is None:
            return 0.0
        return self._t1 - self._t0

    @property
    def rows_per_s(self) -> float:
        elapsed = self.elapsed_s
        return self.rows / elapsed if elapsed > 0 else 0.0

    def summary(self) -> dict:
        return {
            "rows": self.rows,
            "elapsed_s": self.elapsed_s,
            "rows_per_s": self.rows_per_s,
        }


def poisson_arrivals(rate_qps: float, n: int, *, rng=None) -> np.ndarray:
    """``n`` Poisson arrival times (seconds from start) at ``rate_qps``."""
    if rate_qps <= 0:
        raise ValueError(f"rate_qps must be > 0, got {rate_qps}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    rng = check_random_state(rng)
    return np.cumsum(rng.exponential(scale=1.0 / rate_qps, size=n))


def run_open_loop(
    service,
    queries: np.ndarray,
    rate_qps: float,
    *,
    k: int | None = None,
    n_requests: int | None = None,
    rng=None,
    timeout_s: float = 60.0,
) -> dict:
    """Drive ``service`` open-loop at ``rate_qps`` and account the run.

    Queries are drawn round-robin from ``queries`` (one submission per
    arrival; ``n_requests`` defaults to ``len(queries)``). Returns a dict
    with offered/achieved rates and the latency percentile summary. The
    submitting loop never blocks on results — each ticket's completion
    instant is stamped by the batcher thread (``Ticket.t_done``) — so a
    saturated service shows up as growing latency, not a lower offered
    rate.
    """
    queries = np.asarray(queries)
    if queries.ndim != 2:
        raise ValueError(f"queries must be 2-dimensional, got shape {queries.shape}")
    n_requests = len(queries) if n_requests is None else int(n_requests)
    arrivals = poisson_arrivals(rate_qps, n_requests, rng=rng)

    latency = LatencyStats()
    throughput = ThroughputStats()

    t_start = time.perf_counter()
    throughput.start()
    tickets = []
    for i in range(n_requests):
        t_sched = t_start + arrivals[i]
        delay = t_sched - time.perf_counter()
        if delay > 0:
            time.sleep(delay)
        tickets.append((t_sched, service.submit(queries[i % len(queries)], k)))
    for t_sched, ticket in tickets:
        ticket.result(timeout=timeout_s)
        latency.record(ticket.t_done - t_sched)
        throughput.record(1)
    elapsed = time.perf_counter() - t_start
    return {
        "offered_qps": rate_qps,
        "achieved_qps": n_requests / elapsed,
        "n_requests": n_requests,
        "elapsed_s": elapsed,
        "latency": latency.summary(),
        "throughput": throughput.summary(),
    }
