"""Linear support vector machine trained by stochastic gradient descent.

Each bit of the BA encoder is a single-bit hash function fit as a binary
linear SVM predicting that bit of ``Z`` from ``X`` (paper section 3.1). The
paper trains these with Bottou's SVMSGD; we implement the same primal
objective and schedule:

    J(w, b) = (lam / 2) ||w||^2 + (1/n) sum_i max(0, 1 - y_i (w.x_i + b))

with labels ``y in {-1, +1}``, minibatch subgradient steps and the schedule
``eta_t = eta0 / (1 + lam eta0 t)``. The bias is not regularised.
"""

from __future__ import annotations

import numpy as np

from repro.optim.schedules import BottouSchedule
from repro.optim.sgd import SGDState, sgd_epoch
from repro.utils.rng import check_random_state
from repro.utils.validation import check_array, check_float_dtype, check_positive

__all__ = ["LinearSVM", "hinge_loss", "svm_objective"]


def hinge_loss(scores: np.ndarray, y: np.ndarray) -> float:
    """Mean hinge loss ``mean(max(0, 1 - y * scores))``."""
    return float(np.maximum(0.0, 1.0 - y * scores).mean())


def svm_objective(w: np.ndarray, b: float, X: np.ndarray, y: np.ndarray, lam: float) -> float:
    """Primal SVM objective (regulariser + mean hinge loss)."""
    return 0.5 * lam * float(w @ w) + hinge_loss(X @ w + b, y)


class LinearSVM:
    """Binary linear SVM with hinge loss, L2 regularisation and SGD training.

    Parameters
    ----------
    n_features : int
        Input dimension D.
    lam : float
        L2 regularisation strength (the lambda in Bottou's schedule).
    schedule : optional
        Step-size schedule with a ``rate(t)`` method; defaults to
        :class:`~repro.optim.schedules.BottouSchedule` with this ``lam``.
    dtype : float dtype, optional
        Compute precision of the parameters and every SGD step (paper
        section 9: reduced-precision storage and computation); default
        float64.

    Attributes
    ----------
    w : ndarray of shape (n_features,)
        Weight vector.
    b : scalar of ``dtype``
        Unregularised bias.
    """

    def __init__(self, n_features: int, *, lam: float = 1e-4, schedule=None,
                 dtype=np.float64):
        if n_features < 1:
            raise ValueError(f"n_features must be >= 1, got {n_features}")
        self.n_features = int(n_features)
        self.lam = check_positive(lam, name="lam")
        self.schedule = schedule if schedule is not None else BottouSchedule(lam=self.lam)
        self.dtype = check_float_dtype(dtype)
        self.w = np.zeros(self.n_features, dtype=self.dtype)
        self.b = self.dtype.type(0.0)

    # ------------------------------------------------------------------ API
    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Signed scores ``X @ w + b``."""
        return X @ self.w + self.b

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted labels in {-1, +1} (score 0 maps to +1, matching the
        step function convention of the BA encoder)."""
        return np.where(self.decision_function(X) >= 0.0, 1, -1).astype(np.int8)

    def objective(self, X: np.ndarray, y: np.ndarray) -> float:
        """Primal objective value on ``(X, y)``."""
        return svm_objective(self.w, self.b, X, y, self.lam)

    # ------------------------------------------------------------ training
    def _step(self, X: np.ndarray, y: np.ndarray, eta: float) -> None:
        """One minibatch subgradient step at step size ``eta``."""
        eta = self.dtype.type(eta)
        scores = X @ self.w + self.b
        active = (y * scores) < 1.0
        m = len(y)
        grad_w = self.lam * self.w
        if active.any():
            ya = y[active]
            grad_w = grad_w - (ya @ X[active]) / m
            grad_b = -ya.sum() / m
        else:
            grad_b = self.dtype.type(0.0)
        self.w -= eta * grad_w
        self.b = self.b - eta * grad_b

    def partial_fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        state: SGDState,
        *,
        batch_size: int = 32,
        shuffle: bool = True,
        rng=None,
    ) -> SGDState:
        """One SGD pass over a shard, continuing the carried ``state``.

        This is the unit of work a travelling ParMAC submodel performs on
        each machine it visits.
        """
        X = check_array(X, name="X", dtype=self.dtype)
        y = np.asarray(y, dtype=self.dtype).ravel()
        if len(y) != len(X):
            raise ValueError(f"X has {len(X)} rows but y has {len(y)} labels")
        if len(y) and not np.isin(y, (-1.0, 1.0)).all():
            raise ValueError("y must contain only -1/+1 labels")

        def update(idx, t):
            self._step(X[idx], y[idx], self.schedule.rate(t))

        return sgd_epoch(
            update, len(X), state, batch_size=batch_size, shuffle=shuffle, rng=rng
        )

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        epochs: int = 5,
        batch_size: int = 32,
        shuffle: bool = True,
        rng=None,
    ) -> "LinearSVM":
        """Train for ``epochs`` full passes over ``(X, y)``."""
        rng = check_random_state(rng)
        state = SGDState()
        for _ in range(epochs):
            self.partial_fit(
                X, y, state, batch_size=batch_size, shuffle=shuffle, rng=rng
            )
        return self

    # -------------------------------------------------------- (de)serialise
    def get_params(self) -> np.ndarray:
        """Flat parameter vector ``[w, b]`` (what travels over the ring)."""
        return np.concatenate([self.w, np.asarray([self.b], dtype=self.dtype)])

    def set_params(self, theta: np.ndarray) -> None:
        theta = np.asarray(theta, dtype=self.dtype).ravel()
        if theta.shape != (self.n_features + 1,):
            raise ValueError(
                f"expected {self.n_features + 1} parameters, got {theta.shape}"
            )
        self.w = theta[:-1].copy()
        self.b = theta[-1]
