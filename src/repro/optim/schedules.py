"""Step-size schedules for stochastic gradient descent.

The paper trains the BA encoder/decoder with the SGD code of Bottou &
Bousquet (2008), whose schedule is ``eta_t = eta0 / (1 + lambda * eta0 * t)``
with ``eta0`` tuned automatically by probing the first 1000 data points
(paper section 8.1). ParMAC's convergence argument (section 6) requires
Robbins–Monro conditions: ``eta_t -> 0``, ``sum eta_t = inf``,
``sum eta_t^2 < inf``. Both are provided here, along with the machinery to
verify the conditions symbolically for power-law schedules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive

__all__ = [
    "ConstantSchedule",
    "BottouSchedule",
    "InverseSchedule",
    "RobbinsMonroSchedule",
    "is_robbins_monro",
    "tune_eta0",
]


@dataclass(frozen=True)
class ConstantSchedule:
    """Fixed step size ``eta_t = eta0``.

    Not Robbins–Monro; useful for short runs and for the exact-gradient
    ablation where convergence is governed by the penalty method instead.
    """

    eta0: float = 0.01

    def __post_init__(self):
        check_positive(self.eta0, name="eta0")

    def rate(self, t: int) -> float:
        return self.eta0


@dataclass(frozen=True)
class BottouSchedule:
    """Bottou's SVMSGD schedule ``eta_t = eta0 / (1 + lambda * eta0 * t)``.

    ``t`` counts individual SGD steps (minibatches). With ``lam > 0`` this is
    asymptotically ``1/(lambda t)``, the optimal rate for strongly convex
    problems, and satisfies the Robbins–Monro conditions.
    """

    eta0: float = 0.1
    lam: float = 1e-4

    def __post_init__(self):
        check_positive(self.eta0, name="eta0")
        check_positive(self.lam, name="lam")

    def rate(self, t: int) -> float:
        return self.eta0 / (1.0 + self.lam * self.eta0 * t)


@dataclass(frozen=True)
class InverseSchedule:
    """Power-law schedule ``eta_t = eta0 / (1 + t/t0) ** power``."""

    eta0: float = 0.1
    power: float = 1.0
    t0: float = 1.0

    def __post_init__(self):
        check_positive(self.eta0, name="eta0")
        check_positive(self.power, name="power")
        check_positive(self.t0, name="t0")

    def rate(self, t: int) -> float:
        return self.eta0 / (1.0 + t / self.t0) ** self.power


# Robbins–Monro requires sum eta_t = inf (power <= 1) and
# sum eta_t^2 < inf (2 * power > 1).
RobbinsMonroSchedule = InverseSchedule


def is_robbins_monro(schedule) -> bool:
    """Check Robbins–Monro conditions for the schedules defined here.

    Returns True when ``lim eta_t = 0``, ``sum eta_t = inf`` and
    ``sum eta_t^2 < inf`` hold. For power-law schedules that is exactly
    ``0.5 < power <= 1``; Bottou's schedule is the ``power = 1`` case.
    Unknown schedule types raise ``TypeError`` rather than guessing.
    """
    if isinstance(schedule, ConstantSchedule):
        return False
    if isinstance(schedule, BottouSchedule):
        return True
    if isinstance(schedule, InverseSchedule):
        return 0.5 < schedule.power <= 1.0
    raise TypeError(f"unknown schedule type {type(schedule)!r}")


def tune_eta0(
    probe_loss,
    candidates=None,
) -> float:
    """Pick ``eta0`` by probing, following Bottou's SVMSGD heuristic.

    Parameters
    ----------
    probe_loss : callable
        ``probe_loss(eta0) -> float`` runs a short SGD pass (the paper uses
        the first 1000 points) with the candidate step size and returns the
        resulting loss. Non-finite losses are treated as +inf (divergence).
    candidates : array-like of float, optional
        Geometric grid to try; defaults to ``2.0 ** arange(-10, 5)``.

    Returns
    -------
    float
        The candidate achieving the smallest probe loss.
    """
    if candidates is None:
        candidates = 2.0 ** np.arange(-10, 5, dtype=np.float64)
    candidates = np.asarray(list(candidates), dtype=np.float64)
    if candidates.size == 0:
        raise ValueError("candidates must be non-empty")
    losses = []
    for eta0 in candidates:
        loss = probe_loss(float(eta0))
        losses.append(loss if np.isfinite(loss) else np.inf)
    losses = np.asarray(losses)
    if not np.isfinite(losses).any():
        raise RuntimeError("all candidate step sizes diverged during probing")
    return float(candidates[int(np.argmin(losses))])
