"""Stochastic optimisation substrate for the W step.

This package implements, from scratch, the single-layer trainers that MAC
reuses as black boxes (paper section 3.1): linear SVMs trained with
Bottou-style SGD (the paper uses the SVMSGD code of Bottou & Bousquet) and
linear least-squares regressors (SGD and closed form), plus the step-size
schedules and minibatch machinery they share.
"""

from repro.optim.schedules import (
    BottouSchedule,
    ConstantSchedule,
    InverseSchedule,
    RobbinsMonroSchedule,
    is_robbins_monro,
    tune_eta0,
)
from repro.optim.sgd import SGDState, minibatch_indices, sgd_epoch
from repro.optim.svm import LinearSVM, hinge_loss, svm_objective
from repro.optim.linreg import LinearRegression, squared_loss

__all__ = [
    "BottouSchedule",
    "ConstantSchedule",
    "InverseSchedule",
    "RobbinsMonroSchedule",
    "is_robbins_monro",
    "tune_eta0",
    "SGDState",
    "minibatch_indices",
    "sgd_epoch",
    "LinearSVM",
    "hinge_loss",
    "svm_objective",
    "LinearRegression",
    "squared_loss",
]
