"""Multi-output linear least-squares regression: closed form and SGD.

The BA decoder ``f(z) = B z + c`` consists of D independent linear
regressors mapping the L-bit code back to one input dimension each (paper
section 3.1). Serial MAC fits them exactly by least squares; ParMAC fits
them with SGD as they travel the ring.

The objective per output dimension is mean squared error with optional L2
regularisation on the weights (not the intercept):

    J(W, c) = (1/n) sum_i ||x_i - W z_i - c||^2 + lam ||W||_F^2
"""

from __future__ import annotations

import numpy as np

from repro.optim.schedules import InverseSchedule
from repro.optim.sgd import SGDState, sgd_epoch
from repro.utils.rng import check_random_state
from repro.utils.validation import check_array, check_float_dtype

__all__ = ["LinearRegression", "squared_loss"]


def squared_loss(pred: np.ndarray, target: np.ndarray) -> float:
    """Mean squared error ``mean(||pred - target||^2)`` over rows."""
    diff = pred - target
    return float((diff * diff).sum() / len(target))


class LinearRegression:
    """Linear map ``y = x @ W.T + c`` with least-squares / SGD training.

    Parameters
    ----------
    n_inputs, n_outputs : int
        Input and output dimensions.
    lam : float
        L2 regularisation on ``W`` (0 disables it; the closed-form solve
        then uses plain ``lstsq``).
    dtype : float dtype, optional
        Compute precision of the parameters and every SGD step; default
        float64.

    Attributes
    ----------
    W : ndarray of shape (n_outputs, n_inputs)
    c : ndarray of shape (n_outputs,)
    """

    def __init__(self, n_inputs: int, n_outputs: int, *, lam: float = 0.0,
                 schedule=None, dtype=np.float64):
        if n_inputs < 1 or n_outputs < 1:
            raise ValueError(
                f"n_inputs and n_outputs must be >= 1, got {n_inputs}, {n_outputs}"
            )
        if lam < 0:
            raise ValueError(f"lam must be >= 0, got {lam}")
        self.n_inputs = int(n_inputs)
        self.n_outputs = int(n_outputs)
        self.lam = float(lam)
        self.schedule = schedule if schedule is not None else InverseSchedule(eta0=0.1, t0=100.0)
        self.dtype = check_float_dtype(dtype)
        self.W = np.zeros((self.n_outputs, self.n_inputs), dtype=self.dtype)
        self.c = np.zeros(self.n_outputs, dtype=self.dtype)

    # ------------------------------------------------------------------ API
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Apply the linear map to rows of ``X``."""
        return X @ self.W.T + self.c

    def objective(self, X: np.ndarray, Y: np.ndarray) -> float:
        """Mean squared error plus the L2 penalty."""
        return squared_loss(self.predict(X), Y) + self.lam * float((self.W * self.W).sum())

    # -------------------------------------------------------- exact solve
    def fit_lstsq(self, X: np.ndarray, Y: np.ndarray) -> "LinearRegression":
        """Exact (regularised) least-squares fit.

        Solves ``min_W,c (1/n)||Y - X W^T - c||^2 + lam ||W||^2`` via the
        normal equations on the augmented design matrix; the intercept
        column is not regularised.
        """
        X = check_array(X, name="X", dtype=self.dtype)
        Y = np.asarray(Y, dtype=self.dtype)
        if Y.ndim == 1:
            Y = Y[:, None]
        if len(X) != len(Y):
            raise ValueError(f"X has {len(X)} rows but Y has {len(Y)}")
        n = len(X)
        if n == 0:
            raise ValueError("cannot fit on an empty dataset")
        A = np.hstack([X, np.ones((n, 1), dtype=self.dtype)])
        if self.lam > 0:
            reg = np.eye(self.n_inputs + 1, dtype=self.dtype) * (n * self.lam)
            reg[-1, -1] = 0.0  # do not regularise the intercept
            G = A.T @ A + reg
            theta = np.linalg.solve(G, A.T @ Y)
        else:
            theta, *_ = np.linalg.lstsq(A, Y, rcond=None)
        self.W = np.ascontiguousarray(theta[:-1].T)
        self.c = theta[-1].copy()
        return self

    # ------------------------------------------------------------ training
    def _step(self, X: np.ndarray, Y: np.ndarray, eta: float) -> None:
        """One minibatch gradient step on the MSE objective."""
        eta = self.dtype.type(eta)
        m = len(X)
        resid = X @ self.W.T + self.c - Y  # (m, n_outputs)
        grad_W = (2.0 / m) * resid.T @ X + 2.0 * self.lam * self.W
        grad_c = (2.0 / m) * resid.sum(axis=0)
        self.W -= eta * grad_W
        self.c -= eta * grad_c

    def partial_fit(
        self,
        X: np.ndarray,
        Y: np.ndarray,
        state: SGDState,
        *,
        batch_size: int = 32,
        shuffle: bool = True,
        rng=None,
    ) -> SGDState:
        """One SGD pass over a shard, continuing the carried ``state``."""
        X = check_array(X, name="X", dtype=self.dtype)
        Y = np.asarray(Y, dtype=self.dtype)
        if Y.ndim == 1:
            Y = Y[:, None]
        if len(X) != len(Y):
            raise ValueError(f"X has {len(X)} rows but Y has {len(Y)}")

        def update(idx, t):
            self._step(X[idx], Y[idx], self.schedule.rate(t))

        return sgd_epoch(
            update, len(X), state, batch_size=batch_size, shuffle=shuffle, rng=rng
        )

    def fit_sgd(
        self,
        X: np.ndarray,
        Y: np.ndarray,
        *,
        epochs: int = 5,
        batch_size: int = 32,
        shuffle: bool = True,
        rng=None,
    ) -> "LinearRegression":
        """Train for ``epochs`` full SGD passes."""
        rng = check_random_state(rng)
        state = SGDState()
        for _ in range(epochs):
            self.partial_fit(X, Y, state, batch_size=batch_size, shuffle=shuffle, rng=rng)
        return self

    # -------------------------------------------------------- (de)serialise
    def get_params(self) -> np.ndarray:
        """Flat parameter vector ``[W.ravel(), c]``."""
        return np.concatenate([self.W.ravel(), self.c])

    def set_params(self, theta: np.ndarray) -> None:
        theta = np.asarray(theta, dtype=self.dtype).ravel()
        expect = self.n_outputs * self.n_inputs + self.n_outputs
        if theta.shape != (expect,):
            raise ValueError(f"expected {expect} parameters, got {theta.shape}")
        k = self.n_outputs * self.n_inputs
        self.W = theta[:k].reshape(self.n_outputs, self.n_inputs).copy()
        self.c = theta[k:].copy()
