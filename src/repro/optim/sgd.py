"""Generic minibatch SGD machinery.

ParMAC's W step is "really carrying out stochastic steps for each submodel"
(paper section 4.1): a submodel visits machines in ring order and performs
SGD updates on each machine's shard, with minibatches of at most ``N/P``
points. The step counter must therefore persist *across* machine visits —
:class:`SGDState` carries it (and nothing else mutable) inside the submodel
message as it circulates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import check_random_state

__all__ = ["SGDState", "minibatch_indices", "sgd_epoch"]


@dataclass
class SGDState:
    """Mutable SGD bookkeeping carried along with a travelling submodel.

    Attributes
    ----------
    t : int
        Number of SGD steps (minibatches) taken so far, across all machines
        and epochs. Drives the step-size schedule.
    n_updates : int
        Number of individual example contributions (sum of minibatch sizes).
    """

    t: int = 0
    n_updates: int = 0

    def advance(self, batch_size: int) -> None:
        self.t += 1
        self.n_updates += int(batch_size)

    def copy(self) -> "SGDState":
        return SGDState(t=self.t, n_updates=self.n_updates)


def minibatch_indices(n: int, batch_size: int, *, shuffle: bool = True, rng=None):
    """Yield minibatches of at most ``batch_size`` indices covering ``range(n)``.

    With ``shuffle`` the order of points is randomised (within-machine
    shuffling, paper section 4.3); the final batch may be smaller.

    Batches are yielded lazily: one epoch over a large shard allocates a
    single permutation when shuffling and only per-batch index arrays when
    not — never a full list of every batch (the W step runs this once per
    submodel per machine visit, so the old eager list was a hot-path
    allocation). Argument validation still happens eagerly at the call
    site, and the shuffle order is drawn exactly once, before the first
    batch is yielded.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if shuffle:
        rng = check_random_state(rng)

        def batches():
            order = np.arange(n, dtype=np.intp)
            rng.shuffle(order)
            for i in range(0, n, batch_size):
                yield order[i : i + batch_size]

    else:

        def batches():
            for i in range(0, n, batch_size):
                yield np.arange(i, min(i + batch_size, n), dtype=np.intp)

    return batches()


def sgd_epoch(
    update,
    n: int,
    state: SGDState,
    *,
    batch_size: int = 32,
    shuffle: bool = True,
    rng=None,
) -> SGDState:
    """Run one pass of minibatch SGD over a shard of ``n`` points.

    Parameters
    ----------
    update : callable
        ``update(idx, t)`` applies one SGD step on the points with local
        indices ``idx`` using global step counter ``t``. The callable owns
        the parameters; this function owns ordering and bookkeeping.
    n : int
        Shard size.
    state : SGDState
        Carried step counter; mutated in place and returned.
    """
    for idx in minibatch_indices(n, batch_size, shuffle=shuffle, rng=rng):
        update(idx, state.t)
        state.advance(len(idx))
    return state
