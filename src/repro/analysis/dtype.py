"""DTYPE — dtype discipline on compute-path modules.

PR 6 threaded ``compute_dtype``/``message_dtype`` end to end so the
batched W step and the TCP wire can run float32 while parity tests pin
float64. A dtype-less constructor silently re-introduces float64: numpy
defaults ``np.zeros(n)`` to float64 and the next matmul upcasts the
whole chain, costing memory bandwidth and breaking the mixed-precision
benchmark's premise.

* **DTYPE001** — ``np.zeros/empty/ones/full/arange`` without ``dtype=``,
  and ``np.array`` on a *literal* list/tuple/comprehension without
  ``dtype=`` (array-of-an-existing-array keeps its input's dtype and is
  exempt). An immediate ``.astype(...)`` on the result is also exempt —
  the dtype is explicit, just spelled as a cast.
* **DTYPE002** — arithmetic with an explicit ``np.float64(...)`` scalar
  operand: upcasts any compute_dtype array it touches.

Index arrays want a dtype too (``np.intp`` for indexing, ``np.int64``
for wire formats) — platform-default ``arange`` is int32 on Windows,
which is exactly the class of drift the parity suite cannot see on CI's
Linux runners.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, SourceFile, parent_of
from repro.analysis.scopes import is_compute_path

__all__ = ["check_dtype"]

# constructor -> 1-based position of its positional dtype parameter
_CONSTRUCTORS = {
    "numpy.zeros": 2,
    "numpy.empty": 2,
    "numpy.ones": 2,
    "numpy.full": 3,
    "numpy.arange": 4,
    "numpy.array": 2,
}

_LITERALS = (ast.List, ast.Tuple, ast.ListComp, ast.GeneratorExp, ast.Set)


def _has_dtype(node: ast.Call, dtype_pos: int) -> bool:
    if any(kw.arg == "dtype" for kw in node.keywords):
        return True
    # np.empty((n, 0), np.int64) — dtype passed positionally.
    return len(node.args) >= dtype_pos


def _immediately_cast(node: ast.Call) -> bool:
    """True for ``np.zeros(n).astype(cd)`` — dtype explicit via cast."""
    parent = parent_of(node)
    if isinstance(parent, ast.Attribute) and parent.attr in ("astype", "view"):
        grand = parent_of(parent)
        return isinstance(grand, ast.Call) and grand.func is parent
    return False


def check_dtype(sf: SourceFile) -> list[Finding]:
    if not is_compute_path(sf.path):
        return []
    out: list[Finding] = []
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.Call):
            resolved = sf.symbols.resolve(node.func)
            dtype_pos = _CONSTRUCTORS.get(resolved or "")
            if dtype_pos is None:
                continue
            if _has_dtype(node, dtype_pos) or _immediately_cast(node):
                continue
            if resolved == "numpy.array":
                # np.array(existing_array) preserves dtype; only literal
                # payloads get numpy's inference default.
                if not (node.args and isinstance(node.args[0], _LITERALS)):
                    continue
            leaf = resolved.rsplit(".", 1)[1]
            out.append(
                sf.finding(
                    "DTYPE001",
                    node,
                    f"np.{leaf}(...) without dtype= on a compute path "
                    "defaults to float64 (platform int for arange); "
                    "state the dtype explicitly",
                )
            )
        elif isinstance(node, ast.BinOp):
            for operand in (node.left, node.right):
                if (
                    isinstance(operand, ast.Call)
                    and sf.symbols.resolve(operand.func) == "numpy.float64"
                ):
                    out.append(
                        sf.finding(
                            "DTYPE002",
                            node,
                            "arithmetic with an np.float64(...) scalar "
                            "upcasts compute_dtype arrays; cast to the "
                            "array's dtype instead",
                        )
                    )
                    break
    return out
