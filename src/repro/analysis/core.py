"""Analysis framework: findings, parsed files, symbol resolution, runner.

The framework is deliberately repo-specific, not a general linter: rules
know which modules carry which contracts (see :mod:`repro.analysis.scopes`)
and lean on a small amount of flow-insensitive symbol tracking — enough
that ``rng = np.random; rng.rand()`` still reads as a global-RNG call and
``self._q = queue.Queue()`` marks ``self._q.get()`` as blocking, without
dragging in a type checker.

Two rule shapes exist:

* *file rules* — ``rule(sf: SourceFile) -> list[Finding]``, run per file;
* *project rules* — ``rule(files: list[SourceFile]) -> list[Finding]``,
  run once over the whole file set (registry consistency, lock-order
  graphs — anything that needs to see more than one module at a time).

Suppression: a finding is dropped when its line carries
``# repro: noqa`` (blanket) or ``# repro: noqa[RULE1,RULE2]`` naming its
rule. Suppressions are expected to carry a justifying comment; the
committed-baseline mechanism in :mod:`repro.analysis.report` exists for
the transition period of a *new* rule, not as a dumping ground.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "Finding",
    "SourceFile",
    "SymbolTable",
    "run_check",
    "collect_files",
    "enclosing_function",
    "enclosing_class",
]

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9_,\s]+)\])?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``context`` is the stripped source line — the stable ingredient of
    baseline keys, so a finding keeps matching its baseline entry when
    unrelated edits shift line numbers.
    """

    rule: str
    severity: str  # "error" | "warning"
    path: str
    line: int
    col: int
    message: str
    context: str = ""

    @property
    def key(self) -> tuple:
        """Line-number-free identity used for baseline matching."""
        return (self.rule, self.path, self.context)

    @property
    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule, self.message)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "context": self.context,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Finding":
        return cls(
            rule=str(d["rule"]),
            severity=str(d.get("severity", "error")),
            path=str(d["path"]),
            line=int(d.get("line", 0)),
            col=int(d.get("col", 0)),
            message=str(d.get("message", "")),
            context=str(d.get("context", "")),
        )


class SymbolTable:
    """Flow-insensitive name resolution for one module.

    Records three kinds of bindings:

    * imports — ``import numpy as np`` binds ``np -> numpy``;
      ``from time import perf_counter as pc`` binds
      ``pc -> time.perf_counter``;
    * aliases — simple assignments whose right-hand side is a dotted
      path, ``rng = np.random`` binds ``rng -> numpy.random`` (module
      and function scopes are merged: the tracking is deliberately
      flow-insensitive);
    * self attributes — ``self._q = queue.Queue()`` inside ``class C``
      binds ``("C", "_q") -> queue.Queue`` (the *constructor* path, used
      by the LOCK rules to type locks, queues, events and threads).

    Parameter defaults also bind: ``def f(clock=time.monotonic)`` makes
    ``clock`` resolve to ``time.monotonic`` — how the DET rules see a
    wall-clock read smuggled in as a default argument.
    """

    def __init__(self, tree: ast.AST):
        self.names: dict[str, str] = {}
        self.self_types: dict[tuple[str, str], str] = {}
        self._collect(tree)

    # ------------------------------------------------------------ building
    def _collect(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    bound = a.asname or a.name.split(".")[0]
                    self.names[bound] = a.name if a.asname else a.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for a in node.names:
                    if a.name != "*":
                        self.names[a.asname or a.name] = f"{node.module}.{a.name}"
        # Aliases and self-attribute types need imports resolved first;
        # iterate to let chains (a = np.random; b = a) settle.
        for _ in range(3):
            changed = False
            for node in ast.walk(tree):
                changed |= self._collect_assign(node)
            if not changed:
                break

    def _collect_assign(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            changed = False
            args = node.args
            pos = args.posonlyargs + args.args
            for arg, default in zip(pos[len(pos) - len(args.defaults):], args.defaults):
                changed |= self._bind(arg.arg, self.resolve(default))
            for arg, default in zip(args.kwonlyargs, args.kw_defaults):
                if default is not None:
                    changed |= self._bind(arg.arg, self.resolve(default))
            return changed
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            return False
        target = node.targets[0]
        value = self.resolve(node.value)
        if value is None:
            return False
        if isinstance(target, ast.Name):
            return self._bind(target.id, value)
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            cls = enclosing_class(target)
            if cls is not None:
                key = (cls.name, target.attr)
                if self.self_types.get(key) != value:
                    self.self_types[key] = value
                    return True
        return False

    def _bind(self, name: str, value: str | None) -> bool:
        if value is None or self.names.get(name) == value:
            return False
        self.names[name] = value
        return True

    # ----------------------------------------------------------- resolving
    def resolve(self, node: ast.AST | None) -> str | None:
        """Dotted path a Name/Attribute/Call expression denotes, if any.

        A Call resolves to its callee's path — ``queue.Queue()`` resolves
        to ``queue.Queue`` — which is what the type-ish tracking wants
        (the value is "whatever that constructor makes").
        """
        if isinstance(node, ast.Call):
            return self.resolve(node.func)
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            if node.id == "self" and parts:
                cls = enclosing_class(node)
                if cls is None:
                    return None
                base = self.self_types.get((cls.name, parts[-1]))
                if base is None:
                    return None
                parts = parts[:-1] + [base]
            else:
                parts.append(self.names.get(node.id, node.id))
            return ".".join(reversed(parts))
        return None


class SourceFile:
    """One parsed module plus everything rules need to inspect it."""

    def __init__(self, path: str, text: str):
        self.path = path.replace("\\", "/")
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=path)
        _link_parents(self.tree)
        self.symbols = SymbolTable(self.tree)
        self.noqa = _parse_noqa(text)

    @classmethod
    def from_path(cls, path: Path, root: Path | None = None) -> "SourceFile":
        rel = path if root is None else path.relative_to(root)
        return cls(str(rel), path.read_text(encoding="utf-8"))

    def line_at(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(
        self, rule: str, node: ast.AST, message: str, *, severity: str = "error"
    ) -> Finding:
        return Finding(
            rule=rule,
            severity=severity,
            path=self.path,
            line=node.lineno,
            col=node.col_offset + 1,
            message=message,
            context=self.line_at(node.lineno),
        )

    def suppressed(self, finding: Finding) -> bool:
        rules = self.noqa.get(finding.line)
        if rules is None:
            return False
        return not rules or finding.rule in rules


def _parse_noqa(text: str) -> dict[int, frozenset[str]]:
    """Line -> suppressed rules (empty frozenset = blanket noqa)."""
    out: dict[int, frozenset[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _NOQA_RE.search(tok.string)
            if m is None:
                continue
            rules = m.group("rules")
            names = (
                frozenset(r.strip() for r in rules.split(",") if r.strip())
                if rules
                else frozenset()
            )
            out[tok.start[0]] = names
    except tokenize.TokenError:
        pass
    return out


# ----------------------------------------------------------------- parents
def _link_parents(tree: ast.AST) -> None:
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child._repro_parent = parent  # type: ignore[attr-defined]


def parent_of(node: ast.AST) -> ast.AST | None:
    return getattr(node, "_repro_parent", None)


def enclosing_function(node: ast.AST):
    cur = parent_of(node)
    while cur is not None:
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return cur
        cur = parent_of(cur)
    return None


def enclosing_class(node: ast.AST):
    cur = parent_of(node)
    while cur is not None:
        if isinstance(cur, ast.ClassDef):
            return cur
        cur = parent_of(cur)
    return None


# ------------------------------------------------------------------ runner
def collect_files(paths, *, root: Path | None = None) -> list[SourceFile]:
    """Parse every ``*.py`` under the given files/directories, sorted."""
    seen: dict[str, SourceFile] = {}
    for raw in paths:
        p = Path(raw)
        candidates = [p] if p.is_file() else sorted(p.rglob("*.py"))
        for f in candidates:
            if f.suffix != ".py" or "__pycache__" in f.parts:
                continue
            sf = SourceFile.from_path(f, root)
            seen[sf.path] = sf
    return [seen[k] for k in sorted(seen)]


@dataclass
class CheckResult:
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]


def run_check(paths, *, select=None, ignore=None, root: Path | None = None) -> CheckResult:
    """Run every registered rule over ``paths``; apply noqa suppressions.

    ``select``/``ignore`` filter by rule id or family prefix ("DET",
    "DTYPE001", ...). Returns surviving findings sorted by location,
    with the suppressed ones kept separately (reporters show counts).
    """
    from repro.analysis.registry import file_rules, project_rules

    files = collect_files(paths, root=root)
    by_path = {sf.path: sf for sf in files}
    raw: list[Finding] = []
    for sf in files:
        for rule in file_rules():
            raw.extend(rule(sf))
    for rule in project_rules():
        raw.extend(rule(files))

    def selected(f: Finding) -> bool:
        if select is not None and not any(f.rule.startswith(s) for s in select):
            return False
        if ignore is not None and any(f.rule.startswith(s) for s in ignore):
            return False
        return True

    result = CheckResult()
    for f in sorted(raw, key=lambda f: f.sort_key):
        if not selected(f):
            continue
        sf = by_path.get(f.path)
        if sf is not None and sf.suppressed(f):
            result.suppressed.append(f)
        else:
            result.findings.append(f)
    return result
