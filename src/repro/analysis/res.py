"""RES — resource release must be reachable on every exit path.

The /dev/shm hygiene contract: a ``SharedMemory(create=True)`` segment
that is not unlinked survives the process and eats the host's shm quota;
a listening socket leaked on a failed ``bind`` holds the port until GC
gets around to it. The analysis follows each acquisition to one of
three outcomes:

* **managed** — the acquisition is a ``with`` context, or sits inside a
  ``try`` whose handlers/``finally`` close/unlink the bound name;
* **transferred** — the object escapes the function before anything can
  fail: returned, yielded, stored on ``self``/a container, or passed to
  a callee (the new owner inherits the release obligation);
* **leaked** — fallible statements (anything containing a call) run
  between acquisition and the transfer/close, or the function ends
  without releasing at all. These fire **RES001**.

The middle case is why ``seg = SharedMemory(create=True, ...);
segments.append(seg)`` is clean — append cannot fail, and the caller's
``try/except: _unlink_segments`` owns the list — while building numpy
views into the segment *before* the append is a leak window.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, SourceFile, parent_of

__all__ = ["check_res"]

_ACQUIRERS = {
    "multiprocessing.shared_memory.SharedMemory": "shared-memory segment",
    "socket.socket": "socket",
    "socket.create_connection": "socket",
    "open": "file handle",
}

_RELEASE_METHODS = frozenset({"close", "unlink", "shutdown", "detach"})


def _acquisition_kind(sf: SourceFile, node: ast.Call) -> str | None:
    resolved = sf.symbols.resolve(node.func)
    kind = _ACQUIRERS.get(resolved or "")
    if kind is None:
        return None
    if resolved == "multiprocessing.shared_memory.SharedMemory":
        # Attaching (create=False) borrows someone else's segment; only
        # creation takes the unlink obligation. close() on attach is
        # still polite, but the leak that matters is the created one.
        for kw in node.keywords:
            if kw.arg == "create":
                if isinstance(kw.value, ast.Constant) and kw.value.value is True:
                    return kind
                return None
        return None
    return kind


def _name_in_call_args(stmt: ast.AST, name: str) -> bool:
    """The object itself handed to a callee: a *bare* ``name`` argument.

    ``f(seg)`` transfers the release obligation; ``np.ndarray(...,
    buffer=seg.buf)`` merely lends a view and does not.
    """
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Starred):
                    arg = arg.value
                if isinstance(arg, ast.Name) and arg.id == name:
                    return True
    return False


def _bare_name_in(value: ast.AST, name: str) -> bool:
    """``name`` itself (not an attribute of it) at the top level of an
    expression, or directly inside a tuple/list/dict literal there —
    ``seg``, ``(seg, meta)``, ``{"s": seg}`` yes; ``seg.buf`` no."""
    candidates = [value]
    if isinstance(value, (ast.Tuple, ast.List)):
        candidates = list(value.elts)
    elif isinstance(value, ast.Dict):
        candidates = [v for v in value.values if v is not None]
    return any(isinstance(c, ast.Name) and c.id == name for c in candidates)


def _transfers(stmt: ast.AST, name: str) -> bool:
    """Ownership leaves the local frame: the object itself is returned,
    yielded, stored on an object/container, rebound to another name, or
    handed to a callee as an argument. Expressions that merely *mention*
    the resource (``view = np.ndarray(..., buffer=seg.buf)``) are use,
    not transfer."""
    for node in ast.walk(stmt):
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            if node.value is not None and _bare_name_in(node.value, name):
                return True
        if isinstance(node, ast.Assign) and _bare_name_in(node.value, name):
            if any(
                isinstance(t, (ast.Attribute, ast.Subscript))
                or (isinstance(t, ast.Name) and t.id != name)
                for t in node.targets
            ):
                return True
    return _name_in_call_args(stmt, name)


def _releases(stmt: ast.AST, name: str) -> bool:
    for node in ast.walk(stmt):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _RELEASE_METHODS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == name
        ):
            return True
    return False


def _fallible(stmt: ast.AST, name: str) -> bool:
    """Anything containing a call can raise (the release calls on the
    resource itself do not count against it)."""
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call) and not (
            isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == name
            and node.func.attr in _RELEASE_METHODS
        ):
            return True
    return False


def _protecting_try(node: ast.AST, name: str) -> bool:
    """Is the acquisition inside a ``try`` whose handlers or ``finally``
    release the bound name?"""
    cur = parent_of(node)
    while cur is not None:
        if isinstance(cur, ast.Try):
            cleanup = list(cur.finalbody)
            for handler in cur.handlers:
                cleanup.extend(handler.body)
            if any(_releases(stmt, name) for stmt in cleanup):
                return True
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
            break
        cur = parent_of(cur)
    return False


def _escapes_immediately(node: ast.Call) -> bool:
    """Unbound acquisitions that hand the object straight off: ``return
    socket.create_connection(...)``, ``f(open(p))``, ``self.sock = ...``,
    ``with socket.socket(...) as s``."""
    cur: ast.AST | None = node
    parent = parent_of(cur)
    while parent is not None:
        if isinstance(parent, ast.withitem):
            return True
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(parent, ast.Call) and cur is not parent.func:
            return True
        if isinstance(parent, ast.Assign):
            return True  # handled by the statement-walk path instead
        if isinstance(parent, ast.stmt):
            return False
        cur, parent = parent, parent_of(parent)
    return False


def _body_of(node: ast.AST):
    """(statements, index) locating the statement that contains ``node``
    inside its nearest enclosing block."""
    stmt: ast.AST = node
    parent = parent_of(stmt)
    while parent is not None and not isinstance(stmt, ast.stmt):
        stmt, parent = parent, parent_of(parent)
    if parent is None:
        return None
    for field in ("body", "orelse", "finalbody"):
        block = getattr(parent, field, None)
        if isinstance(block, list) and stmt in block:
            return block, block.index(stmt)
    for handler in getattr(parent, "handlers", []) or []:
        if stmt in handler.body:
            return handler.body, handler.body.index(stmt)
    return None


def check_res(sf: SourceFile) -> list[Finding]:
    out: list[Finding] = []
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Call):
            continue
        kind = _acquisition_kind(sf, node)
        if kind is None:
            continue

        parent = parent_of(node)
        bound: str | None = None
        if (
            isinstance(parent, ast.Assign)
            and len(parent.targets) == 1
            and isinstance(parent.targets[0], ast.Name)
        ):
            bound = parent.targets[0].id
        elif isinstance(parent, ast.withitem):
            continue  # context manager releases it
        elif _escapes_immediately(node):
            continue  # ownership transferred at the acquisition site
        else:
            out.append(
                sf.finding(
                    "RES001",
                    node,
                    f"{kind} acquired but never bound or managed; use a "
                    "with-block or bind it so it can be released",
                )
            )
            continue

        if _protecting_try(parent, bound):
            continue

        located = _body_of(parent)
        if located is None:
            continue
        block, idx = located
        window_fallible = False
        resolved = False
        for stmt in block[idx + 1:]:
            released = _releases(stmt, bound)
            transferred = _transfers(stmt, bound)
            if isinstance(stmt, ast.Try):
                cleanup = list(stmt.finalbody)
                for handler in stmt.handlers:
                    cleanup.extend(handler.body)
                if any(_releases(s, bound) for s in cleanup):
                    resolved = True  # the try owns the release from here
                    break
            if released or transferred:
                resolved = True
                if window_fallible:
                    out.append(
                        sf.finding(
                            "RES001",
                            node,
                            f"{kind} '{bound}' leaks if a call between its "
                            "acquisition and this "
                            + ("release" if released else "ownership transfer")
                            + " raises; wrap the window in try/except with "
                            "cleanup",
                        )
                    )
                break
            if _fallible(stmt, bound):
                window_fallible = True
        if not resolved:
            out.append(
                sf.finding(
                    "RES001",
                    node,
                    f"{kind} '{bound}' has no reachable release on this "
                    "path; close/unlink it in a finally or transfer "
                    "ownership",
                )
            )
    return out
