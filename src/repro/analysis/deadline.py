"""DEADLINE — unbounded blocking waits in concurrency modules.

The self-healing work (respawn policy, heartbeat supervision, degraded
serving) only holds together if *every* wait in the coordinator/serving
planes is bounded: a single untimed ``Event.wait()`` is a thread that no
supervisor can ever reclaim when its peer dies mid-handshake. PR 10's
exemplar was ``RetrievalService._gather`` — an untimed ``Condition.wait``
that would have wedged the batcher forever on one lost notify.

* **DEADLINE001** — in a concurrency-scoped module (see
  :mod:`repro.analysis.scopes`), a blocking wait with no deadline:

  - ``Event.wait()`` / ``Condition.wait()`` / ``Condition.wait_for(p)``
    with no ``timeout`` argument (or an explicit ``timeout=None``);
  - ``socket.recv``/``recv_into``/``accept`` on a socket that never has
    ``settimeout(...)`` applied to the same receiver in this module.

The fix is never "add a giant timeout and ignore it": bound the wait,
then *handle* expiry (re-check the predicate in a loop, fail the peer,
or surface a partial result). ``while not ev.wait(0.5): ...`` keeps
exactly the old semantics plus an escape hatch.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, SourceFile
from repro.analysis.scopes import is_concurrency_module

__all__ = ["check_deadline"]

# receiver constructor-path -> wait methods whose first arg is a timeout
_TIMED_WAITS = (
    ("threading.Event", frozenset({"wait"})),
    ("multiprocessing.Event", frozenset({"wait"})),
    ("threading.Condition", frozenset({"wait", "wait_for"})),
    ("multiprocessing.Condition", frozenset({"wait", "wait_for"})),
)

_SOCKET_BLOCKERS = frozenset({"recv", "recv_into", "accept"})


def _timeout_arg(call: ast.Call, method: str) -> ast.AST | None:
    """The expression passed as the wait's timeout, if any.

    ``Event.wait(t)`` and ``Condition.wait(t)`` take it as the first
    positional; ``Condition.wait_for(pred, t)`` as the second.
    """
    for kw in call.keywords:
        if kw.arg == "timeout":
            return kw.value
    idx = 1 if method == "wait_for" else 0
    if len(call.args) > idx:
        return call.args[idx]
    return None


def _settimeout_receivers(sf: SourceFile) -> set[str]:
    """Unparsed receiver texts that get ``settimeout(...)`` in this module."""
    out: set[str] = set()
    for node in ast.walk(sf.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "settimeout"
            # settimeout(None) switches back to blocking mode: no guard.
            and not (
                node.args
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
            )
        ):
            out.add(ast.unparse(node.func.value))
    return out


def check_deadline(sf: SourceFile) -> list[Finding]:
    if not is_concurrency_module(sf.path):
        return []
    guarded = _settimeout_receivers(sf)
    out: list[Finding] = []
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
            continue
        method = node.func.attr
        rtype = sf.symbols.resolve(node.func.value)
        if rtype is None:
            continue
        for prefix, methods in _TIMED_WAITS:
            if rtype.startswith(prefix) and method in methods:
                timeout = _timeout_arg(node, method)
                if timeout is None or (
                    isinstance(timeout, ast.Constant) and timeout.value is None
                ):
                    out.append(
                        sf.finding(
                            "DEADLINE001",
                            node,
                            f"unbounded {ast.unparse(node.func)}(...): no "
                            "timeout means no supervisor can ever reclaim "
                            "this thread; bound the wait and re-check in a "
                            "loop",
                        )
                    )
                break
        else:
            if rtype.startswith("socket.") and method in _SOCKET_BLOCKERS:
                if ast.unparse(node.func.value) not in guarded:
                    out.append(
                        sf.finding(
                            "DEADLINE001",
                            node,
                            f"{ast.unparse(node.func)}(...) on a socket "
                            "with no settimeout(...) guard in this module; "
                            "a dead peer blocks this call forever",
                        )
                    )
    return out
