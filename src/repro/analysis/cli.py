"""Command-line front end: ``python -m repro.analysis check src tests``.

Exit codes: 0 — clean (or everything accounted for by the baseline);
1 — at least one unsuppressed, un-baselined finding; 2 — usage error.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.core import run_check
from repro.analysis.registry import all_rules, rule_descriptions
from repro.analysis.report import Baseline, render_json, render_text

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static enforcement of the repo's runtime contracts "
        "(determinism, dtype discipline, lock order, resource release, "
        "protocol-registry consistency).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="run every rule over the given paths")
    check.add_argument("paths", nargs="+", help="files or directories to analyze")
    check.add_argument(
        "--baseline",
        metavar="FILE",
        help="JSON baseline of accepted findings; only NEW findings fail",
    )
    check.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite --baseline with the current findings and exit 0",
    )
    check.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    check.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="only run rules matching this id/prefix (repeatable)",
    )
    check.add_argument(
        "--ignore",
        action="append",
        metavar="RULE",
        help="skip rules matching this id/prefix (repeatable)",
    )

    sub.add_parser("rules", help="list every rule id with its description")
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "rules":
        descriptions = rule_descriptions()
        for rule in all_rules():
            print(f"{rule}: {descriptions[rule]}")
        return 0

    if args.update_baseline and not args.baseline:
        print("--update-baseline requires --baseline FILE", file=sys.stderr)
        return 2

    try:
        result = run_check(args.paths, select=args.select, ignore=args.ignore)
    except (OSError, SyntaxError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    stale: list = []
    reportable = result.findings
    if args.baseline:
        baseline = Baseline.load(args.baseline)
        if args.update_baseline:
            Baseline(entries=list(result.findings)).save(args.baseline)
            print(
                f"baseline updated: {len(result.findings)} entr"
                f"{'ies' if len(result.findings) != 1 else 'y'} -> {args.baseline}"
            )
            return 0
        reportable, stale = baseline.diff(result.findings)

    renderer = render_json if args.fmt == "json" else render_text
    print(renderer(reportable, suppressed=len(result.suppressed), stale=stale))
    return 1 if reportable else 0


if __name__ == "__main__":
    sys.exit(main())
