"""Rule registry: which checks run, and what each one means."""

from __future__ import annotations

from repro.analysis.deadline import check_deadline
from repro.analysis.det import check_det
from repro.analysis.dtype import check_dtype
from repro.analysis.locks import check_lock_blocking, check_lock_inversions
from repro.analysis.proto import check_proto
from repro.analysis.res import check_res

__all__ = ["file_rules", "project_rules", "all_rules", "rule_descriptions"]

_RULE_DESCRIPTIONS = {
    "DET001": "global-state RNG call in a protocol-deterministic module",
    "DET002": "wall-clock read or reference in a protocol-deterministic module",
    "DET003": "entropy-seeded RNG root (unseeded SeedSequence/RandomState)",
    "DET004": "iteration over a set (hash-salt-dependent order)",
    "DEADLINE001": "unbounded blocking wait (event/condition/socket) in a concurrency module",
    "DTYPE001": "array constructor without explicit dtype= on a compute path",
    "DTYPE002": "np.float64 scalar arithmetic upcasting compute_dtype arrays",
    "LOCK001": "blocking call (socket/queue/event/join/sleep) under a held lock",
    "LOCK002": "lock-order inversion across code paths",
    "RES001": "shm segment/socket/file with no release reachable on every path",
    "PROTO001": "frame kind without both encoder and decoder (or unregistered)",
    "PROTO002": "exported message class with no framing codec",
    "PROTO003": "registered backend missing part of the Backend protocol surface",
}


def file_rules():
    """Rules that inspect one module at a time."""
    return (check_deadline, check_det, check_dtype, check_lock_blocking, check_res)


def project_rules():
    """Rules that need the whole file set (graphs, registries)."""
    return (check_lock_inversions, check_proto)


def all_rules() -> list[str]:
    return sorted(_RULE_DESCRIPTIONS)


def rule_descriptions() -> dict[str, str]:
    return dict(_RULE_DESCRIPTIONS)
