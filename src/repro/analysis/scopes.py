"""Which contracts apply to which modules.

The rule families are *scoped*: a wall-clock read in a benchmark script
is fine, the same read inside the chaos sampler breaks cross-engine
replay. Scoping is by path suffix against the repo layout, so the rules
work both on real tree paths (``src/repro/distributed/chaos.py``) and on
fixture paths used by the analyzer's own tests.
"""

from __future__ import annotations

from fnmatch import fnmatch

__all__ = [
    "is_protocol_deterministic",
    "is_compute_path",
    "is_concurrency_module",
]

# Modules carrying the cross-engine bit-parity contract: every branch
# they take must be a pure function of (seed, scenario), never of the
# host. framing/messages sit on the wire path — a nondeterministic codec
# would desynchronize replay between the mp and tcp transports.
_PROTOCOL_DETERMINISTIC = (
    "repro/distributed/protocol.py",
    "repro/distributed/batching.py",
    "repro/distributed/chaos.py",
    "repro/distributed/framing.py",
    "repro/distributed/messages.py",
)

# Modules on the numeric compute path, where compute_dtype is threaded
# explicitly and a dtype-less constructor defaults to float64 and leaks
# an upcast into the next matmul. The repro/ anchor keeps the contract
# on library code: tests pinning float64 semantics are out of scope.
_COMPUTE_PATH = (
    "repro/optim/*",
    "repro/autoencoder/*",
    "repro/nets/*",
    "repro/serve/index.py",
)

# Modules that hold locks while wall-clock peers can die. LOCK001/002
# run everywhere, but these are the ones the family was built for; the
# DEADLINE family (unbounded waits) is scoped to exactly this set.
_CONCURRENCY = (
    "repro/serve/service.py",
    "repro/serve/index.py",
    "repro/distributed/backends/mp.py",
    "repro/distributed/backends/tcp.py",
    "repro/distributed/health.py",
)


def _matches(path: str, patterns: tuple[str, ...]) -> bool:
    norm = path.replace("\\", "/")
    for pat in patterns:
        if norm.endswith(pat.rstrip("*").rstrip("/")) and not pat.endswith("*"):
            if norm == pat or norm.endswith("/" + pat):
                return True
        if fnmatch(norm, "*/" + pat) or fnmatch(norm, pat):
            return True
    return False


def is_protocol_deterministic(path: str) -> bool:
    return _matches(path, _PROTOCOL_DETERMINISTIC)


def is_compute_path(path: str) -> bool:
    return _matches(path, _COMPUTE_PATH)


def is_concurrency_module(path: str) -> bool:
    return _matches(path, _CONCURRENCY)
