"""PROTO — registry/codec consistency, checked project-wide.

These rules guard the wire protocol's closure property: PR 7's elastic
join added KIND_JOIN/KIND_WELCOME and a Backend.restore surface in the
same change, and nothing but convention forces the next frame kind to
arrive with both halves of its codec, or the next backend to implement
the whole protocol surface.

* **PROTO001** — every ``KIND_<NAME>`` constant in
  ``distributed/framing.py`` must appear in ``_KNOWN_KINDS`` and have
  both ``encode_<name>`` and ``decode_<name>`` functions (a frame a peer
  can emit but the other side cannot parse desynchronizes the stream at
  the framing layer, past the magic/version check).
* **PROTO002** — every message class exported from
  ``distributed/messages.py`` (its ``__all__``) is handled somewhere in
  ``framing.py``; an exported message with no codec can only cross the
  mp transport, silently forking the tcp/mp feature sets.
* **PROTO003** — every ``@register_backend(...)`` class implements the
  full ``Backend`` protocol surface from ``backends/base.py``, where
  "implements" means a concrete body (not ``...``/``pass``/``raise
  NotImplementedError``) somewhere in its static MRO.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, SourceFile

__all__ = ["check_proto"]


def _find(files: list[SourceFile], suffix: str) -> SourceFile | None:
    for sf in files:
        if sf.path.endswith(suffix):
            return sf
    return None


# --------------------------------------------------------------- PROTO001
def _check_framing(sf: SourceFile) -> list[Finding]:
    kinds: dict[str, ast.AST] = {}
    known: set[str] = set()
    defs: set[str] = set()
    known_node: ast.AST | None = None
    for node in sf.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                if target.id.startswith("KIND_"):
                    kinds[target.id] = node
                elif target.id == "_KNOWN_KINDS":
                    known_node = node
                    for elt in ast.walk(node.value):
                        if isinstance(elt, ast.Name) and elt.id.startswith("KIND_"):
                            known.add(elt.id)
        elif isinstance(node, ast.FunctionDef):
            defs.add(node.name)

    out: list[Finding] = []
    for kind, node in sorted(kinds.items()):
        name = kind[len("KIND_"):].lower()
        for half in (f"encode_{name}", f"decode_{name}"):
            if half not in defs:
                out.append(
                    sf.finding(
                        "PROTO001",
                        node,
                        f"frame kind {kind} has no {half}(); every kind "
                        "needs both halves of its codec",
                    )
                )
        if kind not in known:
            out.append(
                sf.finding(
                    "PROTO001",
                    node,
                    f"frame kind {kind} is missing from _KNOWN_KINDS; "
                    "receivers will reject it as a protocol error",
                )
            )
    for kind in sorted(known - set(kinds)):
        out.append(
            sf.finding(
                "PROTO001",
                known_node if known_node is not None else sf.tree,
                f"_KNOWN_KINDS lists {kind} but no such constant is "
                "defined in framing.py",
            )
        )
    return out


# --------------------------------------------------------------- PROTO002
def _check_messages(messages: SourceFile, framing: SourceFile) -> list[Finding]:
    exported: list[tuple[str, ast.AST]] = []
    for node in messages.tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "__all__"
        ):
            for elt in ast.walk(node.value):
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    exported.append((elt.value, node))
    referenced = {
        n.id for n in ast.walk(framing.tree) if isinstance(n, ast.Name)
    } | {n.attr for n in ast.walk(framing.tree) if isinstance(n, ast.Attribute)}
    out: list[Finding] = []
    for name, node in exported:
        if name not in referenced:
            out.append(
                messages.finding(
                    "PROTO002",
                    node,
                    f"message class {name} is exported but never handled "
                    "in framing.py; it cannot cross the tcp transport",
                )
            )
    return out


# --------------------------------------------------------------- PROTO003
def _method_is_concrete(fn: ast.FunctionDef) -> bool:
    body = fn.body
    if body and isinstance(body[0], ast.Expr) and isinstance(body[0].value, ast.Constant):
        body = body[1:]  # drop the docstring
    if not body:
        return False
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # bare `...`
        if isinstance(stmt, ast.Raise):
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Name) and sub.id == "NotImplementedError":
                    break
            else:
                return True  # raises something real (a guard, not a stub)
            continue
        return True
    return False


class _ClassInfo:
    def __init__(self, sf: SourceFile, node: ast.ClassDef):
        self.sf = sf
        self.node = node
        self.bases = [
            b.id if isinstance(b, ast.Name) else b.attr
            for b in node.bases
            if isinstance(b, (ast.Name, ast.Attribute))
        ]
        self.methods = {
            item.name: _method_is_concrete(item)
            for item in node.body
            if isinstance(item, ast.FunctionDef)
        }
        self.registered = any(
            isinstance(dec, ast.Call)
            and isinstance(dec.func, ast.Name)
            and dec.func.id == "register_backend"
            for dec in node.decorator_list
        )


def _check_backends(files: list[SourceFile], base: SourceFile) -> list[Finding]:
    surface: list[str] = []
    for node in base.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == "Backend":
            surface = [
                item.name
                for item in node.body
                if isinstance(item, ast.FunctionDef) and not item.name.startswith("_")
            ]
    if not surface:
        return []

    table: dict[str, _ClassInfo] = {}
    for sf in files:
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.ClassDef):
                table.setdefault(node.name, _ClassInfo(sf, node))

    def concrete_in_mro(cls: str, method: str, seen: set[str]) -> bool:
        if cls in seen or cls not in table:
            return False
        seen.add(cls)
        info = table[cls]
        if method in info.methods:
            return info.methods[method]
        return any(concrete_in_mro(b, method, seen) for b in info.bases)

    out: list[Finding] = []
    for name, info in sorted(table.items()):
        if not info.registered:
            continue
        for method in surface:
            if not concrete_in_mro(name, method, set()):
                out.append(
                    info.sf.finding(
                        "PROTO003",
                        info.node,
                        f"registered backend {name} has no concrete "
                        f"{method}(); every backend must implement the "
                        "full Backend protocol surface",
                    )
                )
    return out


def check_proto(files: list[SourceFile]) -> list[Finding]:
    out: list[Finding] = []
    framing = _find(files, "distributed/framing.py")
    messages = _find(files, "distributed/messages.py")
    base = _find(files, "backends/base.py")
    if framing is not None:
        out.extend(_check_framing(framing))
        if messages is not None:
            out.extend(_check_messages(messages, framing))
    if base is not None:
        out.extend(_check_backends(files, base))
    return out
