"""DET — determinism lint for protocol-deterministic modules.

The cross-engine parity contract (tests/distributed/test_engine_conformance)
requires that protocol.py, batching.py, chaos.py and the framing/codec
path compute identical decisions from (seed, scenario) on every engine.
Three ways that breaks statically:

* **DET001** — a global-state RNG call (``np.random.rand``, bare
  ``random.shuffle``): draws from interpreter-global streams that any
  other import can perturb. Use ``np.random.default_rng(seed)`` /
  ``repro.utils.rng.spawn_rngs`` instead.
* **DET002** — a wall-clock read (``time.time``/``monotonic``/
  ``perf_counter``, ``datetime.now``): host-dependent. Wall-clock users
  must take an injected ``clock`` callable so replay/tests can pin it.
  Bare *references* fire too — ``clock=time.monotonic`` as a default
  argument is still a wall-clock dependency baked into protocol code.
* **DET003** — an entropy-seeded RNG root (``np.random.SeedSequence()``
  or ``np.random.RandomState()`` with no arguments): pulls OS entropy,
  so two runs of the "same" scenario diverge.
* **DET004** — iterating a ``set``/``frozenset``: iteration order is
  hash-salt-dependent across processes. Sort first (``sorted(...)`` is
  naturally exempt — the loop then iterates a list).
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, SourceFile, parent_of
from repro.analysis.scopes import is_protocol_deterministic

__all__ = ["check_det"]

_GLOBAL_NP_RANDOM = frozenset(
    {
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "choice", "shuffle", "permutation", "seed", "bytes",
        "standard_normal", "uniform", "normal", "beta", "binomial",
        "exponential", "gamma", "geometric", "poisson", "laplace",
        "get_state", "set_state",
    }
)

_GLOBAL_STDLIB_RANDOM = frozenset(
    {
        "random", "randint", "randrange", "uniform", "choice", "choices",
        "shuffle", "sample", "seed", "gauss", "getrandbits", "triangular",
        "betavariate", "normalvariate", "expovariate", "vonmisesvariate",
        "paretovariate", "weibullvariate", "lognormvariate",
    }
)

_WALL_CLOCK = frozenset(
    {
        "time.time", "time.time_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.process_time", "time.process_time_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)

# RNG roots that need an explicit seed argument to be reproducible.
_ENTROPY_ROOTS = frozenset({"numpy.random.SeedSequence", "numpy.random.RandomState"})


def _global_rng_call(resolved: str) -> str | None:
    """Return a human-readable culprit if ``resolved`` is a global-RNG fn.

    Only the *module-level* functions are global state: exactly
    ``numpy.random.<fn>`` / ``random.<fn>``. A longer path like
    ``numpy.random.default_rng.random`` is a method on a seeded
    Generator instance and is the sanctioned pattern.
    """
    module, _, leaf = resolved.rpartition(".")
    if module == "numpy.random" and leaf in _GLOBAL_NP_RANDOM:
        return f"np.random.{leaf}"
    if module == "random" and leaf in _GLOBAL_STDLIB_RANDOM:
        return resolved
    return None


def check_det(sf: SourceFile) -> list[Finding]:
    if not is_protocol_deterministic(sf.path):
        return []
    out: list[Finding] = []
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.Call):
            resolved = sf.symbols.resolve(node.func)
            if resolved is None:
                continue
            culprit = _global_rng_call(resolved)
            if culprit is not None:
                out.append(
                    sf.finding(
                        "DET001",
                        node,
                        f"global-state RNG call {culprit}() in a "
                        "protocol-deterministic module; use a seeded "
                        "np.random.Generator (repro.utils.rng.spawn_rngs)",
                    )
                )
            elif resolved in _WALL_CLOCK:
                out.append(
                    sf.finding(
                        "DET002",
                        node,
                        f"wall-clock read {resolved}() in a protocol-"
                        "deterministic module; take an injected clock "
                        "callable instead",
                    )
                )
            elif resolved in _ENTROPY_ROOTS and not node.args and not node.keywords:
                out.append(
                    sf.finding(
                        "DET003",
                        node,
                        f"{resolved}() with no seed draws OS entropy; pass "
                        "an explicit seed so replays are reproducible",
                    )
                )
        elif isinstance(node, (ast.Attribute, ast.Name)):
            parent = parent_of(node)
            if isinstance(parent, ast.Call) and parent.func is node:
                continue  # the Call branch above owns this site
            if isinstance(parent, ast.Attribute):
                continue  # inner piece of a longer dotted path
            if isinstance(node, ast.Name):
                # Only direct from-imports of a clock function reach here;
                # alias bindings already fired at their assignment site.
                resolved = sf.symbols.names.get(node.id)
            else:
                resolved = sf.symbols.resolve(node)
            if resolved in _WALL_CLOCK:
                out.append(
                    sf.finding(
                        "DET002",
                        node,
                        f"wall-clock function {resolved} referenced in a "
                        "protocol-deterministic module (even as a default "
                        "argument); inject the clock at construction time",
                    )
                )
        elif isinstance(node, (ast.For, ast.comprehension)):
            it = node.iter
            is_set = isinstance(it, (ast.Set, ast.SetComp)) or (
                isinstance(it, ast.Call)
                and isinstance(it.func, ast.Name)
                and it.func.id in ("set", "frozenset")
            )
            if is_set:
                anchor = it if hasattr(it, "lineno") else node
                out.append(
                    sf.finding(
                        "DET004",
                        anchor,
                        "iteration over a set in a protocol-deterministic "
                        "module is hash-salt ordered; wrap in sorted(...)",
                    )
                )
    return out
