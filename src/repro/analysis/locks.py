"""LOCK — static analysis of ``with <lock>:`` regions.

PR 4's shm feeder wedge was exactly this shape: a feeder thread blocked
on a queue put while holding the segment lock, the consumer died, and
the whole ring sat in ``Queue.put`` forever. The runtime contract since
then: a wall-clock worker must never make a call that can block
indefinitely while holding a lock another (possibly dead) peer needs.

* **LOCK001** — a blocking call under a held lock: ``sendall``/``recv``/
  ``accept``/``connect`` on a socket, ``get``/``put`` on a queue,
  ``wait`` on an event, ``join`` on a thread, ``time.sleep`` — receivers
  are typed from their constructor assignments (``self._q =
  queue.Queue()`` makes ``self._q.get()`` a queue get). ``Condition.wait``
  on the *held* condition is the one legitimate pattern (it releases
  while waiting) and is exempt.
* **LOCK002** — lock-order inversion, a project-wide rule: if one code
  path nests ``with a: with b:`` and another nests ``with b: with a:``,
  the two can deadlock. Locks are identified per class (``C.self._a``),
  so the graph spans methods and files.

Code inside a nested ``def``/``lambda`` does not run under the enclosing
``with`` and is skipped.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, SourceFile, enclosing_class

__all__ = ["check_lock_blocking", "check_lock_inversions"]

_LOCK_TYPES = (
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "multiprocessing.Lock",
    "multiprocessing.RLock",
    "_thread.allocate_lock",
)

# receiver constructor-path prefix -> method names that block on it
_BLOCKING_METHODS = (
    ("queue.", frozenset({"get", "put", "join"})),
    ("multiprocessing.Queue", frozenset({"get", "put", "join_thread"})),
    ("multiprocessing.SimpleQueue", frozenset({"get", "put"})),
    ("socket.", frozenset({"sendall", "send", "recv", "recv_into", "accept", "connect", "makefile"})),
    ("threading.Event", frozenset({"wait"})),
    ("multiprocessing.Event", frozenset({"wait"})),
    ("threading.Thread", frozenset({"join"})),
    ("threading.Condition", frozenset({"wait", "wait_for"})),
    ("multiprocessing.connection.", frozenset({"recv", "send", "recv_bytes", "send_bytes", "poll"})),
)


def _is_lock_type(resolved: str | None) -> bool:
    return resolved is not None and resolved.startswith(_LOCK_TYPES)


def _lock_identity(sf: SourceFile, expr: ast.AST) -> str:
    """Stable per-class name for a lock expression, e.g. ``Svc:self._lock``."""
    cls = enclosing_class(expr)
    owner = cls.name if cls is not None else sf.path
    return f"{owner}:{ast.unparse(expr)}"


def _body_nodes(stmts):
    """Walk statements, skipping nested function/class bodies (they do
    not execute under the enclosing ``with``)."""
    stack = list(stmts)
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue  # deferred body: runs after the with exits
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _lock_regions(sf: SourceFile):
    """Yield ``(identity, with_node, context_expr)`` for every held lock."""
    for node in ast.walk(sf.tree):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            if _is_lock_type(sf.symbols.resolve(item.context_expr)):
                yield _lock_identity(sf, item.context_expr), node, item.context_expr


def check_lock_blocking(sf: SourceFile) -> list[Finding]:
    out: list[Finding] = []
    for identity, region, lock_expr in _lock_regions(sf):
        held_text = ast.unparse(lock_expr)
        for node in _body_nodes(region.body):
            if not isinstance(node, ast.Call):
                continue
            resolved = sf.symbols.resolve(node.func)
            if resolved == "time.sleep":
                out.append(
                    sf.finding(
                        "LOCK001",
                        node,
                        f"time.sleep(...) while holding {held_text}; "
                        "sleep outside the critical section",
                    )
                )
                continue
            if not isinstance(node.func, ast.Attribute):
                continue
            method = node.func.attr
            rtype = sf.symbols.resolve(node.func.value)
            if rtype is None:
                continue
            # Condition.wait on the held condition releases the lock
            # while waiting — the one blessed blocking pattern.
            if (
                method in ("wait", "wait_for", "notify", "notify_all")
                and ast.unparse(node.func.value) == held_text
            ):
                continue
            for prefix, methods in _BLOCKING_METHODS:
                if rtype.startswith(prefix) and method in methods:
                    out.append(
                        sf.finding(
                            "LOCK001",
                            node,
                            f"blocking call {ast.unparse(node.func)}(...) "
                            f"while holding {held_text}; a dead peer can "
                            "wedge every thread contending for this lock",
                        )
                    )
                    break
    return out


def check_lock_inversions(files: list[SourceFile]) -> list[Finding]:
    # edge (outer, inner) -> first site observed, for the report anchor
    edges: dict[tuple[str, str], tuple[SourceFile, ast.AST]] = {}
    for sf in files:
        for identity, region, _ in _lock_regions(sf):
            for node in _body_nodes(region.body):
                if not isinstance(node, (ast.With, ast.AsyncWith)) or node is region:
                    continue
                for item in node.items:
                    if not _is_lock_type(sf.symbols.resolve(item.context_expr)):
                        continue
                    inner = _lock_identity(sf, item.context_expr)
                    if inner != identity:
                        edges.setdefault((identity, inner), (sf, node))
    out: list[Finding] = []
    reported: set[frozenset[str]] = set()
    for (outer, inner), (sf, node) in sorted(edges.items()):
        if (inner, outer) not in edges:
            continue
        pair = frozenset((outer, inner))
        if pair in reported:
            continue
        reported.add(pair)
        out.append(
            sf.finding(
                "LOCK002",
                node,
                f"lock-order inversion: {outer} -> {inner} here, but the "
                "opposite nesting exists elsewhere; pick one global order",
            )
        )
    return out
