"""Reporters and the committed-baseline mechanism.

The baseline is a JSON multiset of findings keyed by ``(rule, path,
context)`` — no line numbers, so unrelated edits don't invalidate it. In
CI the contract is asymmetric: a finding *not* in the baseline fails the
lane; a baseline entry with no matching finding is merely stale (the
violation was fixed) and reports as a warning nudging a
``--update-baseline`` run. The committed baseline is expected to stay
empty or carry an annotation per entry; it is a migration tool for
landing a new rule, not an escape hatch.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.core import Finding

__all__ = ["Baseline", "render_text", "render_json", "parse_json"]

_FORMAT_VERSION = 1


@dataclass
class Baseline:
    """Accepted findings, as a multiset over line-number-free keys."""

    entries: list[Finding] = field(default_factory=list)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        p = Path(path)
        if not p.exists():
            return cls()
        data = json.loads(p.read_text(encoding="utf-8"))
        return cls.from_dict(data)

    @classmethod
    def from_dict(cls, data: dict) -> "Baseline":
        return cls(entries=[Finding.from_dict(d) for d in data.get("findings", [])])

    def to_dict(self) -> dict:
        return {
            "version": _FORMAT_VERSION,
            "findings": [f.to_dict() for f in sorted(self.entries, key=lambda f: f.sort_key)],
        }

    def save(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def diff(self, findings: list[Finding]) -> tuple[list[Finding], list[Finding]]:
        """Split ``findings`` against the baseline.

        Returns ``(new, stale)``: findings with no baseline budget left,
        and baseline entries no current finding consumed. Multiset
        semantics — two identical findings need two baseline entries.
        """
        budget = Counter(f.key for f in self.entries)
        new: list[Finding] = []
        for f in findings:
            if budget[f.key] > 0:
                budget[f.key] -= 1
            else:
                new.append(f)
        stale: list[Finding] = []
        remaining = dict(budget)
        for e in self.entries:
            if remaining.get(e.key, 0) > 0:
                remaining[e.key] -= 1
                stale.append(e)
        return new, stale


def render_text(findings: list[Finding], *, suppressed: int = 0, stale: list[Finding] | None = None) -> str:
    lines = []
    for f in findings:
        lines.append(f"{f.path}:{f.line}:{f.col}: {f.rule} [{f.severity}] {f.message}")
        if f.context:
            lines.append(f"    {f.context}")
    if stale:
        for e in stale:
            lines.append(
                f"stale baseline entry: {e.rule} @ {e.path} ({e.context!r}) "
                "— fixed? run with --update-baseline"
            )
    n = len(findings)
    summary = f"{n} finding{'s' if n != 1 else ''}"
    if suppressed:
        summary += f", {suppressed} suppressed by noqa"
    if stale:
        summary += f", {len(stale)} stale baseline entr{'ies' if len(stale) != 1 else 'y'}"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    findings: list[Finding], *, suppressed: int = 0, stale: list[Finding] | None = None
) -> str:
    doc = {
        "version": _FORMAT_VERSION,
        "findings": [f.to_dict() for f in findings],
        "suppressed": suppressed,
        "stale": [e.to_dict() for e in (stale or [])],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def parse_json(text: str) -> tuple[list[Finding], int, list[Finding]]:
    """Inverse of :func:`render_json` (round-trip property-tested)."""
    doc = json.loads(text)
    return (
        [Finding.from_dict(d) for d in doc.get("findings", [])],
        int(doc.get("suppressed", 0)),
        [Finding.from_dict(d) for d in doc.get("stale", [])],
    )
