"""Static enforcement of the repo's runtime contracts.

Eight PRs of growth left this reproduction with a set of load-bearing
invariants — seeded scenarios bit-identical across all four engines,
``compute_dtype`` threaded end to end, no blocking calls while a lock a
dead peer could hold is held, shared-memory segments unlinked on every
path, a frame codec for every registered message kind — all of them
enforced only *dynamically*, by conformance tests that catch a violation
after it ships. This package turns those contracts into machine-checked
lint rules that fail at review time instead.

Five rule families, each grounded in a contract this codebase has been
bitten by (see docs/architecture.md, "Invariants & static analysis"):

* **DET** — determinism: no global-state RNG, wall-clock reads or
  unordered ``set`` iteration inside protocol-deterministic modules.
* **DTYPE** — dtype discipline: array constructors on compute paths
  carry an explicit ``dtype=``; no silent float64 upcasts.
* **LOCK** — concurrency: no blocking calls while a lock is held, no
  lock-order inversions.
* **RES** — resources: shared-memory segments, sockets and files are
  released on every exit path.
* **PROTO** — registry consistency: every frame kind has an encoder and
  a decoder; every registered backend implements the full protocol
  surface.

Run it with ``python -m repro.analysis check src tests``. Findings are
suppressed per line with ``# repro: noqa[RULE]`` (a justifying comment
is expected) or accepted wholesale via a committed JSON baseline.
"""

from repro.analysis.core import Finding, SourceFile, run_check
from repro.analysis.report import Baseline, render_json, render_text
from repro.analysis.registry import all_rules, rule_descriptions

__all__ = [
    "Finding",
    "SourceFile",
    "run_check",
    "Baseline",
    "render_text",
    "render_json",
    "all_rules",
    "rule_descriptions",
]
