"""ParMAC adapter for deep nets — the same ring engines, different model.

Submodels are *hidden units*: "M is the number of hidden units in a deep
net" (paper section 4). Each unit (k, j) owns row j of layer k's weights
plus its bias, and its W-step subproblem — fit ``sigma(w . z_{k-1} + b)``
to column j of ``z_k`` under squared loss — depends only on the shard's
coordinates for layers k-1 and k, exactly the reduced-dependency structure
section 9 points out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributed.interfaces import SubmodelSpec
from repro.nets.deepnet import DeepNet
from repro.nets.layers import ACTIVATIONS
from repro.nets.mac_net import MACTrainerNet
from repro.optim.schedules import InverseSchedule
from repro.optim.sgd import SGDState, minibatch_indices

__all__ = ["NetShard", "NetAdapter", "make_net_shards"]


@dataclass
class NetShard:
    """One machine's private (X, Y, Z_1..Z_K) for a deep net."""

    X: np.ndarray
    Y: np.ndarray
    Zs: list

    def __post_init__(self):
        if len(self.X) != len(self.Y) or any(len(Z) != len(self.X) for Z in self.Zs):
            raise ValueError("inconsistent shard lengths")

    @property
    def n(self) -> int:
        return len(self.X)


def make_net_shards(X, Y, Zs, parts, *, dtype=None) -> list[NetShard]:
    """Materialise deep-net shards from global arrays and a partition.

    ``dtype`` fixes the shards' compute precision; when omitted it is
    inferred from the auxiliary coordinates (which the net's forward pass
    produced in the model's compute dtype), falling back to float64.
    """
    if dtype is None:
        z_dtype = np.asarray(Zs[0]).dtype if len(Zs) else np.dtype(np.float64)
        dtype = z_dtype if z_dtype.kind == "f" else np.dtype(np.float64)
    dtype = np.dtype(dtype)
    X = np.asarray(X, dtype=dtype)
    Y = np.asarray(Y, dtype=dtype)
    Zs = [np.asarray(Z, dtype=dtype) for Z in Zs]
    return [
        NetShard(X=X[idx].copy(), Y=Y[idx].copy(), Zs=[Z[idx].copy() for Z in Zs])
        for idx in parts
    ]


class NetAdapter:
    """ParMAC adapter exposing a :class:`DeepNet`'s hidden units as submodels.

    Parameters
    ----------
    net : DeepNet
    z_steps, z_lr : Z-step optimiser settings (delegated to MACTrainerNet's
        safeguarded gradient descent, run shard-locally).
    """

    def __init__(self, net: DeepNet, *, z_steps: int = 10, z_lr: float = 0.5, w_schedule=None):
        self.model = net
        self.z_steps = int(z_steps)
        self.z_lr = float(z_lr)
        self.w_schedule = (
            w_schedule if w_schedule is not None else InverseSchedule(eta0=0.5, t0=100.0)
        )
        self._specs = []
        sid = 0
        for k, layer in enumerate(net.layers):
            for j in range(layer.n_out):
                self._specs.append(SubmodelSpec(sid=sid, kind="unit", index=(k, j)))
                sid += 1
        # A private trainer instance provides the Z-step numerics.
        self._ztrainer = MACTrainerNet(net, z_steps=z_steps, z_lr=z_lr)

    # -------------------------------------------------------------- specs
    def submodel_specs(self) -> list[SubmodelSpec]:
        return list(self._specs)

    @property
    def compute_dtype(self) -> np.dtype:
        """End-to-end compute precision (the model's parameter dtype)."""
        return self.model.compute_dtype

    def batch_key(self, spec: SubmodelSpec):
        """Units of one layer may share a batched W update (they read the
        same shard inputs/targets, so their SGD passes stack into one
        GEMM per minibatch)."""
        return ("unit", spec.index[0])

    # ------------------------------------------------------------- params
    def get_params(self, spec: SubmodelSpec) -> np.ndarray:
        k, j = spec.index
        layer = self.model.layers[k]
        return np.concatenate([layer.W[j], layer.b[j : j + 1]])

    def set_params(self, spec: SubmodelSpec, theta: np.ndarray) -> None:
        k, j = spec.index
        layer = self.model.layers[k]
        theta = np.asarray(theta, dtype=layer.W.dtype).ravel()
        if theta.shape != (layer.n_in + 1,):
            raise ValueError(f"expected {layer.n_in + 1} params, got {theta.shape}")
        layer.W[j] = theta[:-1]
        layer.b[j] = theta[-1]

    # Batched variants: the engines read every resident unit at seeding
    # and write all M units back at assembly, every iteration, on every
    # machine — per-unit concatenate/assign there is M python-level ops
    # where one matrix slice per layer suffices. The wire keeps sid-level
    # granularity (one travelling message per unit) regardless.
    def get_params_batch(self, specs) -> list[np.ndarray]:
        """Per-spec flat parameter vectors, one matrix op per layer."""
        specs = list(specs)
        by_layer: dict[int, list[tuple[int, SubmodelSpec]]] = {}
        for pos, spec in enumerate(specs):
            by_layer.setdefault(spec.index[0], []).append((pos, spec))
        out: list[np.ndarray | None] = [None] * len(specs)
        for k, group in by_layer.items():
            layer = self.model.layers[k]
            rows = np.fromiter((s.index[1] for _, s in group), dtype=np.intp)
            Theta = np.concatenate([layer.W[rows], layer.b[rows, None]], axis=1)
            for i, (pos, _) in enumerate(group):
                out[pos] = Theta[i]
        return out

    def set_params_batch(self, items) -> None:
        """Write many ``(spec, theta)`` pairs, one matrix op per layer."""
        by_layer: dict[int, list] = {}
        for spec, theta in items:
            by_layer.setdefault(spec.index[0], []).append((spec, theta))
        for k, group in by_layer.items():
            layer = self.model.layers[k]
            rows = np.fromiter((s.index[1] for s, _ in group), dtype=np.intp)
            Theta = np.stack(
                [np.asarray(th, dtype=layer.W.dtype).ravel() for _, th in group]
            )
            if Theta.shape[1] != layer.n_in + 1:
                raise ValueError(
                    f"expected {layer.n_in + 1} params per unit of layer {k}, "
                    f"got {Theta.shape[1]}"
                )
            layer.W[rows] = Theta[:, :-1]
            layer.b[rows] = Theta[:, -1]

    # ------------------------------------------------------------- W step
    def w_update(
        self,
        spec: SubmodelSpec,
        theta: np.ndarray,
        state: SGDState,
        shard: NetShard,
        mu: float,
        *,
        batch_size: int,
        shuffle: bool,
        rng,
    ) -> np.ndarray:
        """One SGD pass of one hidden unit over one shard."""
        k, j = spec.index
        layer = self.model.layers[k]
        A_in = shard.X if k == 0 else shard.Zs[k - 1]
        target = shard.Y if k == len(self.model.layers) - 1 else shard.Zs[k]
        t = target[:, j] if target.ndim == 2 else target
        theta = np.asarray(theta, dtype=layer.W.dtype).ravel()
        w = theta[:-1].copy()
        b = theta[-1]
        f, fprime = ACTIVATIONS[layer.activation]
        for idx in minibatch_indices(shard.n, batch_size, shuffle=shuffle, rng=rng):
            eta = self.w_schedule.rate(state.t) / len(idx)
            pre = A_in[idx] @ w + b
            a = f(pre)
            delta = (a - t[idx]) * fprime(a)
            w -= eta * (delta @ A_in[idx])
            b = b - eta * delta.sum()
            state.advance(len(idx))
        return np.concatenate([w, np.asarray([b], dtype=w.dtype)])

    def w_update_batch(
        self,
        specs,
        thetas,
        states,
        shard: NetShard,
        mu: float,
        *,
        batch_size: int,
        shuffle: bool,
        rng,
    ) -> list[np.ndarray]:
        """One shared SGD pass of co-resident units of one layer.

        The whole group draws a single minibatch index order (sequential —
        per-unit shuffling would demand per-unit draws, which is why the
        engines fall back to :meth:`w_update` when ``shuffle_within`` is
        on) and each minibatch becomes one stacked GEMM: the per-unit
        ``delta`` vectors form an ``(n_batch, m_units)`` matrix and all
        gradients come from one ``Delta.T @ A_in[idx]`` instead of
        ``m_units`` Python-level loops. Per-unit step-size schedules are
        preserved: each unit's carried ``SGDState`` drives its own row of
        the update.
        """
        if shuffle:
            raise ValueError(
                "batched W updates share one draw order; per-unit shuffling "
                "(shuffle_within=True) requires the per-unit w_update path"
            )
        ks = {spec.index[0] for spec in specs}
        if len(ks) != 1:
            raise ValueError(
                f"a unit batch must come from one layer, got layers {sorted(ks)}"
            )
        (k,) = ks
        layer = self.model.layers[k]
        cd = layer.W.dtype
        A_in = shard.X if k == 0 else shard.Zs[k - 1]
        target = shard.Y if k == len(self.model.layers) - 1 else shard.Zs[k]
        cols = np.fromiter((spec.index[1] for spec in specs), dtype=np.intp)
        T = target[:, cols] if target.ndim == 2 else np.asarray(target)[:, None]
        Theta = np.stack([np.asarray(th, dtype=cd).ravel() for th in thetas])
        if Theta.shape[1] != layer.n_in + 1:
            raise ValueError(
                f"expected {layer.n_in + 1} params per unit, got {Theta.shape[1]}"
            )
        W = np.ascontiguousarray(Theta[:, :-1])
        b = np.ascontiguousarray(Theta[:, -1])
        f, fprime = ACTIVATIONS[layer.activation]
        n = shard.n
        for start in range(0, n, batch_size):
            sl = slice(start, min(start + batch_size, n))
            m_b = sl.stop - sl.start
            # Same scalar rounding as the per-unit path: rate/m in float64,
            # then one cast into the compute dtype.
            etas = (
                np.array(
                    [self.w_schedule.rate(st.t) for st in states],
                    dtype=np.float64,
                )
                / m_b
            ).astype(cd)
            Pre = A_in[sl] @ W.T + b
            A = f(Pre)
            Delta = (A - T[sl]) * fprime(A)
            W -= etas[:, None] * (Delta.T @ A_in[sl])
            b -= etas * Delta.sum(axis=0)
            for st in states:
                st.advance(m_b)
        return [np.concatenate([W[i], b[i : i + 1]]) for i in range(len(specs))]

    # ------------------------------------------------------------- Z step
    def z_update(self, shard: NetShard, mu: float) -> int:
        """Shard-local safeguarded gradient Z step; returns coords changed.

        Runs the trainer's stacked (activation-cached) solver: a shard's Z
        solves are a handful of whole-shard GEMMs per gradient step in the
        model's compute dtype — the Z-step mirror of ``w_update_batch`` —
        and remain bit-identical to ``MACTrainerNet.z_step_reference``.
        """
        new_Zs = self._ztrainer.z_step(shard.X, shard.Y, shard.Zs, mu)
        changed = sum(
            int((np.abs(new - old) > 1e-12).sum())
            for new, old in zip(new_Zs, shard.Zs)
        )
        shard.Zs = new_Zs
        return changed

    # --------------------------------------------------------- objectives
    def e_q_shard(self, shard: NetShard, mu: float) -> float:
        return self._ztrainer.e_q(shard.X, shard.Y, shard.Zs, mu)

    def e_ba_shard(self, shard: NetShard) -> float:
        """Shard contribution to the nested objective (name kept for the
        generic engine interface)."""
        return self.model.loss(shard.X, shard.Y)

    def violations_shard(self, shard: NetShard) -> float:
        """Constraint residual ``sum_k ||Z_k - f_k(Z_{k-1})||^2``."""
        ins = [shard.X] + list(shard.Zs)
        total = 0.0
        for k, layer in enumerate(self.model.layers[:-1]):
            R = shard.Zs[k] - layer.forward(ins[k])
            total += float((R * R).sum())
        return total
