"""ParMAC adapter for deep nets — the same ring engines, different model.

Submodels are *hidden units*: "M is the number of hidden units in a deep
net" (paper section 4). Each unit (k, j) owns row j of layer k's weights
plus its bias, and its W-step subproblem — fit ``sigma(w . z_{k-1} + b)``
to column j of ``z_k`` under squared loss — depends only on the shard's
coordinates for layers k-1 and k, exactly the reduced-dependency structure
section 9 points out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributed.interfaces import SubmodelSpec
from repro.nets.deepnet import DeepNet
from repro.nets.layers import ACTIVATIONS
from repro.nets.mac_net import MACTrainerNet
from repro.optim.schedules import InverseSchedule
from repro.optim.sgd import SGDState, minibatch_indices

__all__ = ["NetShard", "NetAdapter", "make_net_shards"]


@dataclass
class NetShard:
    """One machine's private (X, Y, Z_1..Z_K) for a deep net."""

    X: np.ndarray
    Y: np.ndarray
    Zs: list

    def __post_init__(self):
        if len(self.X) != len(self.Y) or any(len(Z) != len(self.X) for Z in self.Zs):
            raise ValueError("inconsistent shard lengths")

    @property
    def n(self) -> int:
        return len(self.X)


def make_net_shards(X, Y, Zs, parts) -> list[NetShard]:
    """Materialise deep-net shards from global arrays and a partition."""
    X = np.asarray(X, dtype=np.float64)
    Y = np.asarray(Y, dtype=np.float64)
    return [
        NetShard(X=X[idx].copy(), Y=Y[idx].copy(), Zs=[Z[idx].copy() for Z in Zs])
        for idx in parts
    ]


class NetAdapter:
    """ParMAC adapter exposing a :class:`DeepNet`'s hidden units as submodels.

    Parameters
    ----------
    net : DeepNet
    z_steps, z_lr : Z-step optimiser settings (delegated to MACTrainerNet's
        safeguarded gradient descent, run shard-locally).
    """

    def __init__(self, net: DeepNet, *, z_steps: int = 10, z_lr: float = 0.5, w_schedule=None):
        self.model = net
        self.z_steps = int(z_steps)
        self.z_lr = float(z_lr)
        self.w_schedule = (
            w_schedule if w_schedule is not None else InverseSchedule(eta0=0.5, t0=100.0)
        )
        self._specs = []
        sid = 0
        for k, layer in enumerate(net.layers):
            for j in range(layer.n_out):
                self._specs.append(SubmodelSpec(sid=sid, kind="unit", index=(k, j)))
                sid += 1
        # A private trainer instance provides the Z-step numerics.
        self._ztrainer = MACTrainerNet(net, z_steps=z_steps, z_lr=z_lr)

    # -------------------------------------------------------------- specs
    def submodel_specs(self) -> list[SubmodelSpec]:
        return list(self._specs)

    # ------------------------------------------------------------- params
    def get_params(self, spec: SubmodelSpec) -> np.ndarray:
        k, j = spec.index
        layer = self.model.layers[k]
        return np.concatenate([layer.W[j], [layer.b[j]]])

    def set_params(self, spec: SubmodelSpec, theta: np.ndarray) -> None:
        k, j = spec.index
        layer = self.model.layers[k]
        theta = np.asarray(theta, dtype=np.float64).ravel()
        if theta.shape != (layer.n_in + 1,):
            raise ValueError(f"expected {layer.n_in + 1} params, got {theta.shape}")
        layer.W[j] = theta[:-1]
        layer.b[j] = float(theta[-1])

    # Batched variants: the engines read every resident unit at seeding
    # and write all M units back at assembly, every iteration, on every
    # machine — per-unit concatenate/assign there is M python-level ops
    # where one matrix slice per layer suffices. The wire keeps sid-level
    # granularity (one travelling message per unit) regardless.
    def get_params_batch(self, specs) -> list[np.ndarray]:
        """Per-spec flat parameter vectors, one matrix op per layer."""
        specs = list(specs)
        by_layer: dict[int, list[tuple[int, SubmodelSpec]]] = {}
        for pos, spec in enumerate(specs):
            by_layer.setdefault(spec.index[0], []).append((pos, spec))
        out: list[np.ndarray | None] = [None] * len(specs)
        for k, group in by_layer.items():
            layer = self.model.layers[k]
            rows = np.fromiter((s.index[1] for _, s in group), dtype=np.intp)
            Theta = np.concatenate([layer.W[rows], layer.b[rows, None]], axis=1)
            for i, (pos, _) in enumerate(group):
                out[pos] = Theta[i]
        return out

    def set_params_batch(self, items) -> None:
        """Write many ``(spec, theta)`` pairs, one matrix op per layer."""
        by_layer: dict[int, list] = {}
        for spec, theta in items:
            by_layer.setdefault(spec.index[0], []).append((spec, theta))
        for k, group in by_layer.items():
            layer = self.model.layers[k]
            rows = np.fromiter((s.index[1] for s, _ in group), dtype=np.intp)
            Theta = np.stack(
                [np.asarray(th, dtype=np.float64).ravel() for _, th in group]
            )
            if Theta.shape[1] != layer.n_in + 1:
                raise ValueError(
                    f"expected {layer.n_in + 1} params per unit of layer {k}, "
                    f"got {Theta.shape[1]}"
                )
            layer.W[rows] = Theta[:, :-1]
            layer.b[rows] = Theta[:, -1]

    # ------------------------------------------------------------- W step
    def w_update(
        self,
        spec: SubmodelSpec,
        theta: np.ndarray,
        state: SGDState,
        shard: NetShard,
        mu: float,
        *,
        batch_size: int,
        shuffle: bool,
        rng,
    ) -> np.ndarray:
        """One SGD pass of one hidden unit over one shard."""
        k, j = spec.index
        layer = self.model.layers[k]
        A_in = shard.X if k == 0 else shard.Zs[k - 1]
        target = shard.Y if k == len(self.model.layers) - 1 else shard.Zs[k]
        t = target[:, j] if target.ndim == 2 else target
        w = np.array(theta[:-1], copy=True)
        b = float(theta[-1])
        for idx in minibatch_indices(shard.n, batch_size, shuffle=shuffle, rng=rng):
            eta = self.w_schedule.rate(state.t) / len(idx)
            pre = A_in[idx] @ w + b
            f, fprime = ACTIVATIONS[layer.activation]
            a = f(pre)
            delta = (a - t[idx]) * fprime(a)
            w -= eta * (delta @ A_in[idx])
            b -= eta * float(delta.sum())
            state.advance(len(idx))
        return np.concatenate([w, [b]])

    # ------------------------------------------------------------- Z step
    def z_update(self, shard: NetShard, mu: float) -> int:
        """Shard-local safeguarded gradient Z step; returns coords changed."""
        new_Zs = self._ztrainer.z_step(shard.X, shard.Y, shard.Zs, mu)
        changed = sum(
            int((np.abs(new - old) > 1e-12).sum())
            for new, old in zip(new_Zs, shard.Zs)
        )
        shard.Zs = new_Zs
        return changed

    # --------------------------------------------------------- objectives
    def e_q_shard(self, shard: NetShard, mu: float) -> float:
        return self._ztrainer.e_q(shard.X, shard.Y, shard.Zs, mu)

    def e_ba_shard(self, shard: NetShard) -> float:
        """Shard contribution to the nested objective (name kept for the
        generic engine interface)."""
        return self.model.loss(shard.X, shard.Y)

    def violations_shard(self, shard: NetShard) -> float:
        """Constraint residual ``sum_k ||Z_k - f_k(Z_{k-1})||^2``."""
        ins = [shard.X] + list(shard.Zs)
        total = 0.0
        for k, layer in enumerate(self.model.layers[:-1]):
            R = shard.Zs[k] - layer.forward(ins[k])
            total += float((R * R).sum())
        return total
