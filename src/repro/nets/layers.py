"""Dense layers with elementwise activations.

Each layer is ``f_k(t) = sigma(W_k t + b_k)`` — "a linear mapping followed
by a squashing nonlinearity" (paper section 3.2). Activations expose both
the map and its derivative (needed by the Z step and by backprop).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import check_random_state

__all__ = ["ACTIVATIONS", "DenseLayer"]


def _sigmoid(t: np.ndarray) -> np.ndarray:
    # Split by sign for numerical stability at large |t|.
    out = np.empty_like(t)
    pos = t >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-t[pos]))
    et = np.exp(t[~pos])
    out[~pos] = et / (1.0 + et)
    return out


def _sigmoid_prime_from_value(a: np.ndarray) -> np.ndarray:
    return a * (1.0 - a)


def _linear(t: np.ndarray) -> np.ndarray:
    return t


def _linear_prime_from_value(a: np.ndarray) -> np.ndarray:
    return np.ones_like(a)


def _tanh(t: np.ndarray) -> np.ndarray:
    return np.tanh(t)


def _tanh_prime_from_value(a: np.ndarray) -> np.ndarray:
    return 1.0 - a * a


# name -> (f, f' expressed in terms of the *output* value a = f(t)).
ACTIVATIONS = {
    "sigmoid": (_sigmoid, _sigmoid_prime_from_value),
    "linear": (_linear, _linear_prime_from_value),
    "tanh": (_tanh, _tanh_prime_from_value),
}


@dataclass
class DenseLayer:
    """One layer ``sigma(W t + b)``.

    Attributes
    ----------
    W : ndarray (n_out, n_in)
    b : ndarray (n_out,)
    activation : str
        Key into :data:`ACTIVATIONS`.
    """

    W: np.ndarray
    b: np.ndarray
    activation: str = "sigmoid"

    def __post_init__(self):
        # The layer's compute precision is carried by W's float dtype
        # (paper section 9: reduced-precision storage and computation);
        # non-float inputs are promoted to the float64 default.
        self.W = np.asarray(self.W)
        if self.W.dtype.kind != "f":
            self.W = self.W.astype(np.float64)
        self.b = np.asarray(self.b, dtype=self.W.dtype).ravel()
        if self.W.ndim != 2 or self.b.shape != (self.W.shape[0],):
            raise ValueError(
                f"inconsistent layer shapes W={self.W.shape}, b={self.b.shape}"
            )
        if self.activation not in ACTIVATIONS:
            raise ValueError(
                f"unknown activation {self.activation!r}; available: {sorted(ACTIVATIONS)}"
            )

    @classmethod
    def create(
        cls, n_in: int, n_out: int, activation: str = "sigmoid", *, rng=None,
        scale=None, dtype=np.float64
    ) -> "DenseLayer":
        """Random Glorot-style initialisation (in ``dtype`` precision)."""
        rng = check_random_state(rng)
        if scale is None:
            scale = np.sqrt(2.0 / (n_in + n_out))
        dtype = np.dtype(dtype)
        return cls(
            W=rng.normal(0.0, scale, size=(n_out, n_in)).astype(dtype),
            b=np.zeros(n_out, dtype=dtype),
            activation=activation,
        )

    @property
    def n_in(self) -> int:
        return self.W.shape[1]

    @property
    def n_out(self) -> int:
        return self.W.shape[0]

    @property
    def dtype(self) -> np.dtype:
        """Compute precision of this layer's parameters and forward pass."""
        return self.W.dtype

    def preactivation(self, X: np.ndarray) -> np.ndarray:
        return np.asarray(X, dtype=self.W.dtype) @ self.W.T + self.b

    def forward(self, X: np.ndarray) -> np.ndarray:
        f, _ = ACTIVATIONS[self.activation]
        return f(self.preactivation(X))

    def derivative_from_output(self, A: np.ndarray) -> np.ndarray:
        """sigma'(t) expressed via the layer output A = sigma(t)."""
        _, fprime = ACTIVATIONS[self.activation]
        return fprime(A)

    def copy(self) -> "DenseLayer":
        return DenseLayer(self.W.copy(), self.b.copy(), self.activation)
