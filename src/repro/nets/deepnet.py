"""Nested deep-net model ``y = f_{K+1}(...f_1(x))`` (paper eq. 4)."""

from __future__ import annotations

import numpy as np

from repro.nets.layers import DenseLayer
from repro.utils.rng import check_random_state

__all__ = ["DeepNet"]


class DeepNet:
    """A stack of dense layers; K hidden layers + 1 output layer.

    The nested least-squares objective (eq. 4) is
    ``E(W) = 1/2 sum_n ||y_n - f(x_n)||^2``.
    """

    def __init__(self, layers: list[DenseLayer]):
        if not layers:
            raise ValueError("a net needs at least one layer")
        for prev, nxt in zip(layers, layers[1:]):
            if prev.n_out != nxt.n_in:
                raise ValueError(
                    f"layer size mismatch: {prev.n_out} -> {nxt.n_in}"
                )
        dtypes = {lay.dtype for lay in layers}
        if len(dtypes) > 1:
            raise ValueError(
                f"all layers must share one compute dtype, got {sorted(map(str, dtypes))}"
            )
        self.layers = layers

    @classmethod
    def create(
        cls,
        sizes: list[int],
        *,
        hidden_activation: str = "sigmoid",
        output_activation: str = "linear",
        rng=None,
        dtype=np.float64,
    ) -> "DeepNet":
        """Random net with layer widths ``sizes = [d_in, h_1, ..., d_out]``.

        ``dtype`` sets the end-to-end compute precision: parameters,
        forward passes and (through the adapters) every W/Z update run in
        it (paper section 9's reduced-precision refinement).
        """
        if len(sizes) < 2:
            raise ValueError("sizes must list at least input and output widths")
        rng = check_random_state(rng)
        layers = []
        for i in range(len(sizes) - 1):
            act = output_activation if i == len(sizes) - 2 else hidden_activation
            layers.append(
                DenseLayer.create(sizes[i], sizes[i + 1], act, rng=rng, dtype=dtype)
            )
        return cls(layers)

    # ------------------------------------------------------------------ API
    @property
    def K(self) -> int:
        """Number of hidden layers."""
        return len(self.layers) - 1

    @property
    def sizes(self) -> list[int]:
        return [self.layers[0].n_in] + [lay.n_out for lay in self.layers]

    @property
    def compute_dtype(self) -> np.dtype:
        """The net's end-to-end compute precision (all layers share it)."""
        return self.layers[0].dtype

    def forward(self, X: np.ndarray) -> np.ndarray:
        A = np.asarray(X, dtype=self.compute_dtype)
        for layer in self.layers:
            A = layer.forward(A)
        return A

    def activations(self, X: np.ndarray) -> list[np.ndarray]:
        """Per-layer outputs ``[f_1(x), f_2(f_1(x)), ..., f(x)]``."""
        out = []
        A = np.asarray(X, dtype=self.compute_dtype)
        for layer in self.layers:
            A = layer.forward(A)
            out.append(A)
        return out

    def loss(self, X: np.ndarray, Y: np.ndarray) -> float:
        """Nested objective ``1/2 sum ||y - f(x)||^2`` (eq. 4)."""
        R = np.asarray(Y, dtype=self.compute_dtype) - self.forward(X)
        return 0.5 * float((R * R).sum())

    def copy(self) -> "DeepNet":
        return DeepNet([lay.copy() for lay in self.layers])
