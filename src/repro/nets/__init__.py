"""MAC with K hidden layers (paper section 3.2).

The paper's contribution is general: MAC/ParMAC applies to any nested
function ``f_{K+1}(...f_1(x))``. This package instantiates it for the
running example — sigmoid deep nets trained on least squares (eq. 4) —
with per-unit W-step submodels, the generalised-proximal Z step (eq. 6),
a chain-rule SGD baseline for comparison, and a ParMAC adapter so the same
ring engines that train BAs also train deep nets.
"""

from repro.nets.layers import ACTIVATIONS, DenseLayer
from repro.nets.deepnet import DeepNet
from repro.nets.backprop import BackpropTrainer
from repro.nets.mac_net import MACTrainerNet
from repro.nets.adapter import NetAdapter, NetShard, make_net_shards

__all__ = [
    "ACTIVATIONS",
    "DenseLayer",
    "DeepNet",
    "BackpropTrainer",
    "MACTrainerNet",
    "NetAdapter",
    "NetShard",
    "make_net_shards",
]
