"""Chain-rule SGD baseline for deep nets.

MAC's selling point is precisely that it avoids backpropagated gradients;
this trainer provides the conventional alternative for comparison (it is
also the style of training the distributed-deep-net related work of
section 2 parallelises).
"""

from __future__ import annotations

import numpy as np

from repro.nets.deepnet import DeepNet
from repro.optim.schedules import InverseSchedule
from repro.optim.sgd import SGDState, minibatch_indices
from repro.utils.rng import check_random_state

__all__ = ["BackpropTrainer"]


class BackpropTrainer:
    """Minibatch SGD with exact chain-rule gradients on eq. (4)."""

    def __init__(
        self,
        net: DeepNet,
        *,
        schedule=None,
        batch_size: int = 32,
        seed=None,
    ):
        self.net = net
        self.schedule = schedule if schedule is not None else InverseSchedule(eta0=0.5, t0=100.0)
        self.batch_size = int(batch_size)
        self.rng = check_random_state(seed)
        self.state = SGDState()

    def gradients(self, X: np.ndarray, Y: np.ndarray) -> list[tuple[np.ndarray, np.ndarray]]:
        """Exact gradients of ``1/2 sum ||y - f(x)||^2`` per layer."""
        X = np.asarray(X, dtype=np.float64)
        Y = np.asarray(Y, dtype=np.float64)
        acts = self.net.activations(X)
        inputs = [X] + acts[:-1]
        # Output delta: dE/d(preact_{K+1}).
        delta = (acts[-1] - Y) * self.net.layers[-1].derivative_from_output(acts[-1])
        grads: list[tuple[np.ndarray, np.ndarray]] = [None] * len(self.net.layers)
        for k in range(len(self.net.layers) - 1, -1, -1):
            grads[k] = (delta.T @ inputs[k], delta.sum(axis=0))
            if k > 0:
                delta = (delta @ self.net.layers[k].W) * self.net.layers[
                    k - 1
                ].derivative_from_output(acts[k - 1])
        return grads

    def epoch(self, X: np.ndarray, Y: np.ndarray) -> None:
        """One SGD pass over (X, Y)."""
        n = len(X)
        for idx in minibatch_indices(n, self.batch_size, shuffle=True, rng=self.rng):
            eta = self.schedule.rate(self.state.t) / len(idx)
            for layer, (gW, gb) in zip(self.net.layers, self.gradients(X[idx], Y[idx])):
                layer.W -= eta * gW
                layer.b -= eta * gb
            self.state.advance(len(idx))

    def fit(self, X: np.ndarray, Y: np.ndarray, *, epochs: int = 10) -> list[float]:
        """Train for ``epochs`` passes; returns the per-epoch loss curve."""
        losses = []
        for _ in range(epochs):
            self.epoch(X, Y)
            losses.append(self.net.loss(X, Y))
        return losses
