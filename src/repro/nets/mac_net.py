"""MAC for K-hidden-layer nets (paper section 3.2, eqs. 5-6).

Auxiliary coordinates ``z_{k,n}`` are introduced for every hidden layer
and data point; the quadratic-penalty objective is

    E_Q(W, Z; mu) = 1/2 sum_n ||y_n - f_{K+1}(z_{K,n})||^2
                  + mu/2 sum_n sum_k ||z_{k,n} - f_k(z_{k-1,n})||^2

* **W step**: each layer trains on ``(Z_{k-1}, Z_k)`` pairs with squared
  loss through its activation — "a separate minimisation over the weights
  of each hidden unit", solved here with vectorised SGD (columns are
  independent, so layer-wise training equals unit-wise training).
* **Z step**: per point, a "generalised proximal operator" — minimised by
  vectorised gradient descent with a per-point acceptance safeguard
  (a step is only kept for points whose objective did not increase, so the
  step is monotone per point).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.history import IterationRecord, TrainingHistory
from repro.core.penalty import GeometricSchedule, penalty_schedule
from repro.nets.deepnet import DeepNet
from repro.optim.schedules import InverseSchedule
from repro.optim.sgd import SGDState, minibatch_indices
from repro.utils.rng import check_random_state

__all__ = ["MACTrainerNet"]


class MACTrainerNet:
    """Serial MAC trainer for a :class:`DeepNet` on least squares.

    Parameters
    ----------
    net : DeepNet
        Trained in place.
    schedule : GeometricSchedule or preset name
        The mu schedule.
    w_epochs : int
        SGD passes per layer per W step.
    z_steps : int
        Safeguarded gradient steps per Z step.
    z_lr : float
        Initial Z-step step size (per-point backtracked).
    """

    def __init__(
        self,
        net: DeepNet,
        schedule=None,
        *,
        w_epochs: int = 2,
        batch_size: int = 32,
        z_steps: int = 10,
        z_lr: float = 0.5,
        w_schedule=None,
        seed=None,
    ):
        self.net = net
        if schedule is None:
            schedule = GeometricSchedule(mu0=1.0, factor=2.0, n_iters=10)
        self.schedule = penalty_schedule(schedule)
        self.w_epochs = int(w_epochs)
        self.batch_size = int(batch_size)
        self.z_steps = int(z_steps)
        self.z_lr = float(z_lr)
        self.w_schedule = (
            w_schedule if w_schedule is not None else InverseSchedule(eta0=0.5, t0=100.0)
        )
        self.rng = check_random_state(seed)
        self.Zs_: list[np.ndarray] | None = None
        self.history_: TrainingHistory | None = None

    # --------------------------------------------------------- objectives
    @property
    def compute_dtype(self) -> np.dtype:
        """The net's end-to-end compute precision."""
        return self.net.compute_dtype

    def e_q(self, X, Y, Zs, mu: float) -> float:
        """Quadratic-penalty objective, eq. (6)."""
        ins = [np.asarray(X, dtype=self.compute_dtype)] + list(Zs)
        total = 0.0
        for k, layer in enumerate(self.net.layers[:-1]):
            R = Zs[k] - layer.forward(ins[k])
            total += 0.5 * mu * float((R * R).sum())
        R = np.asarray(Y, dtype=self.compute_dtype) - self.net.layers[-1].forward(Zs[-1])
        total += 0.5 * float((R * R).sum())
        return total

    def _e_q_per_point(self, X, Y, Zs, mu: float) -> np.ndarray:
        ins = [np.asarray(X, dtype=self.compute_dtype)] + list(Zs)
        # float64 accumulator regardless of compute_dtype: E_Q parity
        # across engines is asserted bit-exactly on these sums.
        total = np.zeros(len(X), dtype=np.float64)
        for k, layer in enumerate(self.net.layers[:-1]):
            R = Zs[k] - layer.forward(ins[k])
            total += 0.5 * mu * (R * R).sum(axis=1)
        R = np.asarray(Y, dtype=self.compute_dtype) - self.net.layers[-1].forward(Zs[-1])
        total += 0.5 * (R * R).sum(axis=1)
        return total

    # ------------------------------------------------------------- W step
    def init_coords(self, X: np.ndarray) -> list[np.ndarray]:
        """Initialise Z from the forward pass (the usual MAC warm start)."""
        return [A.copy() for A in self.net.activations(X)[:-1]]

    def _train_layer(self, layer, A_in: np.ndarray, T: np.ndarray) -> None:
        """SGD on ``1/2 ||T - sigma(W A_in + b)||^2`` for one layer.

        The loss separates over output units, so this is exactly the
        per-unit single-layer training the W step prescribes.
        """
        state = SGDState()
        n = len(A_in)
        for _ in range(self.w_epochs):
            for idx in minibatch_indices(n, self.batch_size, shuffle=True, rng=self.rng):
                eta = self.w_schedule.rate(state.t) / len(idx)
                A = layer.forward(A_in[idx])
                delta = (A - T[idx]) * layer.derivative_from_output(A)
                layer.W -= eta * (delta.T @ A_in[idx])
                layer.b -= eta * delta.sum(axis=0)
                state.advance(len(idx))

    def w_step(self, X: np.ndarray, Y: np.ndarray, Zs: list[np.ndarray]) -> None:
        """Train every layer on its (input, target) coordinate pair."""
        ins = [np.asarray(X, dtype=self.compute_dtype)] + list(Zs)
        targets = list(Zs) + [np.asarray(Y, dtype=self.compute_dtype)]
        for k, layer in enumerate(self.net.layers):
            self._train_layer(layer, ins[k], targets[k])

    # ------------------------------------------------------------- Z step
    def _z_gradients(self, X, Y, Zs, mu: float) -> list[np.ndarray]:
        """Gradient of E_Q w.r.t. each Z_k, vectorised over points."""
        ins = [np.asarray(X, dtype=self.compute_dtype)] + list(Zs)
        grads = []
        for k in range(len(Zs)):
            layer_k = self.net.layers[k]
            g = mu * (Zs[k] - layer_k.forward(ins[k]))
            nxt = self.net.layers[k + 1]
            A_next = nxt.forward(Zs[k])
            if k + 1 < len(Zs):
                R_next = Zs[k + 1] - A_next
                weight = mu
            else:
                R_next = np.asarray(Y, dtype=self.compute_dtype) - A_next
                weight = 1.0
            g -= weight * (R_next * nxt.derivative_from_output(A_next)) @ nxt.W
            grads.append(g)
        return grads

    def z_step_reference(self, X, Y, Zs: list[np.ndarray], mu: float) -> list[np.ndarray]:
        """Safeguarded gradient descent, recomputing every forward pass.

        The legacy formulation: each iteration runs ``_z_gradients`` (which
        forwards every layer on the current coordinates) and two
        ``_e_q_per_point`` evaluations — roughly three full forward passes
        per accepted step. Kept as the parity/benchmark reference for the
        activation-cached :meth:`z_step`.
        """
        Zs = [Z.copy() for Z in Zs]
        obj = self._e_q_per_point(X, Y, Zs, mu)
        lr = self.z_lr
        for _ in range(self.z_steps):
            grads = self._z_gradients(X, Y, Zs, mu)
            trial = [Z - lr * g for Z, g in zip(Zs, grads)]
            new_obj = self._e_q_per_point(X, Y, trial, mu)
            accept = new_obj <= obj
            if not accept.any():
                lr *= 0.5
                continue
            for Z, T in zip(Zs, trial):
                Z[accept] = T[accept]
            obj = np.where(accept, new_obj, obj)
        return Zs

    def _obj_from_acts(self, Y, Zs, acts, mu: float) -> np.ndarray:
        """Per-point E_Q from cached activations ``acts[k] = f_k(ins[k])``.

        Same accumulation order (and float64 accumulator) as
        ``_e_q_per_point``, so the values are bit-identical given identical
        activations.
        """
        total = np.zeros(len(acts[0]), dtype=np.float64)
        for k in range(len(Zs)):
            R = Zs[k] - acts[k]
            total += 0.5 * mu * (R * R).sum(axis=1)
        R = np.asarray(Y, dtype=self.compute_dtype) - acts[-1]
        total += 0.5 * (R * R).sum(axis=1)
        return total

    def _grads_from_acts(self, Y, Zs, acts, mu: float) -> list[np.ndarray]:
        """E_Q gradients w.r.t. each Z_k from cached activations.

        ``_z_gradients`` forwards layer k on ``ins[k]`` and layer k+1 on
        ``Zs[k]`` — but ``ins[k+1] is Zs[k]``, so both are exactly the
        activations ``acts`` already holds; no forward pass is needed.
        """
        grads = []
        for k in range(len(Zs)):
            g = mu * (Zs[k] - acts[k])
            nxt = self.net.layers[k + 1]
            A_next = acts[k + 1]
            if k + 1 < len(Zs):
                R_next = Zs[k + 1] - A_next
                weight = mu
            else:
                R_next = np.asarray(Y, dtype=self.compute_dtype) - A_next
                weight = 1.0
            g -= weight * (R_next * nxt.derivative_from_output(A_next)) @ nxt.W
            grads.append(g)
        return grads

    def z_step(self, X, Y, Zs: list[np.ndarray], mu: float) -> list[np.ndarray]:
        """Safeguarded gradient descent on the per-point proximal problems.

        Stacked formulation: one set of layer activations is computed per
        candidate point and shared between the objective and the gradient
        (the reference recomputes each forward up to three times). Rows
        of a forward pass depend only on the matching input rows, so the
        per-point acceptance safeguard updates the cached activations
        row-wise and every iterate stays bit-identical to
        :meth:`z_step_reference`.
        """
        Zs = [Z.copy() for Z in Zs]
        layers = self.net.layers
        ins = [np.asarray(X, dtype=self.compute_dtype)] + Zs
        # acts[k] = f_k(ins[k]); acts[0] depends only on X, so it is
        # computed once for the whole solve.
        acts = [layer.forward(ins[k]) for k, layer in enumerate(layers)]
        obj = self._obj_from_acts(Y, Zs, acts, mu)
        lr = self.z_lr
        for _ in range(self.z_steps):
            grads = self._grads_from_acts(Y, Zs, acts, mu)
            trial = [Z - lr * g for Z, g in zip(Zs, grads)]
            trial_acts = [acts[0]] + [
                layers[k].forward(trial[k - 1]) for k in range(1, len(layers))
            ]
            new_obj = self._obj_from_acts(Y, trial, trial_acts, mu)
            accept = new_obj <= obj
            if not accept.any():
                lr *= 0.5
                continue
            for Z, T in zip(Zs, trial):
                Z[accept] = T[accept]
            for k in range(1, len(acts)):
                acts[k][accept] = trial_acts[k][accept]
            obj = np.where(accept, new_obj, obj)
        return Zs

    # ----------------------------------------------------------------- fit
    def fit(self, X: np.ndarray, Y: np.ndarray) -> TrainingHistory:
        """Run MAC over the mu schedule; returns the history (E_Q, nested)."""
        X = np.asarray(X, dtype=self.compute_dtype)
        Y = np.asarray(Y, dtype=self.compute_dtype)
        if Y.ndim == 1:
            Y = Y[:, None]
        if len(X) != len(Y):
            raise ValueError(f"X has {len(X)} rows but Y has {len(Y)}")
        Zs = self.init_coords(X)
        history = TrainingHistory()
        for i, mu in enumerate(self.schedule):
            t0 = time.perf_counter()
            self.w_step(X, Y, Zs)
            Zs = self.z_step(X, Y, Zs, mu)
            elapsed = time.perf_counter() - t0
            history.append(
                IterationRecord(
                    iteration=i,
                    mu=float(mu),
                    e_q=self.e_q(X, Y, Zs, mu),
                    e_ba=self.net.loss(X, Y),  # nested objective
                    time=elapsed,
                )
            )
        self.Zs_ = Zs
        self.history_ = history
        return history
