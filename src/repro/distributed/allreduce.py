"""Exact-gradient W step via allreduce (paper section 6).

"We can also guarantee ParMAC's convergence with only the original MAC
theorem, without SGD-type conditions ... by computing the gradient in the
W step exactly: each machine computes the exact sum of per-point gradients
for each submodel, in parallel; then we aggregate these P partial
gradients into one exact gradient." — the parameter-server-style ablation
ParMAC avoids. For the BA we can do even better than gradient steps for
the decoder: least squares has *sufficient statistics* (Gram matrices)
that sum across shards, so the allreduced fit is exactly the serial one.
"""

from __future__ import annotations

import numpy as np

__all__ = ["allreduce_sum", "exact_decoder_fit", "exact_svm_steps", "exact_w_step_ba"]


def allreduce_sum(arrays) -> np.ndarray:
    """Element-wise sum of per-machine arrays (the MPI_Allreduce stand-in)."""
    arrays = list(arrays)
    if not arrays:
        raise ValueError("allreduce over an empty group")
    out = np.array(arrays[0], dtype=np.float64, copy=True)
    for a in arrays[1:]:
        a = np.asarray(a, dtype=np.float64)
        if a.shape != out.shape:
            raise ValueError(f"shape mismatch in allreduce: {a.shape} vs {out.shape}")
        out += a
    return out


def exact_decoder_fit(shards) -> tuple[np.ndarray, np.ndarray]:
    """Exact distributed least-squares decoder fit.

    Each shard contributes ``A_p^T A_p`` and ``A_p^T X_p`` with
    ``A_p = [Z_p, 1]``; the summed statistics give the identical normal
    equations a single machine would solve — bitwise-equal (up to float
    summation order) to the serial fit, with only O(L^2 + L D) communicated.

    Returns ``(B, c)``.
    """
    shards = list(shards)
    if not shards:
        raise ValueError("no shards")
    L = shards[0].Z.shape[1]
    grams = []
    cross = []
    for s in shards:
        A = np.hstack([s.Z.astype(np.float64), np.ones((s.n, 1))])
        grams.append(A.T @ A)
        cross.append(A.T @ s.X)
    G = allreduce_sum(grams)
    C = allreduce_sum(cross)
    try:
        theta = np.linalg.solve(G, C)
    except np.linalg.LinAlgError:
        theta = np.linalg.pinv(G) @ C
    B = np.ascontiguousarray(theta[:-1].T)
    c = theta[-1].copy()
    return B, c


def exact_svm_steps(
    shards,
    bit: int,
    theta0: np.ndarray,
    lam: float,
    *,
    n_steps: int = 50,
    eta0: float = 0.5,
) -> np.ndarray:
    """Full-batch subgradient descent for one encoder bit, allreduced.

    Each step: every shard computes its exact hinge subgradient
    contribution; the sum is the global subgradient (this is the slow exact
    alternative the paper contrasts with SGD). Step size ``eta0 / (1 + t)``.
    Returns the final flat ``[w, b]``.
    """
    theta = np.array(theta0, dtype=np.float64, copy=True)
    n_total = sum(s.n for s in shards)
    if n_total == 0:
        raise ValueError("no data in shards")
    for t in range(n_steps):
        w, b = theta[:-1], theta[-1]
        contribs_w = []
        contribs_b = []
        for s in shards:
            y = 2.0 * s.Z[:, bit].astype(np.float64) - 1.0
            scores = s.F @ w + b
            active = (y * scores) < 1.0
            gw = np.zeros_like(w)
            gb = 0.0
            if active.any():
                ya = y[active]
                gw = -(ya @ s.F[active])
                gb = -float(ya.sum())
            contribs_w.append(gw)
            contribs_b.append(np.array([gb]))
        grad_w = allreduce_sum(contribs_w) / n_total + lam * w
        grad_b = float(allreduce_sum(contribs_b)[0]) / n_total
        eta = eta0 / (1.0 + t)
        theta = np.concatenate([w - eta * grad_w, [b - eta * grad_b]])
    return theta


def exact_w_step_ba(model, shards, *, svm_steps: int = 50, svm_eta0: float = 0.5) -> None:
    """Exact distributed W step for a binary autoencoder, in place.

    Decoder: exact allreduced least squares. Encoder: full-batch
    allreduced subgradient descent per bit. This recovers serial-MAC
    behaviour from distributed shards (section 6), at the cost of one
    allreduce per gradient step instead of one model lap per epoch.
    """
    shards = list(shards)
    B, c = exact_decoder_fit(shards)
    model.decoder.B = B
    model.decoder.c = c
    for l in range(model.encoder.n_bits):
        theta = exact_svm_steps(
            shards,
            l,
            model.encoder.bit_params(l),
            model.encoder.lam,
            n_steps=svm_steps,
            eta0=svm_eta0,
        )
        model.encoder.set_bit_params(l, theta)
