"""Worker health supervision: heartbeats, classification, deadlines.

The wall-clock backends used to police workers with a single blunt
``worker_timeout`` (300 s by default): a worker could sit wedged for five
minutes before the coordinator noticed, and a genuinely slow worker could
be torn down for merely being slow. This module replaces that with a
heartbeat plane:

* every worker process runs one :class:`HeartbeatSender` daemon thread
  that emits a beat each ``interval_s`` carrying a monotone sequence
  number plus the worker's current *phase* ("w", "z", "idle", ...) and a
  *progress* counter (submodel visits handled) read from a shared
  :class:`WorkerPulse`;
* the coordinator feeds every beat into a :class:`HealthMonitor`, which
  classifies each worker as :class:`WorkerState` LIVE (beating and
  advancing), SLOW (beats have gone quiet — the process may be dying),
  STALLED (beating but no progress for ``stalled_after_s`` — the main
  thread is stuck) or DEAD (the coordinator's liveness poll saw the
  process exit);
* gathers consult the monitor *per phase* — the staleness clocks are
  reset at every dispatch, so "no progress for 60 s" means 60 s into
  *this* phase, not since some previous iteration — and fail a stalled
  worker long before the hard ``worker_timeout`` cap would fire.

Transport framing differs per backend (the tcp workers beat with encoded
:func:`~repro.distributed.framing.encode_heartbeat` control frames, the
mp workers with plain queue pings) but both feed the same monitor, and
the per-iteration ``health_*`` counters surface identically through
``IterationStats.extra``.

The monitor itself is single-threaded (the coordinator's gather loop is
the only caller); only :class:`WorkerPulse` is touched from two threads,
and its fields are single-word writes.
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass

__all__ = [
    "WorkerState",
    "HealthConfig",
    "WorkerPulse",
    "HeartbeatSender",
    "HealthMonitor",
]


class WorkerState(enum.Enum):
    """Coordinator-side classification of one worker."""

    LIVE = "live"
    SLOW = "slow"
    STALLED = "stalled"
    DEAD = "dead"


@dataclass(frozen=True)
class HealthConfig:
    """Knobs for the heartbeat plane.

    Parameters
    ----------
    interval_s : float
        Beat period of each worker's sender thread.
    slow_after_s : float
        A worker whose beats have gone quiet for this long is SLOW. Must
        comfortably exceed ``interval_s`` (a couple of missed beats, not
        one late one).
    stalled_after_s : float
        A worker whose *progress* has not advanced for this long within
        the current phase is STALLED and the gather fails it immediately
        instead of waiting out ``worker_timeout``. Progress ticks once
        per handled submodel visit, so this must exceed the longest
        single visit (SGD pass over one shard) you expect; the generous
        default assumes test-sized shards are nowhere near it.
    """

    interval_s: float = 0.25
    slow_after_s: float = 2.0
    stalled_after_s: float = 60.0

    def __post_init__(self):
        if self.interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {self.interval_s}")
        if self.slow_after_s <= self.interval_s:
            raise ValueError(
                f"slow_after_s ({self.slow_after_s}) must exceed interval_s "
                f"({self.interval_s})"
            )
        if self.stalled_after_s <= self.slow_after_s:
            raise ValueError(
                f"stalled_after_s ({self.stalled_after_s}) must exceed "
                f"slow_after_s ({self.slow_after_s})"
            )

    @classmethod
    def coerce(cls, value) -> "HealthConfig | None":
        """Normalise a ``health=`` argument: None, a config, or a dict."""
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, dict):
            return cls(**value)
        raise TypeError(
            f"health must be a HealthConfig, dict or None, got "
            f"{type(value).__name__}"
        )


class WorkerPulse:
    """The worker-side cell a beat reads: current phase + progress.

    Written by the worker's main thread (``enter`` at phase boundaries,
    ``tick`` once per handled submodel visit), read by the sender
    thread. Both fields are plain attribute writes — no lock needed for
    a monotone counter and a tag that is only ever *sampled*.
    """

    __slots__ = ("phase", "progress")

    def __init__(self):
        self.phase = "idle"
        self.progress = 0

    def enter(self, phase: str) -> None:
        self.phase = phase

    def tick(self) -> None:
        self.progress += 1


class HeartbeatSender:
    """One worker's beat thread.

    ``emit(seq, phase, progress)`` is the transport-specific send — the
    mp workers enqueue a plain tuple, the tcp workers an encoded
    HEARTBEAT frame — and must be safe to call concurrently with the
    main thread's replies (the workers wrap the response channel in a
    send lock). Emit errors end the thread quietly: if the response
    channel is gone the coordinator is tearing us down anyway.
    """

    def __init__(self, emit, interval_s: float, pulse: WorkerPulse):
        self._emit = emit
        self._interval_s = float(interval_s)
        self._pulse = pulse
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="heartbeat", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        seq = 0
        while not self._stop.wait(self._interval_s):
            seq += 1
            try:
                self._emit(seq, self._pulse.phase, self._pulse.progress)
            except (OSError, ValueError, EOFError, BrokenPipeError):
                return

    def stop(self) -> None:
        self._stop.set()


class _WorkerRecord:
    __slots__ = ("seq", "phase", "progress", "t_beat", "t_progress", "state")

    def __init__(self, now: float):
        self.seq = -1
        self.phase = "idle"
        self.progress = -1
        self.t_beat = now
        self.t_progress = now
        self.state = WorkerState.LIVE


class HealthMonitor:
    """Coordinator-side beat ledger and classifier.

    ``clock`` is injectable so tests can drive classification with a
    fake clock; production callers use the wall clock.
    """

    def __init__(self, cfg: HealthConfig, *, clock=time.monotonic):
        self.cfg = cfg
        self._clock = clock
        self._records: dict[int, _WorkerRecord] = {}
        self._dead: set[int] = set()
        self.reset_counters()

    # ------------------------------------------------------------- feeding
    def reset_counters(self) -> None:
        """Zero the per-iteration ``health_*`` counters."""
        self._beats = 0
        self._slow_events = 0
        self._stall_events = 0
        self._deaths = 0

    def adopt_counters(self, counters: dict) -> None:
        """Carry a predecessor monitor's per-iteration counters across a
        mid-iteration pool rebuild (the respawn path replaces the whole
        pool — and its monitor — without closing the iteration)."""
        self._beats = counters["health_beats"]
        self._slow_events = counters["health_slow_events"]
        self._stall_events = counters["health_stall_events"]
        self._deaths = counters["health_deaths"]

    def begin_phase(self, ranks) -> None:
        """A new phase starts for ``ranks``: grant every worker a fresh
        staleness grace period so progress made *last* phase doesn't
        count against this one."""
        now = self._clock()
        for rank in ranks:
            rec = self._records.setdefault(int(rank), _WorkerRecord(now))
            rec.t_beat = now
            rec.t_progress = now
            if rec.state is not WorkerState.DEAD:
                rec.state = WorkerState.LIVE

    def observe(self, rank: int, seq: int, phase: str, progress: int) -> None:
        """Ingest one beat (stale out-of-order beats are dropped)."""
        now = self._clock()
        rec = self._records.setdefault(int(rank), _WorkerRecord(now))
        if seq <= rec.seq:
            return
        self._beats += 1
        rec.seq = seq
        rec.t_beat = now
        if progress != rec.progress or phase != rec.phase:
            rec.progress = progress
            rec.phase = phase
            rec.t_progress = now

    def note_dead(self, rank: int) -> None:
        """The liveness poll saw this worker's process exit."""
        rank = int(rank)
        if rank not in self._dead:
            self._dead.add(rank)
            self._deaths += 1
        rec = self._records.setdefault(rank, _WorkerRecord(self._clock()))
        rec.state = WorkerState.DEAD

    # ---------------------------------------------------------- consuming
    def classify(self, rank: int) -> WorkerState:
        rank = int(rank)
        if rank in self._dead:
            return WorkerState.DEAD
        rec = self._records.get(rank)
        if rec is None:
            # Never seen: grant the grace period from first sight.
            self._records[rank] = _WorkerRecord(self._clock())
            return WorkerState.LIVE
        now = self._clock()
        if now - rec.t_progress >= self.cfg.stalled_after_s:
            state = WorkerState.STALLED
        elif now - rec.t_beat >= self.cfg.slow_after_s:
            state = WorkerState.SLOW
        else:
            state = WorkerState.LIVE
        if state is not rec.state:
            if state is WorkerState.SLOW:
                self._slow_events += 1
            elif state is WorkerState.STALLED:
                self._stall_events += 1
            rec.state = state
        return state

    def stalled(self, ranks) -> list[int]:
        """The subset of ``ranks`` currently classified STALLED."""
        return [r for r in ranks if self.classify(r) is WorkerState.STALLED]

    def phase_of(self, rank: int) -> str:
        rec = self._records.get(int(rank))
        return rec.phase if rec is not None else "idle"

    def counters(self) -> dict:
        """Per-iteration ``health_*`` counters for ``IterationStats.extra``."""
        return {
            "health_beats": self._beats,
            "health_slow_events": self._slow_events,
            "health_stall_events": self._stall_events,
            "health_deaths": self._deaths,
        }
