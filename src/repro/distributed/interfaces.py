"""Adapter protocol connecting a MAC model to the ParMAC engines.

The engines know nothing about binary autoencoders or deep nets; they move
:class:`SubmodelSpec`-tagged parameter vectors around a ring and call back
into an adapter for the actual numerics. An adapter supplies:

* the list of submodels (hash functions + decoder groups for a BA; hidden
  units for a deep net);
* ``w_update`` — one SGD pass of one submodel over one shard (the
  travelling-submodel work unit);
* ``z_update`` — the per-shard Z step given the assembled model;
* objective evaluations for monitoring.

This mirrors the paper's observation that ParMAC is a *meta*-algorithm: the
ring protocol is identical for any nested model (section 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

import numpy as np

from repro.optim.sgd import SGDState

__all__ = ["SubmodelSpec", "ParMACAdapter"]


@dataclass(frozen=True)
class SubmodelSpec:
    """Identity of one independent W-step subproblem.

    Attributes
    ----------
    sid : int
        Dense id in ``range(M)``.
    kind : str
        Adapter-defined tag (e.g. ``"enc"`` / ``"dec"`` for a BA).
    index : Any
        Adapter payload locating the parameters (bit index, row tuple, ...).
        Must be hashable and picklable.
    """

    sid: int
    kind: str
    index: Any = None


@runtime_checkable
class ParMACAdapter(Protocol):
    """What the engines require of a model. See module docstring."""

    def submodel_specs(self) -> list[SubmodelSpec]:
        """All W-step submodels, sid-ordered."""
        ...

    def get_params(self, spec: SubmodelSpec) -> np.ndarray:
        """Current flat parameter vector of one submodel (from the model)."""
        ...

    def set_params(self, spec: SubmodelSpec, theta: np.ndarray) -> None:
        """Write one submodel's parameters back into the model."""
        ...

    def w_update(
        self,
        spec: SubmodelSpec,
        theta: np.ndarray,
        state: SGDState,
        shard,
        mu: float,
        *,
        batch_size: int,
        shuffle: bool,
        rng,
    ) -> np.ndarray:
        """One SGD pass of submodel ``spec`` over ``shard``; returns new theta.

        Must not touch the adapter's model object — during the W step the
        authoritative parameters are the ones travelling in the message.
        """
        ...

    def z_update(self, shard, mu: float) -> int:
        """Z step on one shard in place; returns the number of changed bits
        (or coordinates). Uses the adapter's assembled model."""
        ...

    def e_q_shard(self, shard, mu: float) -> float:
        """This shard's contribution to E_Q."""
        ...

    def e_ba_shard(self, shard) -> float:
        """This shard's contribution to the nested objective."""
        ...

    def violations_shard(self, shard) -> float:
        """This shard's constraint residual (bits disagreeing with the
        nested model for a BA, ``sum_k ||Z_k - f_k(Z_{k-1})||^2`` for a
        deep net); 0 together with no Z changes is the stopping test."""
        ...
