"""Adapter protocol connecting a MAC model to the ParMAC engines.

The engines know nothing about binary autoencoders or deep nets; they move
:class:`SubmodelSpec`-tagged parameter vectors around a ring and call back
into an adapter for the actual numerics. An adapter supplies:

* the list of submodels (hash functions + decoder groups for a BA; hidden
  units for a deep net);
* ``w_update`` — one SGD pass of one submodel over one shard (the
  travelling-submodel work unit);
* ``z_update`` — the per-shard Z step given the assembled model;
* objective evaluations for monitoring.

This mirrors the paper's observation that ParMAC is a *meta*-algorithm: the
ring protocol is identical for any nested model (section 9).

Adapters may additionally implement the **batched W-step** entry points
(both adapters in this repo do):

* ``batch_key(spec)`` — a hashable compatibility key; submodels of one
  home block sharing a key may train as one stacked pass (same layer for
  a net, same kind for a BA). ``None`` opts a submodel out.
* ``w_update_batch(specs, thetas, states, shard, mu, *, batch_size,
  shuffle, rng)`` — one shared SGD pass for a compatible group, collapsing
  the group's per-unit loops into one GEMM per minibatch; returns the new
  theta per spec. Only called with ``shuffle=False`` (a shared pass shares
  its draw order).
* ``compute_dtype`` — the model's end-to-end float precision; engines,
  the data plane and checkpoints thread it through so reduced-precision
  training (paper section 9) is a model property, not a per-engine hack.

Engines drive these through :mod:`repro.distributed.batching` behind the
``batch_units`` backend knob.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

import numpy as np

from repro.optim.sgd import SGDState

__all__ = ["SubmodelSpec", "ParMACAdapter", "get_params_many", "set_params_many"]


@dataclass(frozen=True)
class SubmodelSpec:
    """Identity of one independent W-step subproblem.

    Attributes
    ----------
    sid : int
        Dense id in ``range(M)``.
    kind : str
        Adapter-defined tag (e.g. ``"enc"`` / ``"dec"`` for a BA).
    index : Any
        Adapter payload locating the parameters (bit index, row tuple, ...).
        Must be hashable and picklable.
    """

    sid: int
    kind: str
    index: Any = None


@runtime_checkable
class ParMACAdapter(Protocol):
    """What the engines require of a model. See module docstring."""

    def submodel_specs(self) -> list[SubmodelSpec]:
        """All W-step submodels, sid-ordered."""
        ...

    def get_params(self, spec: SubmodelSpec) -> np.ndarray:
        """Current flat parameter vector of one submodel (from the model)."""
        ...

    def set_params(self, spec: SubmodelSpec, theta: np.ndarray) -> None:
        """Write one submodel's parameters back into the model."""
        ...

    def w_update(
        self,
        spec: SubmodelSpec,
        theta: np.ndarray,
        state: SGDState,
        shard,
        mu: float,
        *,
        batch_size: int,
        shuffle: bool,
        rng,
    ) -> np.ndarray:
        """One SGD pass of submodel ``spec`` over ``shard``; returns new theta.

        Must not touch the adapter's model object — during the W step the
        authoritative parameters are the ones travelling in the message.
        """
        ...

    def z_update(self, shard, mu: float) -> int:
        """Z step on one shard in place; returns the number of changed bits
        (or coordinates). Uses the adapter's assembled model."""
        ...

    def e_q_shard(self, shard, mu: float) -> float:
        """This shard's contribution to E_Q."""
        ...

    def e_ba_shard(self, shard) -> float:
        """This shard's contribution to the nested objective."""
        ...

    def violations_shard(self, shard) -> float:
        """This shard's constraint residual (bits disagreeing with the
        nested model for a BA, ``sum_k ||Z_k - f_k(Z_{k-1})||^2`` for a
        deep net); 0 together with no Z changes is the stopping test."""
        ...


def get_params_many(adapter, specs) -> list[np.ndarray]:
    """Parameter vectors for many submodels, batched when the adapter can.

    Engines read every resident submodel at seeding time and all M at
    assembly; an adapter exposing ``get_params_batch`` (e.g. the deep-net
    adapter, which turns M per-unit concatenates into one matrix slice
    per layer) serves them in bulk. Wire granularity is unaffected —
    messages still carry one sid each.
    """
    batch = getattr(adapter, "get_params_batch", None)
    if batch is not None:
        return batch(list(specs))
    return [adapter.get_params(spec) for spec in specs]


def set_params_many(adapter, items) -> None:
    """Write many ``(spec, theta)`` pairs back, batched when the adapter can.

    The shard-local hot path: every machine writes all M final submodels
    into its model copy at the end of every W step.
    """
    items = list(items)
    batch = getattr(adapter, "set_params_batch", None)
    if batch is not None:
        batch(items)
        return
    for spec, theta in items:
        adapter.set_params(spec, theta)
