"""Chaos-grade network fault injection, identical on every engine.

The paper argues ParMAC's circular model traffic tolerates the messy
realities of commodity clusters, but a clean SIGKILL is the only fault
the original fault suite injects. This module supplies the adversarial
rest: lossy, slow, jittery, reordered, throttled and partitioned links,
plus slow-node stragglers — as one :class:`ChaosConfig` that every
engine honours.

The one rule is **deterministic delivery**: chaos perturbs *when* a
message travels and *what it costs*, never what is computed. A "lost"
frame is charged a retransmit and still arrives exactly once; a
"reordered" frame is charged a hold-back and still arrives in order; a
partitioned link holds its frames until the window heals. That is the
same contract ``overlap_send`` established (timing only, bit-identical
numerics), and it is what lets the conformance suite assert that a
seeded chaos scenario produces bit-identical models on the simulated
engines and the wall-clock ones — while the *virtual* clock and the
*wall* clock both show the degradation.

Each link (sender ``p`` -> receiver ``q``) owns a private RNG stream
seeded by ``(seed, p, q)`` and draws one verdict per submodel hop. The
per-link hop sequence is protocol-determined and engine-invariant (the
same determinism cross-backend bit-parity already relies on), so the
simulated engines and the wall-clock shim draw identical event
sequences: the drop/reorder *counts* in ``IterationStats.extra`` match
across engines, not just the bits.

Two front ends consume the shared sampler:

* :class:`~repro.distributed.costmodel.ChaosTimeline` charges the
  degradations to the simulated engines' virtual clocks;
* :class:`ChaosShim` injects them into the wall-clock transports as
  real sleeps between ``framing`` and the wire (the queue transport
  sleeps before the put — the queue *is* its wire).

Both are recreated per iteration, so link streams realign across
engines regardless of how many iterations each has run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ChaosConfig", "PartitionWindow", "CrashEvent", "LinkChaos",
           "ChaosShim", "empty_chaos_counters"]

#: Cap on consecutive retransmits charged for one hop — a loss rate of
#: 0.99 must degrade the clock, not hang the sampler.
_MAX_DROPS = 8


@dataclass(frozen=True)
class PartitionWindow:
    """One scheduled ring partition: ``links`` are cut during
    ``[start, end)`` and heal at ``end``.

    ``start``/``end`` are seconds since the iteration began — virtual
    seconds on the simulated engines, wall seconds on the real ones. A
    frame meeting a cut link is *held* until the window heals (charged
    ``end - now``), never dropped: delivery stays deterministic.
    ``links`` is a tuple of ``(src, dst)`` machine pairs; ``None`` cuts
    every link (a full stall).
    """

    start: float
    end: float
    links: tuple | None = None

    def __post_init__(self):
        if not (0 <= self.start < self.end):
            raise ValueError(
                f"partition window needs 0 <= start < end, got "
                f"[{self.start}, {self.end})"
            )

    def holds(self, p: int, q: int, now: float) -> float:
        """Seconds this window still blocks link p->q at ``now`` (0 if open)."""
        if now < self.start or now >= self.end:
            return 0.0
        if self.links is not None and (p, q) not in self.links:
            return 0.0
        return self.end - now


@dataclass(frozen=True)
class CrashEvent:
    """One scheduled worker kill: ``machine`` dies at the start of the
    ``point`` phase ("w" or "z") of iteration ``iteration``.

    Crashes are resolved by the *coordinator*, once, on the first attempt
    of the target iteration, and shipped in that iteration's command —
    retried attempts ship no crash, so a fit under ``respawn`` converges
    instead of re-killing the replacement. On the simulated engines a
    crash maps onto the existing fault path (no process to kill).
    """

    machine: int
    iteration: int
    point: str = "w"

    def __post_init__(self):
        if self.iteration < 0:
            raise ValueError(f"iteration must be >= 0, got {self.iteration}")
        if self.point not in ("w", "z"):
            raise ValueError(f"crash point must be 'w' or 'z', got {self.point!r}")


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs for network/node degradation, mirrored on every engine.

    Parameters
    ----------
    packet_loss_rate : float in [0, 1)
        Probability each hop's frame is "lost" and retransmitted; each
        retransmit charges ``retransmit_ms`` plus the frame's wire time.
    delay_ms : float
        Fixed added latency per hop.
    jitter_ms : float
        Uniform extra latency in ``[0, jitter_ms)`` per hop.
    reorder_probability : float in [0, 1)
        Probability a hop's frame is held back behind later traffic;
        charged as ``reorder_hold_ms`` (delivery order is unchanged —
        deterministic delivery).
    bandwidth_mbps : float or None
        Wire throttle: every hop is charged ``payload_bits / bandwidth``
        of serialisation time. ``None`` means unthrottled.
    partitions : sequence of PartitionWindow (or (start, end[, links]) tuples)
        Scheduled link cuts; see :class:`PartitionWindow`.
    stragglers : mapping machine -> slowdown factor (>= 1)
        Slow nodes: machine ``p``'s W- and Z-step compute takes
        ``factor`` times longer (virtual scaling on the simulators, real
        proportional sleeps on the wall-clock workers).
    crashes : sequence of CrashEvent (or (machine, iteration[, point]) tuples)
        Scheduled worker kills; see :class:`CrashEvent`. Unlike every
        other knob these do end a process — but under ``respawn`` the
        *model* is still bit-identical to an undisturbed run, which is
        exactly what the conformance suite asserts.
    retransmit_ms : float
        Penalty per charged retransmit (the loss-detection timeout).
    reorder_hold_ms : float
        Penalty per reorder event.
    seed : int
        Master seed for the per-link RNG streams.
    """

    packet_loss_rate: float = 0.0
    delay_ms: float = 0.0
    jitter_ms: float = 0.0
    reorder_probability: float = 0.0
    bandwidth_mbps: float | None = None
    partitions: tuple = ()
    stragglers: tuple = ()
    crashes: tuple = ()
    retransmit_ms: float = 5.0
    reorder_hold_ms: float = 1.0
    seed: int = 0

    def __post_init__(self):
        for name in ("packet_loss_rate", "reorder_probability"):
            v = getattr(self, name)
            if not (0.0 <= v < 1.0):
                raise ValueError(f"{name} must be in [0, 1), got {v}")
        for name in ("delay_ms", "jitter_ms", "retransmit_ms", "reorder_hold_ms"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")
        if self.bandwidth_mbps is not None and self.bandwidth_mbps <= 0:
            raise ValueError(
                f"bandwidth_mbps must be > 0, got {self.bandwidth_mbps}"
            )
        windows = tuple(
            w if isinstance(w, PartitionWindow) else PartitionWindow(*w)
            for w in self.partitions
        )
        object.__setattr__(self, "partitions", windows)
        stragglers = self.stragglers
        if isinstance(stragglers, dict):
            stragglers = tuple(sorted(stragglers.items()))
        else:
            stragglers = tuple((int(p), float(f)) for p, f in stragglers)
        for p, f in stragglers:
            if f < 1.0:
                raise ValueError(
                    f"straggler factor for machine {p} must be >= 1, got {f}"
                )
        object.__setattr__(self, "stragglers", stragglers)
        crashes = tuple(
            c if isinstance(c, CrashEvent) else CrashEvent(*c)
            for c in self.crashes
        )
        object.__setattr__(self, "crashes", crashes)

    @classmethod
    def coerce(cls, value) -> "ChaosConfig | None":
        """Normalise a ``chaos=`` argument: None, a config, or a dict."""
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, dict):
            return cls(**value)
        raise TypeError(
            f"chaos must be a ChaosConfig, dict or None, got {type(value).__name__}"
        )

    def active(self) -> bool:
        """Whether any knob actually perturbs anything."""
        return bool(
            self.packet_loss_rate
            or self.delay_ms
            or self.jitter_ms
            or self.reorder_probability
            or self.bandwidth_mbps is not None
            or self.partitions
            or any(f != 1.0 for _, f in self.stragglers)
            or self.crashes
        )

    def straggler_factor(self, p: int) -> float:
        for machine, factor in self.stragglers:
            if machine == int(p):
                return factor
        return 1.0

    def crash_point(self, machine: int, iteration: int) -> str | None:
        """The phase ("w"/"z") at which ``machine`` is scheduled to die
        during ``iteration``, or None. W-point kills win if both are
        scheduled (the process is gone before the Z step starts)."""
        point = None
        for ev in self.crashes:
            if ev.machine == int(machine) and ev.iteration == int(iteration):
                if ev.point == "w":
                    return "w"
                point = ev.point
        return point


def empty_chaos_counters() -> dict:
    """Fresh per-iteration injected-event counters (flat, summable —
    the wall-clock coordinators add them across workers)."""
    return {
        "chaos_hops": 0,
        "chaos_drops": 0,
        "chaos_reorders": 0,
        "chaos_partition_holds": 0,
        "chaos_delay_s": 0.0,
        "chaos_throttle_s": 0.0,
        "chaos_straggler_s": 0.0,
    }


class LinkChaos:
    """One link's seeded verdict stream: the engine-shared sampler.

    ``verdict(nbytes, now)`` returns the extra latency (seconds) charged
    to the hop and mutates ``counters`` in place. Draw order is a pure
    function of (config, hop sequence), so two engines replaying the
    same protocol charge bit-identical degradations.
    """

    def __init__(self, cfg: ChaosConfig, p: int, q: int, counters: dict):
        self.cfg = cfg
        self.p = int(p)
        self.q = int(q)
        self.counters = counters
        # spawn_key entries must be uint32; machine ids always are.
        ss = np.random.SeedSequence(
            entropy=int(cfg.seed), spawn_key=(0x43414F53, self.p, self.q)
        )  # 0x43414F53 is "CAOS"
        self.rng = np.random.default_rng(ss)

    def verdict(self, nbytes: int, now: float) -> float:
        cfg = self.cfg
        c = self.counters
        c["chaos_hops"] += 1
        delay = 0.0
        wire_s = 0.0
        if cfg.bandwidth_mbps is not None:
            wire_s = (int(nbytes) * 8.0) / (cfg.bandwidth_mbps * 1e6)
            c["chaos_throttle_s"] += wire_s
            delay += wire_s
        if cfg.delay_ms or cfg.jitter_ms:
            d = cfg.delay_ms / 1e3 + self.rng.random() * cfg.jitter_ms / 1e3
            c["chaos_delay_s"] += d
            delay += d
        if cfg.packet_loss_rate:
            drops = 0
            while drops < _MAX_DROPS and self.rng.random() < cfg.packet_loss_rate:
                drops += 1
            if drops:
                c["chaos_drops"] += drops
                resend = drops * (cfg.retransmit_ms / 1e3 + wire_s)
                c["chaos_delay_s"] += resend
                delay += resend
        if cfg.reorder_probability and self.rng.random() < cfg.reorder_probability:
            c["chaos_reorders"] += 1
            hold = cfg.reorder_hold_ms / 1e3
            c["chaos_delay_s"] += hold
            delay += hold
        for window in cfg.partitions:
            held = window.holds(self.p, self.q, now)
            if held > 0.0:
                c["chaos_partition_holds"] += 1
                c["chaos_delay_s"] += held
                delay += held
        return delay


class _ChaosState:
    """Per-iteration link-stream table + counters, shared by both front
    ends (the virtual timeline and the wall-clock shim)."""

    def __init__(self, cfg: ChaosConfig):
        self.cfg = cfg
        self.counters = empty_chaos_counters()
        self._links: dict[tuple[int, int], LinkChaos] = {}

    def link(self, p: int, q: int) -> LinkChaos:
        key = (int(p), int(q))
        link = self._links.get(key)
        if link is None:
            link = self._links[key] = LinkChaos(self.cfg, p, q, self.counters)
        return link

    def hop_penalty(self, p: int, q: int, nbytes: int, now: float) -> float:
        """Extra seconds charged to one p->q hop at time ``now``."""
        if p == q:
            return 0.0
        return self.link(p, q).verdict(nbytes, now)


class ChaosShim(_ChaosState):
    """Wall-clock front end: real injected latency per hop.

    Created per iteration by the queue/socket transports, sandwiched
    between :mod:`~repro.distributed.framing` and the wire: the
    transport asks :meth:`send_delay` for each outgoing submodel
    message (one draw per hop, aligning the link streams with the
    simulators), accumulates the answer per destination, and sleeps it
    off immediately before the frame's socket write / queue put — on
    the background sender thread under ``overlap_send``, so overlap
    hides injected latency exactly as it hides real latency.

    ``now`` for partition windows is wall seconds since the shim was
    created (= since the iteration's transport came up).

    ``clock`` is required: this module is protocol-deterministic, so the
    wall-clock dependency lives with the transports that construct the
    shim (they pass ``time.monotonic``), never here — tests and replays
    pin a fake clock instead.
    """

    def __init__(self, cfg: ChaosConfig, rank: int, *, clock):
        super().__init__(cfg)
        self.rank = int(rank)
        self._clock = clock
        self._t0 = clock()

    def send_delay(self, dest: int, nbytes: int) -> float:
        return self.hop_penalty(
            self.rank, dest, nbytes, self._clock() - self._t0
        )

    def charge_straggler(self, seconds: float) -> float:
        """Record and return the extra sleep a straggling visit owes:
        ``(factor - 1) * seconds`` of genuine compute time."""
        extra = (self.cfg.straggler_factor(self.rank) - 1.0) * max(seconds, 0.0)
        if extra > 0.0:
            self.counters["chaos_straggler_s"] += extra
        return extra
