"""Co-resident-unit batching for the W step — one GEMM per group visit.

ParMAC's W step is embarrassingly parallel across submodels, but the unit
of work the engines schedule — one travelling submodel's SGD pass over one
shard — is tiny for models with many small submodels (a deep net has one
submodel per *hidden unit*). Running M/P of those passes as M/P separate
Python loops per machine visit leaves almost all the machine's FLOPs on
the table. This module implements the ROADMAP "hot paths" fix: submodels
that are co-resident on a machine and compatible (same layer for a net,
same kind for a BA) run their visit as **one stacked pass** through the
adapter's ``w_update_batch`` — the per-unit ``delta`` vectors become an
``(n_batch, m_units)`` matrix and the whole group's gradients come from a
single GEMM per minibatch.

Batching must not change *what* is computed, only how fast — and the
conformance suite holds every engine to bit-identical results. Two rules
make that possible:

* **It only engages when ``shuffle_within`` is off.** Per-unit shuffling
  draws a fresh minibatch order per submodel from the machine's RNG
  stream; a shared pass would need a shared order, which is a different
  algorithm. With shuffling off the order is the deterministic sequential
  one, shared trivially.

* **Groups are protocol-deterministic, not timing-dependent.** A batch is
  a *convoy*: the submodels of one home machine's contiguous block (split
  by the adapter's ``batch_key``) at one visit counter. Convoy members
  follow identical routes — the successor of a message depends only on
  (machine, counter) — so they are co-resident on every engine, whether
  the engine is a lockstep tick simulation, a discrete-event simulation
  or real processes racing over sockets. Engines accumulate arriving
  messages per (group, counter) in a :class:`BatchAccumulator` and train
  a group exactly when its last member arrives; group composition (and
  therefore every GEMM's operand shapes, hence its bits) is identical
  everywhere. Stacked GEMMs and the legacy per-unit GEMVs associate their
  reductions differently, so batched-vs-unbatched parity is *numerical*
  (machine precision), while batched runs are bit-identical across
  engines — see docs/architecture.md.

Convoys are also what makes **overlapped ring sends** (``overlap_send``)
pay off: a completed convoy forwards all its members at once, which is
exactly the burst the wall-clock transports hand to their double-buffered
background sender — the next convoy's stacked pass trains while the
previous convoy's batch frame is still on the wire. Because group
composition is protocol-determined and the sender preserves per-
destination FIFO order, overlap changes only *when* a convoy travels,
never which messages train together — the cross-engine bit-parity
contract above survives pipelining untouched.
"""

from __future__ import annotations

__all__ = [
    "supports_unit_batching",
    "GroupTable",
    "BatchAccumulator",
    "train_message_batch",
]


def supports_unit_batching(adapter) -> bool:
    """Whether the adapter implements the batched W-update entry points."""
    return hasattr(adapter, "w_update_batch") and hasattr(adapter, "batch_key")


class GroupTable:
    """sid -> batch group, derived once per iteration from the home map.

    A group is ``(home machine, adapter batch_key)``: the members of one
    home's contiguous submodel block that the adapter allows to train
    together. ``homes`` maps sid -> home machine — the same assignment
    every engine plans with, which is what makes the grouping identical
    across backends.
    """

    def __init__(self, adapter, homes):
        self.group_of: dict[int, tuple | None] = {}
        self.group_size: dict[tuple, int] = {}
        for spec in adapter.submodel_specs():
            key = adapter.batch_key(spec)
            gid = None if key is None else (homes[spec.sid], key)
            self.group_of[spec.sid] = gid
            if gid is not None:
                self.group_size[gid] = self.group_size.get(gid, 0) + 1

    def batchable(self, sid: int) -> bool:
        return self.group_of.get(sid) is not None


class BatchAccumulator:
    """Per-machine buffer completing convoys as their members arrive.

    ``add`` stashes a message under its (group, counter) bucket and
    returns the full sid-sorted group exactly when the last member lands,
    else None. Because convoy members share their entire visit sequence,
    every bucket that opens during an iteration is guaranteed to fill —
    :attr:`n_pending` must be zero when the iteration's receives are
    exhausted, which the engines assert.
    """

    def __init__(self, table: GroupTable):
        self.table = table
        self._pending: dict[tuple, list] = {}

    def add(self, msg):
        gid = self.table.group_of.get(msg.spec.sid)
        if gid is None:
            return [msg]
        bucket = self._pending.setdefault((gid, msg.counter), [])
        bucket.append(msg)
        if len(bucket) < self.table.group_size[gid]:
            return None
        del self._pending[(gid, msg.counter)]
        bucket.sort(key=lambda m: m.spec.sid)
        return bucket

    @property
    def n_pending(self) -> int:
        return sum(len(bucket) for bucket in self._pending.values())


def train_message_batch(adapter, msgs, shard, mu, *, passes, batch_size, rng):
    """Run ``passes`` stacked SGD passes for one completed group in place.

    Members are already sid-sorted (stacking order fixes GEMM operand
    layout, so it must be deterministic); each message's theta is replaced
    by its updated parameters and its carried ``SGDState`` advances
    exactly as the per-unit path would have advanced it.
    """
    specs = [msg.spec for msg in msgs]
    thetas = [msg.theta for msg in msgs]
    states = [msg.sgd_state for msg in msgs]
    for _ in range(passes):
        thetas = adapter.w_update_batch(
            specs, thetas, states, shard, mu,
            batch_size=batch_size, shuffle=False, rng=rng,
        )
    for msg, theta in zip(msgs, thetas):
        msg.theta = theta
