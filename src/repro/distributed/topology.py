"""Circular (ring) topologies over machines.

"The circular topology is the minimal topology ... necessary to be able to
optimise a global model on the entire dataset with P machines" (paper
section 9). A :class:`RingTopology` is a single directed cycle over a set
of machine ids; it supports random rewiring (cross-machine shuffling,
section 4.3) and on-the-fly insertion/removal of machines (streaming and
fault tolerance).
"""

from __future__ import annotations


from repro.utils.rng import check_random_state

__all__ = ["RingTopology"]


class RingTopology:
    """A single directed cycle over machine ids.

    Parameters
    ----------
    order : sequence of int
        The cycle as a visiting order: machine ``order[i]`` sends to
        ``order[(i+1) % P]``. Ids need not be contiguous (machines may have
        been removed).
    """

    def __init__(self, order):
        order = [int(p) for p in order]
        if len(order) == 0:
            raise ValueError("a ring needs at least one machine")
        if len(set(order)) != len(order):
            raise ValueError(f"duplicate machine ids in ring order {order}")
        self._order = order
        self._succ = {p: order[(i + 1) % len(order)] for i, p in enumerate(order)}

    # ------------------------------------------------------------ factories
    @classmethod
    def identity(cls, n_machines: int) -> "RingTopology":
        """The natural ring 0 -> 1 -> ... -> P-1 -> 0."""
        if n_machines < 1:
            raise ValueError(f"n_machines must be >= 1, got {n_machines}")
        return cls(range(n_machines))

    @classmethod
    def random(cls, machines, rng=None) -> "RingTopology":
        """A uniformly random cycle over the given machine ids."""
        rng = check_random_state(rng)
        machines = list(machines)
        perm = rng.permutation(len(machines))
        return cls([machines[i] for i in perm])

    # ------------------------------------------------------------------ API
    @property
    def machines(self) -> list[int]:
        """Machine ids in cycle order."""
        return list(self._order)

    @property
    def n_machines(self) -> int:
        return len(self._order)

    def successor(self, p: int) -> int:
        """The machine ``p`` sends to."""
        try:
            return self._succ[p]
        except KeyError:
            raise KeyError(f"machine {p} is not in the ring {self._order}") from None

    def predecessor(self, p: int) -> int:
        """The machine that sends to ``p`` (used for fault recovery)."""
        if p not in self._succ:
            raise KeyError(f"machine {p} is not in the ring {self._order}")
        i = self._order.index(p)
        return self._order[i - 1]

    def __contains__(self, p: int) -> bool:
        return p in self._succ

    # ------------------------------------------------------- modifications
    def rewired(self, rng=None) -> "RingTopology":
        """A new random cycle over the same machines (per-epoch shuffling)."""
        return RingTopology.random(self._order, rng)

    def with_machine(self, p: int, *, after: int | None = None) -> "RingTopology":
        """Insert machine ``p`` after machine ``after`` (default: cycle end).

        Streaming form 2 (section 4.3): "connecting it between any two
        machines (done by setting the address of their successor)".
        """
        if p in self._succ:
            raise ValueError(f"machine {p} is already in the ring")
        order = list(self._order)
        if after is None:
            order.append(p)
        else:
            if after not in self._succ:
                raise KeyError(f"machine {after} is not in the ring")
            order.insert(order.index(after) + 1, p)
        return RingTopology(order)

    def without_machine(self, p: int) -> "RingTopology":
        """Remove machine ``p``, reconnecting predecessor -> successor."""
        if p not in self._succ:
            raise KeyError(f"machine {p} is not in the ring {self._order}")
        if len(self._order) == 1:
            raise ValueError("cannot remove the last machine from the ring")
        return RingTopology([q for q in self._order if q != p])

    # ------------------------------------------------------------ checking
    def validate(self) -> None:
        """Assert the successor map is one single cycle covering all machines."""
        start = self._order[0]
        seen = [start]
        p = self._succ[start]
        while p != start:
            if p in seen:
                raise AssertionError(f"successor map has a sub-cycle at {p}")
            seen.append(p)
            p = self._succ[p]
        if len(seen) != len(self._order):
            raise AssertionError(
                f"cycle covers {len(seen)} machines, expected {len(self._order)}"
            )

    def __repr__(self) -> str:
        return f"RingTopology({' -> '.join(map(str, self._order))} -> {self._order[0]})"
