"""The data plane: shard ownership, streaming ingestion, retirement.

ParMAC's resilience story (paper section 4.3) is a property of the *data
plane*, not of any one engine: each machine privately owns one shard;
new points may arrive at a machine mid-training and are coded locally
"by applying the nested model"; a machine failure loses exactly that
machine's shard while training continues on the survivors. This module
holds that bookkeeping once, so the simulated cluster and the wall-clock
backends drive the identical code instead of duplicating it:

* **ownership** — which machine id owns which shard, how many rows each
  holds, and the global row-index allocator that keeps streamed points
  uniquely addressable across machines;
* **ingestion** — validation of an arriving batch (target machine must
  exist, the batch must be non-empty and match the shard's width, the
  shard type must support streaming) and its conversion into an
  :class:`IngestBatch` with features and codes computed from the current
  nested model;
* **retirement** — excising a shard when its machine dies (``lost=True``,
  the fault path) or is deliberately removed (``lost=False``), with the
  ``shards_lost`` / ``rows_lost`` counters the degradation metrics are
  built from.

A :class:`DataPlane` either *owns* the shard arrays (the simulated
engines operate in-process on the very same objects) or merely *tracks*
them (the wall-clock backends keep the authoritative rows in worker
processes and ship :class:`IngestBatch` payloads over shared memory or
framed sockets); the ``own_data`` flag selects which, and everything
else — validation, index allocation, counters — is shared.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["IngestBatch", "DataPlane", "ClusterState"]


@dataclass(frozen=True)
class IngestBatch:
    """One validated, model-coded batch of streamed rows for one machine.

    ``F`` and ``Z`` were computed by the adapter's *current* nested model
    at the iteration boundary where the batch was drained, so every
    engine codes identical arrivals identically (the cross-backend
    streaming-parity contract). ``indices`` are freshly allocated global
    row numbers, unique across all machines and all prior ingests.
    """

    machine: int
    X: np.ndarray
    F: np.ndarray
    Z: np.ndarray
    indices: np.ndarray

    @property
    def n(self) -> int:
        return len(self.X)


class DataPlane:
    """Shard-ownership bookkeeping shared by every execution engine.

    Parameters
    ----------
    adapter : ParMACAdapter
        Supplies ``features`` / ``init_codes`` for coding streamed rows.
        Adapters without those methods still get ownership/retirement
        bookkeeping; ingestion raises a clear error.
    shards : sequence or mapping
        One shard per machine. A sequence assigns machine ids 0..P-1; a
        mapping keeps its ids (machines may have been removed upstream).
    own_data : bool
        True (simulated engines): :meth:`apply` appends rows to the shard
        objects held here. False (wall-clock engines): the authoritative
        rows live in worker processes; :meth:`apply` only updates the
        accounting after the backend has shipped the batch.
    """

    def __init__(self, adapter, shards, *, own_data: bool = True):
        self.adapter = adapter
        if hasattr(shards, "items"):
            self.shards = {int(p): s for p, s in shards.items()}
        else:
            self.shards = {p: s for p, s in enumerate(shards)}
        if not self.shards:
            raise ValueError("need at least one shard")
        self.own_data = bool(own_data)
        self._n_rows = {p: s.n for p, s in self.shards.items()}
        self._next_machine_id = 1 + max(self.shards)
        # Global row counter for streaming; only meaningful for shard
        # types that track indices.
        self._next_global_index = 1 + max(
            (
                int(s.indices.max())
                for s in self.shards.values()
                if s.n and hasattr(s, "indices")
            ),
            default=-1,
        )
        self.rows_ingested = 0
        self.shards_lost = 0
        self.rows_lost = 0
        self.retired: set[int] = set()

    # ------------------------------------------------------------ ownership
    @property
    def compute_dtype(self) -> np.dtype:
        """The adapter's end-to-end float precision (float64 for adapters
        that do not declare one)."""
        return np.dtype(getattr(self.adapter, "compute_dtype", np.float64))

    @property
    def machines(self) -> list[int]:
        """Machine ids currently owning a shard, in id order."""
        return sorted(self.shards)

    @property
    def n_machines(self) -> int:
        return len(self.shards)

    @property
    def n_points(self) -> int:
        """Rows currently owned across all machines (tracked, so it stays
        correct even when the authoritative rows live in workers)."""
        return sum(self._n_rows.values())

    def rows_of(self, p: int) -> int:
        self._require_machine(p)
        return self._n_rows[p]

    def is_retired(self, p) -> bool:
        """True when machine ``p`` once owned a shard that has left the
        plane — its data stream is gone, as distinct from an id that
        never existed (which is a caller error)."""
        return int(p) in self.retired

    def _require_machine(self, p) -> int:
        p = int(p)
        if p not in self.shards:
            raise KeyError(f"machine {p} does not exist")
        return p

    def register(self, shard, *, machine: int | None = None) -> int:
        """Add a shard under a fresh (or explicit) machine id; returns it."""
        if machine is None:
            machine = self._next_machine_id
        machine = int(machine)
        if machine in self.shards:
            raise ValueError(f"machine {machine} already owns a shard")
        self._next_machine_id = max(self._next_machine_id, machine + 1)
        self.shards[machine] = shard
        self._n_rows[machine] = shard.n
        return machine

    def allocate_indices(self, n: int) -> np.ndarray:
        """Fresh global row indices for ``n`` streamed points."""
        idx = np.arange(self._next_global_index, self._next_global_index + n)
        self._next_global_index += n
        return idx

    # ------------------------------------------------------------ ingestion
    def _check_stream_batch(self, X_new, shard, *, empty_error: str,
                            width_owner: str) -> np.ndarray:
        """Shared validation for any rows entering the plane mid-fit.

        One implementation behind both :meth:`check_ingest` and
        :meth:`check_join`, so a validation rule added for one path can
        never silently skip the other: the batch must be 2-d, non-empty
        and match ``shard``'s width, ``shard``'s type must support
        streaming, and the adapter must be able to code new rows.
        Returns the batch as a 2-d array in the adapter's compute dtype,
        so streamed rows enter the plane at the same precision the model
        trains in.
        """
        X_new = np.asarray(X_new, dtype=self.compute_dtype)
        if X_new.ndim != 2:
            raise ValueError(
                f"X_new must be 2-d (rows, features), got shape {X_new.shape}"
            )
        if len(X_new) == 0:
            raise ValueError(empty_error)
        if not hasattr(shard, "append") or not hasattr(shard, "X"):
            raise TypeError(
                f"{type(shard).__name__} does not support streaming"
            )
        width = shard.X.shape[1]
        if X_new.shape[1] != width:
            raise ValueError(
                f"X_new has {X_new.shape[1]} columns but {width_owner} "
                f"holds {width}-dimensional points"
            )
        if not (hasattr(self.adapter, "features") and hasattr(self.adapter, "init_codes")):
            raise TypeError(
                f"{type(self.adapter).__name__} does not support streaming "
                "(needs features() and init_codes())"
            )
        return X_new

    def check_ingest(self, p: int, X_new) -> np.ndarray:
        """Validate an arriving batch; returns it as a float64 2-d array.

        Raises ``KeyError`` for an unknown machine, ``ValueError`` for an
        empty or wrong-width batch, ``TypeError`` when the shard type or
        the adapter cannot stream. Called eagerly at ``ingest()`` time so
        a bad call fails at its site, not at the next epoch boundary.
        """
        p = self._require_machine(p)
        return self._check_stream_batch(
            X_new,
            self.shards[p],
            empty_error="cannot ingest an empty batch",
            width_owner=f"machine {p}'s shard",
        )

    def check_join(self, X_new) -> np.ndarray:
        """Validate a new machine's preloaded shard (streaming form 2).

        Same contract as :meth:`check_ingest`, minus the target machine:
        the new shard is held to the width of the live ones. Raises the
        identical clear errors, so a wrong-width machine fails at the
        ``add_machine`` call site instead of joining silently and
        exploding later.
        """
        return self._check_stream_batch(
            X_new,
            self.shards[self.machines[0]],
            empty_error="a new machine needs at least one data point",
            width_owner="the cluster's shards",
        )

    def admit(self, X_new, *, validated: bool = False) -> int:
        """Register a joining machine's shard; returns its fresh machine id.

        The rows are coded by the adapter's *current* nested model — the
        paper's "preloaded with data" machine computes its codes locally
        while it waits to pick the submodels up — and get fresh global
        indices, exactly like an ingested batch. Topology/engine plumbing
        (ring insertion, model hand-off) is the caller's job.
        """
        from repro.distributed.partition import Shard

        if not validated:
            X_new = self.check_join(X_new)
        F_new = self.adapter.features(X_new)
        Z_new = self.adapter.init_codes(F_new)
        idx = self.allocate_indices(len(X_new))
        return self.register(Shard(X=X_new, F=F_new, Z=Z_new, indices=idx))

    def prepare_ingest(self, p: int, X_new, *, validated: bool = False) -> IngestBatch:
        """Validate and code a batch with the current nested model.

        ``validated=True`` skips re-validating arrays that already went
        through :meth:`check_ingest` (the backends validate eagerly at
        ``ingest()`` time and drain later); the target machine is still
        re-checked, since it may have retired in between.
        """
        p = self._require_machine(p)
        if not validated:
            X_new = self.check_ingest(p, X_new)
        F_new = self.adapter.features(X_new)
        Z_new = self.adapter.init_codes(F_new)
        return IngestBatch(
            machine=p, X=X_new, F=F_new, Z=Z_new,
            indices=self.allocate_indices(len(X_new)),
        )

    def apply(self, batch: IngestBatch) -> int:
        """Account one shipped/applied batch; append rows when owning data."""
        p = self._require_machine(batch.machine)
        if self.own_data:
            self.shards[p].append(batch.X, batch.F, batch.Z, batch.indices)
        self._n_rows[p] += batch.n
        self.rows_ingested += batch.n
        return batch.n

    def remove_rows(self, p: int, local_idx) -> None:
        """Drop rows by local index (streaming form 1, data departure)."""
        p = self._require_machine(p)
        shard = self.shards[p]
        if not hasattr(shard, "drop"):
            raise TypeError(
                f"{type(shard).__name__} does not support row removal"
            )
        shard.drop(local_idx)
        self._n_rows[p] = shard.n

    # ----------------------------------------------------------- retirement
    def retire(self, p: int, *, lost: bool = True) -> int:
        """Excise machine ``p``'s shard; returns the rows that left with it.

        ``lost=True`` is the fault path (counts towards ``shards_lost`` /
        ``rows_lost``); ``lost=False`` is a deliberate removal.
        """
        p = self._require_machine(p)
        if self.n_machines == 1:
            raise ValueError("cannot retire the only shard")
        del self.shards[p]
        rows = self._n_rows.pop(p)
        self.retired.add(p)
        if lost:
            self.shards_lost += 1
            self.rows_lost += rows
        return rows

    # --------------------------------------------------------- checkpointing
    def bookkeeping(self) -> dict:
        """The plane's scalar state (everything except the shard arrays),
        as plain picklable values — the DataPlane half of a
        :class:`ClusterState`."""
        return {
            "rows_ingested": self.rows_ingested,
            "shards_lost": self.shards_lost,
            "rows_lost": self.rows_lost,
            "retired": set(self.retired),
            "next_machine_id": self._next_machine_id,
            "next_global_index": self._next_global_index,
        }

    def restore_bookkeeping(self, book: dict) -> None:
        """Adopt counters/ids captured by :meth:`bookkeeping`.

        Called right after construction during a checkpoint restore, so
        that global index allocation, machine-id allocation and the
        loss/ingest counters continue exactly where the snapshot left
        off (a post-restore join must not reuse a retired machine's id).
        """
        self.rows_ingested = int(book["rows_ingested"])
        self.shards_lost = int(book["shards_lost"])
        self.rows_lost = int(book["rows_lost"])
        self.retired = set(book["retired"])
        self._next_machine_id = max(
            self._next_machine_id, int(book["next_machine_id"])
        )
        self._next_global_index = max(
            self._next_global_index, int(book["next_global_index"])
        )


#: Format tag written into every checkpoint; bumped on layout changes.
CLUSTER_STATE_VERSION = 1


@dataclass
class ClusterState:
    """One resumable snapshot of a ParMAC fit, taken between iterations.

    Everything a backend needs to continue a fit bit-identically after a
    process kill, in one picklable object (→ one file via :meth:`save`):
    the assembled submodels, every machine's shard (with its evolved Z
    codes and any ingested rows), the DataPlane bookkeeping, the ring
    order, and the RNG states of the route stream and every machine's
    SGD stream. ``iteration`` counts *completed* MAC iterations, so a
    resuming trainer knows where in the mu schedule to pick up.

    Checkpoints are same-backend artefacts: sim and wall-clock engines
    key their machine RNG streams differently, so restore on the engine
    that produced the snapshot (the ``backend`` field records it; with
    ``shuffle_within=False`` and ``shuffle_ring=False`` the RNG states
    are inert and snapshots are portable in practice).

    The file format is a pickle — load checkpoints only from paths you
    trust, like any pickle.
    """

    backend: str
    iteration: int
    ring_order: list
    params: dict  # sid -> final parameter vector
    shards: dict  # machine id -> shard object (arrays by value)
    bookkeeping: dict  # DataPlane.bookkeeping()
    route_rng_state: dict | None = None
    machine_rng_states: dict = field(default_factory=dict)
    join_entropy: object = None
    pending_ingests: list = field(default_factory=list)
    adapter: object = None  # optional pickled adapter for standalone restore
    meta: dict = field(default_factory=dict)
    version: int = CLUSTER_STATE_VERSION

    @property
    def n_machines(self) -> int:
        return len(self.ring_order)

    def save(self, path) -> Path:
        """Serialise to a single file; returns the path written."""
        path = Path(path)
        with open(path, "wb") as fh:
            pickle.dump(self, fh, protocol=pickle.HIGHEST_PROTOCOL)
        return path

    @classmethod
    def load(cls, path) -> "ClusterState":
        """Read a snapshot written by :meth:`save`."""
        with open(Path(path), "rb") as fh:
            state = pickle.load(fh)
        if not isinstance(state, cls):
            raise TypeError(
                f"{path} does not contain a ClusterState (got {type(state).__name__})"
            )
        if state.version > CLUSTER_STATE_VERSION:
            raise ValueError(
                f"checkpoint version {state.version} is newer than this "
                f"code understands ({CLUSTER_STATE_VERSION})"
            )
        return state
