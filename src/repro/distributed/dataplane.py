"""The data plane: shard ownership, streaming ingestion, retirement.

ParMAC's resilience story (paper section 4.3) is a property of the *data
plane*, not of any one engine: each machine privately owns one shard;
new points may arrive at a machine mid-training and are coded locally
"by applying the nested model"; a machine failure loses exactly that
machine's shard while training continues on the survivors. This module
holds that bookkeeping once, so the simulated cluster and the wall-clock
backends drive the identical code instead of duplicating it:

* **ownership** — which machine id owns which shard, how many rows each
  holds, and the global row-index allocator that keeps streamed points
  uniquely addressable across machines;
* **ingestion** — validation of an arriving batch (target machine must
  exist, the batch must be non-empty and match the shard's width, the
  shard type must support streaming) and its conversion into an
  :class:`IngestBatch` with features and codes computed from the current
  nested model;
* **retirement** — excising a shard when its machine dies (``lost=True``,
  the fault path) or is deliberately removed (``lost=False``), with the
  ``shards_lost`` / ``rows_lost`` counters the degradation metrics are
  built from.

A :class:`DataPlane` either *owns* the shard arrays (the simulated
engines operate in-process on the very same objects) or merely *tracks*
them (the wall-clock backends keep the authoritative rows in worker
processes and ship :class:`IngestBatch` payloads over shared memory or
framed sockets); the ``own_data`` flag selects which, and everything
else — validation, index allocation, counters — is shared.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["IngestBatch", "DataPlane"]


@dataclass(frozen=True)
class IngestBatch:
    """One validated, model-coded batch of streamed rows for one machine.

    ``F`` and ``Z`` were computed by the adapter's *current* nested model
    at the iteration boundary where the batch was drained, so every
    engine codes identical arrivals identically (the cross-backend
    streaming-parity contract). ``indices`` are freshly allocated global
    row numbers, unique across all machines and all prior ingests.
    """

    machine: int
    X: np.ndarray
    F: np.ndarray
    Z: np.ndarray
    indices: np.ndarray

    @property
    def n(self) -> int:
        return len(self.X)


class DataPlane:
    """Shard-ownership bookkeeping shared by every execution engine.

    Parameters
    ----------
    adapter : ParMACAdapter
        Supplies ``features`` / ``init_codes`` for coding streamed rows.
        Adapters without those methods still get ownership/retirement
        bookkeeping; ingestion raises a clear error.
    shards : sequence or mapping
        One shard per machine. A sequence assigns machine ids 0..P-1; a
        mapping keeps its ids (machines may have been removed upstream).
    own_data : bool
        True (simulated engines): :meth:`apply` appends rows to the shard
        objects held here. False (wall-clock engines): the authoritative
        rows live in worker processes; :meth:`apply` only updates the
        accounting after the backend has shipped the batch.
    """

    def __init__(self, adapter, shards, *, own_data: bool = True):
        self.adapter = adapter
        if hasattr(shards, "items"):
            self.shards = {int(p): s for p, s in shards.items()}
        else:
            self.shards = {p: s for p, s in enumerate(shards)}
        if not self.shards:
            raise ValueError("need at least one shard")
        self.own_data = bool(own_data)
        self._n_rows = {p: s.n for p, s in self.shards.items()}
        self._next_machine_id = 1 + max(self.shards)
        # Global row counter for streaming; only meaningful for shard
        # types that track indices.
        self._next_global_index = 1 + max(
            (
                int(s.indices.max())
                for s in self.shards.values()
                if s.n and hasattr(s, "indices")
            ),
            default=-1,
        )
        self.rows_ingested = 0
        self.shards_lost = 0
        self.rows_lost = 0
        self.retired: set[int] = set()

    # ------------------------------------------------------------ ownership
    @property
    def machines(self) -> list[int]:
        """Machine ids currently owning a shard, in id order."""
        return sorted(self.shards)

    @property
    def n_machines(self) -> int:
        return len(self.shards)

    @property
    def n_points(self) -> int:
        """Rows currently owned across all machines (tracked, so it stays
        correct even when the authoritative rows live in workers)."""
        return sum(self._n_rows.values())

    def rows_of(self, p: int) -> int:
        self._require_machine(p)
        return self._n_rows[p]

    def is_retired(self, p) -> bool:
        """True when machine ``p`` once owned a shard that has left the
        plane — its data stream is gone, as distinct from an id that
        never existed (which is a caller error)."""
        return int(p) in self.retired

    def _require_machine(self, p) -> int:
        p = int(p)
        if p not in self.shards:
            raise KeyError(f"machine {p} does not exist")
        return p

    def register(self, shard, *, machine: int | None = None) -> int:
        """Add a shard under a fresh (or explicit) machine id; returns it."""
        if machine is None:
            machine = self._next_machine_id
        machine = int(machine)
        if machine in self.shards:
            raise ValueError(f"machine {machine} already owns a shard")
        self._next_machine_id = max(self._next_machine_id, machine + 1)
        self.shards[machine] = shard
        self._n_rows[machine] = shard.n
        return machine

    def allocate_indices(self, n: int) -> np.ndarray:
        """Fresh global row indices for ``n`` streamed points."""
        idx = np.arange(self._next_global_index, self._next_global_index + n)
        self._next_global_index += n
        return idx

    # ------------------------------------------------------------ ingestion
    def check_ingest(self, p: int, X_new) -> np.ndarray:
        """Validate an arriving batch; returns it as a float64 2-d array.

        Raises ``KeyError`` for an unknown machine, ``ValueError`` for an
        empty or wrong-width batch, ``TypeError`` when the shard type or
        the adapter cannot stream. Called eagerly at ``ingest()`` time so
        a bad call fails at its site, not at the next epoch boundary.
        """
        p = self._require_machine(p)
        X_new = np.asarray(X_new, dtype=np.float64)
        if X_new.ndim != 2:
            raise ValueError(
                f"X_new must be 2-d (rows, features), got shape {X_new.shape}"
            )
        if len(X_new) == 0:
            raise ValueError("cannot ingest an empty batch")
        shard = self.shards[p]
        if not hasattr(shard, "append") or not hasattr(shard, "X"):
            raise TypeError(
                f"{type(shard).__name__} does not support streaming ingestion"
            )
        width = shard.X.shape[1]
        if X_new.shape[1] != width:
            raise ValueError(
                f"X_new has {X_new.shape[1]} columns but machine {p}'s shard "
                f"holds {width}-dimensional points"
            )
        if not (hasattr(self.adapter, "features") and hasattr(self.adapter, "init_codes")):
            raise TypeError(
                f"{type(self.adapter).__name__} does not support streaming "
                "(needs features() and init_codes())"
            )
        return X_new

    def prepare_ingest(self, p: int, X_new, *, validated: bool = False) -> IngestBatch:
        """Validate and code a batch with the current nested model.

        ``validated=True`` skips re-validating arrays that already went
        through :meth:`check_ingest` (the backends validate eagerly at
        ``ingest()`` time and drain later); the target machine is still
        re-checked, since it may have retired in between.
        """
        p = self._require_machine(p)
        if not validated:
            X_new = self.check_ingest(p, X_new)
        F_new = self.adapter.features(X_new)
        Z_new = self.adapter.init_codes(F_new)
        return IngestBatch(
            machine=p, X=X_new, F=F_new, Z=Z_new,
            indices=self.allocate_indices(len(X_new)),
        )

    def apply(self, batch: IngestBatch) -> int:
        """Account one shipped/applied batch; append rows when owning data."""
        p = self._require_machine(batch.machine)
        if self.own_data:
            self.shards[p].append(batch.X, batch.F, batch.Z, batch.indices)
        self._n_rows[p] += batch.n
        self.rows_ingested += batch.n
        return batch.n

    def remove_rows(self, p: int, local_idx) -> None:
        """Drop rows by local index (streaming form 1, data departure)."""
        p = self._require_machine(p)
        shard = self.shards[p]
        if not hasattr(shard, "drop"):
            raise TypeError(
                f"{type(shard).__name__} does not support row removal"
            )
        shard.drop(local_idx)
        self._n_rows[p] = shard.n

    # ----------------------------------------------------------- retirement
    def retire(self, p: int, *, lost: bool = True) -> int:
        """Excise machine ``p``'s shard; returns the rows that left with it.

        ``lost=True`` is the fault path (counts towards ``shards_lost`` /
        ``rows_lost``); ``lost=False`` is a deliberate removal.
        """
        p = self._require_machine(p)
        if self.n_machines == 1:
            raise ValueError("cannot retire the only shard")
        del self.shards[p]
        rows = self._n_rows.pop(p)
        self.retired.add(p)
        if lost:
            self.shards_lost += 1
            self.rows_lost += rows
        return rows
