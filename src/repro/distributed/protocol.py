"""The W-step wire protocol: visit counters, routes, termination counts.

Counter semantics (paper section 4.1): a submodel's counter increments on
every machine visit. With P machines and e epochs it trains while
``counter <= P*e`` (each epoch = one lap of the ring) and keeps being
forwarded until ``counter == P*(e+1) - 1``, at which point every machine
holds a copy of the final parameters. Section 4.2's *two-round* variant
instead performs all e passes consecutively at each machine, so a submodel
makes a single training lap (``counter <= P``) plus the broadcast lap,
cutting communication to 2 rounds total.

Routing (section 4.3, shuffling): the ring may be re-randomised at every
epoch; a :class:`RoutePlan` holds one ring per epoch (plus one for the
broadcast lap) and answers "where does this message go next" from the
message counter — the in-code analogue of the paper's random lookup table.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.distributed.topology import RingTopology
from repro.utils.rng import check_random_state

__all__ = [
    "WStepProtocol",
    "RoutePlan",
    "home_assignment",
    "expected_receives",
    "replan",
]


def home_assignment(n_submodels: int, machines) -> dict[int, int]:
    """Contiguous-block home machines, as in paper fig. 2.

    ``machines`` is either a machine count (homes are ranks 0..P-1) or an
    explicit id list — the survivor set after shard retirements, whose
    ids need not be contiguous. Each submodel sid maps to the machine
    whose contiguous block of the sid-ordered submodel list contains it.
    """
    if isinstance(machines, int):
        machines = range(machines)
    machines = list(machines)
    P = len(machines)
    if P < 1:
        raise ValueError("need at least one machine")
    return {sid: machines[sid * P // n_submodels] for sid in range(n_submodels)}


def replan(machines, n_submodels: int, epochs: int, scheme: str):
    """(protocol, homes) for the given ring order.

    The one re-planning call shared by fit setup, survivor excision after
    a ``drop_shard`` recovery, and mid-fit machine joins: the counter
    protocol is sized to the machine count and homes are dealt over the
    machines *in cycle order* — the same order the simulated engines use,
    which is what keeps home assignment (and therefore every travelling
    submodel's visit sequence) bit-identical across backends after any
    membership change.
    """
    machines = list(machines)
    return (
        WStepProtocol(len(machines), epochs, scheme),
        home_assignment(n_submodels, machines),
    )


@dataclass(frozen=True)
class WStepProtocol:
    """Counter bookkeeping for one W step.

    Parameters
    ----------
    n_machines : int
    epochs : int
        Number of passes over the full dataset (e in the paper).
    scheme : {"rounds", "tworound"}
        "rounds": e communication rounds + broadcast (section 4.1).
        "tworound": 1 training lap with e local passes + broadcast
        (section 4.2).
    """

    n_machines: int
    epochs: int
    scheme: str = "rounds"

    def __post_init__(self):
        if self.n_machines < 1:
            raise ValueError(f"n_machines must be >= 1, got {self.n_machines}")
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.scheme not in ("rounds", "tworound"):
            raise ValueError(f"unknown scheme {self.scheme!r}")

    # ------------------------------------------------------------ lifecycle
    @property
    def training_visits(self) -> int:
        """Visits during which training happens."""
        if self.scheme == "rounds":
            return self.n_machines * self.epochs
        return self.n_machines

    @property
    def total_visits(self) -> int:
        """Total visits including the broadcast lap.

        ``P(e+1) - 1`` for "rounds" (section 4.1), ``2P - 1`` for
        "tworound"; each machine ends up holding the final parameters.
        """
        return self.training_visits + self.n_machines - 1

    def train_passes(self, counter: int) -> int:
        """SGD passes to run at the visit with this (incremented) counter."""
        if not 1 <= counter <= self.total_visits:
            raise ValueError(
                f"counter {counter} outside [1, {self.total_visits}]"
            )
        if counter > self.training_visits:
            return 0
        return 1 if self.scheme == "rounds" else self.epochs

    def is_final(self, counter: int) -> bool:
        """True once the parameters seen at this visit are final."""
        return counter >= self.training_visits

    def should_forward(self, counter: int) -> bool:
        """True while the message must keep travelling after this visit."""
        return counter < self.total_visits

    def hop_epoch(self, counter: int) -> int:
        """Index of the ring used for the hop *after* this visit.

        Training hops use their epoch's ring; broadcast hops use the last
        ring. For "tworound" there is a single training lap (epoch 0) and
        the broadcast lap (epoch 1).
        """
        if self.scheme == "rounds":
            return min(counter // self.n_machines, self.epochs)
        return min(counter // self.n_machines, 1)

    @property
    def n_rings(self) -> int:
        """Rings a RoutePlan must provide for this protocol."""
        return (self.epochs + 1) if self.scheme == "rounds" else 2

    def communication_rounds(self) -> int:
        """Times the full model crosses the network per W step.

        e+1 for "rounds", 2 for "tworound" — the headline numbers of
        sections 4.1/4.2.
        """
        return self.epochs + 1 if self.scheme == "rounds" else 2


class RoutePlan:
    """Per-epoch successor lookup for travelling submodels."""

    def __init__(self, rings: list[RingTopology], protocol: WStepProtocol):
        if len(rings) != protocol.n_rings:
            raise ValueError(
                f"protocol needs {protocol.n_rings} rings, got {len(rings)}"
            )
        machines = set(rings[0].machines)
        for ring in rings[1:]:
            if set(ring.machines) != machines:
                raise ValueError("all rings must cover the same machines")
        self.rings = rings
        self.protocol = protocol

    @classmethod
    def fixed(cls, topology: RingTopology, protocol: WStepProtocol) -> "RoutePlan":
        """Same ring for every epoch (no cross-machine shuffling)."""
        return cls([topology] * protocol.n_rings, protocol)

    @classmethod
    def shuffled(
        cls, machines, protocol: WStepProtocol, rng=None
    ) -> "RoutePlan":
        """A fresh random ring per epoch (cross-machine shuffling)."""
        rng = check_random_state(rng)
        rings = [RingTopology.random(machines, rng) for _ in range(protocol.n_rings)]
        return cls(rings, protocol)

    # --------------------------------------------------- wire serialisation
    # A RoutePlan reduces to its ring orders: cheap to ship to workers per
    # iteration (plain lists of ints, no object graph) and rebuilt against
    # the protocol each endpoint already holds.
    def to_orders(self) -> list[list[int]]:
        """The plan as plain per-epoch machine orders."""
        return [ring.machines for ring in self.rings]

    @classmethod
    def from_orders(cls, orders, protocol: WStepProtocol) -> "RoutePlan":
        """Rebuild a plan shipped as :meth:`to_orders` output."""
        return cls([RingTopology(order) for order in orders], protocol)

    @property
    def machines(self) -> list[int]:
        return self.rings[0].machines

    def successor(self, machine: int, counter: int) -> int:
        """Where the message goes after the visit with this counter."""
        return self.rings[self.protocol.hop_epoch(counter)].successor(machine)

    def path(self, home: int) -> list[int]:
        """Full visit sequence of a submodel homed at ``home`` (length
        ``total_visits``), for termination counting and tests."""
        seq = [home]
        p = home
        for c in range(1, self.protocol.total_visits):
            p = self.successor(p, c)
            seq.append(p)
        return seq


def expected_receives(plan: RoutePlan, homes: dict[int, int]) -> dict[int, int]:
    """Ring messages each machine will *receive* during one W step.

    ``homes`` maps submodel sid -> home machine. The first visit of each
    submodel happens locally at its home (no receive); every later visit is
    a receive. Engines and the multiprocessing workers use these counts as
    their deterministic termination condition (no sentinel messages needed).
    """
    counts = {p: 0 for p in plan.machines}
    for home in homes.values():
        for p in plan.path(home)[1:]:
            counts[p] += 1
    return counts
