"""Virtual-clock cost model for the simulated cluster.

The paper's speedup theory (section 5) reduces a cluster to three
constants: ``t_Wr`` (W-step computation per submodel per point), ``t_Wc``
(time to ship one submodel between machines) and ``t_Zr`` (Z-step
computation per point per submodel). The simulated engines charge exactly
these costs while executing the real protocol, so their virtual-clock
runtimes are directly comparable to the theory — and to each other across
configurations (fig. 13's shared-memory vs distributed contrast comes from
``t_Wc`` varying with node placement).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


from repro.distributed.chaos import ChaosConfig, _ChaosState
from repro.utils.validation import check_positive

__all__ = ["CostModel", "OverlapSendTimeline", "ChaosTimeline"]


@dataclass
class CostModel:
    """Computation/communication time constants (arbitrary units).

    Parameters
    ----------
    t_wr : float
        W-step time per submodel per data point (one SGD "touch").
    t_wc : float
        Communication time per submodel hop (receive + send, section 5.1).
    t_zr : float
        Z-step time per data point per submodel (the theory's
        ``T_Z = M (N/P) t_zr``).
    speeds : dict[int, float]
        Per-machine relative speed ``alpha_p``; work time divides by it
        (heterogeneous machines, section 4.3). Default 1.
    node_of : dict[int, int]
        Machine -> node placement. When set, hops between machines on the
        same node cost ``t_wc_intra`` instead of ``t_wc`` (fig. 13).
    t_wc_intra : float
        Intra-node hop cost (defaults to ``t_wc``).
    """

    t_wr: float = 1.0
    t_wc: float = 0.0
    t_zr: float = 1.0
    speeds: dict = field(default_factory=dict)
    node_of: dict = field(default_factory=dict)
    t_wc_intra: float | None = None

    def __post_init__(self):
        check_positive(self.t_wr, name="t_wr")
        check_positive(self.t_zr, name="t_zr")
        if self.t_wc < 0:
            raise ValueError(f"t_wc must be >= 0, got {self.t_wc}")
        if self.t_wc_intra is not None and self.t_wc_intra < 0:
            raise ValueError(f"t_wc_intra must be >= 0, got {self.t_wc_intra}")

    def speed(self, p: int) -> float:
        return float(self.speeds.get(p, 1.0))

    # ----------------------------------------------------------- W step
    def w_work(self, p: int, n_points: int, passes: int = 1) -> float:
        """Time for ``passes`` SGD passes of one submodel over ``n_points``."""
        return passes * n_points * self.t_wr / self.speed(p)

    def comm(self, p: int, q: int) -> float:
        """Time to ship one submodel from machine p to machine q.

        Zero for a self-hop (P=1: "for P = 1 machine we have no
        communication"); ``t_wc_intra`` when both machines share a node.
        """
        if p == q:
            return 0.0
        if self.node_of and self.t_wc_intra is not None:
            if self.node_of.get(p) == self.node_of.get(q) and self.node_of.get(p) is not None:
                return float(self.t_wc_intra)
        return float(self.t_wc)

    # ----------------------------------------------------------- Z step
    def z_work(self, p: int, n_points: int, n_submodels: int) -> float:
        """Z-step time on machine p: ``M * n_p * t_zr`` (eq. 7)."""
        return n_submodels * n_points * self.t_zr / self.speed(p)


class OverlapSendTimeline:
    """Per-machine NIC timeline for overlapped (pipelined) ring sends.

    Models what the wall-clock engines' background sender does to the
    virtual clock: under ``overlap_send`` a machine hands an outgoing
    submodel to a double-buffered sender and keeps computing, so the hop
    cost ``t_wc`` stops occupying the worker's clock — except when both
    send buffers are already full, in which case the worker blocks until
    the oldest in-flight send completes (exactly the backpressure of a
    ``Queue(maxsize=depth)``). The NIC itself is serial: queued sends
    leave one after another.

    ``submit`` returns ``(resume, delivery)``: when the *worker* may
    continue, and when the message reaches the receiving machine. The
    discrete-event engine schedules the delivery event at ``delivery``
    and advances the sender's clock only to ``resume``.
    """

    def __init__(self, depth: int = 2):
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.depth = int(depth)
        self._pending: dict[int, deque] = {}

    def submit(self, p: int, now: float, hop: float) -> tuple[float, float]:
        """Hand one send of duration ``hop`` to machine ``p``'s NIC at
        ``now``; returns ``(resume, delivery)`` virtual times."""
        q = self._pending.setdefault(p, deque())
        while q and q[0] <= now:
            q.popleft()
        resume = now
        if len(q) >= self.depth:
            # Both buffers full: block until the oldest send frees one.
            resume = q[0]
            while q and q[0] <= resume:
                q.popleft()
        start = max(resume, q[-1]) if q else resume
        delivery = start + hop
        q.append(delivery)
        return resume, delivery

    def tail(self) -> float:
        """Latest in-flight send completion across all machines — the
        NIC drain the step's makespan must cover."""
        return max((q[-1] for q in self._pending.values() if q), default=0.0)


class ChaosTimeline(_ChaosState):
    """Virtual-clock front end for :class:`~repro.distributed.chaos.ChaosConfig`.

    Mirrors every knob the wall-clock shim injects, charging the same
    seeded degradations to the simulated engines' clocks instead of
    sleeping them off: :meth:`hop_penalty` (inherited — the shared
    per-link sampler) returns the extra virtual seconds one hop costs at
    virtual time ``now``, and :meth:`charge_work` inflates a straggling
    machine's compute time by its slowdown factor. One timeline is
    created per W step, so the per-link RNG streams (and the
    injected-event counters surfaced in ``IterationStats.extra``) align
    with the wall-clock transports, which are likewise recreated per
    iteration. Virtual time is treated as seconds — the cost model's
    units are arbitrary, and sharing the wall clock's unit is what makes
    sim and tcp degradation curves directly comparable.
    """

    def __init__(self, cfg: ChaosConfig):
        super().__init__(cfg)

    def charge_work(self, p: int, work: float) -> float:
        """Compute time ``work`` on machine ``p`` after straggler scaling."""
        factor = self.cfg.straggler_factor(p)
        if factor != 1.0:
            self.counters["chaos_straggler_s"] += work * (factor - 1.0)
        return work * factor
