"""Framed wire format for submodel messages on socket transports.

The TCP backend moves :class:`~repro.distributed.messages.SubmodelMessage`s
between machines as *length-prefixed frames*: a fixed binary header
(magic, version, kind, payload length) followed by a payload whose layout
depends on the frame kind. The hot-path payload is a **batch** of
submodel messages — every message a machine owes its ring successor for
one hop, coalesced into a single frame so one ``send`` system call (and
one network round of latency) amortises over all resident submodels.

Nothing on the hot path is pickled. A message serialises to a small
struct-packed header — sid, visit counter (the hop number), remaining
epochs, SGD step counters, dtype and shape — plus the raw ndarray bytes
of the parameter vector. Submodel *specs* (which may carry arbitrary
adapter payloads in ``index``) never travel in frames: both endpoints
hold the adapter's static sid-ordered spec table and the decoder looks
specs up by sid. This mirrors the paper's MPI implementation, where a
submodel message is "essentially the buffer of weights" and everything
else is protocol bookkeeping.

Any malformed input — bad magic, unsupported version, unknown frame
kind, a declared length that exceeds the hard cap, or a payload that
ends mid-message — raises :class:`ProtocolError` immediately rather
than leaving a reader blocked on bytes that will never arrive.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.distributed.messages import IngestMessage, ShardRetired, SubmodelMessage

__all__ = [
    "ProtocolError",
    "FRAME_MAGIC",
    "FRAME_VERSION",
    "KIND_HELLO",
    "KIND_BATCH",
    "KIND_INGEST",
    "KIND_SHARD_RETIRED",
    "KIND_JOIN",
    "KIND_WELCOME",
    "KIND_HEARTBEAT",
    "encode_frame",
    "FrameDecoder",
    "encode_hello",
    "decode_hello",
    "encode_heartbeat",
    "decode_heartbeat",
    "encode_batch",
    "decode_batch",
    "encode_ingest",
    "decode_ingest",
    "encode_shard_retired",
    "decode_shard_retired",
    "encode_join",
    "decode_join",
    "encode_welcome",
    "decode_welcome",
]


class ProtocolError(RuntimeError):
    """A frame or payload violates the wire format."""


FRAME_MAGIC = b"PM"
FRAME_VERSION = 1

#: Frame kinds. HELLO identifies the sending rank on a fresh connection;
#: BATCH carries one coalesced hop's worth of submodel messages. The
#: control plane adds INGEST (streamed rows for the receiving machine's
#: shard), SHARD_RETIRED (a dead machine's shard left the data plane),
#: JOIN (a machine joining the ring mid-fit opens its connections with
#: this instead of HELLO, announcing itself as new) and WELCOME (a live
#: donor's reply to a joiner — immediately followed on the same
#: connection by a BATCH of the current submodels, which is how the
#: joining machine "picks up the model": framed bytes, no pickle).
KIND_HELLO = 0
KIND_BATCH = 1
KIND_INGEST = 2
KIND_SHARD_RETIRED = 3
KIND_JOIN = 4
KIND_WELCOME = 5
#: HEARTBEAT is the health plane: a worker's supervisor thread emits one
#: every beat interval carrying (rank, monotone sequence number, progress
#: counter, phase tag) so the coordinator can tell live-but-slow from
#: stalled from dead without waiting out a blunt wall-clock timeout.
KIND_HEARTBEAT = 6
_KNOWN_KINDS = (
    KIND_HELLO, KIND_BATCH, KIND_INGEST, KIND_SHARD_RETIRED,
    KIND_JOIN, KIND_WELCOME, KIND_HEARTBEAT,
)

# magic (2s) | version (B) | kind (B) | payload length (I)
_FRAME_HEADER = struct.Struct("<2sBBI")

# Hard cap on a single frame's payload; a corrupt length field must fail
# fast instead of making a reader buffer gigabytes.
MAX_FRAME_BYTES = 1 << 30

_HELLO = struct.Struct("<I")

# Per-message header inside a batch payload:
# sid (I) | counter/hop (I) | epochs_left (i) | sgd t (q) | sgd n_updates (q)
# | ndim (B) | dtype-string length (B)
_MSG_HEADER = struct.Struct("<IIiqqBB")
_DIM = struct.Struct("<q")
_COUNT = struct.Struct("<I")

# Ingest payload: machine (I) | 4 arrays (X, F, Z, indices), each as
# ndim (B) | dtype-string length (B) | dtype | dims | raw bytes.
_INGEST_HEADER = struct.Struct("<I")
_ARRAY_HEADER = struct.Struct("<BB")

# Shard-retired payload: machine (I) | rows_lost (q).
_SHARD_RETIRED = struct.Struct("<Iq")

# Join payload: the joining machine's id (I).
_JOIN = struct.Struct("<I")

# Welcome payload: donor machine (I) | submodel count the following
# BATCH frame must carry (I) — lets the joiner validate the hand-off.
_WELCOME = struct.Struct("<II")

# Heartbeat payload: rank (I) | beat sequence (Q) | progress counter (Q)
# | phase-tag length (B), followed by the ascii phase tag ("w", "z",
# "idle", ...).
_HEARTBEAT = struct.Struct("<IQQB")


# ------------------------------------------------------------------ frames
def encode_frame(kind: int, payload: bytes) -> bytes:
    """One wire frame: header + payload, ready for ``sendall``."""
    if kind not in _KNOWN_KINDS:
        raise ProtocolError(f"unknown frame kind {kind}")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"payload of {len(payload)} bytes exceeds cap {MAX_FRAME_BYTES}"
        )
    return _FRAME_HEADER.pack(FRAME_MAGIC, FRAME_VERSION, kind, len(payload)) + payload


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte stream.

    Feed it whatever ``recv`` returned; it buffers partial frames across
    calls and yields every completed ``(kind, payload)``. Socket readers
    call :meth:`eof` when the peer closes the connection — a clean close
    mid-frame is a protocol violation (the peer died or the stream was
    truncated) and raises rather than silently dropping the tail.
    """

    def __init__(self):
        self._buf = bytearray()

    @property
    def pending(self) -> int:
        """Bytes buffered towards an incomplete frame."""
        return len(self._buf)

    def feed(self, data: bytes) -> list[tuple[int, bytes]]:
        """Absorb ``data``; return all frames completed by it."""
        self._buf.extend(data)
        frames = []
        while True:
            if len(self._buf) < _FRAME_HEADER.size:
                break
            magic, version, kind, length = _FRAME_HEADER.unpack_from(self._buf)
            if magic != FRAME_MAGIC:
                raise ProtocolError(f"bad frame magic {bytes(magic)!r}")
            if version != FRAME_VERSION:
                raise ProtocolError(f"unsupported frame version {version}")
            if kind not in _KNOWN_KINDS:
                raise ProtocolError(f"unknown frame kind {kind}")
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"declared payload of {length} bytes exceeds cap "
                    f"{MAX_FRAME_BYTES}"
                )
            end = _FRAME_HEADER.size + length
            if len(self._buf) < end:
                break
            frames.append((kind, bytes(self._buf[_FRAME_HEADER.size : end])))
            del self._buf[:end]
        return frames

    def eof(self) -> None:
        """The stream ended; raise if it ended inside a frame."""
        if self._buf:
            raise ProtocolError(
                f"stream closed mid-frame with {len(self._buf)} bytes buffered"
            )


def _shape_nbytes(dtype, shape) -> int:
    """Byte size of a decoded array, overflow-proof.

    Computed in Python ints (no fixed-width wrap-around), so a crafted
    frame whose dims multiply past 2^63 fails the cap check instead of
    wrapping to a small — or negative — size that would let the reader
    rewind or misparse the payload.
    """
    n = 1
    for dim in shape:
        n *= int(dim)
    nbytes = int(dtype.itemsize) * n
    if nbytes > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"declared array of {nbytes} bytes exceeds cap {MAX_FRAME_BYTES}"
        )
    return nbytes


# ------------------------------------------------------------------- hello
def encode_hello(rank: int) -> bytes:
    """The one-off identification frame a fresh connection opens with."""
    return encode_frame(KIND_HELLO, _HELLO.pack(rank))


def decode_hello(payload: bytes) -> int:
    if len(payload) != _HELLO.size:
        raise ProtocolError(f"hello payload must be {_HELLO.size} bytes")
    return _HELLO.unpack(payload)[0]


# -------------------------------------------------------------- heartbeats
def encode_heartbeat(rank: int, seq: int, progress: int, phase: str = "idle") -> bytes:
    """One health-plane beat: who, which beat, how far, doing what."""
    tag = phase.encode("ascii")
    if len(tag) > 255:
        raise ProtocolError(f"phase tag too long: {phase!r}")
    return encode_frame(
        KIND_HEARTBEAT, _HEARTBEAT.pack(rank, seq, progress, len(tag)) + tag
    )


def decode_heartbeat(payload: bytes) -> tuple[int, int, int, str]:
    """``(rank, seq, progress, phase)`` of one HEARTBEAT payload."""
    if len(payload) < _HEARTBEAT.size:
        raise ProtocolError(f"heartbeat payload must be >= {_HEARTBEAT.size} bytes")
    rank, seq, progress, tlen = _HEARTBEAT.unpack_from(payload)
    if len(payload) != _HEARTBEAT.size + tlen:
        raise ProtocolError(
            f"heartbeat payload declares a {tlen}-byte phase tag but carries "
            f"{len(payload) - _HEARTBEAT.size}"
        )
    try:
        phase = bytes(payload[_HEARTBEAT.size :]).decode("ascii")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"undecodable phase tag in heartbeat: {exc}") from None
    return rank, seq, progress, phase


# ----------------------------------------------------------------- batches
def encode_batch(messages) -> bytes:
    """Serialise submodel messages into one BATCH frame.

    The resulting bytes are a complete frame (header included); the
    payload starts with the message count, then each message as a packed
    header plus raw parameter bytes.
    """
    parts = [_COUNT.pack(len(messages))]
    for msg in messages:
        theta = np.asarray(msg.theta)
        # ascontiguousarray promotes 0-d to 1-d, so take the shape from
        # the original; the raw bytes are identical either way.
        shape = theta.shape
        theta = np.ascontiguousarray(theta)
        dtype = theta.dtype.str.encode("ascii")
        if len(dtype) > 255:
            raise ProtocolError(f"dtype string too long: {dtype!r}")
        counter, epochs_left, t, n_updates = msg.wire_state()
        parts.append(
            _MSG_HEADER.pack(
                msg.spec.sid, counter, epochs_left, t, n_updates,
                len(shape), len(dtype),
            )
        )
        parts.append(dtype)
        for dim in shape:
            parts.append(_DIM.pack(dim))
        parts.append(theta.tobytes())
    return encode_frame(KIND_BATCH, b"".join(parts))


def decode_batch(payload: bytes, spec_by_sid) -> list[SubmodelMessage]:
    """Rebuild the messages of one BATCH payload.

    ``spec_by_sid`` is the receiving side's static spec table; an sid the
    table does not know is a protocol violation, as is any truncation.
    """
    view = memoryview(payload)
    offset = 0

    def take(n: int) -> memoryview:
        nonlocal offset
        if offset + n > len(view):
            raise ProtocolError(
                f"batch payload truncated: wanted {n} bytes at offset "
                f"{offset}, have {len(view) - offset}"
            )
        chunk = view[offset : offset + n]
        offset += n
        return chunk

    (count,) = _COUNT.unpack(take(_COUNT.size))
    messages = []
    for _ in range(count):
        sid, counter, epochs_left, t, n_updates, ndim, dlen = _MSG_HEADER.unpack(
            take(_MSG_HEADER.size)
        )
        try:
            dtype = np.dtype(bytes(take(dlen)).decode("ascii"))
        except (TypeError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"undecodable dtype in frame: {exc}") from None
        shape = tuple(_DIM.unpack(take(_DIM.size))[0] for _ in range(ndim))
        if any(dim < 0 for dim in shape):
            raise ProtocolError(f"negative dimension in shape {shape}")
        nbytes = _shape_nbytes(dtype, shape)
        theta = np.frombuffer(take(nbytes), dtype=dtype).reshape(shape).copy()
        try:
            spec = spec_by_sid[sid]
        except KeyError:
            raise ProtocolError(f"frame references unknown submodel sid {sid}") from None
        messages.append(
            SubmodelMessage.from_wire(spec, theta, counter, epochs_left, t, n_updates)
        )
    if offset != len(view):
        raise ProtocolError(
            f"{len(view) - offset} trailing bytes after {count} messages"
        )
    return messages


# ----------------------------------------------------------- control plane
def _payload_reader(payload: bytes):
    """A bounds-checked ``take(n)`` over one frame payload."""
    view = memoryview(payload)
    state = {"offset": 0}

    def take(n: int) -> memoryview:
        offset = state["offset"]
        if offset + n > len(view):
            raise ProtocolError(
                f"payload truncated: wanted {n} bytes at offset "
                f"{offset}, have {len(view) - offset}"
            )
        state["offset"] = offset + n
        return view[offset : offset + n]

    def remaining() -> int:
        return len(view) - state["offset"]

    return take, remaining


def _encode_ndarray(parts: list, a) -> None:
    """Append one ndarray (header, dtype, dims, raw bytes) to ``parts``."""
    a = np.asarray(a)
    shape = a.shape  # taken before ascontiguousarray, which promotes 0-d
    a = np.ascontiguousarray(a)
    dtype = a.dtype.str.encode("ascii")
    if len(dtype) > 255:
        raise ProtocolError(f"dtype string too long: {dtype!r}")
    parts.append(_ARRAY_HEADER.pack(len(shape), len(dtype)))
    parts.append(dtype)
    for dim in shape:
        parts.append(_DIM.pack(dim))
    parts.append(a.tobytes())


def _decode_ndarray(take) -> np.ndarray:
    """Read one ndarray written by :func:`_encode_ndarray`."""
    ndim, dlen = _ARRAY_HEADER.unpack(take(_ARRAY_HEADER.size))
    try:
        dtype = np.dtype(bytes(take(dlen)).decode("ascii"))
    except (TypeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable dtype in frame: {exc}") from None
    shape = tuple(_DIM.unpack(take(_DIM.size))[0] for _ in range(ndim))
    if any(dim < 0 for dim in shape):
        raise ProtocolError(f"negative dimension in shape {shape}")
    nbytes = _shape_nbytes(dtype, shape)
    return np.frombuffer(take(nbytes), dtype=dtype).reshape(shape).copy()


def encode_ingest(msg: IngestMessage) -> bytes:
    """Serialise one streamed-rows delivery into an INGEST frame."""
    if not (len(msg.X) == len(msg.F) == len(msg.Z) == len(msg.indices)):
        raise ProtocolError(
            f"inconsistent ingest lengths: X={len(msg.X)}, F={len(msg.F)}, "
            f"Z={len(msg.Z)}, indices={len(msg.indices)}"
        )
    parts = [_INGEST_HEADER.pack(msg.machine)]
    for a in (msg.X, msg.F, msg.Z, msg.indices):
        _encode_ndarray(parts, a)
    return encode_frame(KIND_INGEST, b"".join(parts))


def decode_ingest(payload: bytes) -> IngestMessage:
    """Rebuild the :class:`IngestMessage` of one INGEST payload."""
    take, remaining = _payload_reader(payload)
    (machine,) = _INGEST_HEADER.unpack(take(_INGEST_HEADER.size))
    X, F, Z, indices = (_decode_ndarray(take) for _ in range(4))
    if remaining():
        raise ProtocolError(f"{remaining()} trailing bytes after ingest arrays")
    if not (len(X) == len(F) == len(Z) == len(indices)):
        raise ProtocolError(
            f"inconsistent ingest lengths: X={len(X)}, F={len(F)}, "
            f"Z={len(Z)}, indices={len(indices)}"
        )
    return IngestMessage(machine=machine, X=X, F=F, Z=Z, indices=indices)


def encode_join(rank: int) -> bytes:
    """The identification frame a *joining* machine opens connections
    with — HELLO's elastic sibling (section 4.3, streaming form 2)."""
    return encode_frame(KIND_JOIN, _JOIN.pack(rank))


def decode_join(payload: bytes) -> int:
    if len(payload) != _JOIN.size:
        raise ProtocolError(f"join payload must be {_JOIN.size} bytes")
    return _JOIN.unpack(payload)[0]


def encode_welcome(donor: int, n_submodels: int) -> bytes:
    """A donor's reply to a JOIN: the next frame on this connection is a
    BATCH carrying exactly ``n_submodels`` current submodels."""
    return encode_frame(KIND_WELCOME, _WELCOME.pack(donor, n_submodels))


def decode_welcome(payload: bytes) -> tuple[int, int]:
    if len(payload) != _WELCOME.size:
        raise ProtocolError(f"welcome payload must be {_WELCOME.size} bytes")
    return _WELCOME.unpack(payload)


def encode_shard_retired(msg: ShardRetired) -> bytes:
    """Serialise one shard-retirement announcement."""
    return encode_frame(
        KIND_SHARD_RETIRED, _SHARD_RETIRED.pack(msg.machine, msg.rows_lost)
    )


def decode_shard_retired(payload: bytes) -> ShardRetired:
    if len(payload) != _SHARD_RETIRED.size:
        raise ProtocolError(
            f"shard-retired payload must be {_SHARD_RETIRED.size} bytes, "
            f"got {len(payload)}"
        )
    machine, rows_lost = _SHARD_RETIRED.unpack(payload)
    return ShardRetired(machine=machine, rows_lost=rows_lost)
