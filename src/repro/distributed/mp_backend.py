"""Backward-compatible wrapper over the multiprocessing backend.

The real implementation lives in :mod:`repro.distributed.backends.mp` as
:class:`MultiprocessBackend` — a registry-discoverable engine with a
persistent worker pool, shared-memory shard shipping and ``shuffle_ring``
support. This module keeps the original :class:`MultiprocessRing` run-list
API for existing callers; new code should go through
``get_backend("multiprocess")`` or the generic
:class:`~repro.core.trainer.ParMACTrainer`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.distributed.backends.mp import MultiprocessBackend, home_assignment
from repro.distributed.protocol import WStepProtocol

__all__ = ["MultiprocessRing", "IterationResult"]

# Old private name, still imported by callers of the original module.
_home_assignment = home_assignment


@dataclass
class IterationResult:
    """Aggregated metrics for one distributed MAC iteration."""

    mu: float
    e_q: float
    e_ba: float
    z_changes: int
    violations: int
    w_time: float  # max worker W-step wall time (the parallel runtime)
    z_time: float  # max worker Z-step wall time
    wall_time: float  # coordinator-observed end-to-end time


class MultiprocessRing:
    """Run ParMAC iterations over real OS processes (legacy interface).

    Parameters
    ----------
    adapter : ParMACAdapter
        Must be picklable; each worker gets its own copy.
    shards : list of Shard
        One per worker.
    epochs : int
        SGD epochs per W step.
    scheme : {"rounds", "tworound"}
    batch_size, shuffle_within : SGD options within each shard.
    shuffle_ring : bool
        Per-epoch ring reshuffling (section 4.3).
    seed : int
        Base seed; worker rank r uses ``seed + r``.
    ctx_method : str
        ``multiprocessing`` start method ("fork" is fastest on Linux).
    """

    def __init__(
        self,
        adapter,
        shards,
        *,
        epochs: int = 1,
        scheme: str = "rounds",
        batch_size: int = 100,
        shuffle_within: bool = True,
        shuffle_ring: bool = False,
        seed: int = 0,
        ctx_method: str = "fork",
    ):
        warnings.warn(
            "MultiprocessRing is deprecated; construct the engine through "
            'get_backend("multiprocess") (or ParMACTrainer(backend='
            '"multiprocess")) instead — same protocol, plus streaming, '
            "fault policies, elasticity and checkpointing.",
            DeprecationWarning,
            stacklevel=2,
        )
        self.adapter = adapter
        self.shards = list(shards)
        self.n_machines = len(self.shards)
        if self.n_machines < 1:
            raise ValueError("need at least one shard")
        self.protocol = WStepProtocol(self.n_machines, epochs, scheme)
        self.batch_size = int(batch_size)
        self.shuffle_within = bool(shuffle_within)
        self.seed = int(seed)
        self._backend = MultiprocessBackend(
            epochs=epochs,
            scheme=scheme,
            batch_size=batch_size,
            shuffle_within=shuffle_within,
            shuffle_ring=shuffle_ring,
            seed=self.seed,
            ctx_method=ctx_method,
        )

    def run(self, mus, *, on_iteration=None) -> list[IterationResult]:
        """Execute one MAC iteration per mu value; returns per-iteration
        metrics. The coordinator's adapter model is updated in place after
        every iteration (from worker 0's assembled copy); ``on_iteration``
        is then called with the fresh :class:`IterationResult`, so callers
        can evaluate the model as it stood at that iteration."""
        self._backend.setup(self.adapter, self.shards)
        results = []
        try:
            for mu in mus:
                stats = self._backend.run_iteration(float(mu))
                result = IterationResult(
                    mu=float(mu),
                    e_q=stats.e_q,
                    e_ba=stats.e_ba,
                    z_changes=stats.z_changes,
                    violations=stats.violations,
                    w_time=stats.extra["w_time"],
                    z_time=stats.extra["z_time"],
                    wall_time=stats.wall_time,
                )
                results.append(result)
                if on_iteration is not None:
                    on_iteration(result)
        finally:
            self._backend.teardown()
            self._backend.close()
        return results
