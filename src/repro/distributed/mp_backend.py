"""Real multiprocessing ring backend — the MPI stand-in.

Each worker process owns one shard for the whole run ("the data cannot
leave its home machine"); submodel messages are pickled over
``multiprocessing`` queues arranged in the fixed identity ring, following
the counter protocol of paper section 4.1 / fig. 6 exactly:

* a message's counter increments on each visit;
* it trains while ``counter <= P*e``;
* parameters are final from ``counter == P*e`` on, and each machine stores
  the final copy as it passes;
* it is forwarded while ``counter < P*(e+1) - 1``.

Termination is deterministic: every worker knows in advance exactly how
many ring messages it will receive (:func:`~repro.distributed.protocol.
expected_receives`), so no sentinels or barriers are needed inside the W
step — mirroring the MPI code's ``visitedsubmodels`` loop bound.

After the W step every worker holds the full final model (the ParMAC
invariant), so the Z step needs no coordinator broadcast; workers report
per-shard metrics and worker 0 reports the assembled parameters.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass

import numpy as np

from repro.distributed.messages import SubmodelMessage
from repro.distributed.protocol import RoutePlan, WStepProtocol, expected_receives
from repro.distributed.topology import RingTopology
from repro.optim.sgd import SGDState

__all__ = ["MultiprocessRing", "IterationResult"]


@dataclass
class IterationResult:
    """Aggregated metrics for one distributed MAC iteration."""

    mu: float
    e_q: float
    e_ba: float
    z_changes: int
    violations: int
    w_time: float  # max worker W-step wall time (the parallel runtime)
    z_time: float  # max worker Z-step wall time
    wall_time: float  # coordinator-observed end-to-end time


def _home_assignment(n_submodels: int, n_machines: int) -> dict[int, int]:
    """Contiguous-block home machines, as in fig. 2."""
    return {sid: sid * n_machines // n_submodels for sid in range(n_submodels)}


def _worker_main(
    rank: int,
    n_machines: int,
    adapter,
    shard,
    homes: dict[int, int],
    protocol: WStepProtocol,
    n_expected: int,
    batch_size: int,
    shuffle_within: bool,
    seed: int,
    ring_in,
    ring_out,
    cmd_q,
    res_q,
):
    """Worker loop: one process per machine. See module docstring."""
    rng = np.random.default_rng(seed)
    specs = adapter.submodel_specs()
    spec_by_sid = {s.sid: s for s in specs}
    my_sids = [sid for sid, h in homes.items() if h == rank]

    def handle(msg: SubmodelMessage, final: dict) -> None:
        msg.counter += 1
        for _ in range(protocol.train_passes(msg.counter)):
            msg.theta = adapter.w_update(
                msg.spec,
                msg.theta,
                msg.sgd_state,
                shard,
                0.0,  # mu does not enter the BA W step
                batch_size=batch_size,
                shuffle=shuffle_within,
                rng=rng,
            )
        if protocol.is_final(msg.counter):
            final[msg.spec.sid] = np.array(msg.theta, copy=True)
        if protocol.should_forward(msg.counter):
            ring_out.put(msg)

    while True:
        cmd = cmd_q.get()
        if cmd[0] == "stop":
            break
        mu = float(cmd[1])

        t_w0 = time.perf_counter()
        final: dict[int, np.ndarray] = {}
        for sid in my_sids:
            spec = spec_by_sid[sid]
            handle(
                SubmodelMessage(
                    spec=spec,
                    theta=np.array(adapter.get_params(spec), copy=True),
                    sgd_state=SGDState(),
                ),
                final,
            )
        for _ in range(n_expected):
            handle(ring_in.get(), final)
        # W-step invariant: this worker now holds every final submodel.
        for spec in specs:
            adapter.set_params(spec, final[spec.sid])
        t_w = time.perf_counter() - t_w0

        t_z0 = time.perf_counter()
        z_changes = adapter.z_update(shard, mu)
        t_z = time.perf_counter() - t_z0

        payload = {
            "e_q": adapter.e_q_shard(shard, mu),
            "e_ba": adapter.e_ba_shard(shard),
            "violations": adapter.violations_shard(shard),
            "z_changes": z_changes,
            "w_time": t_w,
            "z_time": t_z,
            "model": [(s.sid, final[s.sid]) for s in specs] if rank == 0 else None,
        }
        res_q.put((rank, payload))


class MultiprocessRing:
    """Run ParMAC iterations over real OS processes.

    Parameters
    ----------
    adapter : ParMACAdapter
        Must be picklable; each worker gets its own copy.
    shards : list of Shard
        One per worker.
    epochs : int
        SGD epochs per W step.
    scheme : {"rounds", "tworound"}
    batch_size, shuffle_within : SGD options within each shard.
    seed : int
        Base seed; worker rank r uses ``seed + r``.
    ctx_method : str
        ``multiprocessing`` start method ("fork" is fastest on Linux).
    """

    def __init__(
        self,
        adapter,
        shards,
        *,
        epochs: int = 1,
        scheme: str = "rounds",
        batch_size: int = 100,
        shuffle_within: bool = True,
        seed: int = 0,
        ctx_method: str = "fork",
    ):
        self.adapter = adapter
        self.shards = list(shards)
        self.n_machines = len(self.shards)
        if self.n_machines < 1:
            raise ValueError("need at least one shard")
        self.protocol = WStepProtocol(self.n_machines, epochs, scheme)
        self.batch_size = int(batch_size)
        self.shuffle_within = bool(shuffle_within)
        self.seed = int(seed)
        self.ctx = mp.get_context(ctx_method)

    def run(self, mus, *, on_iteration=None) -> list[IterationResult]:
        """Execute one MAC iteration per mu value; returns per-iteration
        metrics. The coordinator's adapter model is updated in place after
        every iteration (from worker 0's assembled copy); ``on_iteration``
        is then called with the fresh :class:`IterationResult`, so callers
        can evaluate the model as it stood at that iteration."""
        mus = [float(m) for m in mus]
        P = self.n_machines
        specs = self.adapter.submodel_specs()
        homes = _home_assignment(len(specs), P)
        plan = RoutePlan.fixed(RingTopology.identity(P), self.protocol)
        expected = expected_receives(plan, homes)

        ring_qs = [self.ctx.Queue() for _ in range(P)]
        cmd_qs = [self.ctx.Queue() for _ in range(P)]
        res_q = self.ctx.Queue()
        procs = []
        for rank in range(P):
            proc = self.ctx.Process(
                target=_worker_main,
                args=(
                    rank,
                    P,
                    self.adapter,
                    self.shards[rank],
                    homes,
                    self.protocol,
                    expected[rank],
                    self.batch_size,
                    self.shuffle_within,
                    self.seed + rank,
                    ring_qs[rank],
                    ring_qs[(rank + 1) % P],
                    cmd_qs[rank],
                    res_q,
                ),
                daemon=True,
            )
            proc.start()
            procs.append(proc)

        results = []
        try:
            for i, mu in enumerate(mus):
                t0 = time.perf_counter()
                for q in cmd_qs:
                    q.put(("iter", mu))
                payloads = {}
                for _ in range(P):
                    rank, payload = res_q.get()
                    payloads[rank] = payload
                wall = time.perf_counter() - t0
                for sid, theta in payloads[0]["model"]:
                    self.adapter.set_params(
                        next(s for s in specs if s.sid == sid), theta
                    )
                result = IterationResult(
                    mu=mu,
                    e_q=sum(p["e_q"] for p in payloads.values()),
                    e_ba=sum(p["e_ba"] for p in payloads.values()),
                    z_changes=sum(p["z_changes"] for p in payloads.values()),
                    violations=sum(p["violations"] for p in payloads.values()),
                    w_time=max(p["w_time"] for p in payloads.values()),
                    z_time=max(p["z_time"] for p in payloads.values()),
                    wall_time=wall,
                )
                results.append(result)
                if on_iteration is not None:
                    on_iteration(result)
        finally:
            for q in cmd_qs:
                q.put(("stop",))
            for proc in procs:
                proc.join(timeout=30)
                if proc.is_alive():
                    proc.terminate()
        return results
