"""Data partitioning and load balancing across machines.

Section 4.3: the work in both steps is proportional to the number of data
points, so load balancing reduces to giving machine p a shard of size
proportional to its processing power ``alpha_p``:
``n_p = N * alpha_p / sum(alpha)`` — "done once and for all at loading
time". Shards are disjoint and cover the dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import check_random_state

__all__ = ["partition_indices", "Shard", "TimingShard", "make_shards"]


def partition_indices(
    n: int,
    n_machines: int,
    *,
    alphas=None,
    shuffle: bool = True,
    rng=None,
) -> list[np.ndarray]:
    """Split ``range(n)`` into ``n_machines`` disjoint covering index arrays.

    Parameters
    ----------
    alphas : array-like of float, optional
        Relative machine speeds; shard sizes are proportional (largest-
        remainder rounding). Defaults to equal shares.
    shuffle : bool
        Randomise the point-to-machine assignment (recommended: ParMAC
        relies on shards being i.i.d.-ish for SGD, section 4.2).
    """
    if n_machines < 1:
        raise ValueError(f"n_machines must be >= 1, got {n_machines}")
    if n < n_machines:
        raise ValueError(f"cannot split {n} points over {n_machines} machines")
    if alphas is None:
        alphas = np.ones(n_machines, dtype=np.float64)
    else:
        alphas = np.asarray(list(alphas), dtype=np.float64)
        if alphas.shape != (n_machines,):
            raise ValueError(f"alphas must have length {n_machines}, got {alphas.shape}")
        if (alphas <= 0).any():
            raise ValueError("all alphas must be > 0")

    # Largest-remainder apportionment with a 1-point floor per machine.
    quotas = n * alphas / alphas.sum()
    sizes = np.maximum(np.floor(quotas).astype(np.int64), 1)
    while sizes.sum() > n:
        # Shrink the most over-allocated machine that is above the floor.
        over = np.where(sizes > 1, sizes - quotas, -np.inf)
        sizes[int(np.argmax(over))] -= 1
    remainders = quotas - sizes
    while sizes.sum() < n:
        i = int(np.argmax(remainders))
        sizes[i] += 1
        remainders[i] -= 1.0

    order = np.arange(n)
    if shuffle:
        rng = check_random_state(rng)
        rng.shuffle(order)
    bounds = np.concatenate([[0], np.cumsum(sizes)])
    return [np.sort(order[bounds[p] : bounds[p + 1]]) for p in range(n_machines)]


@dataclass
class Shard:
    """One machine's private data: inputs, encoder features, codes.

    ``F`` is the feature matrix the encoder trains on — identical to ``X``
    for a linear encoder, precomputed kernel values for an RBF encoder (the
    paper stores those quantised rather than recomputing per visit).
    ``indices`` are the global row numbers, kept so that Z can be gathered
    back for evaluation/tests.
    """

    X: np.ndarray
    F: np.ndarray
    Z: np.ndarray
    indices: np.ndarray

    def __post_init__(self):
        n = len(self.X)
        if not (len(self.F) == len(self.Z) == len(self.indices) == n):
            raise ValueError(
                f"inconsistent shard lengths: X={len(self.X)}, F={len(self.F)}, "
                f"Z={len(self.Z)}, indices={len(self.indices)}"
            )

    @property
    def n(self) -> int:
        return len(self.X)

    def append(self, X_new: np.ndarray, F_new: np.ndarray, Z_new: np.ndarray, idx_new: np.ndarray) -> None:
        """Streaming form 1: add data within the machine (section 4.3)."""
        self.X = np.vstack([self.X, X_new])
        self.F = np.vstack([self.F, F_new])
        self.Z = np.vstack([self.Z, Z_new])
        self.indices = np.concatenate([self.indices, idx_new])

    def drop(self, local_idx) -> None:
        """Streaming form 1: discard points by local index (section 4.3)."""
        keep = np.ones(self.n, dtype=bool)
        keep[np.asarray(local_idx, dtype=np.int64)] = False
        self.X = self.X[keep]
        self.F = self.F[keep]
        self.Z = self.Z[keep]
        self.indices = self.indices[keep]


@dataclass
class TimingShard:
    """A shard with only a size, for timing-only protocol simulations.

    The discrete-event speedup sweeps (fig. 10's SIFT-1B column has
    N = 10^8) never touch the data — the virtual clock depends only on
    shard sizes — so materialising arrays would be pure waste.
    """

    n_points: int

    def __post_init__(self):
        if self.n_points < 0:
            raise ValueError(f"n_points must be >= 0, got {self.n_points}")

    @property
    def n(self) -> int:
        return self.n_points


def make_shards(
    X: np.ndarray, F: np.ndarray, Z: np.ndarray, parts: list[np.ndarray]
) -> list[Shard]:
    """Materialise shards from global arrays and a partition."""
    flat = np.concatenate(parts) if parts else np.array([], dtype=np.int64)
    if len(np.unique(flat)) != len(flat) or len(flat) != len(X):
        raise ValueError("parts must be disjoint and cover all rows of X")
    return [
        Shard(X=X[idx].copy(), F=F[idx].copy(), Z=Z[idx].copy(), indices=idx.copy())
        for idx in parts
    ]
