"""ParMAC: the distributed execution model for MAC (paper section 4).

Data and auxiliary coordinates are sharded across P machines and never
move; submodels circulate over a unidirectional ring, implicitly running
SGD across the shards (W step), while the Z step is embarrassingly
parallel with zero communication. This package provides:

* the ring topology and per-epoch routing plans (shuffling, section 4.3);
* the submodel-message protocol with visit counters (section 4.1), the
  two-round W-step variant (section 4.2), and a visit-list variant that
  supports fault tolerance (section 4.3);
* four engines executing the identical protocol: a deterministic
  synchronous tick engine, an asynchronous discrete-event engine with a
  virtual clock (used for speedup measurements), a real
  ``multiprocessing`` ring backend, and a TCP backend whose submodels
  travel real sockets as length-prefixed framed batches (the closest
  single-host stand-in for the paper's MPI deployment);
* partitioning/load balancing, streaming, fault injection/recovery, and an
  exact-gradient allreduce W step (section 6 ablation).
"""

from repro.distributed.interfaces import ParMACAdapter, SubmodelSpec
from repro.distributed.messages import SubmodelMessage
from repro.distributed.topology import RingTopology
from repro.distributed.protocol import RoutePlan, WStepProtocol, expected_receives
from repro.distributed.partition import Shard, make_shards, partition_indices
from repro.distributed.chaos import ChaosConfig, PartitionWindow
from repro.distributed.costmodel import ChaosTimeline, CostModel
from repro.distributed.cluster import SimulatedCluster, WStepStats, ZStepStats
from repro.distributed.backends import (
    AsyncSimBackend,
    Backend,
    IterationStats,
    MultiprocessBackend,
    SyncSimBackend,
    TCPBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.distributed.framing import ProtocolError
from repro.distributed.mp_backend import MultiprocessRing
from repro.distributed.allreduce import allreduce_sum, exact_decoder_fit, exact_svm_steps

__all__ = [
    "ParMACAdapter",
    "SubmodelSpec",
    "SubmodelMessage",
    "RingTopology",
    "RoutePlan",
    "WStepProtocol",
    "expected_receives",
    "Shard",
    "make_shards",
    "partition_indices",
    "CostModel",
    "ChaosConfig",
    "PartitionWindow",
    "ChaosTimeline",
    "SimulatedCluster",
    "WStepStats",
    "ZStepStats",
    "Backend",
    "IterationStats",
    "get_backend",
    "register_backend",
    "available_backends",
    "SyncSimBackend",
    "AsyncSimBackend",
    "MultiprocessBackend",
    "TCPBackend",
    "ProtocolError",
    "MultiprocessRing",
    "allreduce_sum",
    "exact_decoder_fit",
    "exact_svm_steps",
]
