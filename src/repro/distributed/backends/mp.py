"""Real multiprocessing backend — the MPI stand-in, pool edition.

Each worker process owns one shard ("the data cannot leave its home
machine") and executes the counter protocol of paper section 4.1 /
fig. 6 exactly; termination inside a W step is deterministic because
every worker knows in advance how many ring messages it will receive
(:func:`~repro.distributed.protocol.expected_receives`).

Beyond the original one-shot ring this backend adds:

* **a persistent worker pool** — workers are spawned once and survive
  across ``fit()`` calls; each ``setup`` re-ships the adapter and shards
  to the standing pool instead of forking P fresh processes per fit;
* **shared-memory shard shipping** — shard arrays are placed in
  ``multiprocessing.shared_memory`` segments and mapped zero-copy by the
  workers, instead of pickling a private copy of the data through each
  process boundary;
* **cross-machine shuffling** — ``shuffle_ring`` builds a freshly
  shuffled per-epoch :class:`~repro.distributed.protocol.RoutePlan`
  every iteration (section 4.3), routed per-message via the full queue
  mesh, where the old backend silently ignored the option;
* **overlapped ring sends** — under ``overlap_send=True`` each worker
  hands forwarded submodels to a double-buffered background sender
  (:class:`_AsyncSender`) and returns to training the next convoy while
  the previous one is still on the wire; the wire cast and byte
  accounting stay on the training thread, so overlap changes timing,
  never bits;
* **streaming ingestion** — ``ingest`` queues arriving rows with the
  shared :class:`~repro.distributed.dataplane.DataPlane`; at the next
  iteration boundary each drained batch is coded by the current nested
  model and shipped to its owning worker as an incremental
  shared-memory segment, which the worker appends to its shard;
* **fault handling by policy** — the coordinator polls worker liveness
  while waiting for results. Under ``fail_fast`` (default) a worker
  that dies mid-iteration tears the whole pool down with a raised error
  instead of wedging every peer on a receive that never comes. Under
  ``drop_shard`` (paper section 4.3) the dead worker's shard is retired
  from the data plane, survivors are woken with generation-tagged abort
  sentinels, the ring/homes/protocol are re-planned over the survivor
  set, and the iteration re-runs — the fit continues having lost only
  the dead machine's data.

The ring *transport* — how a forwarded submodel physically reaches the
successor machine — is pluggable: this module's workers pass messages
over ``multiprocessing`` queues, while the TCP backend
(:mod:`repro.distributed.backends.tcp`) subclasses the coordinator and
swaps in framed socket connections; everything else (counter protocol,
shared-memory shards, pool lifecycle, recovery choreography) is shared.

Workers report per-shard metrics after the Z step; the lowest-ranked
live worker additionally reports the assembled final parameters, which
the coordinator writes back into its adapter's model (the ParMAC
invariant: after the W step every machine holds the full final model).
"""

from __future__ import annotations

import copy
import dataclasses
import multiprocessing as mp
import os
import pickle
import queue as queue_mod
import signal
import struct
import threading
import time
import traceback
from multiprocessing import connection as mp_connection
from multiprocessing import shared_memory

import numpy as np

from repro.distributed.backends.base import (
    BaseBackend,
    FaultPolicy,
    IterationStats,
    register_backend,
)
from repro.distributed.batching import (
    BatchAccumulator,
    GroupTable,
    supports_unit_batching,
    train_message_batch,
)
from repro.distributed.chaos import ChaosShim
from repro.distributed.dataplane import ClusterState, DataPlane
from repro.distributed.health import HealthMonitor, HeartbeatSender, WorkerPulse
from repro.distributed.interfaces import get_params_many, set_params_many
from repro.distributed.messages import ShardRetired, SubmodelMessage
from repro.distributed.protocol import (
    RoutePlan,
    WStepProtocol,
    expected_receives,
    home_assignment,
    replan,
)
from repro.distributed.topology import RingTopology
from repro.optim.sgd import SGDState
from repro.utils.rng import check_random_state

__all__ = ["MultiprocessBackend", "IterationAborted", "home_assignment"]

#: How often the coordinator checks worker liveness while blocked on
#: results; bounds how long a dead worker can go unnoticed.
_LIVENESS_POLL_S = 0.5


class IterationAborted(Exception):
    """The in-flight iteration was cancelled for a survivor re-plan."""


class _WorkersLost(Exception):
    """Workers died mid-iteration under ``drop_shard``; re-plan needed.

    ``payloads`` carries the survivors' results when the attempt in fact
    ran to completion everywhere except on the dead workers (nobody
    aborted — e.g. a worker died after its last ring send). Survivor
    models and Z codes then already hold the completed iteration, so the
    caller should keep these results rather than re-running, which would
    silently train the same mu twice. ``None`` when any survivor aborted
    (the attempt is partial and must be retried).
    """

    def __init__(self, dead: list[int], payloads: dict | None = None):
        super().__init__(f"worker(s) {dead} died mid-iteration")
        self.dead = dead
        self.payloads = payloads


def _unlink_segments(segments) -> None:
    """Close and unlink shared-memory segments, tolerating absent ones."""
    for seg in segments:
        if seg is None:
            continue
        try:
            seg.close()
            seg.unlink()
        except FileNotFoundError:
            pass


def _maybe_untrack(seg, desc) -> None:
    """Unregister an attached segment from a spawned worker's tracker.

    Attaching registers the segment with the resource tracker (it cannot
    tell an attach from a create). Under fork the tracker process is
    shared with the coordinator, whose unlink() already unregisters the
    (deduplicated) entry — nothing to do. A spawned worker has its *own*
    tracker, which would warn about a "leaked" segment it does not own
    at exit, so untrack there.
    """
    if desc.get("untrack"):
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(seg._name, "shared_memory")
        except Exception:
            pass


# -------------------------------------------------------------- responses
class _ResponseChannel:
    """One worker's response stream, read without ever blocking.

    Replaces the old *shared* result queue, which had a wedge the ring
    queues were already hardened against but the result path was not: a
    worker SIGKILLed while its feeder held the queue's cross-process
    write lock left that semaphore held forever, stranding every
    survivor's responses — under ``drop_shard`` the recovery could then
    only end in a worker-timeout teardown. With one pipe per worker and
    a single writer per pipe there is no shared lock to leak.

    The coordinator side parses :class:`multiprocessing.Connection`'s
    length-prefixed wire format itself from *nonblocking* reads, so a
    worker killed mid-message can never block the coordinator either:
    the partial frame just sits in the buffer and the death surfaces
    through the liveness poll. Workers keep using plain
    ``Connection.send``.
    """

    _HEADER = struct.Struct("!i")
    _LONG = struct.Struct("!Q")

    def __init__(self, reader):
        self._conn = reader
        os.set_blocking(reader.fileno(), False)
        self._buf = bytearray()

    def fileno(self) -> int:
        """File descriptor, so ``multiprocessing.connection.wait`` can
        multiplex channels directly."""
        return self._conn.fileno()

    def drain(self) -> list:
        """Every complete message currently in the pipe (possibly none)."""
        try:
            while True:
                chunk = os.read(self._conn.fileno(), 1 << 16)
                if not chunk:
                    break  # EOF: writer gone; any partial stays unparsed
                self._buf.extend(chunk)
        except BlockingIOError:
            pass
        except OSError:
            pass
        out = []
        while True:
            if len(self._buf) < self._HEADER.size:
                break
            (n,) = self._HEADER.unpack_from(self._buf)
            if n == -1:  # extended header for >= 2**31 - 1 byte payloads
                header = self._HEADER.size + self._LONG.size
                if len(self._buf) < header:
                    break
                (n,) = self._LONG.unpack_from(self._buf, self._HEADER.size)
            else:
                header = self._HEADER.size
            if len(self._buf) < header + n:
                break
            payload = bytes(self._buf[header : header + n])
            del self._buf[: header + n]
            out.append(pickle.loads(payload))
        return out

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass


# ------------------------------------------------------------------ shards
def _pack_shards(shards) -> tuple[list, list]:
    """Copy each shard's arrays into one shared-memory segment.

    Returns ``(segments, descriptors)``; descriptor i tells worker i how
    to rebuild its shard as zero-copy views over the segment. Non-array
    dataclass fields travel by value; non-dataclass shards fall back to
    pickling whole. If packing fails partway, every segment already
    created is unlinked before the error propagates — a half-packed fit
    must not leave residue in /dev/shm.
    """
    segments, descs = [], []
    try:
        for shard in shards:
            if not dataclasses.is_dataclass(shard):
                segments.append(None)
                descs.append({"pickle": shard})
                continue
            arrays: list[tuple[str, int | None, np.ndarray]] = []
            values: dict = {}
            for f in dataclasses.fields(shard):
                v = getattr(shard, f.name)
                if isinstance(v, np.ndarray):
                    arrays.append((f.name, None, np.ascontiguousarray(v)))
                elif (
                    isinstance(v, (list, tuple))
                    and len(v)
                    and all(isinstance(a, np.ndarray) for a in v)
                ):
                    for i, a in enumerate(v):
                        arrays.append((f.name, i, np.ascontiguousarray(a)))
                else:
                    values[f.name] = v
            total = sum(a.nbytes for _, _, a in arrays)
            seg = shared_memory.SharedMemory(create=True, size=max(total, 1))
            segments.append(seg)
            fields = []
            offset = 0
            for name, idx, a in arrays:
                view = np.ndarray(a.shape, dtype=a.dtype, buffer=seg.buf, offset=offset)
                view[...] = a
                fields.append((name, idx, a.dtype.str, a.shape, offset))
                offset += a.nbytes
            descs.append(
                {"name": seg.name, "cls": type(shard), "fields": fields, "values": values}
            )
    except Exception:
        _unlink_segments(segments)
        raise
    return segments, descs


def _attach_shard(desc):
    """Rebuild a shard in a worker from its shared-memory descriptor."""
    if "pickle" in desc:
        return None, desc["pickle"]
    seg = shared_memory.SharedMemory(name=desc["name"])
    _maybe_untrack(seg, desc)
    kwargs = dict(desc["values"])
    lists: dict[str, list] = {}
    for name, idx, dtype, shape, offset in desc["fields"]:
        arr = np.ndarray(shape, dtype=dtype, buffer=seg.buf, offset=offset)
        if idx is None:
            kwargs[name] = arr
        else:
            lists.setdefault(name, []).append((idx, arr))
    for name, items in lists.items():
        kwargs[name] = [a for _, a in sorted(items, key=lambda t: t[0])]
    return seg, desc["cls"](**kwargs)


def _pack_array_block(arrays) -> tuple:
    """Pack a flat list of arrays into one shared-memory segment.

    The incremental-ingest sibling of :func:`_pack_shards`: returns
    ``(segment, descriptor)`` where the descriptor rebuilds the arrays
    as zero-copy views in the receiving worker.
    """
    arrays = [np.ascontiguousarray(a) for a in arrays]
    total = sum(a.nbytes for a in arrays)
    seg = shared_memory.SharedMemory(create=True, size=max(total, 1))
    try:
        fields = []
        offset = 0
        for a in arrays:
            view = np.ndarray(a.shape, dtype=a.dtype, buffer=seg.buf, offset=offset)
            view[...] = a
            fields.append((a.dtype.str, a.shape, offset))
            offset += a.nbytes
    except Exception:
        # The segment exists in /dev/shm the moment create=True returns;
        # a failed copy-in must unlink it or it outlives the process.
        seg.close()
        seg.unlink()
        raise
    return seg, {"name": seg.name, "fields": fields}


def _attach_array_block(desc):
    """Rebuild the arrays of one :func:`_pack_array_block` descriptor."""
    seg = shared_memory.SharedMemory(name=desc["name"])
    _maybe_untrack(seg, desc)
    arrays = [
        np.ndarray(shape, dtype=dtype, buffer=seg.buf, offset=offset)
        for dtype, shape, offset in desc["fields"]
    ]
    return seg, arrays


# --------------------------------------------------------------- transport
class _AsyncSender:
    """Double-buffered background sender for overlapped ring hops.

    One daemon thread drains a bounded queue of transmit items, so the
    worker's main thread hands a just-trained submodel batch off and
    returns to training the next convoy while the previous one is still
    on the wire. A *single* sender thread per transport preserves the
    per-destination FIFO order the counter protocol relies on; the queue
    depth of two is the double buffer — one send in flight, one staged —
    which bounds how far the pipeline can run ahead of the NIC.

    Failure handling: a transmit error is recorded, not raised in the
    thread — the loop keeps consuming (and skipping) items so that
    ``Queue.join`` always terminates and a producer blocked on a full
    queue cannot deadlock; the original exception re-raises on the main
    thread at the next ``submit``/``drain``/``check``, keeping its type
    (the TCP worker's fault handling keys on ``ProtocolError``).
    """

    _STOP = object()

    def __init__(self, transmit, *, depth: int = 2):
        self._transmit = transmit
        self._q: queue_mod.Queue = queue_mod.Queue(maxsize=depth)
        self._exc: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="ring-sender", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while True:
            item = self._q.get()
            try:
                if item is self._STOP:
                    return
                if self._exc is None:
                    self._transmit(*item)
            except BaseException as exc:  # noqa: BLE001 - surfaced via check()
                self._exc = exc
            finally:
                self._q.task_done()

    def check(self) -> None:
        """Re-raise a background transmit failure on the caller's thread."""
        if self._exc is not None:
            raise self._exc

    def submit(self, *item) -> None:
        """Queue one transmit, blocking while both buffers are full.

        The wait is chopped into short timed puts so a send failure
        surfaces here instead of deadlocking the producer against a
        queue that will never drain normally.
        """
        while True:
            self.check()
            try:
                self._q.put(item, timeout=0.1)
                return
            except queue_mod.Full:
                continue

    def drain(self) -> None:
        """Block until every queued transmit has left, then re-check."""
        self.check()
        self._q.join()
        self.check()

    def close(self) -> None:
        """Stop the thread after in-flight items (no new work accepted)."""
        try:
            self._q.put(self._STOP, timeout=1.0)
        except queue_mod.Full:
            pass  # wedged transmit; the daemon thread is abandoned
        self._thread.join(timeout=5.0)


class _QueueRingTransport:
    """Ring transport over the coordinator-built full queue mesh.

    The transport interface the worker iteration runs against:
    ``send(dest, msg)`` may buffer, ``flush()`` forces buffered messages
    out, ``recv()`` returns the next incoming message (flushing first,
    so a worker never blocks while holding undelivered sends), and
    ``wire_stats()`` reports what the iteration cost on the wire. Queues
    deliver messages one at a time with no syscall to amortise, so this
    implementation sends eagerly and ``flush`` is a no-op.

    Every queue item is tagged with the iteration *generation*: after a
    ``drop_shard`` recovery the retried iteration runs under a new
    generation, so stale traffic from the aborted attempt — including
    unconsumed abort sentinels — is silently discarded instead of
    corrupting the ring. A ``(gen, None)`` item is the coordinator's
    abort sentinel: it wakes a worker blocked on a receive whose sender
    died and raises :class:`IterationAborted`.

    The sentinel alone is not a reliable wake-up: ``mp.Queue`` writes
    funnel through a per-queue feeder lock, and a worker SIGKILLed
    mid-write leaves that lock held forever — the coordinator's sentinel
    for that queue would never be delivered. ``abort_ev`` is the
    lock-free fallback: a per-worker ``Event`` the receive loop polls
    between short blocking gets, set by the coordinator alongside the
    sentinel.
    """

    def __init__(self, rank: int, ring_qs, gen: int = 0, abort_ev=None, *,
                 wire_dtype=None, compute_dtype=None, overlap=False,
                 chaos_shim=None):
        self.rank = rank
        self._ring_qs = ring_qs
        self.gen = gen
        self._abort_ev = abort_ev
        # Chaos shim: the per-link verdict is drawn at send() time (one
        # draw per message, matching the simulated engines' per-hop
        # draws) and served as a sleep at transmit time — on the sender
        # thread under overlap_send, so overlap hides injected latency
        # exactly as it hides real latency.
        self._chaos = chaos_shim
        # Reduced-precision wire (paper section 9): parameters are cast
        # down at pack time — the pickled payload genuinely shrinks — and
        # cast back to the compute dtype on receive. The worker already
        # round-tripped theta through the wire dtype after training, so
        # both casts are value-exact.
        self._wire_dtype = wire_dtype
        self._compute_dtype = compute_dtype
        # Overlapped sends: the queue put (which pickles the payload)
        # moves to a background thread. The wire cast and byte counting
        # stay on the main thread, so overlap changes *when* a message
        # leaves, never its bits.
        self._sender = _AsyncSender(self._transmit) if overlap else None
        self.msgs_sent = 0
        self.bytes_sent = 0

    def _transmit(self, dest: int, item, delay: float = 0.0) -> None:
        if delay > 0.0:
            time.sleep(delay)
        self._ring_qs[dest].put(item)

    def send(self, dest: int, msg: SubmodelMessage) -> None:
        if self._wire_dtype is not None and dest != self.rank:
            msg.theta = np.asarray(msg.theta, dtype=self._wire_dtype)
        self.msgs_sent += 1
        self.bytes_sent += msg.nbytes
        item = (self.gen, msg)
        delay = (
            self._chaos.send_delay(dest, msg.nbytes)
            if self._chaos is not None and dest != self.rank
            else 0.0
        )
        if self._sender is not None and dest != self.rank:
            self._sender.submit(dest, item, delay)
        else:
            self._transmit(dest, item, delay)

    def flush(self) -> None:
        pass

    def drain(self) -> None:
        """Wait for background sends to finish (no-op without overlap)."""
        if self._sender is not None:
            self._sender.drain()

    def close(self) -> None:
        """Stop the background sender, if any, without a full drain."""
        if self._sender is not None:
            self._sender.close()

    def recv(self) -> SubmodelMessage:
        while True:
            try:
                gen, msg = self._ring_qs[self.rank].get(timeout=_LIVENESS_POLL_S)
            except queue_mod.Empty:
                if self._sender is not None:
                    self._sender.check()
                if self._abort_ev is not None and self._abort_ev.is_set():
                    raise IterationAborted() from None
                continue
            if gen != self.gen:
                continue  # stale traffic from an aborted iteration
            if msg is None:
                raise IterationAborted()
            if self._wire_dtype is not None:
                msg.theta = np.asarray(msg.theta, dtype=self._compute_dtype)
            return msg

    def wire_stats(self) -> dict:
        stats = {"hops": self.msgs_sent, "bytes_sent": self.bytes_sent}
        if self._chaos is not None:
            stats.update(self._chaos.counters)
        return stats


# ------------------------------------------------------------------ worker
def _build_worker_state(rank, adapter, desc, protocol, homes, batch_size,
                        shuffle_within, seed, rng_state=None,
                        message_dtype=None, batch_units=True,
                        overlap_send=False, cpuset=None, chaos=None) -> dict:
    """Per-fit worker state, shared by every wall-clock worker loop.

    One construction site keeps the queue and TCP workers bit-identical:
    a field added here (RNG stream, batching knob, ...) reaches both.
    ``rng_state`` restores a checkpointed SGD stream in place of the
    fresh seed-derived one. ``cpuset`` (from the coordinator's
    ``pin_workers`` partition) pins this process; the state records the
    affinity actually in effect afterwards, which the setup ack reports.
    """
    seg, shard = _attach_shard(desc)
    specs = adapter.submodel_specs()
    rng = np.random.default_rng(seed)
    if rng_state is not None:
        rng.bit_generator.state = rng_state
    applied_cpuset = None
    if cpuset is not None and hasattr(os, "sched_setaffinity"):
        os.sched_setaffinity(0, cpuset)
        applied_cpuset = sorted(os.sched_getaffinity(0))
    return {
        "adapter": adapter,
        "shard": shard,
        "seg": seg,
        "protocol": protocol,
        "specs": specs,
        "spec_by_sid": {s.sid: s for s in specs},
        "homes": dict(homes),
        "my_sids": [sid for sid, h in homes.items() if h == rank],
        "batch_size": batch_size,
        "shuffle_within": shuffle_within,
        "message_dtype": message_dtype,
        "batch_units": batch_units,
        "overlap_send": bool(overlap_send),
        "chaos": chaos,
        "cpuset": applied_cpuset,
        "compute_dtype": np.dtype(getattr(adapter, "compute_dtype", np.float64)),
        "rng": rng,
    }


def _checkpoint_worker_state(state) -> dict:
    """This worker's resumable state: its (private) shard and SGD stream.

    The shard arrays pickle by value through the result queue, so the
    coordinator's snapshot is decoupled from further training even when
    the arrays are still zero-copy views over a shared-memory segment.
    """
    return {
        "shard": state["shard"],
        "rng_state": state["rng"].bit_generator.state,
    }


def _apply_replan(rank, state, protocol, homes) -> None:
    """Adopt a survivor re-plan: new counter protocol, new home set."""
    state["protocol"] = protocol
    state["homes"] = dict(homes)
    state["my_sids"] = [sid for sid, h in homes.items() if h == rank]


def _report_model(state) -> list:
    """This worker's full model as ``(sid, theta)`` pairs.

    After a completed iteration every worker's adapter holds the
    identical final submodels, so any survivor can stand in for a model
    holder that died after its last ring send.
    """
    specs = state["specs"]
    thetas = get_params_many(state["adapter"], specs)
    return [(s.sid, np.array(t, copy=True)) for s, t in zip(specs, thetas)]


def _apply_worker_ingest(state, X, F, Z, indices) -> int:
    """Append one shipped ingest batch to this worker's shard.

    ``append`` concatenates into fresh private arrays, so the batch may
    be handed in as views over a shared-memory segment the coordinator
    unlinks right after the ack.
    """
    state["shard"].append(X, F, Z, indices)
    return len(X)


def _worker_units_batched(state) -> bool:
    """Whether this worker runs the batched co-resident-unit W step."""
    return (
        state.get("batch_units", True)
        and not state["shuffle_within"]
        and supports_unit_batching(state["adapter"])
    )


def _run_worker_iteration(rank, state, mu, plan, n_expected, transport,
                          model_rank=0, chaos_shim=None, crash=None):
    """One W step + Z step on this worker's shard; returns the payload.

    ``crash`` is a scheduled chaos kill point ("w"/"z"/None), resolved by
    the coordinator for this iteration's *first* attempt only: the worker
    SIGKILLs itself at the start of that phase, exactly like a real OOM
    kill, and the replacement spawned under ``respawn`` runs crash-free.
    """
    if crash == "w":
        os.kill(os.getpid(), signal.SIGKILL)
    pulse: WorkerPulse | None = state.get("pulse")
    if pulse is not None:
        pulse.enter("w")
    adapter = state["adapter"]
    shard = state["shard"]
    protocol: WStepProtocol = state["protocol"]
    specs = state["specs"]
    final: dict[int, np.ndarray] = {}
    # Batched co-resident-unit W step: arriving messages accumulate per
    # (home block, batch_key, counter) convoy group and train as one
    # stacked pass when the group completes — composition is
    # protocol-determined, so it is identical on every engine.
    acc = (
        BatchAccumulator(GroupTable(adapter, state["homes"]))
        if _worker_units_batched(state)
        else None
    )
    # Reduced-precision wire: like the simulated engines, every visit
    # round-trips the updated parameters through the wire dtype when
    # anything travels at all (P > 1), so stored finals and travelling
    # copies stay bit-identical across backends.
    wire_dtype = state.get("message_dtype")
    if protocol.n_machines <= 1:
        wire_dtype = None
    compute_dtype = state.get("compute_dtype", np.float64)

    # Straggler injection: dilate each numeric call by (factor-1)x its
    # measured duration. Only compute is slowed — receive waits and wire
    # time are untouched — matching ChaosTimeline, which scales
    # w_work/z_work and nothing else.
    straggle = None
    if chaos_shim is not None and chaos_shim.cfg.straggler_factor(rank) != 1.0:
        def straggle(t0: float) -> None:
            extra = chaos_shim.charge_straggler(time.perf_counter() - t0)
            if extra > 0.0:
                time.sleep(extra)

    def finish_visit(msg: SubmodelMessage) -> None:
        """Post-numerics tail of one visit: wire cast, final capture,
        forwarding."""
        if wire_dtype is not None:
            msg.theta = msg.theta.astype(wire_dtype).astype(compute_dtype)
        if protocol.is_final(msg.counter):
            final[msg.spec.sid] = np.array(msg.theta, copy=True)
        if protocol.should_forward(msg.counter):
            transport.send(plan.successor(rank, msg.counter), msg)

    def train_inline(msg: SubmodelMessage, passes: int) -> None:
        t0 = time.perf_counter() if straggle is not None else 0.0
        for _ in range(passes):
            msg.theta = adapter.w_update(
                msg.spec,
                msg.theta,
                msg.sgd_state,
                shard,
                mu,
                batch_size=state["batch_size"],
                shuffle=state["shuffle_within"],
                rng=state["rng"],
            )
        if straggle is not None:
            straggle(t0)

    def handle(msg: SubmodelMessage) -> None:
        if pulse is not None:
            pulse.tick()  # one heartbeat-visible unit of progress per visit
        msg.counter += 1
        passes = protocol.train_passes(msg.counter)
        if passes and acc is not None and acc.table.batchable(msg.spec.sid):
            group = acc.add(msg)
            if group is None:
                return  # convoy incomplete; numerics wait for the rest
            t0 = time.perf_counter() if straggle is not None else 0.0
            train_message_batch(
                adapter, group, shard, mu, passes=passes,
                batch_size=state["batch_size"], rng=state["rng"],
            )
            if straggle is not None:
                straggle(t0)
            for member in group:
                finish_visit(member)
            return
        train_inline(msg, passes)
        finish_visit(msg)

    t_w0 = time.perf_counter()
    my_specs = [state["spec_by_sid"][sid] for sid in state["my_sids"]]
    for spec, theta in zip(my_specs, get_params_many(adapter, my_specs)):
        handle(
            SubmodelMessage(
                spec=spec,
                theta=np.array(theta, copy=True),
                sgd_state=SGDState(),
            )
        )
    transport.flush()
    for _ in range(n_expected):
        handle(transport.recv())
    transport.flush()
    if acc is not None and acc.n_pending:
        raise RuntimeError(
            f"{acc.n_pending} submodel visit(s) never completed their batch "
            "group — convoy tracking bug"
        )
    # W-step invariant: this worker now holds every final submodel.
    set_params_many(adapter, [(spec, final[spec.sid]) for spec in specs])
    t_w = time.perf_counter() - t_w0

    if crash == "z":
        os.kill(os.getpid(), signal.SIGKILL)
    if pulse is not None:
        pulse.enter("z")
    t_z0 = time.perf_counter()
    z_changes = adapter.z_update(shard, mu)
    if straggle is not None:
        straggle(t_z0)
    t_z = time.perf_counter() - t_z0
    # Under overlap_send the final-lap forwards may still be in flight —
    # deliberately: peers sit in their receive loops while this worker's
    # Z step runs, so those sends overlap the Z compute too. They must be
    # delivered before the iteration is reported complete, though: the
    # next iteration opens a fresh transport whose frames must not
    # interleave with a still-draining sender.
    transport.drain()

    return {
        "e_q": adapter.e_q_shard(shard, mu),
        "e_ba": adapter.e_ba_shard(shard),
        "violations": adapter.violations_shard(shard),
        "z_changes": z_changes,
        "w_time": t_w,
        "z_time": t_z,
        "wire": transport.wire_stats(),
        "model": [(s.sid, final[s.sid]) for s in specs] if rank == model_rank else None,
    }


def _worker_main(rank, ring_qs, cmd_q, res, abort_ev):
    """Pool worker loop: serve setup/iter commands until told to stop."""
    state = None
    pulse = WorkerPulse()
    beat: HeartbeatSender | None = None
    send_lock = threading.Lock()

    def reply(obj) -> None:
        # The heartbeat thread shares this connection with the command
        # loop; Connection.send is not safe under concurrent writers.
        with send_lock:
            res.send(obj)

    while True:
        cmd = cmd_q.get()
        op = cmd[0]
        if op == "stop":
            if beat is not None:
                beat.stop()
            if state is not None and state["seg"] is not None:
                state["seg"].close()
            break
        try:
            if op == "setup":
                (_, adapter, desc, protocol, homes, batch_size, shuffle_within,
                 seed, rng_state, message_dtype, batch_units, overlap_send,
                 chaos, cpuset, health) = cmd
                if state is not None and state["seg"] is not None:
                    state["seg"].close()
                state = _build_worker_state(
                    rank, adapter, desc, protocol, homes, batch_size,
                    shuffle_within, seed, rng_state, message_dtype, batch_units,
                    overlap_send, cpuset, chaos,
                )
                state["pulse"] = pulse
                if health is not None and beat is None:
                    beat = HeartbeatSender(
                        lambda seq, phase, progress: reply(
                            (rank, "beat", (seq, phase, progress))
                        ),
                        health.interval_s,
                        pulse,
                    )
                # The ack reports the cpuset actually applied (None when
                # pinning is off or unsupported on this platform).
                reply((rank, "ready", state["cpuset"]))
            elif op == "checkpoint":
                reply((rank, "checkpoint", _checkpoint_worker_state(state)))
            elif op == "ingest":
                _, desc = cmd
                seg, arrays = _attach_array_block(desc)
                try:
                    n = _apply_worker_ingest(state, *arrays)
                finally:
                    seg.close()
                reply((rank, "ingested", n))
            elif op == "replan":
                _, protocol, homes, _retired = cmd
                _apply_replan(rank, state, protocol, homes)
                reply((rank, "replanned", None))
            elif op == "model":
                reply((rank, "model", _report_model(state)))
            elif op == "iter":
                _, mu, plan, n_expected, gen, model_rank, crash = cmd
                chaos = state.get("chaos")
                # A fresh shim per iteration realigns the per-link RNG
                # streams with the simulated engines' per-W-step timeline.
                shim = (
                    ChaosShim(chaos, rank, clock=time.monotonic)
                    if chaos is not None and chaos.active()
                    else None
                )
                transport = _QueueRingTransport(
                    rank, ring_qs, gen, abort_ev,
                    wire_dtype=(
                        state["message_dtype"]
                        if state["protocol"].n_machines > 1
                        else None
                    ),
                    compute_dtype=state["compute_dtype"],
                    overlap=(
                        state.get("overlap_send", False)
                        and state["protocol"].n_machines > 1
                    ),
                    chaos_shim=shim,
                )
                try:
                    payload = _run_worker_iteration(
                        rank, state, mu, plan, n_expected, transport, model_rank,
                        chaos_shim=shim, crash=crash,
                    )
                except IterationAborted:
                    reply((rank, "aborted", None))
                else:
                    reply((rank, "result", payload))
                finally:
                    pulse.enter("idle")
                    transport.close()
        except Exception:
            reply((rank, "error", traceback.format_exc()))


# ------------------------------------------------------------- coordinator
@register_backend("multiprocess")
class MultiprocessBackend(BaseBackend):
    """ParMAC iterations over a persistent pool of real OS processes.

    Extra parameters beyond :class:`BaseBackend`:

    ctx_method : str
        ``multiprocessing`` start method ("fork" is fastest on Linux).
    worker_timeout : float or None
        Upper bound in seconds on one whole collective gather — the time
        from issuing a command round (setup, iteration) until *all* P
        responses have arrived. Defaults to 300 s: a worker that is
        alive but *wedged* (stuck in a syscall, spinning, deadlocked)
        produces no response and no death signal, and with no deadline
        the gather would hang ``fit()`` forever. Pass ``None`` to wait
        indefinitely. Independently of the deadline, a worker *dying* is
        always detected within :data:`_LIVENESS_POLL_S` seconds, and
        handled according to ``fault_policy``: ``fail_fast`` fails the
        fit and tears down the remaining peers; ``drop_shard`` retires
        the dead shard and continues on the survivors. A timeout is
        reported as a stall (live-but-unresponsive workers), distinct
        from a fault (dead workers).
    join_slots : int
        Spare ring-queue slots pre-provisioned at pool spawn for machines
        that may join mid-fit. Existing workers hold their fork-time copy
        of the ring-queue table, so a joiner can only be reached through
        a slot that already existed when they started; when the spares
        run out the pool is transparently rebuilt (workers'
        shards/RNG streams are collected and re-shipped, so the fit stays
        bit-identical — just a slower join.)
    pin_workers : bool
        Pin each worker process to a contiguous slice of the
        coordinator's CPU affinity set (``os.sched_setaffinity``), so the
        P "machines" of a single-host benchmark stop migrating onto each
        other's cores. Best-effort and opt-in: silently inactive on
        platforms without ``sched_setaffinity``; a mid-fit joiner gets
        its slice from a recomputed partition while standing workers keep
        theirs. The cpusets actually applied (each worker reports its own
        affinity back) appear in ``IterationStats.extra["cpusets"]``.

    The adapter must be picklable; each worker gets its own copy at
    ``setup`` while the shard *data* travels through shared memory.
    ``cost`` is accepted for interface uniformity but ignored — this
    backend reports wall-clock time.
    """

    #: Worker entry point; subclasses substitute their own loop.
    _worker_fn = staticmethod(_worker_main)
    #: Whether the ring runs over coordinator-built queues (the TCP
    #: backend moves the ring to sockets and skips the mesh).
    _needs_ring_queues = True

    def __init__(
        self, *, ctx_method: str = "fork", worker_timeout: float | None = 300.0,
        join_slots: int = 4, pin_workers: bool = False, **kwargs
    ):
        super().__init__(**kwargs)
        self.ctx_method = ctx_method
        self.worker_timeout = worker_timeout
        self.join_slots = int(join_slots)
        self.pin_workers = bool(pin_workers)
        self._worker_cpusets: dict[int, list[int]] = {}
        self._ctx = None
        self._procs: dict[int, object] = {}
        self._ring_qs: list = []
        self._abort_events: dict = {}
        self._cmd_qs: dict = {}
        self._res_chans: dict[int, _ResponseChannel] = {}
        self._segments: list = []
        self._capacity = 0
        self._ranks: list[int] = []
        self._gen = 0
        self._monitor: HealthMonitor | None = None
        self._respawns_done = 0
        self._boundary: dict | None = None

    # ---------------------------------------------------------- lifecycle
    def _mark_untrack(self, descs) -> None:
        for desc in descs:
            if "pickle" not in desc:
                desc["untrack"] = self.ctx_method != "fork"

    def setup(self, adapter, shards) -> None:
        shards = list(shards)
        P = len(shards)
        if P < 1:
            raise ValueError("need at least one shard")
        self.adapter = adapter
        self._bind_dataplane(DataPlane(adapter, shards, own_data=False))
        specs = adapter.submodel_specs()
        self._specs = specs
        self._spec_by_sid = {s.sid: s for s in specs}
        self._topology = RingTopology.identity(P)
        self._protocol, self._homes = replan(
            self._topology.machines, len(specs), self.epochs, self.scheme
        )
        self._route_rng = check_random_state(self.seed)
        # A pool degraded by shard retirements — or grown by joins —
        # cannot serve a fresh fit as-is; rebuild it, like a machine-count
        # change. (A tracked member that silently *died* between fits is
        # deliberately kept: shipping setup to it makes the death surface
        # as an error, not a quiet respawn.)
        if self._procs and sorted(self._procs) != list(range(P)):
            self.close()
        if not self._procs:
            self._spawn(range(P))
        self._ranks = list(range(P))
        self._respawns_done = 0
        self._boundary = None
        self._release_segments()
        # Anything that fails between shard shipping and a successful
        # ready-collection must not leak the just-created /dev/shm
        # segments: tear the fit down (close releases the segments) and
        # re-raise.
        try:
            self._segments, descs = _pack_shards(shards)
            self._mark_untrack(descs)
            self._ship_setup(adapter, dict(enumerate(descs)))
        except Exception:
            self.close(force=True)
            raise

    def _cpusets(self, ranks) -> dict:
        """Contiguous partition of the coordinator's CPU set over ``ranks``.

        Empty when pinning is off or the platform has no
        ``sched_setaffinity``. With more workers than CPUs the tail ranks
        share the full set rather than getting an empty (illegal) mask.
        """
        if not self.pin_workers or not hasattr(os, "sched_setaffinity"):
            return {}
        cpus = sorted(os.sched_getaffinity(0))
        ranks = sorted(ranks)
        n = len(ranks)
        out = {}
        for i, rank in enumerate(ranks):
            chunk = cpus[(i * len(cpus)) // n : ((i + 1) * len(cpus)) // n]
            out[rank] = chunk if chunk else cpus
        return out

    def _ship_setup(self, adapter, descs: dict, rng_states: dict | None = None) -> None:
        """Send per-worker setup commands and wait for every ack.

        ``descs`` maps rank -> shard descriptor (ranks need not be
        contiguous after a restore). Override point for subclasses whose
        workers need extra setup phases (the TCP backend negotiates
        ports and builds the socket mesh here).
        """
        base_seed = 0 if self.seed is None else int(self.seed)
        cpusets = self._cpusets(sorted(descs))
        for rank in sorted(descs):
            self._cmd_qs[rank].put(
                (
                    "setup",
                    adapter,
                    descs[rank],
                    self._protocol,
                    self._homes,
                    self.batch_size,
                    self.shuffle_within,
                    base_seed + rank,
                    None if rng_states is None else rng_states.get(rank),
                    self.message_dtype,
                    self.batch_units,
                    self.overlap_send,
                    self.chaos,
                    cpusets.get(rank),
                    self.health,
                )
            )
        ready = self._collect("ready", ranks=sorted(descs))
        self._worker_cpusets = {
            r: cs for r, cs in ready.items() if cs is not None
        }

    def _spawn(self, ranks, *, capacity: int | None = None) -> None:
        """Start worker processes for ``ranks``, with slot headroom.

        ``capacity`` (default ``max(ranks) + 1``) is the number of
        addressable machine slots; ``join_slots`` spares are provisioned
        beyond it so machines joining mid-fit can be reached by workers
        that inherited the ring-queue table at this spawn.
        """
        ranks = [int(r) for r in ranks]
        if capacity is None:
            capacity = max(ranks) + 1
        # Start the parent's resource tracker *before* forking so workers
        # inherit it; otherwise the first pool's workers lazily spawn
        # private trackers on shared-memory attach, which then warn about
        # "leaked" segments the coordinator already unlinked.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:
            pass
        self._ctx = mp.get_context(self.ctx_method)
        n_slots = capacity + self.join_slots if self._needs_ring_queues else 0
        self._ring_qs = [self._ctx.Queue() for _ in range(n_slots)]
        self._abort_events = (
            {r: self._ctx.Event() for r in ranks} if self._needs_ring_queues else {}
        )
        self._cmd_qs = {r: self._ctx.Queue() for r in ranks}
        self._res_chans = {}
        self._procs = {}
        for rank in ranks:
            self._launch_worker(rank)
        self._capacity = capacity
        # A fresh pool gets a fresh monitor: stale DEAD classifications
        # from a torn-down pool must not outlive it.
        self._monitor = (
            HealthMonitor(self.health) if self.health is not None else None
        )

    def _launch_worker(self, rank: int) -> None:
        """Fork one worker with its private response pipe; the parent's
        copy of the write end is closed right after the fork."""
        reader, writer = self._ctx.Pipe(duplex=False)
        self._res_chans[rank] = _ResponseChannel(reader)
        try:
            proc = self._ctx.Process(
                target=self._worker_fn,
                args=self._worker_args(rank, writer),
                daemon=True,
            )
            proc.start()
        finally:
            writer.close()
        self._procs[rank] = proc

    def _worker_args(self, rank: int, res_conn) -> tuple:
        """Arguments for this rank's worker process."""
        return (
            rank, self._ring_qs, self._cmd_qs[rank], res_conn,
            self._abort_events[rank],
        )

    # ----------------------------------------------------------- streaming
    def _apply_ingest(self, batch) -> int:
        """Ship one drained batch to its worker as an incremental segment."""
        seg, desc = _pack_array_block([batch.X, batch.F, batch.Z, batch.indices])
        desc["untrack"] = self.ctx_method != "fork"
        try:
            self._cmd_qs[batch.machine].put(("ingest", desc))
            self._collect("ingested", ranks=[batch.machine])
        finally:
            _unlink_segments([seg])
        return self.dataplane.apply(batch)

    # ----------------------------------------------------------- elasticity
    def _start_worker(self, rank: int) -> None:
        """Spawn one additional pool worker at ``rank`` (its own command
        queue, response pipe and abort event; under fork, the
        coordinator's current ring-queue table comes along)."""
        if self._ctx is None:
            raise RuntimeError("no active pool to add a worker to")
        self._cmd_qs[rank] = self._ctx.Queue()
        if self._needs_ring_queues:
            self._abort_events[rank] = self._ctx.Event()
        self._launch_worker(rank)
        self._capacity = max(self._capacity, rank + 1)

    def _apply_join(self, p: int, after: int | None) -> None:
        """Admit one registered machine: spawn its worker, ship its shard
        via shared memory, re-plan ring/homes/protocol, announce.

        Fails closed: any error after the pool/topology started changing
        tears the fit down (like a failed ``setup``) rather than leaving
        a half-joined ring behind.
        """
        if not self._procs:
            raise RuntimeError("add_machine() requires an active fit")
        if self._needs_ring_queues and p >= len(self._ring_qs):
            # The fork-time ring-queue tables in existing workers cannot
            # address slot p; rebuild the pool with fresh headroom (the
            # workers' shards and RNG streams are preserved).
            self._grow_pool(p)
        old_ranks = list(self._ranks)
        try:
            self._start_worker(p)
            segments, descs = _pack_shards([self.dataplane.shards[p]])
            self._segments.extend(segments)
            self._mark_untrack(descs)
            self._topology = self._topology.with_machine(p, after=after)
            self._protocol, self._homes = replan(
                self._topology.machines, len(self._specs), self.epochs,
                self.scheme,
            )
            self._ranks = sorted(old_ranks + [p])
            # The joiner's setup carries the coordinator's adapter, whose
            # parameters are the assembled post-iteration model — the
            # joining machine "receives the current submodels" (§4.3).
            self._ship_join(p, descs[0], old_ranks)
            # The joiner already holds the new plan from its setup; only
            # the standing workers need the announcement.
            self._announce_replan([], ranks=old_ranks)
        except Exception:
            self.close(force=True)
            raise

    def _ship_join(self, p: int, desc, old_ranks) -> None:
        """Deliver shard + plan to the joining worker (override point:
        the TCP backend adds the mesh handshake and WELCOME transfer)."""
        base_seed = 0 if self.seed is None else int(self.seed)
        self._cmd_qs[p].put(
            (
                "setup",
                self.adapter,
                desc,
                self._protocol,
                self._homes,
                self.batch_size,
                self.shuffle_within,
                base_seed + p,
                None,
                self.message_dtype,
                self.batch_units,
                self.overlap_send,
                self.chaos,
                self._cpusets(old_ranks + [p]).get(p),
                self.health,
            )
        )
        ready = self._collect("ready", ranks=[p])
        if ready.get(p) is not None:
            self._worker_cpusets[p] = ready[p]

    def _grow_pool(self, p: int) -> None:
        """Rebuild the pool with ring-queue headroom covering slot ``p``.

        Collects every live worker's shard and SGD stream, tears the
        processes down, respawns with a larger slot table and re-ships
        the collected state — bit-identical, just a slower join.
        """
        live = list(self._ranks)
        collected = self._collect_worker_pool_state()
        self._close_pool()
        self._spawn(live, capacity=p + 1)
        try:
            segments, descs = _pack_shards([collected[r]["shard"] for r in live])
            self._segments.extend(segments)
            self._mark_untrack(descs)
            self._ship_setup(
                self.adapter,
                dict(zip(live, descs)),
                rng_states={r: collected[r]["rng_state"] for r in live},
            )
        except Exception:
            self.close(force=True)
            raise

    def _collect_worker_pool_state(self) -> dict:
        """{rank: {"shard": ..., "rng_state": ...}} from every live worker."""
        for rank in self._ranks:
            self._cmd_qs[rank].put(("checkpoint",))
        return self._collect("checkpoint")

    # ----------------------------------------------------------- iteration
    def run_iteration(self, mu: float) -> IterationStats:
        if not self._procs:
            raise RuntimeError("setup() must run before run_iteration()")
        mu = float(mu)
        added, replan_s = self.drain_joins()
        rows = self.drain_ingests()
        respawn = self.fault_policy is FaultPolicy.RESPAWN
        boundary = None
        if respawn:
            # The respawn tax: hold a whole-cluster iteration-boundary
            # snapshot — every worker's shard + SGD stream plus the
            # route RNG — so a mid-iteration death can rewind the fit to
            # exactly here and retry bit-identically. (Survivors are
            # *not* reusable as-is: aborted ones consumed SGD draws,
            # completed ones advanced their Z codes.) The snapshot is
            # normally the one refreshed at the end of the previous
            # iteration — taken while the pool had just proved itself
            # alive — so a worker SIGKILLed while *idle* surfaces inside
            # the retry loop below and is healed like any mid-iteration
            # death, instead of failing this collection. A fresh collect
            # only happens on the first iteration of a fit or after
            # joins/ingests mutated worker state.
            if self._boundary is None or added or rows:
                self._boundary = self._snapshot_boundary()
            boundary = self._boundary
        # Scheduled chaos kills are resolved coordinator-side for the
        # first attempt only: a retried attempt (respawned or excised)
        # runs crash-free, so the schedule cannot re-kill a replacement.
        crashes = (
            {r: self.chaos.crash_point(r, self._iterations_done)
             for r in self._ranks}
            if self.chaos is not None and self.chaos.crashes
            else {}
        )
        if self._monitor is not None:
            self._monitor.reset_counters()
        lost: list[int] = []
        respawns = 0
        respawn_wait_s = 0.0
        t0 = time.perf_counter()
        while True:
            if self.shuffle_ring:
                plan = RoutePlan.shuffled(
                    self._topology.machines, self._protocol, self._route_rng
                )
            else:
                plan = RoutePlan.fixed(self._topology, self._protocol)
            expected = expected_receives(plan, self._homes)
            self._gen += 1
            model_rank = self._ranks[0]
            self._dispatch_iteration(mu, plan, expected, model_rank, crashes)
            crashes = {}
            try:
                payloads = self._collect_results()
                if respawn:
                    # Refresh the boundary for the *next* iteration while
                    # the pool just answered. A kill landing in this tiny
                    # window re-enters the retry loop: the completed
                    # attempt is discarded and re-run bit-identically
                    # from the held boundary.
                    try:
                        self._boundary = self._snapshot_boundary()
                    except RuntimeError:
                        self._boundary = None
                        raise _WorkersLost([], None) from None
                break
            except _WorkersLost as loss:
                recovered = False
                while respawn and self._respawns_done < self.respawn_budget:
                    t_r = time.monotonic()
                    try:
                        self._respawn_from(boundary)
                        recovered = True
                    except RuntimeError:
                        # A kill landed during the rebuild itself; the
                        # boundary is untouched, so the next attempt
                        # (budget permitting) starts from the same state.
                        continue
                    finally:
                        respawns += 1
                        respawn_wait_s += time.monotonic() - t_r
                    break
                if recovered:
                    continue
                if respawn and not self._procs:
                    # Failed rebuilds exhausted the budget and closed the
                    # pool: no survivors to degrade onto — the end of the
                    # respawn -> drop_shard -> fail_fast escalation chain.
                    raise RuntimeError(
                        f"respawn budget ({self.respawn_budget}) exhausted "
                        "with no recoverable pool; fit aborted"
                    ) from None
                # Budget exhausted (or plain drop_shard): escalate to
                # excising the dead machines over the survivor set.
                lost.extend(loss.dead)
                # The survivor set is about to shrink: the held snapshot
                # (which still contains the retired shard) must never
                # feed a later respawn.
                self._boundary = None
                self._excise(loss.dead)
                if loss.payloads is not None:
                    # No survivor aborted: the attempt completed on every
                    # survivor (models and Z codes already advanced) —
                    # keep the results instead of training this mu a
                    # second time. If the model-holding rank was the one
                    # that died, any survivor's post-iteration adapter
                    # holds the identical final model (the W-step
                    # invariant); fetch it from the new lowest rank.
                    payloads = loss.payloads
                    if model_rank not in payloads:
                        model_rank = self._ranks[0]
                        self._cmd_qs[model_rank].put(("model",))
                        fetched = self._collect("model", ranks=[model_rank])
                        payloads[model_rank]["model"] = fetched[model_rank]
                    break
        wall = time.perf_counter() - t0
        set_params_many(
            self.adapter,
            [
                (self._spec_by_sid[sid], theta)
                for sid, theta in payloads[model_rank]["model"]
            ],
        )
        ranks = sorted(payloads)
        w_time = max(payloads[r]["w_time"] for r in ranks)
        z_time = max(payloads[r]["z_time"] for r in ranks)
        wire: dict = {}
        for r in ranks:
            for key, value in (payloads[r].get("wire") or {}).items():
                wire[key] = wire.get(key, 0) + value
        extra = {"wall_time": wall, "w_time": w_time, "z_time": z_time}
        extra.update(wire)
        extra.update(self._dtype_extras())
        if respawn:
            extra["respawns"] = respawns
            extra["respawn_wait_s"] = respawn_wait_s
        if self._monitor is not None:
            extra.update(self._monitor.counters())
        if self._worker_cpusets:
            extra["cpusets"] = {
                r: list(self._worker_cpusets[r])
                for r in sorted(self._worker_cpusets)
            }
        self._iterations_done += 1
        return IterationStats(
            mu=mu,
            e_q=sum(payloads[r]["e_q"] for r in ranks),
            e_ba=sum(payloads[r]["e_ba"] for r in ranks),
            z_changes=sum(payloads[r]["z_changes"] for r in ranks),
            violations=sum(payloads[r]["violations"] for r in ranks),
            time=w_time + z_time,
            wall_time=wall,
            extra=extra,
            bytes_sent=int(wire.get("bytes_sent", 0)),
            hops=int(wire.get("hops", 0)),
            rows_ingested=rows,
            shards_lost=len(lost),
            n_machines=len(self._ranks),
            machines_added=added,
            replan_s=replan_s,
        )

    def _dispatch_iteration(self, mu: float, plan: RoutePlan, expected: dict,
                            model_rank: int, crashes: dict | None = None) -> None:
        """Send one iteration command to every live worker (override point).

        ``crashes`` maps rank -> scheduled chaos kill point ("w"/"z") for
        this attempt; absent ranks run normally.
        """
        crashes = crashes or {}
        for ev in self._abort_events.values():
            ev.clear()  # workers are idle between iterations; safe to reset
        if self._monitor is not None:
            self._monitor.begin_phase(self._ranks)
        for rank in self._ranks:
            self._cmd_qs[rank].put(
                ("iter", mu, plan, expected[rank], self._gen, model_rank,
                 crashes.get(rank))
            )

    # ------------------------------------------------------------ recovery
    def _snapshot_boundary(self) -> dict:
        """Whole-cluster iteration-boundary state for bit-identical retry."""
        return {
            "pool": self._collect_worker_pool_state(),
            "route_rng": copy.deepcopy(self._route_rng.bit_generator.state),
        }

    def _respawn_from(self, boundary) -> None:
        """Rebuild the whole pool at the iteration-start boundary.

        The dead worker's post-death shard state is unrecoverable and the
        survivors are not reusable as-is (aborted ones consumed SGD
        draws, completed ones advanced their Z codes), so recovery
        replaces *every* process: backoff, tear the pool down, respawn
        the full rank set, re-ship the boundary shards and SGD streams,
        and rewind the route RNG so the retried plan is the one the dead
        attempt ran. One budget unit is consumed up front — a kill that
        lands during the rebuild itself surfaces as a ``RuntimeError``
        from the setup gather and the caller retries from the same
        (untouched) boundary, budget permitting.
        """
        wait = self.respawn_backoff * (2 ** self._respawns_done)
        self._respawns_done += 1
        if wait > 0:
            time.sleep(wait)
        live = sorted(boundary["pool"])
        counters = self._monitor.counters() if self._monitor is not None else None
        self._close_pool(force=True)
        self._release_segments()
        self._spawn(live, capacity=max(live) + 1)
        self._ranks = list(live)
        if counters is not None and self._monitor is not None:
            self._monitor.adopt_counters(counters)
        try:
            self._segments, descs = _pack_shards(
                [boundary["pool"][r]["shard"] for r in live]
            )
            self._mark_untrack(descs)
            self._ship_setup(
                self.adapter,
                dict(zip(live, descs)),
                rng_states={r: boundary["pool"][r]["rng_state"] for r in live},
            )
        except Exception:
            self.close(force=True)
            raise
        self._route_rng.bit_generator.state = copy.deepcopy(boundary["route_rng"])

    def _request_abort(self, ranks) -> None:
        """Wake workers blocked on ring receives that will never arrive.

        Queue transport: inject a generation-tagged sentinel into each
        survivor's ring queue, and set the survivor's abort event — the
        lock-free fallback for the case where the dead worker was killed
        mid-write and left a ring queue's feeder lock held, which would
        make the sentinel undeliverable. (The TCP transport needs
        neither — survivors observe the dead peer's sockets reset and
        self-abort.)
        """
        for rank in ranks:
            self._abort_events[rank].set()
            self._ring_qs[rank].put((self._gen, None))

    def _recv_available(self, ranks, timeout: float) -> list:
        """Every response currently deliverable from ``ranks``.

        Waits up to ``timeout`` for the first readable channel, then
        drains all of them; returns ``(rank, kind, payload)`` tuples.
        Never blocks beyond the timeout — a worker killed mid-message
        leaves a partial frame in its own channel and nothing else.
        """
        chans = [self._res_chans[r] for r in ranks if r in self._res_chans]
        if not chans:
            return []
        out = []
        for chan in mp_connection.wait(chans, timeout=timeout):
            for msg in chan.drain():
                # Heartbeats ride the same response channel as replies;
                # feed them to the monitor and keep them out of gathers.
                if msg[1] == "beat":
                    self._observe_beat(msg[0], msg[2])
                else:
                    out.append(msg)
        return out

    def _observe_beat(self, rank: int, payload) -> None:
        """Ingest one worker heartbeat (override point: the TCP backend
        decodes framed beats before feeding the monitor)."""
        if self._monitor is not None:
            seq, phase, progress = payload
            self._monitor.observe(rank, seq, phase, progress)

    def _check_stalled(self, pending) -> None:
        """Fail the gather early if the monitor sees a stalled worker —
        beating, alive, but making no progress this phase — instead of
        waiting out the blunt ``worker_timeout`` cap."""
        if self._monitor is None:
            return
        stalled = self._monitor.stalled(pending)
        if stalled:
            phases = {r: self._monitor.phase_of(r) for r in sorted(stalled)}
            self.close(force=True)
            raise RuntimeError(
                f"worker(s) {sorted(stalled)} stalled: heartbeats arrive "
                f"but no progress for {self.health.stalled_after_s}s "
                f"(phases {phases}); pool torn down"
            ) from None

    def _collect_results(self) -> dict:
        """Gather one iteration response per live worker.

        Under ``fail_fast`` any death tears the pool down with a raised
        error (historical behaviour). Under ``drop_shard`` a death turns
        the gather into an abort round: survivors are woken, their
        responses (results or abort acks) drained, and
        :class:`_WorkersLost` reports the dead set to ``run_iteration``
        for excision and retry.
        """
        deadline = (
            None
            if self.worker_timeout is None
            else time.monotonic() + self.worker_timeout
        )
        pending = set(self._ranks)
        payloads: dict[int, dict] = {}
        aborted: set[int] = set()
        dead: set[int] = set()
        abort_requested = False
        while pending:
            msgs = self._recv_available(pending, _LIVENESS_POLL_S)
            if not msgs:
                newly_dead = {r for r in pending if not self._procs[r].is_alive()}
                if newly_dead:
                    # A worker may have completed the attempt — response
                    # already in its pipe — before dying; pick that up
                    # before writing the rank off.
                    msgs = self._recv_available(newly_dead, 0)
                    newly_dead -= {m[0] for m in msgs}
                if newly_dead:
                    if self._monitor is not None:
                        for r in newly_dead:
                            self._monitor.note_dead(r)
                    if self.fault_policy is FaultPolicy.FAIL_FAST:
                        self.close(force=True)
                        raise RuntimeError(
                            f"worker(s) {sorted(newly_dead)} died mid-result; "
                            "pool torn down"
                        ) from None
                    dead |= newly_dead
                    pending -= newly_dead
                    if pending and not abort_requested:
                        self._request_abort(pending)
                        abort_requested = True
                if not msgs:
                    self._check_stalled(pending)
                    if deadline is not None and time.monotonic() > deadline:
                        self.close(force=True)
                        raise RuntimeError(
                            f"timed out after {self.worker_timeout}s waiting "
                            f"for 'result' from worker(s) {sorted(pending)}, "
                            "which are alive but unresponsive (stalled, not "
                            "dead — a dead worker is detected within "
                            f"{_LIVENESS_POLL_S}s and handled by the fault "
                            "policy); pool torn down"
                        ) from None
                    continue
            for rank, kind, payload in msgs:
                if kind == "error":
                    self.close(force=True)
                    raise RuntimeError(f"worker {rank} failed:\n{payload}")
                if kind == "result":
                    payloads[rank] = payload
                    pending.discard(rank)
                elif kind == "aborted":
                    aborted.add(rank)
                    pending.discard(rank)
        if dead or aborted:
            # An abort is always downstream of a death; find any not yet
            # caught by the liveness poll (e.g. sockets reset before the
            # first poll fired).
            dead |= {
                r
                for r in self._ranks
                if r not in dead and not self._procs[r].is_alive()
            }
            if not dead:
                self.close(force=True)
                raise RuntimeError(
                    f"worker(s) {sorted(aborted)} aborted with every peer "
                    "alive; pool torn down"
                )
            raise _WorkersLost(sorted(dead), None if aborted else payloads)
        return payloads

    def _excise(self, dead) -> None:
        """Retire dead workers' shards and re-plan around the survivors."""
        dead = set(dead)
        survivors = [r for r in self._ranks if r not in dead]
        if not survivors:
            self.close(force=True)
            raise RuntimeError("every worker died; pool torn down")
        retired = []
        for rank in sorted(dead):
            proc = self._procs.pop(rank)
            self._cmd_qs.pop(rank, None)
            self._abort_events.pop(rank, None)
            chan = self._res_chans.pop(rank, None)
            if chan is not None:
                chan.close()
            self._worker_cpusets.pop(rank, None)
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5)
            rows = self.dataplane.retire(rank, lost=True)
            retired.append(ShardRetired(machine=rank, rows_lost=rows))
            # Reconnect predecessor -> successor, preserving the cycle
            # order (which joins may have made non-sorted) exactly like
            # the simulated cluster's recovery.
            self._topology = self._topology.without_machine(rank)
        self._ranks = survivors
        self._protocol, self._homes = replan(
            self._topology.machines, len(self._specs), self.epochs, self.scheme
        )
        self._rebuild_transport(retired)
        self._announce_replan(retired)

    def _rebuild_transport(self, retired) -> None:
        """Restore the ring transport for the survivor set.

        Queues survive as-is: stale traffic from the aborted attempt is
        generation-filtered at the receivers. The TCP backend overrides
        to rebuild its socket mesh.
        """

    def _announce_replan(self, retired, ranks=None) -> None:
        """Ship the new protocol/home assignment to ``ranks`` (default:
        every live worker)."""
        ranks = list(self._ranks) if ranks is None else list(ranks)
        for rank in ranks:
            self._cmd_qs[rank].put(("replan", self._protocol, self._homes, None))
        self._collect("replanned", ranks=ranks)

    # ----------------------------------------------------------- gathering
    def _collect(self, expect: str, ranks=None) -> dict:
        """Gather one ``expect`` response per rank, fail-fast on trouble.

        Used for every command round outside the iteration gather
        (setup, port exchange, replan, ingest acks): any worker error,
        death or timeout there makes the fit unrecoverable regardless of
        fault policy — tear everything down so a later ``setup`` starts
        clean.
        """
        ranks = list(self._ranks) if ranks is None else list(ranks)
        wanted = set(ranks)
        if self._monitor is not None:
            self._monitor.begin_phase(ranks)
        deadline = (
            None
            if self.worker_timeout is None
            else time.monotonic() + self.worker_timeout
        )
        payloads = {}
        while len(payloads) < len(ranks):
            msgs = self._recv_available(wanted - set(payloads), _LIVENESS_POLL_S)
            if not msgs:
                dead = [r for r in ranks if not self._procs[r].is_alive()]
                if dead:
                    if self._monitor is not None:
                        for r in dead:
                            self._monitor.note_dead(r)
                    self.close(force=True)
                    raise RuntimeError(
                        f"worker(s) {dead} died mid-{expect}; pool torn down"
                    ) from None
                self._check_stalled(wanted - set(payloads))
                if deadline is not None and time.monotonic() > deadline:
                    stalled = sorted(wanted - set(payloads))
                    self.close(force=True)
                    raise RuntimeError(
                        f"timed out after {self.worker_timeout}s waiting for "
                        f"{expect!r} from worker(s) {stalled}, which are "
                        "alive but unresponsive (stalled, not dead); pool "
                        "torn down"
                    ) from None
                continue
            for rank, kind, payload in msgs:
                if kind == "error":
                    self.close(force=True)
                    raise RuntimeError(f"worker {rank} failed:\n{payload}")
                if kind == expect and rank in wanted:
                    payloads[rank] = payload
        return payloads

    # ------------------------------------------------------- checkpointing
    def _collect_machine_state(self) -> tuple[dict, dict]:
        if not self._procs:
            raise RuntimeError("checkpoint() requires an active pool")
        collected = self._collect_worker_pool_state()
        return (
            {r: c["shard"] for r, c in collected.items()},
            {r: c["rng_state"] for r, c in collected.items()},
        )

    def _ring_order(self) -> list[int]:
        return self._topology.machines

    def _route_rng_state(self):
        import copy

        return copy.deepcopy(self._route_rng.bit_generator.state)

    def restore(self, state: ClusterState, adapter=None) -> None:
        """Rebind a fit from a snapshot: fresh pool, shards re-shipped
        via shared memory, worker SGD streams and the route stream
        restored — training continues bit-identically."""
        adapter = self._restore_common(state, adapter)
        self.adapter = adapter
        shards = {int(p): s for p, s in state.shards.items()}
        ring_order = [int(p) for p in state.ring_order]
        if sorted(shards) != sorted(ring_order):
            raise ValueError(
                f"checkpoint ring {ring_order} does not match its shard "
                f"owners {sorted(shards)}"
            )
        dataplane = DataPlane(adapter, shards, own_data=False)
        dataplane.restore_bookkeeping(state.bookkeeping)
        self._bind_dataplane(dataplane)
        specs = adapter.submodel_specs()
        self._specs = specs
        self._spec_by_sid = {s.sid: s for s in specs}
        self._topology = RingTopology(ring_order)
        self._protocol, self._homes = replan(
            self._topology.machines, len(specs), self.epochs, self.scheme
        )
        self._route_rng = check_random_state(self.seed)
        if state.route_rng_state is not None:
            self._route_rng.bit_generator.state = state.route_rng_state
        # The restored membership rarely matches a standing pool's ranks
        # (gaps from retirements, extras from joins); start clean.
        if self._procs:
            self._close_pool()
        live = sorted(shards)
        self._spawn(live)
        self._ranks = live
        self._respawns_done = 0
        self._boundary = None
        self._release_segments()
        try:
            self._segments, descs = _pack_shards([shards[r] for r in live])
            self._mark_untrack(descs)
            self._ship_setup(
                adapter,
                dict(zip(live, descs)),
                rng_states={int(p): st for p, st in state.machine_rng_states.items()},
            )
        except Exception:
            self.close(force=True)
            raise
        self._restore_pending_ingests(state)

    def teardown(self) -> None:
        """End the fit: drop the shared-memory shards, keep the pool."""
        super().teardown()
        self._release_segments()

    def _release_segments(self) -> None:
        _unlink_segments(self._segments)
        self._segments = []

    def _close_pool(self, *, force: bool = False) -> None:
        """Stop the worker processes and drop the queue tables, leaving
        fit state (data plane, topology, segments) in place — the
        process half of :meth:`close`, reused by pool rebuilds."""
        if self._procs:
            if not force:
                for q in self._cmd_qs.values():
                    try:
                        q.put(("stop",))
                    except Exception:
                        pass
            for proc in self._procs.values():
                if not force:
                    proc.join(timeout=30)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5)
        self._procs = {}
        self._cmd_qs = {}
        self._ring_qs = []
        self._abort_events = {}
        for chan in self._res_chans.values():
            chan.close()
        self._res_chans = {}
        self._capacity = 0

    def close(self, *, force: bool = False) -> None:
        """Stop the worker pool and release every resource.

        ``force`` skips the cooperative stop — used after a worker error,
        when peers may be blocked on ring receives that will never arrive
        and would ignore a queued stop command.
        """
        self._close_pool(force=force)
        self._ranks = []
        self._boundary = None
        self._release_segments()

    @property
    def worker_pids(self) -> list[int]:
        """PIDs of the live pool (diagnostics; stable across fits)."""
        return [p.pid for p in self._procs.values() if p.is_alive()]

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass
