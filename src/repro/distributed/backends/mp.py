"""Real multiprocessing backend — the MPI stand-in, pool edition.

Each worker process owns one shard ("the data cannot leave its home
machine") and executes the counter protocol of paper section 4.1 /
fig. 6 exactly; termination inside a W step is deterministic because
every worker knows in advance how many ring messages it will receive
(:func:`~repro.distributed.protocol.expected_receives`).

Beyond the original one-shot ring this backend adds:

* **a persistent worker pool** — workers are spawned once and survive
  across ``fit()`` calls; each ``setup`` re-ships the adapter and shards
  to the standing pool instead of forking P fresh processes per fit;
* **shared-memory shard shipping** — shard arrays are placed in
  ``multiprocessing.shared_memory`` segments and mapped zero-copy by the
  workers, instead of pickling a private copy of the data through each
  process boundary;
* **cross-machine shuffling** — ``shuffle_ring`` builds a freshly
  shuffled per-epoch :class:`~repro.distributed.protocol.RoutePlan`
  every iteration (section 4.3), routed per-message via the full queue
  mesh, where the old backend silently ignored the option;
* **fault detection** — the coordinator polls worker liveness while
  waiting for results, so a worker that dies mid-iteration (OOM kill,
  segfault, operator error) tears the whole pool down with a raised
  error instead of wedging every peer on a receive that never comes.

The ring *transport* — how a forwarded submodel physically reaches the
successor machine — is pluggable: this module's workers pass messages
over ``multiprocessing`` queues, while the TCP backend
(:mod:`repro.distributed.backends.tcp`) subclasses the coordinator and
swaps in framed socket connections; everything else (counter protocol,
shared-memory shards, pool lifecycle) is shared.

Workers report per-shard metrics after the Z step; worker 0 additionally
reports the assembled final parameters, which the coordinator writes
back into its adapter's model (the ParMAC invariant: after the W step
every machine holds the full final model).
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import queue as queue_mod
import time
import traceback
from multiprocessing import shared_memory

import numpy as np

from repro.distributed.backends.base import BaseBackend, IterationStats, register_backend
from repro.distributed.messages import SubmodelMessage
from repro.distributed.protocol import RoutePlan, WStepProtocol, expected_receives
from repro.distributed.topology import RingTopology
from repro.optim.sgd import SGDState
from repro.utils.rng import check_random_state

__all__ = ["MultiprocessBackend", "home_assignment"]

#: How often the coordinator checks worker liveness while blocked on
#: results; bounds how long a dead worker can go unnoticed.
_LIVENESS_POLL_S = 0.5


def home_assignment(n_submodels: int, n_machines: int) -> dict[int, int]:
    """Contiguous-block home machines, as in paper fig. 2."""
    return {sid: sid * n_machines // n_submodels for sid in range(n_submodels)}


def _unlink_segments(segments) -> None:
    """Close and unlink shared-memory segments, tolerating absent ones."""
    for seg in segments:
        if seg is None:
            continue
        try:
            seg.close()
            seg.unlink()
        except FileNotFoundError:
            pass


# ------------------------------------------------------------------ shards
def _pack_shards(shards) -> tuple[list, list]:
    """Copy each shard's arrays into one shared-memory segment.

    Returns ``(segments, descriptors)``; descriptor i tells worker i how
    to rebuild its shard as zero-copy views over the segment. Non-array
    dataclass fields travel by value; non-dataclass shards fall back to
    pickling whole. If packing fails partway, every segment already
    created is unlinked before the error propagates — a half-packed fit
    must not leave residue in /dev/shm.
    """
    segments, descs = [], []
    try:
        for shard in shards:
            if not dataclasses.is_dataclass(shard):
                segments.append(None)
                descs.append({"pickle": shard})
                continue
            arrays: list[tuple[str, int | None, np.ndarray]] = []
            values: dict = {}
            for f in dataclasses.fields(shard):
                v = getattr(shard, f.name)
                if isinstance(v, np.ndarray):
                    arrays.append((f.name, None, np.ascontiguousarray(v)))
                elif (
                    isinstance(v, (list, tuple))
                    and len(v)
                    and all(isinstance(a, np.ndarray) for a in v)
                ):
                    for i, a in enumerate(v):
                        arrays.append((f.name, i, np.ascontiguousarray(a)))
                else:
                    values[f.name] = v
            total = sum(a.nbytes for _, _, a in arrays)
            seg = shared_memory.SharedMemory(create=True, size=max(total, 1))
            segments.append(seg)
            fields = []
            offset = 0
            for name, idx, a in arrays:
                view = np.ndarray(a.shape, dtype=a.dtype, buffer=seg.buf, offset=offset)
                view[...] = a
                fields.append((name, idx, a.dtype.str, a.shape, offset))
                offset += a.nbytes
            descs.append(
                {"name": seg.name, "cls": type(shard), "fields": fields, "values": values}
            )
    except Exception:
        _unlink_segments(segments)
        raise
    return segments, descs


def _attach_shard(desc):
    """Rebuild a shard in a worker from its shared-memory descriptor."""
    if "pickle" in desc:
        return None, desc["pickle"]
    seg = shared_memory.SharedMemory(name=desc["name"])
    # Attaching registers the segment with the resource tracker (it
    # cannot tell an attach from a create). Under fork the tracker
    # process is shared with the coordinator, whose unlink() already
    # unregisters the (deduplicated) entry — nothing to do. A spawned
    # worker has its *own* tracker, which would warn about a "leaked"
    # segment it does not own at exit, so untrack there.
    if desc.get("untrack"):
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(seg._name, "shared_memory")
        except Exception:
            pass
    kwargs = dict(desc["values"])
    lists: dict[str, list] = {}
    for name, idx, dtype, shape, offset in desc["fields"]:
        arr = np.ndarray(shape, dtype=dtype, buffer=seg.buf, offset=offset)
        if idx is None:
            kwargs[name] = arr
        else:
            lists.setdefault(name, []).append((idx, arr))
    for name, items in lists.items():
        kwargs[name] = [a for _, a in sorted(items, key=lambda t: t[0])]
    return seg, desc["cls"](**kwargs)


# --------------------------------------------------------------- transport
class _QueueRingTransport:
    """Ring transport over the coordinator-built full queue mesh.

    The transport interface the worker iteration runs against:
    ``send(dest, msg)`` may buffer, ``flush()`` forces buffered messages
    out, ``recv()`` returns the next incoming message (flushing first,
    so a worker never blocks while holding undelivered sends), and
    ``wire_stats()`` reports what the iteration cost on the wire. Queues
    deliver messages one at a time with no syscall to amortise, so this
    implementation sends eagerly and ``flush`` is a no-op.
    """

    def __init__(self, rank: int, ring_qs):
        self.rank = rank
        self._ring_qs = ring_qs
        self.msgs_sent = 0
        self.bytes_sent = 0

    def send(self, dest: int, msg: SubmodelMessage) -> None:
        self.msgs_sent += 1
        self.bytes_sent += msg.nbytes
        self._ring_qs[dest].put(msg)

    def flush(self) -> None:
        pass

    def recv(self) -> SubmodelMessage:
        return self._ring_qs[self.rank].get()

    def wire_stats(self) -> dict:
        return {"hops": self.msgs_sent, "bytes_sent": self.bytes_sent}


# ------------------------------------------------------------------ worker
def _build_worker_state(rank, adapter, desc, protocol, homes, batch_size,
                        shuffle_within, seed) -> dict:
    """Per-fit worker state, shared by every wall-clock worker loop.

    One construction site keeps the queue and TCP workers bit-identical:
    a field added here (RNG stream, batching knob, ...) reaches both.
    """
    seg, shard = _attach_shard(desc)
    specs = adapter.submodel_specs()
    return {
        "adapter": adapter,
        "shard": shard,
        "seg": seg,
        "protocol": protocol,
        "specs": specs,
        "spec_by_sid": {s.sid: s for s in specs},
        "my_sids": [sid for sid, h in homes.items() if h == rank],
        "batch_size": batch_size,
        "shuffle_within": shuffle_within,
        "rng": np.random.default_rng(seed),
    }


def _run_worker_iteration(rank, state, mu, plan, n_expected, transport):
    """One W step + Z step on this worker's shard; returns the payload."""
    adapter = state["adapter"]
    shard = state["shard"]
    protocol: WStepProtocol = state["protocol"]
    specs = state["specs"]
    final: dict[int, np.ndarray] = {}

    def handle(msg: SubmodelMessage) -> None:
        msg.counter += 1
        for _ in range(protocol.train_passes(msg.counter)):
            msg.theta = adapter.w_update(
                msg.spec,
                msg.theta,
                msg.sgd_state,
                shard,
                mu,
                batch_size=state["batch_size"],
                shuffle=state["shuffle_within"],
                rng=state["rng"],
            )
        if protocol.is_final(msg.counter):
            final[msg.spec.sid] = np.array(msg.theta, copy=True)
        if protocol.should_forward(msg.counter):
            transport.send(plan.successor(rank, msg.counter), msg)

    t_w0 = time.perf_counter()
    for sid in state["my_sids"]:
        spec = state["spec_by_sid"][sid]
        handle(
            SubmodelMessage(
                spec=spec,
                theta=np.array(adapter.get_params(spec), copy=True),
                sgd_state=SGDState(),
            )
        )
    transport.flush()
    for _ in range(n_expected):
        handle(transport.recv())
    transport.flush()
    # W-step invariant: this worker now holds every final submodel.
    for spec in specs:
        adapter.set_params(spec, final[spec.sid])
    t_w = time.perf_counter() - t_w0

    t_z0 = time.perf_counter()
    z_changes = adapter.z_update(shard, mu)
    t_z = time.perf_counter() - t_z0

    return {
        "e_q": adapter.e_q_shard(shard, mu),
        "e_ba": adapter.e_ba_shard(shard),
        "violations": adapter.violations_shard(shard),
        "z_changes": z_changes,
        "w_time": t_w,
        "z_time": t_z,
        "wire": transport.wire_stats(),
        "model": [(s.sid, final[s.sid]) for s in specs] if rank == 0 else None,
    }


def _worker_main(rank, ring_qs, cmd_q, res_q):
    """Pool worker loop: serve setup/iter commands until told to stop."""
    state = None
    while True:
        cmd = cmd_q.get()
        op = cmd[0]
        if op == "stop":
            if state is not None and state["seg"] is not None:
                state["seg"].close()
            break
        try:
            if op == "setup":
                _, adapter, desc, protocol, homes, batch_size, shuffle_within, seed = cmd
                if state is not None and state["seg"] is not None:
                    state["seg"].close()
                state = _build_worker_state(
                    rank, adapter, desc, protocol, homes, batch_size,
                    shuffle_within, seed,
                )
                res_q.put((rank, "ready", None))
            elif op == "iter":
                _, mu, plan, n_expected = cmd
                transport = _QueueRingTransport(rank, ring_qs)
                payload = _run_worker_iteration(
                    rank, state, mu, plan, n_expected, transport
                )
                res_q.put((rank, "result", payload))
        except Exception:
            res_q.put((rank, "error", traceback.format_exc()))


# ------------------------------------------------------------- coordinator
@register_backend("multiprocess")
class MultiprocessBackend(BaseBackend):
    """ParMAC iterations over a persistent pool of real OS processes.

    Extra parameters beyond :class:`BaseBackend`:

    ctx_method : str
        ``multiprocessing`` start method ("fork" is fastest on Linux).
    worker_timeout : float or None
        Upper bound in seconds on one whole collective gather — the time
        from issuing a command round (setup, iteration) until *all* P
        responses have arrived. ``None`` waits indefinitely — but a
        worker *dying* is always detected within
        :data:`_LIVENESS_POLL_S` seconds and fails the fit, tearing down
        the remaining peers.

    The adapter must be picklable; each worker gets its own copy at
    ``setup`` while the shard *data* travels through shared memory.
    ``cost`` is accepted for interface uniformity but ignored — this
    backend reports wall-clock time.
    """

    #: Worker entry point; subclasses substitute their own loop.
    _worker_fn = staticmethod(_worker_main)
    #: Whether the ring runs over coordinator-built queues (the TCP
    #: backend moves the ring to sockets and skips the mesh).
    _needs_ring_queues = True

    def __init__(
        self, *, ctx_method: str = "fork", worker_timeout: float | None = None, **kwargs
    ):
        super().__init__(**kwargs)
        self.ctx_method = ctx_method
        self.worker_timeout = worker_timeout
        self._ctx = None
        self._procs: list = []
        self._ring_qs: list = []
        self._cmd_qs: list = []
        self._res_q = None
        self._segments: list = []
        self._pool_size = 0

    # ---------------------------------------------------------- lifecycle
    def setup(self, adapter, shards) -> None:
        shards = list(shards)
        P = len(shards)
        if P < 1:
            raise ValueError("need at least one shard")
        self.adapter = adapter
        specs = adapter.submodel_specs()
        self._spec_by_sid = {s.sid: s for s in specs}
        self._homes = home_assignment(len(specs), P)
        self._protocol = WStepProtocol(P, self.epochs, self.scheme)
        self._topology = RingTopology.identity(P)
        self._route_rng = check_random_state(self.seed)
        if self._procs and self._pool_size != P:
            self.close()
        if not self._procs:
            self._spawn(P)
        self._release_segments()
        # Anything that fails between shard shipping and a successful
        # ready-collection must not leak the just-created /dev/shm
        # segments: tear the fit down (close releases the segments) and
        # re-raise.
        try:
            self._segments, descs = _pack_shards(shards)
            for desc in descs:
                if "pickle" not in desc:
                    desc["untrack"] = self.ctx_method != "fork"
            self._ship_setup(adapter, descs)
        except Exception:
            self.close(force=True)
            raise

    def _ship_setup(self, adapter, descs) -> None:
        """Send per-worker setup commands and wait for every ack.

        Override point for subclasses whose workers need extra setup
        phases (the TCP backend negotiates ports and builds the socket
        mesh here).
        """
        base_seed = 0 if self.seed is None else int(self.seed)
        for rank in range(self._pool_size):
            self._cmd_qs[rank].put(
                (
                    "setup",
                    adapter,
                    descs[rank],
                    self._protocol,
                    self._homes,
                    self.batch_size,
                    self.shuffle_within,
                    base_seed + rank,
                )
            )
        self._collect("ready")

    def _spawn(self, P: int) -> None:
        # Start the parent's resource tracker *before* forking so workers
        # inherit it; otherwise the first pool's workers lazily spawn
        # private trackers on shared-memory attach, which then warn about
        # "leaked" segments the coordinator already unlinked.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except Exception:
            pass
        self._ctx = mp.get_context(self.ctx_method)
        self._ring_qs = (
            [self._ctx.Queue() for _ in range(P)] if self._needs_ring_queues else []
        )
        self._cmd_qs = [self._ctx.Queue() for _ in range(P)]
        self._res_q = self._ctx.Queue()
        self._procs = []
        for rank in range(P):
            proc = self._ctx.Process(
                target=self._worker_fn,
                args=self._worker_args(rank),
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)
        self._pool_size = P

    def _worker_args(self, rank: int) -> tuple:
        """Arguments for this rank's worker process."""
        return (rank, self._ring_qs, self._cmd_qs[rank], self._res_q)

    def run_iteration(self, mu: float) -> IterationStats:
        if not self._procs:
            raise RuntimeError("setup() must run before run_iteration()")
        mu = float(mu)
        P = self._pool_size
        if self.shuffle_ring:
            plan = RoutePlan.shuffled(
                self._topology.machines, self._protocol, self._route_rng
            )
        else:
            plan = RoutePlan.fixed(self._topology, self._protocol)
        expected = expected_receives(plan, self._homes)
        t0 = time.perf_counter()
        self._dispatch_iteration(mu, plan, expected)
        payloads = self._collect("result")
        wall = time.perf_counter() - t0
        for sid, theta in payloads[0]["model"]:
            self.adapter.set_params(self._spec_by_sid[sid], theta)
        ranks = sorted(payloads)
        w_time = max(payloads[r]["w_time"] for r in ranks)
        z_time = max(payloads[r]["z_time"] for r in ranks)
        wire: dict = {}
        for r in ranks:
            for key, value in (payloads[r].get("wire") or {}).items():
                wire[key] = wire.get(key, 0) + value
        extra = {"wall_time": wall, "w_time": w_time, "z_time": z_time}
        extra.update(wire)
        return IterationStats(
            mu=mu,
            e_q=sum(payloads[r]["e_q"] for r in ranks),
            e_ba=sum(payloads[r]["e_ba"] for r in ranks),
            z_changes=sum(payloads[r]["z_changes"] for r in ranks),
            violations=sum(payloads[r]["violations"] for r in ranks),
            time=w_time + z_time,
            wall_time=wall,
            extra=extra,
            bytes_sent=int(wire.get("bytes_sent", 0)),
            hops=int(wire.get("hops", 0)),
        )

    def _dispatch_iteration(self, mu: float, plan: RoutePlan, expected: dict) -> None:
        """Send one iteration command to every worker (override point)."""
        for rank in range(self._pool_size):
            self._cmd_qs[rank].put(("iter", mu, plan, expected[rank]))

    def _collect(self, expect: str) -> dict:
        """Gather one response per worker, watching liveness throughout.

        Any worker error — or a worker found dead, or the configured
        ``worker_timeout`` elapsing — makes the whole fit unrecoverable:
        peers may be blocked on ring receives that will never arrive, and
        their queued results would corrupt the next iteration. Tear
        everything down so a later ``setup`` starts clean.
        """
        deadline = (
            None
            if self.worker_timeout is None
            else time.monotonic() + self.worker_timeout
        )
        payloads = {}
        while len(payloads) < self._pool_size:
            try:
                rank, kind, payload = self._res_q.get(timeout=_LIVENESS_POLL_S)
            except queue_mod.Empty:
                dead = [r for r, p in enumerate(self._procs) if not p.is_alive()]
                if dead:
                    self.close(force=True)
                    raise RuntimeError(
                        f"worker(s) {dead} died mid-{expect}; pool torn down"
                    ) from None
                if deadline is not None and time.monotonic() > deadline:
                    self.close(force=True)
                    raise RuntimeError(
                        f"timed out after {self.worker_timeout}s waiting for "
                        f"{expect!r} from {self._pool_size - len(payloads)} worker(s)"
                    ) from None
                continue
            if kind == "error":
                self.close(force=True)
                raise RuntimeError(f"worker {rank} failed:\n{payload}")
            if kind == expect:
                payloads[rank] = payload
        return payloads

    def teardown(self) -> None:
        """End the fit: drop the shared-memory shards, keep the pool."""
        self._release_segments()

    def _release_segments(self) -> None:
        _unlink_segments(self._segments)
        self._segments = []

    def close(self, *, force: bool = False) -> None:
        """Stop the worker pool and release every resource.

        ``force`` skips the cooperative stop — used after a worker error,
        when peers may be blocked on ring receives that will never arrive
        and would ignore a queued stop command.
        """
        if self._procs:
            if not force:
                for q in self._cmd_qs:
                    try:
                        q.put(("stop",))
                    except Exception:
                        pass
            for proc in self._procs:
                if not force:
                    proc.join(timeout=30)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5)
        self._procs = []
        self._cmd_qs = []
        self._ring_qs = []
        self._res_q = None
        self._pool_size = 0
        self._release_segments()

    @property
    def worker_pids(self) -> list[int]:
        """PIDs of the live pool (diagnostics; stable across fits)."""
        return [p.pid for p in self._procs]

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass
