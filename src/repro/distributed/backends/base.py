"""Execution-backend interface and registry for ParMAC training.

A *backend* is the thing that actually runs one MAC iteration (W step +
Z step) for an adapter over a set of shards. The generic
:class:`~repro.core.trainer.ParMACTrainer` drives any adapter on any
backend through the same four-call lifecycle::

    backend.setup(adapter, shards)      # bind model + data
    stats = backend.run_iteration(mu)   # one W step + one Z step
    ...                                 # (once per mu in the schedule)
    backend.teardown()                  # release per-fit resources

``teardown`` ends one fit but must leave the backend reusable: a later
``setup`` starts the next fit (the multiprocessing backend keeps its
worker pool alive across fits). ``close`` releases everything.

Backends register themselves by name so callers can resolve engines
without importing concrete classes::

    from repro.distributed.backends import get_backend
    Engine = get_backend("multiprocess")
    backend = Engine(epochs=2, seed=0)

This separation of a pluggable execution engine from model-specific
update functions mirrors GraphLab's engine/update-function split and is
what makes ParMAC's model-agnosticism (paper section 9) real in code:
binary autoencoders and deep nets train on the identical engines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.distributed.dataplane import DataPlane

__all__ = [
    "FaultPolicy",
    "IterationStats",
    "Backend",
    "BaseBackend",
    "register_backend",
    "get_backend",
    "available_backends",
]


class FaultPolicy(str, enum.Enum):
    """What a backend does when a machine dies mid-fit.

    ``FAIL_FAST``
        Any worker death makes the whole fit unrecoverable: the backend
        raises and tears down every peer (the safe default — identical
        to the historical behaviour).
    ``DROP_SHARD``
        The paper's resilience claim (section 4.3): the dead machine's
        shard is excised from the data plane, the ring is re-planned
        around the survivor set, and the fit continues — a failure loses
        only that machine's data, never the run.
    """

    FAIL_FAST = "fail_fast"
    DROP_SHARD = "drop_shard"


@dataclass
class IterationStats:
    """What one MAC iteration produced, in backend-neutral form.

    ``time`` is the backend's native duration for the iteration — virtual
    clock units for simulated engines, wall-clock seconds for real ones —
    while ``wall_time`` is always the coordinator-observed elapsed wall
    clock. ``extra`` carries backend-specific detail (per-step times,
    per-frame counts, ...) straight into the history record.

    ``bytes_sent`` and ``hops`` are the backend-neutral wire cost of the
    iteration: total bytes that crossed the ring and the number of
    submodel-message hops they took. The wall-clock backends count both
    from actual traffic; simulated engines account ``bytes_sent`` from
    the cost model's byte counting and leave ``hops`` at 0. Engines with
    no notion of a wire leave both 0.

    ``rows_ingested``, ``shards_lost`` and ``n_machines`` are the data
    plane's per-iteration view: streamed rows applied at this iteration's
    boundary, shards lost to machine deaths during it, and the size of
    the survivor set afterwards — the raw series degradation curves are
    plotted from.
    """

    mu: float
    e_q: float
    e_ba: float
    z_changes: int
    violations: float
    time: float
    wall_time: float
    extra: dict = field(default_factory=dict)
    bytes_sent: int = 0
    hops: int = 0
    rows_ingested: int = 0
    shards_lost: int = 0
    n_machines: int = 0


@runtime_checkable
class Backend(Protocol):
    """Structural type every execution backend satisfies."""

    def setup(self, adapter, shards) -> None:
        """Bind an adapter and its shards; acquire execution resources."""
        ...

    def run_iteration(self, mu: float) -> IterationStats:
        """Run one full MAC iteration (W step + Z step) at penalty mu.

        On return the adapter's model holds the assembled post-W-step
        parameters, so callers may evaluate it between iterations.
        """
        ...

    def ingest(self, p: int, X_new) -> None:
        """Queue streamed rows for machine ``p`` (paper section 4.3).

        Validation is eager (unknown machine, empty or wrong-width batch
        fail at the call site); application is deferred to the next
        iteration boundary, where the rows are coded by the current
        nested model and shipped to their owning machine.
        """
        ...

    def teardown(self) -> None:
        """End the current fit; the backend stays reusable for another
        ``setup``."""
        ...

    def close(self) -> None:
        """Release everything, including resources that survive fits."""
        ...


class BaseBackend:
    """Shared construction/config for concrete backends.

    Parameters
    ----------
    epochs : int
        SGD epochs per W step (e).
    scheme : {"rounds", "tworound"}
        W-step communication scheme (paper sections 4.1 / 4.2).
    batch_size : int
        SGD minibatch size within each shard.
    shuffle_within, shuffle_ring : bool
        Within-machine minibatch shuffling and per-epoch ring reshuffling
        (section 4.3).
    cost : CostModel or None
        Virtual-clock constants; ignored by wall-clock backends.
    fault_policy : FaultPolicy or str
        ``"fail_fast"`` (default) or ``"drop_shard"``; see
        :class:`FaultPolicy`.
    seed : int or None
    """

    name: str = ""

    def __init__(
        self,
        *,
        epochs: int = 1,
        scheme: str = "rounds",
        batch_size: int = 100,
        shuffle_within: bool = True,
        shuffle_ring: bool = False,
        cost=None,
        fault_policy: FaultPolicy | str = FaultPolicy.FAIL_FAST,
        seed=None,
    ):
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        if scheme not in ("rounds", "tworound"):
            raise ValueError(f"unknown scheme {scheme!r}")
        self.epochs = int(epochs)
        self.scheme = scheme
        self.batch_size = int(batch_size)
        self.shuffle_within = bool(shuffle_within)
        self.shuffle_ring = bool(shuffle_ring)
        self.cost = cost
        try:
            self.fault_policy = FaultPolicy(fault_policy)
        except ValueError:
            raise ValueError(
                f"unknown fault_policy {fault_policy!r}; expected one of "
                f"{[p.value for p in FaultPolicy]}"
            ) from None
        self.seed = seed
        self.adapter = None
        self.dataplane: DataPlane | None = None
        self._pending_ingests: list[tuple[int, object]] = []

    # Lifecycle defaults: subclasses must execute, may skip cleanup.
    def setup(self, adapter, shards) -> None:
        raise NotImplementedError

    def run_iteration(self, mu: float) -> IterationStats:
        raise NotImplementedError

    # ----------------------------------------------------------- streaming
    def _bind_dataplane(self, dataplane: DataPlane) -> None:
        """Adopt a fresh fit's data plane, dropping any ingest batches
        still queued from a previous fit (they belong to its shards)."""
        self.dataplane = dataplane
        self._pending_ingests = []

    def ingest(self, p: int, X_new) -> None:
        """Queue streamed rows for machine ``p``; applied at the next
        iteration boundary (``drain_ingests``). Validation is eager."""
        if self.dataplane is None:
            raise RuntimeError("ingest() requires an active fit; run setup() first")
        if self.dataplane.is_retired(p):
            # The machine's data stream died with its shard (section 4.3
            # semantics) — a late arrival for it is dropped, not an error.
            return
        X_new = self.dataplane.check_ingest(p, X_new)
        self._pending_ingests.append((int(p), X_new))

    def drain_ingests(self) -> int:
        """Apply every pending ingest in arrival order; returns rows applied.

        Engines call this at the start of ``run_iteration`` — the epoch
        boundary — so streamed rows are coded by the model every machine
        agreed on at the end of the previous iteration. Batches queued
        for a machine that has since been retired are dropped: its data
        stream is lost with its shard (paper section 4.3 semantics).
        """
        if self.dataplane is None or not self._pending_ingests:
            return 0
        pending, self._pending_ingests = self._pending_ingests, []
        rows = 0
        for p, X_new in pending:
            if p not in self.dataplane.shards:
                continue
            batch = self.dataplane.prepare_ingest(p, X_new, validated=True)
            rows += self._apply_ingest(batch)
        return rows

    def _apply_ingest(self, batch) -> int:
        """Deliver one prepared batch to its owning machine.

        The default covers in-process engines, where the data plane owns
        the shard arrays; wall-clock backends override to ship the batch
        to the worker that owns the rows, then account it here.
        """
        return self.dataplane.apply(batch)

    def teardown(self) -> None:
        self._pending_ingests = []

    def close(self) -> None:
        self.teardown()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


_REGISTRY: dict[str, type] = {}


def register_backend(name: str):
    """Class decorator: register a backend under ``name``."""

    def decorate(cls):
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def get_backend(name: str) -> type:
    """Resolve a backend class by registry name.

    >>> get_backend("multiprocess")(epochs=2)     # doctest: +SKIP
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_backends() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)
