"""Execution-backend interface and registry for ParMAC training.

A *backend* is the thing that actually runs one MAC iteration (W step +
Z step) for an adapter over a set of shards. The generic
:class:`~repro.core.trainer.ParMACTrainer` drives any adapter on any
backend through the same four-call lifecycle::

    backend.setup(adapter, shards)      # bind model + data
    stats = backend.run_iteration(mu)   # one W step + one Z step
    ...                                 # (once per mu in the schedule)
    backend.teardown()                  # release per-fit resources

``teardown`` ends one fit but must leave the backend reusable: a later
``setup`` starts the next fit (the multiprocessing backend keeps its
worker pool alive across fits). ``close`` releases everything.

Backends register themselves by name so callers can resolve engines
without importing concrete classes::

    from repro.distributed.backends import get_backend
    Engine = get_backend("multiprocess")
    backend = Engine(epochs=2, seed=0)

This separation of a pluggable execution engine from model-specific
update functions mirrors GraphLab's engine/update-function split and is
what makes ParMAC's model-agnosticism (paper section 9) real in code:
binary autoencoders and deep nets train on the identical engines.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.distributed.batching import supports_unit_batching
from repro.distributed.chaos import ChaosConfig
from repro.distributed.dataplane import ClusterState, DataPlane
from repro.distributed.health import HealthConfig
from repro.utils.validation import check_float_dtype

__all__ = [
    "FaultPolicy",
    "IterationStats",
    "Backend",
    "BaseBackend",
    "register_backend",
    "get_backend",
    "available_backends",
]


class FaultPolicy(str, enum.Enum):
    """What a backend does when a machine dies mid-fit.

    ``FAIL_FAST``
        Any worker death makes the whole fit unrecoverable: the backend
        raises and tears down every peer (the safe default — identical
        to the historical behaviour).
    ``DROP_SHARD``
        The paper's resilience claim (section 4.3): the dead machine's
        shard is excised from the data plane, the ring is re-planned
        around the survivor set, and the fit continues — a failure loses
        only that machine's data, never the run.
    ``RESPAWN``
        Self-healing: the coordinator restores the whole cluster to the
        iteration-start boundary it snapshotted before dispatch, spawns
        replacement workers, re-ships every shard and RNG state, and
        retries the iteration — zero shards lost and a final model
        bit-identical to an uninterrupted run. Bounded by a per-fit
        respawn budget with exponential backoff; on exhaustion the
        policy escalates to ``DROP_SHARD`` semantics (excise the dead
        machine, keep the survivors), and when no survivors remain it
        fails fast. Only meaningful on the wall-clock engines — the
        simulated engines have no process to lose, so an injected fault
        under ``RESPAWN`` is simply absorbed (counted, numerics
        untouched).
    """

    FAIL_FAST = "fail_fast"
    DROP_SHARD = "drop_shard"
    RESPAWN = "respawn"


@dataclass
class IterationStats:
    """What one MAC iteration produced, in backend-neutral form.

    ``time`` is the backend's native duration for the iteration — virtual
    clock units for simulated engines, wall-clock seconds for real ones —
    while ``wall_time`` is always the coordinator-observed elapsed wall
    clock. ``extra`` carries backend-specific detail (per-step times,
    per-frame counts, ...) straight into the history record.

    ``bytes_sent`` and ``hops`` are the backend-neutral wire cost of the
    iteration: total bytes that crossed the ring and the number of
    submodel-message hops they took. The wall-clock backends count both
    from actual traffic; simulated engines account ``bytes_sent`` from
    the cost model's byte counting and leave ``hops`` at 0. Engines with
    no notion of a wire leave both 0.

    ``rows_ingested``, ``shards_lost`` and ``n_machines`` are the data
    plane's per-iteration view: streamed rows applied at this iteration's
    boundary, shards lost to machine deaths during it, and the size of
    the survivor set afterwards — the raw series degradation curves are
    plotted from.

    ``machines_added`` counts machines that joined the ring at this
    iteration's boundary (streaming form 2), and ``replan_s`` is the
    wall-clock cost of admitting them — worker spawn, shard shipping,
    mesh/ring/home re-planning — the join-side analogue of MLSYSIM-style
    re-plan cost modelling.
    """

    mu: float
    e_q: float
    e_ba: float
    z_changes: int
    violations: float
    time: float
    wall_time: float
    extra: dict = field(default_factory=dict)
    bytes_sent: int = 0
    hops: int = 0
    rows_ingested: int = 0
    shards_lost: int = 0
    n_machines: int = 0
    machines_added: int = 0
    replan_s: float = 0.0


@runtime_checkable
class Backend(Protocol):
    """Structural type every execution backend satisfies."""

    def setup(self, adapter, shards) -> None:
        """Bind an adapter and its shards; acquire execution resources."""
        ...

    def run_iteration(self, mu: float) -> IterationStats:
        """Run one full MAC iteration (W step + Z step) at penalty mu.

        On return the adapter's model holds the assembled post-W-step
        parameters, so callers may evaluate it between iterations.
        """
        ...

    def ingest(self, p: int, X_new) -> None:
        """Queue streamed rows for machine ``p`` (paper section 4.3).

        Validation is eager (unknown machine, empty or wrong-width batch
        fail at the call site); application is deferred to the next
        iteration boundary, where the rows are coded by the current
        nested model and shipped to their owning machine.
        """
        ...

    def add_machine(self, X_new, *, after=None) -> int:
        """A preloaded machine joins the ring mid-fit (section 4.3,
        streaming form 2). Returns the new machine id immediately;
        engine plumbing (worker spawn, mesh handshake, ring/home
        re-plan) happens at the next iteration boundary.
        """
        ...

    def checkpoint(self) -> ClusterState:
        """Snapshot the fit between iterations (resumable via
        :meth:`restore`)."""
        ...

    def restore(self, state: ClusterState, adapter=None) -> None:
        """Rebind a fit from a snapshot instead of ``setup``; training
        continues bit-identically from ``state.iteration``."""
        ...

    def teardown(self) -> None:
        """End the current fit; the backend stays reusable for another
        ``setup``."""
        ...

    def close(self) -> None:
        """Release everything, including resources that survive fits."""
        ...


class BaseBackend:
    """Shared construction/config for concrete backends.

    Parameters
    ----------
    epochs : int
        SGD epochs per W step (e).
    scheme : {"rounds", "tworound"}
        W-step communication scheme (paper sections 4.1 / 4.2).
    batch_size : int
        SGD minibatch size within each shard.
    shuffle_within, shuffle_ring : bool
        Within-machine minibatch shuffling and per-epoch ring reshuffling
        (section 4.3).
    cost : CostModel or None
        Virtual-clock constants; ignored by wall-clock backends.
    fault_policy : FaultPolicy or str
        ``"fail_fast"`` (default), ``"drop_shard"`` or ``"respawn"``;
        see :class:`FaultPolicy`.
    respawn_budget : int
        Worker-pool rebuilds allowed per fit under ``"respawn"`` before
        the policy escalates to ``drop_shard`` semantics (default 3).
    respawn_backoff : float
        Base of the exponential backoff slept before each respawn:
        rebuild ``n`` (0-based) waits ``respawn_backoff * 2**n`` seconds
        (default 0.5).
    batch_units : bool
        Run co-resident compatible submodels' W updates as one stacked
        pass (one GEMM per minibatch) instead of per-unit Python loops
        (default True). Engages only when ``shuffle_within`` is off —
        per-unit shuffling demands per-unit draw order — and the adapter
        implements ``w_update_batch``; see
        :mod:`repro.distributed.batching`.
    message_dtype : numpy float dtype or None
        Reduced-precision communication (paper section 9): every ring hop
        round-trips the parameters through this dtype, shrinking wire
        bytes by the itemsize ratio, on simulated *and* wall-clock
        engines alike. None (default) keeps full-precision messages.
    overlap_send : bool
        Pipeline ring sends with compute (default False). Wall-clock
        engines hand just-trained submodels to a double-buffered
        background sender so the next convoy trains while the previous
        one is on the wire; simulated engines model the same overlap in
        their virtual clocks. Timing only — message contents, ordering
        and therefore numerics are unchanged on every engine, and the
        knob is deliberately absent from checkpoint compatibility checks.
        Off by default because the paper's timing model (section 5.1)
        charges the sender serially for each hop.
    chaos : ChaosConfig, dict or None
        Chaos-grade network fault injection (default None — no chaos):
        seeded per-link packet loss (charged as retransmits), delay +
        jitter, reorder holds, a bandwidth throttle, scheduled ring
        partitions and slow-node straggler factors; see
        :class:`~repro.distributed.chaos.ChaosConfig`. Wall-clock
        engines inject the degradations as real latency between framing
        and the wire; simulated engines charge the identical seeded
        event stream to their virtual clocks. Delivery stays
        deterministic, so — like ``overlap_send`` — chaos changes when
        messages travel and what iterations cost, never what is
        computed, and the knob is likewise absent from checkpoint
        compatibility checks. Per-iteration injected-event counts
        surface as ``chaos_*`` keys in ``IterationStats.extra``.
        Scheduled ``crashes`` are the one exception to "timing only":
        they SIGKILL real worker processes on the wall-clock engines
        (and map onto the injected-fault path on the simulated ones) —
        pair them with ``fault_policy="respawn"`` to assert the model
        still comes out bit-identical.
    health : HealthConfig, dict or None
        Heartbeat supervision for the wall-clock engines (default None —
        supervision off, the blunt ``worker_timeout`` cap alone polices
        workers): each worker beats every ``interval_s`` with its phase
        and progress, the coordinator classifies workers live / slow /
        stalled / dead per phase, fails stalled workers long before the
        hard timeout, and surfaces ``health_*`` counters through
        ``IterationStats.extra``. See
        :class:`~repro.distributed.health.HealthConfig`. Simulated
        engines accept and ignore it.
    seed : int or None
    """

    name: str = ""

    def __init__(
        self,
        *,
        epochs: int = 1,
        scheme: str = "rounds",
        batch_size: int = 100,
        shuffle_within: bool = True,
        shuffle_ring: bool = False,
        cost=None,
        fault_policy: FaultPolicy | str = FaultPolicy.FAIL_FAST,
        respawn_budget: int = 3,
        respawn_backoff: float = 0.5,
        batch_units: bool = True,
        message_dtype=None,
        overlap_send: bool = False,
        chaos=None,
        health=None,
        seed=None,
    ):
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        if scheme not in ("rounds", "tworound"):
            raise ValueError(f"unknown scheme {scheme!r}")
        self.epochs = int(epochs)
        self.scheme = scheme
        self.batch_size = int(batch_size)
        self.shuffle_within = bool(shuffle_within)
        self.shuffle_ring = bool(shuffle_ring)
        self.batch_units = bool(batch_units)
        self.message_dtype = (
            None
            if message_dtype is None
            else check_float_dtype(message_dtype, name="message_dtype")
        )
        self.overlap_send = bool(overlap_send)
        self.chaos = ChaosConfig.coerce(chaos)
        self.health = HealthConfig.coerce(health)
        self.cost = cost
        try:
            self.fault_policy = FaultPolicy(fault_policy)
        except ValueError:
            raise ValueError(
                f"unknown fault_policy {fault_policy!r}; expected one of "
                f"{[p.value for p in FaultPolicy]}"
            ) from None
        if respawn_budget < 0:
            raise ValueError(f"respawn_budget must be >= 0, got {respawn_budget}")
        if respawn_backoff < 0:
            raise ValueError(f"respawn_backoff must be >= 0, got {respawn_backoff}")
        self.respawn_budget = int(respawn_budget)
        self.respawn_backoff = float(respawn_backoff)
        self.seed = seed
        self.adapter = None
        self.dataplane: DataPlane | None = None
        self._pending_ingests: list[tuple[int, object]] = []
        self._pending_joins: list[tuple[int, int | None]] = []
        self._iterations_done = 0

    # Lifecycle defaults: subclasses must execute, may skip cleanup.
    def setup(self, adapter, shards) -> None:
        raise NotImplementedError

    def run_iteration(self, mu: float) -> IterationStats:
        raise NotImplementedError

    # --------------------------------------------------------- hot paths
    def units_batched(self) -> bool:
        """Whether this fit runs the batched co-resident-unit W step.

        True when the knob is on, within-shard shuffling is off (a shared
        pass shares its draw order), the bound adapter implements the
        batched entry points, and the engine actually executes numerics
        (simulated engines expose ``execute_updates``; a timing-only
        sweep runs no W kernels at all, batched or otherwise).
        """
        return (
            self.batch_units
            and not self.shuffle_within
            and getattr(self, "execute_updates", True)
            and self.adapter is not None
            and supports_unit_batching(self.adapter)
        )

    @property
    def compute_dtype(self) -> np.dtype:
        """The bound adapter's end-to-end float precision."""
        return np.dtype(getattr(self.adapter, "compute_dtype", np.float64))

    def _dtype_extras(self) -> dict:
        """Per-iteration precision/batching info for ``IterationStats.extra``
        — how the history records what each iteration actually ran with."""
        return {
            "compute_dtype": str(self.compute_dtype),
            "message_dtype": (
                None if self.message_dtype is None else str(self.message_dtype)
            ),
            "batched_w": self.units_batched(),
            "overlap_send": self.overlap_send,
        }

    # ----------------------------------------------------------- streaming
    def _bind_dataplane(self, dataplane: DataPlane) -> None:
        """Adopt a fresh fit's data plane, dropping any ingest batches or
        joins still queued from a previous fit (they belong to its
        shards)."""
        self.dataplane = dataplane
        self._pending_ingests = []
        self._pending_joins = []
        self._iterations_done = 0

    def ingest(self, p: int, X_new) -> None:
        """Queue streamed rows for machine ``p``; applied at the next
        iteration boundary (``drain_ingests``). Validation is eager."""
        if self.dataplane is None:
            raise RuntimeError("ingest() requires an active fit; run setup() first")
        if self.dataplane.is_retired(p):
            # The machine's data stream died with its shard (section 4.3
            # semantics) — a late arrival for it is dropped, not an error.
            return
        X_new = self.dataplane.check_ingest(p, X_new)
        self._pending_ingests.append((int(p), X_new))

    def drain_ingests(self) -> int:
        """Apply every pending ingest in arrival order; returns rows applied.

        Engines call this at the start of ``run_iteration`` — the epoch
        boundary — so streamed rows are coded by the model every machine
        agreed on at the end of the previous iteration. Batches queued
        for a machine that has since been retired are dropped: its data
        stream is lost with its shard (paper section 4.3 semantics).
        """
        if self.dataplane is None or not self._pending_ingests:
            return 0
        pending, self._pending_ingests = self._pending_ingests, []
        rows = 0
        for p, X_new in pending:
            if p not in self.dataplane.shards:
                continue
            batch = self.dataplane.prepare_ingest(p, X_new, validated=True)
            rows += self._apply_ingest(batch)
        return rows

    def _apply_ingest(self, batch) -> int:
        """Deliver one prepared batch to its owning machine.

        The default covers in-process engines, where the data plane owns
        the shard arrays; wall-clock backends override to ship the batch
        to the worker that owns the rows, then account it here.
        """
        return self.dataplane.apply(batch)

    # ---------------------------------------------------------- elasticity
    def add_machine(self, X_new, *, after: int | None = None) -> int:
        """A preloaded machine joins the ring mid-fit (section 4.3,
        streaming form 2); returns its machine id.

        Validation and coding are eager — the shard is checked by
        :meth:`DataPlane.check_join` (the same clear errors ``ingest``
        raises), coded by the current nested model, and registered with
        the data plane at the call site, so ``ingest`` may immediately
        target the new id. Engine plumbing — worker spawn, shard/mesh
        shipping, ring + home + protocol re-plan — is deferred to the
        next iteration boundary, where it's applied before any pending
        ingests drain and surfaces as ``machines_added`` / ``replan_s``
        in that iteration's :class:`IterationStats`.
        """
        if self.dataplane is None:
            raise RuntimeError("add_machine() requires an active fit; run setup() first")
        if after is not None:
            after = int(after)
            if after not in self.dataplane.shards:
                raise KeyError(f"machine {after} does not exist")
        # Reject a machine the engine could never address (e.g. an
        # exhausted explicit TCP ports list) here at the call site,
        # before anything registers with the data plane.
        self._check_join_capacity(self.dataplane._next_machine_id)
        p = self.dataplane.admit(X_new)
        self._pending_joins.append((p, after))
        return p

    def _check_join_capacity(self, p: int) -> None:
        """Engine veto for a machine id about to join (default: none)."""

    def drain_joins(self) -> tuple[int, float]:
        """Admit every pending join in arrival order; returns
        ``(machines_added, replan_seconds)``. Engines call this at the
        start of ``run_iteration``, *before* draining ingests (a batch
        queued for a machine that joined at the same boundary must find
        its worker alive)."""
        if not self._pending_joins:
            return 0, 0.0
        pending, self._pending_joins = self._pending_joins, []
        t0 = time.perf_counter()
        for p, after in pending:
            self._apply_join(p, after)
        return len(pending), time.perf_counter() - t0

    def _apply_join(self, p: int, after: int | None) -> None:
        """Wire one registered-but-unadmitted machine into the engine."""
        raise NotImplementedError

    # ------------------------------------------------------- checkpointing
    def checkpoint(self) -> ClusterState:
        """Snapshot the current fit into a :class:`ClusterState`.

        Valid between iterations (and after a finished fit, while the
        backend is still open). Pending joins must have been drained —
        snapshot either before queueing a join or after the iteration
        that admits it.
        """
        if self.dataplane is None or self.adapter is None:
            raise RuntimeError("checkpoint() requires an active fit; run setup() first")
        if self._pending_joins:
            raise RuntimeError(
                "cannot checkpoint with machines waiting to join; run an "
                "iteration (or checkpoint before add_machine)"
            )
        from repro.distributed.interfaces import get_params_many

        specs = self.adapter.submodel_specs()
        params = {
            s.sid: theta.copy()
            for s, theta in zip(specs, get_params_many(self.adapter, specs))
        }
        shards, rng_states = self._collect_machine_state()
        return ClusterState(
            backend=self.name,
            iteration=self._iterations_done,
            ring_order=self._ring_order(),
            params=params,
            shards=shards,
            bookkeeping=self.dataplane.bookkeeping(),
            route_rng_state=self._route_rng_state(),
            machine_rng_states=rng_states,
            join_entropy=self._join_entropy_value(),
            pending_ingests=[(p, X.copy()) for p, X in self._pending_ingests],
            adapter=self.adapter,
            meta={
                "epochs": self.epochs,
                "scheme": self.scheme,
                "batch_size": self.batch_size,
                "shuffle_within": self.shuffle_within,
                "shuffle_ring": self.shuffle_ring,
                "fault_policy": self.fault_policy.value,
                "batch_units": self.batch_units,
                "message_dtype": (
                    None if self.message_dtype is None else str(self.message_dtype)
                ),
                "compute_dtype": str(self.compute_dtype),
            },
        )

    def restore(self, state: ClusterState, adapter=None) -> None:
        """Rebind a fit from a snapshot (in place of ``setup``).

        ``adapter`` supplies the model object to train (its parameters
        are overwritten from the snapshot); when omitted, the snapshot's
        own pickled adapter is used. Training then continues
        bit-identically from ``state.iteration``.
        """
        raise NotImplementedError

    def _restore_common(self, state: ClusterState, adapter):
        """Shared restore pre-work: check the snapshot matches this
        backend's configuration, resolve the adapter, write the
        snapshot's parameters into it. Returns the resolved adapter."""
        from repro.distributed.interfaces import set_params_many

        self._check_restore_compatible(state)
        if adapter is None:
            adapter = state.adapter
        if adapter is None:
            raise ValueError(
                "state carries no adapter; pass one: restore(state, adapter=...)"
            )
        spec_by_sid = {s.sid: s for s in adapter.submodel_specs()}
        missing = set(spec_by_sid) - set(state.params)
        if missing:
            raise ValueError(
                f"checkpoint is missing parameters for submodels {sorted(missing)}"
            )
        recorded_dtype = (state.meta or {}).get("compute_dtype")
        actual_dtype = str(np.dtype(getattr(adapter, "compute_dtype", np.float64)))
        if recorded_dtype is not None and recorded_dtype != actual_dtype:
            raise ValueError(
                f"checkpoint was trained in {recorded_dtype} but the adapter "
                f"computes in {actual_dtype}; build the model with the "
                "snapshot's compute dtype to resume bit-identically"
            )
        set_params_many(
            adapter,
            [(spec_by_sid[sid], state.params[sid]) for sid in sorted(spec_by_sid)],
        )
        return adapter

    def _check_restore_compatible(self, state: ClusterState) -> None:
        """Refuse a snapshot whose recorded training configuration
        differs from this backend's — resuming under a different
        protocol cannot be bit-identical, so a mismatch is an error, not
        a silent divergence. A different *engine* (same config) only
        warns: snapshots are same-backend artefacts in general, but with
        both shuffles off the RNG states are inert and cross-engine
        restores are legitimately useful.
        """
        import warnings

        mine = {
            "epochs": self.epochs,
            "scheme": self.scheme,
            "batch_size": self.batch_size,
            "shuffle_within": self.shuffle_within,
            "shuffle_ring": self.shuffle_ring,
            "batch_units": self.batch_units,
            "message_dtype": (
                None if self.message_dtype is None else str(self.message_dtype)
            ),
        }
        recorded = state.meta or {}
        mismatched = {
            key: (recorded[key], mine[key])
            for key in mine
            if key in recorded and recorded[key] != mine[key]
        }
        if mismatched:
            detail = ", ".join(
                f"{k}: checkpoint={a!r} vs backend={b!r}"
                for k, (a, b) in sorted(mismatched.items())
            )
            raise ValueError(
                f"checkpoint was taken under a different configuration "
                f"({detail}); construct the backend with the snapshot's "
                "settings to resume bit-identically"
            )
        if state.backend and self.name and state.backend != self.name:
            warnings.warn(
                f"restoring a {state.backend!r} checkpoint on the "
                f"{self.name!r} backend: machine RNG streams are keyed "
                "differently, so the resumed fit is only bit-identical "
                "when shuffle_within and shuffle_ring are off",
                RuntimeWarning,
                stacklevel=3,
            )

    def _restore_pending_ingests(self, state: ClusterState) -> None:
        self._pending_ingests = [
            (int(p), self.dataplane.check_ingest(int(p), X))
            for p, X in state.pending_ingests
        ]
        self._iterations_done = int(state.iteration)

    # Engine hooks for the checkpoint template ---------------------------
    def _collect_machine_state(self) -> tuple[dict, dict]:
        """({machine: shard snapshot}, {machine: RNG state})."""
        raise NotImplementedError

    def _ring_order(self) -> list[int]:
        """Current ring order (machine ids in cycle order)."""
        raise NotImplementedError

    def _route_rng_state(self):
        """Route RNG state dict, or None when the engine has no route RNG."""
        return None

    def _join_entropy_value(self):
        """Entropy of the join-stream lineage, when the engine keeps one."""
        return None

    def teardown(self) -> None:
        self._pending_ingests = []
        self._pending_joins = []

    def close(self) -> None:
        self.teardown()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


_REGISTRY: dict[str, type] = {}


def register_backend(name: str):
    """Class decorator: register a backend under ``name``."""

    def decorate(cls):
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def get_backend(name: str) -> type:
    """Resolve a backend class by registry name.

    >>> get_backend("multiprocess")(epochs=2)     # doctest: +SKIP
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_backends() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)
