"""TCP ring backend: submodels travel real sockets as framed batches.

The closest stand-in for the paper's MPI deployment that a single host
can offer: every worker is an OS process that **owns a listening
socket**, ring neighbours connect point-to-point over TCP, and
:class:`~repro.distributed.messages.SubmodelMessage`s travel as
length-prefixed frames (:mod:`repro.distributed.framing`) — a packed
binary header plus raw ndarray bytes, no pickle on the hot path. Worker
processes are managed exactly like the multiprocessing pool's (same
commands, same shared-memory shard shipping, same persistent-pool
lifecycle); only the *ring transport* differs, which is the point: the
counter protocol is transport-agnostic, so the conformance suite can
assert bit-parity between queues, sockets and the simulators.

Two properties matter for scale-out:

* **Connection mesh.** Each worker dials every peer once at setup (its
  outgoing, send-only sockets) and accepts one connection from every
  peer (incoming, receive-only), identified by a HELLO frame. A fixed
  ring only ever uses the two neighbour links, but ``shuffle_ring``
  re-randomises the ring per epoch (section 4.3) and may route a hop to
  any machine — the mesh makes rerouting a lookup, not a reconnect.

* **Message batching** (``batch_hops``, default on). A machine housing
  several submodels owes its successor one message per resident
  submodel per hop. Sending them individually costs one syscall + one
  wire latency each; instead the transport buffers outgoing messages
  and flushes *one framed batch per destination* whenever the worker is
  about to block on a receive — by which time every message the current
  processing round can produce has been produced. With M/P submodels
  per machine this divides per-hop syscalls and latency by M/P, which
  is exactly the amortisation the paper's near-ideal speedups rely on
  (large M keeps the pipeline full; batching keeps the per-hop overhead
  constant). ``batch_hops=False`` sends each message as its own frame,
  which is what `benchmarks/bench_tcp_wire.py` compares against.

Per-iteration wire cost — payload bytes, frame bytes, hops (messages)
and frames (batches) actually sent — is surfaced through
``IterationStats`` so the wire can be plotted against the perfmodel's
first-principles predictions.

A dead peer is detected, not waited for: a worker blocked on a receive
observes the peer's sockets reset (EOF mid-frame), raises a
:class:`~repro.distributed.framing.ProtocolError`, and reports the
failure. What happens next is the declared
:class:`~repro.distributed.backends.base.FaultPolicy`: under
``fail_fast`` the coordinator tears down the remaining peers; under
``drop_shard`` the surviving workers abort the iteration (closing their
mesh, which cascades the EOF to any peer still blocked), the dead
machine's shard is retired from the data plane, the mesh is rebuilt
over the survivor set (fresh listen sockets, fresh HELLO handshakes —
so no stale frames survive the aborted attempt), routes and homes are
re-planned, and the iteration re-runs. The coordinator also polls
worker liveness directly (inherited from the multiprocessing backend),
so even a silently vanished worker is handled within a bounded delay.

Streaming ingestion and retirement announcements travel as control
frames (``KIND_INGEST`` / ``KIND_SHARD_RETIRED`` in
:mod:`repro.distributed.framing`): on a single host they are carried to
the workers over the command queues as encoded frame bytes — the same
bytes a multi-host deployment would send down a coordinator socket.
"""

from __future__ import annotations

import selectors
import socket
import threading
import time
import traceback

import numpy as np

from repro.distributed.backends.base import FaultPolicy, register_backend
from repro.distributed.backends.mp import (
    _LIVENESS_POLL_S,
    IterationAborted,
    MultiprocessBackend,
    _apply_replan,
    _apply_worker_ingest,
    _AsyncSender,
    _build_worker_state,
    _checkpoint_worker_state,
    _report_model,
    _run_worker_iteration,
)
from repro.distributed.chaos import ChaosShim
from repro.distributed.framing import (
    KIND_BATCH,
    KIND_HEARTBEAT,
    KIND_HELLO,
    KIND_INGEST,
    KIND_JOIN,
    KIND_SHARD_RETIRED,
    KIND_WELCOME,
    FrameDecoder,
    ProtocolError,
    decode_batch,
    decode_heartbeat,
    decode_hello,
    decode_ingest,
    decode_join,
    decode_shard_retired,
    decode_welcome,
    encode_batch,
    encode_heartbeat,
    encode_hello,
    encode_ingest,
    encode_join,
    encode_shard_retired,
    encode_welcome,
)
from repro.distributed.health import HeartbeatSender, WorkerPulse
from repro.distributed.interfaces import get_params_many, set_params_many
from repro.distributed.messages import SubmodelMessage
from repro.distributed.protocol import RoutePlan

__all__ = ["TCPBackend"]


# --------------------------------------------------------------- transport
class _SocketRingTransport:
    """Ring transport over the established TCP mesh, with coalescing.

    ``send`` buffers per destination when ``batch_hops`` is on; ``recv``
    flushes all buffers before blocking (so no worker ever sleeps on a
    receive while holding messages a peer is waiting for — the
    protocol-level no-deadlock invariant) and then multiplexes the
    incoming connections, feeding each socket's bytes through its own
    frame decoder.

    Transport-level deadlock is prevented too: outgoing sockets are
    non-blocking, and a send that fills the kernel buffer *keeps reading
    incoming frames while waiting for writability*. Otherwise a frame
    larger than the in-flight socket capacity could wedge the whole ring
    — every worker blocked in ``sendall`` to a peer that cannot read
    because it is itself blocked sending.

    ``overlap=True`` moves the socket writes to a double-buffered
    background :class:`~repro.distributed.backends.mp._AsyncSender`: the
    worker's training thread encodes the frame (numerics and wire
    accounting unchanged) and hands the bytes off, so the next convoy
    trains while the previous one is on the wire. The sender thread then
    owns every outgoing socket exclusively — it uses plain blocking
    ``sendall`` and **never** touches the inbound sockets (the inbox and
    frame decoders stay main-thread-only). That cannot deadlock the
    ring: backpressure blocks only the sender thread, while every
    machine's main thread always returns to its receive loop and keeps
    draining inbound frames.
    """

    def __init__(self, rank, out_conns, in_conns, spec_by_sid, *, batch_hops=True,
                 wire_dtype=None, compute_dtype=None, overlap=False,
                 chaos_shim=None):
        self.rank = rank
        self._out = out_conns
        self._in = in_conns
        self._peer_of = {conn: peer for peer, conn in in_conns.items()}
        self._spec_by_sid = spec_by_sid
        self.batch_hops = bool(batch_hops)
        # Reduced-precision wire (paper section 9): parameters are cast
        # down before framing — the frame's ndarray bytes genuinely shrink
        # (the dtype travels in the per-message header) — and cast back to
        # the compute dtype on receive. The worker already round-tripped
        # theta after training, so both casts are value-exact.
        self._wire_dtype = wire_dtype
        self._compute_dtype = compute_dtype
        # Chaos shim: verdicts are drawn per *message* at send() time (so
        # the per-link RNG consumption matches the simulated engines and
        # the queue transport, hop for hop, regardless of how batch_hops
        # coalesces messages into frames) and accumulated per destination;
        # the summed delay is served as one sleep when the frame actually
        # transmits — on the sender thread under overlap_send, so overlap
        # hides injected latency exactly as it hides real latency.
        self._chaos = chaos_shim
        self._chaos_delay: dict[int, float] = {}
        self._outbox: dict[int, list] = {}
        self._inbox: list = []
        self._decoders = {peer: FrameDecoder() for peer in in_conns}
        self._selector = selectors.DefaultSelector()
        for peer, conn in in_conns.items():
            self._selector.register(conn, selectors.EVENT_READ, peer)
        self._sender = _AsyncSender(self._transmit_background) if overlap else None
        for conn in out_conns.values():
            # Overlap: the sender thread owns the outgoing sockets and
            # blocks in sendall, so they stay in blocking mode.
            conn.setblocking(self._sender is not None)
        self.msgs_sent = 0
        self.frames_sent = 0
        self.bytes_sent = 0
        self.payload_bytes = 0

    # ------------------------------------------------------------- sending
    def send(self, dest: int, msg) -> None:
        if self._wire_dtype is not None and dest != self.rank:
            msg.theta = np.asarray(msg.theta, dtype=self._wire_dtype)
        self.msgs_sent += 1
        self.payload_bytes += msg.nbytes
        if self._chaos is not None and dest != self.rank:
            self._chaos_delay[dest] = self._chaos_delay.get(
                dest, 0.0
            ) + self._chaos.send_delay(dest, msg.nbytes)
        if self.batch_hops:
            self._outbox.setdefault(dest, []).append(msg)
        else:
            self._transmit(dest, [msg])

    def flush(self) -> None:
        for dest, msgs in self._outbox.items():
            if msgs:
                self._transmit(dest, msgs)
        self._outbox = {}

    def _transmit(self, dest: int, msgs) -> None:
        frame = encode_batch(msgs)
        self.frames_sent += 1
        self.bytes_sent += len(frame)
        delay = self._chaos_delay.pop(dest, 0.0)
        if self._sender is not None:
            self._sender.submit(dest, frame, delay)
            return
        if delay > 0.0:
            time.sleep(delay)
        conn = self._out[dest]
        view = memoryview(frame)
        while view:
            try:
                view = view[conn.send(view) :]
            except (BlockingIOError, InterruptedError):
                self._read_while_unwritable(conn)
            except OSError as exc:
                raise ProtocolError(f"send to machine {dest} failed: {exc}") from exc

    def _transmit_background(self, dest: int, frame, delay: float = 0.0) -> None:
        """Sender-thread write: blocking sendall, no inbound reads."""
        if delay > 0.0:
            time.sleep(delay)
        try:
            self._out[dest].sendall(frame)
        except OSError as exc:
            raise ProtocolError(f"send to machine {dest} failed: {exc}") from exc

    def _read_while_unwritable(self, conn) -> None:
        """Blocked on a full send buffer: drain peers until writable.

        Uses the transport's selector (``data=None`` marks the one
        write-registered socket; incoming sockets carry their peer id)
        rather than ``select.select``, whose FD_SETSIZE cap would fail
        on high fd numbers.
        """
        self._selector.register(conn, selectors.EVENT_WRITE, None)
        try:
            for key, _ in self._selector.select(timeout=1.0):
                if key.data is not None:
                    self._read_socket(key.fileobj)
        finally:
            self._selector.unregister(conn)

    # ----------------------------------------------------------- receiving
    def _read_socket(self, conn) -> None:
        """Pull available bytes off one incoming connection into the inbox."""
        peer = self._peer_of[conn]
        try:
            data = conn.recv(1 << 16)
        except OSError as exc:
            raise ProtocolError(f"receive from machine {peer} failed: {exc}") from exc
        decoder = self._decoders[peer]
        if not data:
            decoder.eof()
            raise ProtocolError(f"machine {peer} closed its connection mid-W-step")
        for kind, payload in decoder.feed(data):
            if kind != KIND_BATCH:
                raise ProtocolError(f"unexpected frame kind {kind} mid-W-step")
            self._inbox.extend(decode_batch(payload, self._spec_by_sid))

    def recv(self):
        if not self._inbox:
            self.flush()
            while not self._inbox:
                events = self._selector.select(timeout=_LIVENESS_POLL_S)
                if not events and self._sender is not None:
                    # Nothing inbound: surface a background send failure
                    # instead of waiting for frames a dead peer will
                    # never produce.
                    self._sender.check()
                for key, _ in events:
                    self._read_socket(key.fileobj)
        msg = self._inbox.pop(0)
        if self._wire_dtype is not None:
            msg.theta = np.asarray(msg.theta, dtype=self._compute_dtype)
        return msg

    # -------------------------------------------------------------- stats
    def wire_stats(self) -> dict:
        stats = {
            "hops": self.msgs_sent,
            "frames": self.frames_sent,
            "bytes_sent": self.bytes_sent,
            "payload_bytes": self.payload_bytes,
        }
        if self._chaos is not None:
            stats.update(self._chaos.counters)
        return stats

    def drain(self) -> None:
        """Wait for background sends to finish (no-op without overlap)."""
        if self._sender is not None:
            self._sender.drain()

    def close(self) -> None:
        if self._sender is not None:
            self._sender.close()
        self._selector.close()


# ----------------------------------------------------------------- sockets
def _connect_with_retry(addr, timeout: float, *, first_delay: float = 0.05):
    """Dial ``addr``, retrying with backoff within the ``timeout`` budget.

    A single ``socket.create_connection`` call gets exactly one chance:
    a peer that is slow to reach ``listen()`` — or whose accept backlog
    is momentarily full — answers with a refusal, and a one-shot dial
    turns that transient into a hard setup failure even though the peer
    would have been ready milliseconds later. Retry refused/reset/timed
    out dials with exponential backoff until the overall budget is
    spent; each attempt's own timeout is the budget remaining. Errors
    that no amount of waiting fixes (unroutable address, bad family)
    raise immediately.
    """
    deadline = time.monotonic() + timeout
    delay = first_delay
    last: BaseException | None = None
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            break
        try:
            return socket.create_connection(addr, timeout=remaining)
        except (
            ConnectionRefusedError,
            ConnectionResetError,
            ConnectionAbortedError,
            TimeoutError,
        ) as exc:
            last = exc
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            break
        time.sleep(min(delay, remaining))
        delay = min(delay * 2.0, 0.5)
    raise ProtocolError(
        f"could not connect to {addr} within {timeout}s: {last}"
    ) from last


def _read_frames(conn, n: int, timeout: float) -> list[tuple[int, bytes]]:
    """Blocking read of exactly ``n`` frames from one connection.

    Used for handshakes (HELLO; JOIN → WELCOME + BATCH), where the
    sender transmits a known frame sequence and nothing else: coalesced
    arrivals are handled, but any bytes beyond the ``n``-th frame are a
    protocol violation.
    """
    decoder = FrameDecoder()
    frames: list[tuple[int, bytes]] = []
    conn.settimeout(timeout)
    try:
        while True:
            try:
                data = conn.recv(1 << 16)
            except TimeoutError as exc:
                # A peer that stops sending mid-handshake (wedged, paused,
                # partitioned) must surface as a *protocol* failure like
                # every other handshake violation — a raw socket timeout
                # would escape the callers' ProtocolError handling, so the
                # drop_shard abort-and-recover path would never engage.
                raise ProtocolError(
                    f"peer stalled mid-handshake: no bytes for {timeout}s "
                    f"({'mid-frame' if decoder.pending else 'between frames'})"
                ) from exc
            except OSError as exc:
                raise ProtocolError(f"handshake read failed: {exc}") from exc
            if not data:
                decoder.eof()
                raise ProtocolError("connection closed before a full frame arrived")
            frames.extend(decoder.feed(data))
            if len(frames) >= n:
                if len(frames) > n or decoder.pending:
                    raise ProtocolError("unexpected bytes after handshake frames")
                return frames
    finally:
        conn.settimeout(None)


def _read_one_frame(conn, timeout: float) -> tuple[int, bytes]:
    """Blocking read of exactly one frame (used for the HELLO handshake)."""
    return _read_frames(conn, 1, timeout)[0]


def _close_net(net: dict | None) -> None:
    if not net:
        return
    for sock in [net.get("listen"), *net.get("out", {}).values(),
                 *net.get("in", {}).values()]:
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass


# ------------------------------------------------------------------ worker
def _bind_listen_socket(host: str, port: int, batch_hops: bool) -> dict:
    """A fresh net dict around a newly bound listening socket."""
    listen = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        listen.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listen.bind((host, port))
        listen.listen(16)
    except OSError:
        # A failed bind (port taken, bad host) must not leak the fd:
        # workers retry binds during elastic joins, and each leaked
        # socket holds a port until GC.
        listen.close()
        raise
    return {"listen": listen, "out": {}, "in": {}, "batch_hops": batch_hops}


def _decode_control_blob(blob: bytes, expected_kind: int) -> list:
    """Decode a blob of concatenated control frames of one kind."""
    decoders = {
        KIND_INGEST: decode_ingest,
        KIND_SHARD_RETIRED: decode_shard_retired,
    }
    out = []
    decoder = FrameDecoder()
    for kind, payload in decoder.feed(blob):
        if kind != expected_kind:
            raise ProtocolError(
                f"expected control frame kind {expected_kind}, got {kind}"
            )
        out.append(decoders[expected_kind](payload))
    decoder.eof()
    return out


def _tcp_worker_main(rank, cmd_q, res, connect_timeout):
    """TCP pool worker: the mp command loop plus socket lifecycle.

    Commands: ``setup`` binds the listening socket and replies with the
    actual port; ``connect`` receives the full port map, dials every
    peer, accepts every peer, and acks; ``iter`` runs one MAC iteration
    with the socket transport; ``ingest`` appends a framed batch of
    streamed rows to the local shard; ``rebind``/``replan`` rebuild the
    mesh and adopt the survivor plan after a ``drop_shard`` recovery;
    ``stop`` closes everything.
    """
    state = None
    net: dict | None = None
    pulse = WorkerPulse()
    beat: HeartbeatSender | None = None
    send_lock = threading.Lock()

    def reply(obj) -> None:
        # The heartbeat thread shares this connection with the command
        # loop; Connection.send is not safe under concurrent writers.
        with send_lock:
            res.send(obj)

    while True:
        cmd = cmd_q.get()
        op = cmd[0]
        if op == "stop":
            if beat is not None:
                beat.stop()
            _close_net(net)
            if state is not None and state["seg"] is not None:
                state["seg"].close()
            break
        try:
            if op == "setup":
                (_, adapter, desc, protocol, homes, batch_size, shuffle_within,
                 seed, rng_state, message_dtype, batch_units, overlap_send,
                 chaos, cpuset, health, host, port, batch_hops,
                 drop_on_fault) = cmd
                _close_net(net)  # a new fit rebuilds the mesh
                net = None
                if state is not None and state["seg"] is not None:
                    state["seg"].close()
                state = _build_worker_state(
                    rank, adapter, desc, protocol, homes, batch_size,
                    shuffle_within, seed, rng_state, message_dtype, batch_units,
                    overlap_send, cpuset, chaos,
                )
                state["pulse"] = pulse
                state["batch_hops"] = batch_hops
                state["drop_on_fault"] = drop_on_fault
                if health is not None and beat is None:
                    # Beats travel as encoded HEARTBEAT control frames —
                    # the same bytes a multi-host deployment would send
                    # down a coordinator socket — carried here over the
                    # single-host response channel.
                    beat = HeartbeatSender(
                        lambda seq, phase, progress: reply(
                            (rank, "beat",
                             encode_heartbeat(rank, seq, progress, phase))
                        ),
                        health.interval_s,
                        pulse,
                    )
                net = _bind_listen_socket(host, port, batch_hops)
                reply((rank, "port", net["listen"].getsockname()[1]))
            elif op == "checkpoint":
                reply((rank, "checkpoint", _checkpoint_worker_state(state)))
            elif op == "rebind":
                # Drop_shard recovery, phase 1: fresh listen socket (the
                # old mesh is dirty — dead-peer links, possibly stale
                # frames from the aborted iteration).
                _, host, port = cmd
                _close_net(net)
                net = _bind_listen_socket(host, port, state["batch_hops"])
                reply((rank, "port", net["listen"].getsockname()[1]))
            elif op == "connect":
                _, addr_map = cmd
                peers = sorted(p for p in addr_map if p != rank)
                # Dialling succeeds as soon as the peer's listen backlog
                # completes the handshake, so every worker can dial all
                # peers before any of them reaches accept() — no
                # deadlock, no ordering protocol needed. Retried with
                # backoff: a peer may not have bound its listener yet.
                for peer in peers:
                    conn = _connect_with_retry(addr_map[peer], connect_timeout)
                    conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                    conn.sendall(encode_hello(rank))
                    net["out"][peer] = conn
                net["listen"].settimeout(connect_timeout)
                try:
                    while len(net["in"]) < len(peers):
                        conn, _ = net["listen"].accept()
                        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                        kind, payload = _read_one_frame(conn, connect_timeout)
                        if kind != KIND_HELLO:
                            raise ProtocolError(
                                f"expected HELLO on fresh connection, got kind {kind}"
                            )
                        net["in"][decode_hello(payload)] = conn
                finally:
                    net["listen"].settimeout(None)
                # Like the queue worker's setup ack, report the cpuset
                # actually applied (None when pinning is off).
                reply((rank, "ready", state["cpuset"]))
            elif op == "join_mesh":
                # An established worker links a machine joining mid-fit
                # into its mesh: accept the joiner's JOIN-identified
                # connection (incoming link), optionally hand it the
                # current model (WELCOME + BATCH back over that same
                # socket — the only time a "receive" link carries writes),
                # and dial the joiner's listener (outgoing link).
                _, new_rank, addr, is_donor = cmd
                net["listen"].settimeout(connect_timeout)
                try:
                    conn, _ = net["listen"].accept()
                finally:
                    net["listen"].settimeout(None)
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                kind, payload = _read_one_frame(conn, connect_timeout)
                if kind != KIND_JOIN:
                    raise ProtocolError(
                        f"expected JOIN from a joining machine, got kind {kind}"
                    )
                if decode_join(payload) != new_rank:
                    raise ProtocolError(
                        f"JOIN announced machine {decode_join(payload)}, "
                        f"expected {new_rank}"
                    )
                if is_donor:
                    specs = state["specs"]
                    finals = [
                        SubmodelMessage.final(s, theta)
                        for s, theta in zip(
                            specs, get_params_many(state["adapter"], specs)
                        )
                    ]
                    conn.sendall(
                        encode_welcome(rank, len(finals)) + encode_batch(finals)
                    )
                net["in"][new_rank] = conn
                out = _connect_with_retry(addr, connect_timeout)
                out.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                out.sendall(encode_hello(rank))
                net["out"][new_rank] = out
                reply((rank, "joined", None))
            elif op == "join_handshake":
                # The joining worker handshakes into the standing mesh:
                # dial every peer with a JOIN frame, read the donor's
                # WELCOME + submodel BATCH off the donor link, then accept
                # every peer's HELLO-identified connection.
                _, addr_map, donor, n_submodels = cmd
                peers = sorted(p for p in addr_map if p != rank)
                for peer in peers:
                    conn = _connect_with_retry(addr_map[peer], connect_timeout)
                    conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                    conn.sendall(encode_join(rank))
                    net["out"][peer] = conn
                frames = _read_frames(net["out"][donor], 2, connect_timeout)
                (kind_w, payload_w), (kind_b, payload_b) = frames
                if kind_w != KIND_WELCOME or kind_b != KIND_BATCH:
                    raise ProtocolError(
                        f"expected WELCOME then BATCH from the donor, got "
                        f"kinds {kind_w}, {kind_b}"
                    )
                donor_rank, n_expected_models = decode_welcome(payload_w)
                if donor_rank != donor:
                    raise ProtocolError(
                        f"WELCOME names donor {donor_rank}, expected {donor}"
                    )
                finals = decode_batch(payload_b, state["spec_by_sid"])
                if len(finals) != n_expected_models or n_expected_models != n_submodels:
                    raise ProtocolError(
                        f"WELCOME hand-off carried {len(finals)} submodels, "
                        f"expected {n_submodels}"
                    )
                set_params_many(
                    state["adapter"], [(m.spec, m.theta) for m in finals]
                )
                net["listen"].settimeout(connect_timeout)
                try:
                    while len(net["in"]) < len(peers):
                        conn, _ = net["listen"].accept()
                        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                        kind, payload = _read_one_frame(conn, connect_timeout)
                        if kind != KIND_HELLO:
                            raise ProtocolError(
                                f"expected HELLO on fresh connection, got kind {kind}"
                            )
                        net["in"][decode_hello(payload)] = conn
                finally:
                    net["listen"].settimeout(None)
                reply((rank, "joined", state["cpuset"]))
            elif op == "ingest":
                _, frame = cmd
                (msg,) = _decode_control_blob(frame, KIND_INGEST)
                if msg.machine != rank:
                    raise ProtocolError(
                        f"ingest frame for machine {msg.machine} delivered "
                        f"to rank {rank}"
                    )
                n = _apply_worker_ingest(state, msg.X, msg.F, msg.Z, msg.indices)
                reply((rank, "ingested", n))
            elif op == "replan":
                _, protocol, homes, retired_blob = cmd
                # The retirement announcement arrives as SHARD_RETIRED
                # control frames — validated here even on a single host,
                # so the multi-host control channel ships proven bytes.
                if retired_blob:
                    _decode_control_blob(retired_blob, KIND_SHARD_RETIRED)
                _apply_replan(rank, state, protocol, homes)
                reply((rank, "replanned", None))
            elif op == "model":
                reply((rank, "model", _report_model(state)))
            elif op == "iter":
                _, mu, orders, n_expected, _gen, model_rank, crash = cmd
                plan = RoutePlan.from_orders(orders, state["protocol"])
                chaos_cfg = state.get("chaos")
                # A fresh shim per iteration realigns the per-link RNG
                # streams with the simulated engines' per-W-step timeline.
                shim = (
                    ChaosShim(chaos_cfg, rank, clock=time.monotonic)
                    if chaos_cfg is not None and chaos_cfg.active()
                    else None
                )
                transport = _SocketRingTransport(
                    rank,
                    net["out"],
                    net["in"],
                    state["spec_by_sid"],
                    batch_hops=net["batch_hops"],
                    wire_dtype=(
                        state["message_dtype"]
                        if state["protocol"].n_machines > 1
                        else None
                    ),
                    compute_dtype=state["compute_dtype"],
                    overlap=(
                        state.get("overlap_send", False)
                        and state["protocol"].n_machines > 1
                    ),
                    chaos_shim=shim,
                )
                try:
                    try:
                        payload = _run_worker_iteration(
                            rank, state, mu, plan, n_expected, transport,
                            model_rank, chaos_shim=shim, crash=crash,
                        )
                    finally:
                        transport.close()
                except (ProtocolError, IterationAborted):
                    if not state.get("drop_on_fault"):
                        raise
                    # A peer vanished mid-iteration and the policy says
                    # survive: drop the dirty mesh (cascading the EOF to
                    # any peer still blocked) and await the re-plan.
                    _close_net(net)
                    net = None
                    reply((rank, "aborted", traceback.format_exc()))
                else:
                    reply((rank, "result", payload))
        except Exception:
            reply((rank, "error", traceback.format_exc()))


# ------------------------------------------------------------- coordinator
@register_backend("tcp")
class TCPBackend(MultiprocessBackend):
    """ParMAC over a pool of OS processes ringed by real TCP sockets.

    Extra parameters beyond :class:`MultiprocessBackend`:

    host : str
        Interface the workers bind and dial (default loopback; the
        design generalises to multi-host once workers are launched
        remotely, which is why addresses travel in the port map).
    ports : sequence of int, int, or None
        ``None`` (default): every worker binds an OS-assigned free port
        — race-free, recommended. A sequence pins worker ``r`` to
        ``ports[r]``; a single int pins worker ``r`` to ``ports + r``.
    batch_hops : bool
        Coalesce all messages a worker owes one successor into a single
        framed batch per hop (default True). Off = one frame per
        message, for measuring what batching buys.
    connect_timeout : float
        Seconds allowed for dialling/accepting each mesh connection.
    """

    _worker_fn = staticmethod(_tcp_worker_main)
    _needs_ring_queues = False

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        ports=None,
        batch_hops: bool = True,
        connect_timeout: float = 10.0,
        **kwargs,
    ):
        super().__init__(**kwargs)
        self.host = host
        self.ports = ports
        self.batch_hops = bool(batch_hops)
        self.connect_timeout = float(connect_timeout)
        self._addr_map: dict[int, tuple] = {}

    def _worker_args(self, rank: int, res_conn) -> tuple:
        return (rank, self._cmd_qs[rank], res_conn, self.connect_timeout)

    def _port_for(self, rank: int) -> int:
        if self.ports is None:
            return 0
        if isinstance(self.ports, int):
            return self.ports + rank
        ports = list(self.ports)
        if rank >= len(ports):
            raise ValueError(
                f"ports has {len(ports)} entries but worker {rank} needs one"
            )
        return int(ports[rank])

    def _ship_setup(self, adapter, descs: dict, rng_states: dict | None = None) -> None:
        """Three-phase socket setup: bind, exchange ports, build the mesh."""
        base_seed = 0 if self.seed is None else int(self.seed)
        cpusets = self._cpusets(sorted(descs))
        for rank in sorted(descs):
            self._cmd_qs[rank].put(
                (
                    "setup",
                    adapter,
                    descs[rank],
                    self._protocol,
                    self._homes,
                    self.batch_size,
                    self.shuffle_within,
                    base_seed + rank,
                    None if rng_states is None else rng_states.get(rank),
                    self.message_dtype,
                    self.batch_units,
                    self.overlap_send,
                    self.chaos,
                    cpusets.get(rank),
                    self.health,
                    self.host,
                    self._port_for(rank),
                    self.batch_hops,
                    self._drop_on_fault(),
                )
            )
        self._connect_mesh()

    def _drop_on_fault(self) -> bool:
        """Whether workers should *abort and await recovery* on a peer
        death instead of failing: true for both survivor policies —
        ``drop_shard`` re-plans around the loss, ``respawn`` rewinds and
        retries — since either way the coordinator needs clean abort
        acks, not errors, out of the survivors."""
        return self.fault_policy in (FaultPolicy.DROP_SHARD, FaultPolicy.RESPAWN)

    def _connect_mesh(self) -> None:
        """Exchange bound ports and build the all-pairs socket mesh."""
        bound = self._collect("port")
        addr_map = {rank: (self.host, port) for rank, port in bound.items()}
        self._addr_map = dict(addr_map)
        for rank in self._ranks:
            self._cmd_qs[rank].put(("connect", addr_map))
        ready = self._collect("ready")
        self._worker_cpusets = {
            r: cs for r, cs in ready.items() if cs is not None
        }

    def _dispatch_iteration(self, mu: float, plan, expected: dict,
                            model_rank: int, crashes: dict | None = None) -> None:
        crashes = crashes or {}
        orders = plan.to_orders()
        if self._monitor is not None:
            self._monitor.begin_phase(self._ranks)
        for rank in self._ranks:
            self._cmd_qs[rank].put(
                ("iter", mu, orders, expected[rank], self._gen, model_rank,
                 crashes.get(rank))
            )

    def _observe_beat(self, rank: int, payload) -> None:
        """Decode a framed HEARTBEAT (the tcp workers beat with the same
        bytes a coordinator socket would carry) and feed the monitor."""
        if self._monitor is None:
            return
        for kind, frame_payload in FrameDecoder().feed(payload):
            if kind != KIND_HEARTBEAT:
                raise ProtocolError(
                    f"expected HEARTBEAT control frame, got kind {kind}"
                )
            beat_rank, seq, progress, phase = decode_heartbeat(frame_payload)
            self._monitor.observe(beat_rank, seq, phase, progress)

    # ----------------------------------------------------------- elasticity
    def _check_join_capacity(self, p: int) -> None:
        """An explicit ports list must cover the joiner's rank — checked
        before any pool/topology state changes, so an exhausted list
        rejects the join cleanly instead of corrupting the fit."""
        self._port_for(p)

    def _ship_join(self, p: int, desc, old_ranks) -> None:
        """Socket flavour of the join: the new worker binds and announces
        its port, every standing worker links it in (JOIN accepted, HELLO
        dialed), and the donor — the lowest live rank — hands the current
        submodels over as a WELCOME + framed BATCH. No pickle: the model
        reaches the joiner exactly as it travels the ring.
        """
        base_seed = 0 if self.seed is None else int(self.seed)
        self._cmd_qs[p].put(
            (
                "setup",
                self.adapter,
                desc,
                self._protocol,
                self._homes,
                self.batch_size,
                self.shuffle_within,
                base_seed + p,
                None,
                self.message_dtype,
                self.batch_units,
                self.overlap_send,
                self.chaos,
                self._cpusets(old_ranks + [p]).get(p),
                self.health,
                self.host,
                self._port_for(p),
                self.batch_hops,
                self._drop_on_fault(),
            )
        )
        bound = self._collect("port", ranks=[p])
        addr = (self.host, bound[p])
        donor = old_ranks[0]
        for rank in old_ranks:
            self._cmd_qs[rank].put(("join_mesh", p, addr, rank == donor))
        self._cmd_qs[p].put(
            (
                "join_handshake",
                {r: self._addr_map[r] for r in old_ranks},
                donor,
                len(self._specs),
            )
        )
        joined = self._collect("joined", ranks=[*old_ranks, p])
        if joined.get(p) is not None:
            self._worker_cpusets[p] = joined[p]
        self._addr_map[p] = addr

    # ------------------------------------------------------------ recovery
    def _request_abort(self, ranks) -> None:
        """No injection needed: survivors observe the dead peer's sockets
        reset (or an aborting peer's mesh teardown) and self-abort."""

    def _apply_ingest(self, batch) -> int:
        """Ship one drained batch to its worker as an INGEST frame."""
        self._cmd_qs[batch.machine].put(("ingest", encode_ingest(batch)))
        self._collect("ingested", ranks=[batch.machine])
        return self.dataplane.apply(batch)

    def _rebuild_transport(self, retired) -> None:
        """Rebuild the socket mesh over the survivor set (fresh listen
        sockets and HELLO handshakes — no stale frames survive)."""
        for rank in self._ranks:
            self._cmd_qs[rank].put(("rebind", self.host, self._port_for(rank)))
        self._connect_mesh()

    def _announce_replan(self, retired, ranks=None) -> None:
        ranks = list(self._ranks) if ranks is None else list(ranks)
        blob = b"".join(encode_shard_retired(m) for m in retired)
        for rank in ranks:
            self._cmd_qs[rank].put(("replan", self._protocol, self._homes, blob))
        self._collect("replanned", ranks=ranks)
