"""Simulated-cluster backends: the in-process reference engines.

Thin adapters putting :class:`~repro.distributed.cluster.SimulatedCluster`
behind the generic :class:`~repro.distributed.backends.base.Backend`
lifecycle. ``sync`` is the deterministic tick engine (fig. 3, supports
fault injection); ``async`` is the discrete-event engine the speedup
experiments measure. Both report virtual-clock time in
``IterationStats.time``.

Streaming and fault handling are *backend capabilities* here, not
simulator specials: ``ingest`` queues rows through the same
:class:`~repro.distributed.dataplane.DataPlane` the wall-clock engines
drive (drained at iteration boundaries), and :meth:`inject_fault` kills
a simulated machine mid-W-step — honoured according to the declared
:class:`~repro.distributed.backends.base.FaultPolicy`: ``fail_fast``
raises exactly like a wall-clock pool teardown would, ``drop_shard``
excises the shard, re-plans the ring around the survivors, and keeps
training (paper section 4.3).
"""

from __future__ import annotations

import copy
import time

from repro.distributed.backends.base import (
    BaseBackend,
    FaultPolicy,
    IterationStats,
    register_backend,
)
from repro.distributed.cluster import FaultEvent, SimulatedCluster
from repro.distributed.costmodel import CostModel
from repro.distributed.dataplane import ClusterState, DataPlane

__all__ = ["SyncSimBackend", "AsyncSimBackend"]


class _SimBackend(BaseBackend):
    """Common machinery for the two simulated engines.

    Extra parameters beyond :class:`BaseBackend` (``message_dtype`` and
    ``batch_units`` are base knobs shared by every engine):

    execute_updates : bool
        When False, skip the numerics and only simulate time (timing-only
        protocol sweeps).
    """

    engine: str = ""

    def __init__(self, *, execute_updates: bool = True, **kwargs):
        super().__init__(**kwargs)
        self.execute_updates = bool(execute_updates)
        self.cluster: SimulatedCluster | None = None
        self._pending_fault: FaultEvent | None = None

    def setup(self, adapter, shards) -> None:
        self.adapter = adapter
        self._bind_dataplane(DataPlane(adapter, shards))
        self._pending_fault = None
        self.cluster = SimulatedCluster(
            adapter,
            shards,
            epochs=self.epochs,
            scheme=self.scheme,
            batch_size=self.batch_size,
            shuffle_within=self.shuffle_within,
            shuffle_ring=self.shuffle_ring,
            cost=self.cost if self.cost is not None else CostModel(),
            engine=self.engine,
            execute_updates=self.execute_updates,
            message_dtype=self.message_dtype,
            batch_units=self.batch_units,
            overlap_send=self.overlap_send,
            chaos=self.chaos,
            dataplane=self.dataplane,
            seed=self.seed,
        )

    # --------------------------------------------------------------- faults
    def inject_fault(self, machine: int, *, tick: int = 0) -> None:
        """Schedule machine ``machine`` to die during the next W step.

        Only the ``sync`` engine supports mid-W-step faults (the
        discrete-event engine has no tick to anchor them to); the effect
        is governed by ``fault_policy``.
        """
        if self.engine != "sync":
            raise ValueError(
                "fault injection is only supported by the sync engine"
            )
        if self.cluster is None:
            raise RuntimeError("setup() must run before inject_fault()")
        if machine not in self.cluster.shards:
            raise KeyError(f"machine {machine} does not exist")
        self._pending_fault = FaultEvent(machine=int(machine), tick=int(tick))

    def run_iteration(self, mu: float) -> IterationStats:
        if self.cluster is None:
            raise RuntimeError("setup() must run before run_iteration()")
        cluster = self.cluster
        added, replan_s = self.drain_joins()
        rows = self.drain_ingests()
        fault, self._pending_fault = self._pending_fault, None
        lost_before = self.dataplane.shards_lost
        crashed = []
        if self.chaos is not None:
            crashed = [
                ev.machine
                for ev in self.chaos.crashes
                if ev.iteration == self._iterations_done
                and ev.machine in cluster.shards
            ]
        respawns = 0
        if self.fault_policy is FaultPolicy.RESPAWN:
            # A simulated machine has no process to lose: the "respawned"
            # cluster is by construction back at the iteration boundary,
            # so the retried iteration *is* the fault-free iteration.
            # Absorb the death, count it, keep the numerics untouched —
            # the same bit-identity contract the wall-clock engines
            # deliver the hard way.
            respawns = len(crashed) + (1 if fault is not None else 0)
            fault = None
            crashed = []
        if crashed and fault is None:
            if self.fault_policy is FaultPolicy.DROP_SHARD and self.engine != "sync":
                raise RuntimeError(
                    "scheduled chaos crashes under 'drop_shard' are only "
                    "supported by the sync engine (no fault path to map "
                    "them onto)"
                )
            fault = FaultEvent(machine=int(crashed[0]), tick=0)
        if fault is not None and self.fault_policy is FaultPolicy.FAIL_FAST:
            raise RuntimeError(
                f"machine {fault.machine} died mid-iteration; "
                "fit aborted (fault_policy='fail_fast')"
            )
        t0 = time.perf_counter()
        wstats, zstats = cluster.iteration(mu, fault=fault)
        wall = time.perf_counter() - t0
        if fault is not None and fault.machine in cluster.shards:
            # The W step drained before the scheduled tick: the requested
            # death never happened. A resilience experiment must not
            # silently measure a fault-free run.
            raise RuntimeError(
                f"injected fault at tick {fault.tick} never fired: the W "
                f"step finished after {wstats.ticks} ticks"
            )
        violations = sum(
            self.adapter.violations_shard(cluster.shards[p]) for p in cluster.machines
        )
        self._iterations_done += 1
        respawn_extras = (
            {"respawns": respawns, "respawn_wait_s": 0.0}
            if self.fault_policy is FaultPolicy.RESPAWN
            else {}
        )
        return IterationStats(
            mu=float(mu),
            e_q=cluster.e_q(mu),
            e_ba=cluster.e_ba(),
            z_changes=zstats.z_changes,
            violations=violations,
            time=wstats.sim_time + zstats.sim_time,
            wall_time=wall,
            extra={
                "w_sim_time": wstats.sim_time,
                "z_sim_time": zstats.sim_time,
                "comp_time": wstats.comp_time,
                "comm_time": wstats.comm_time,
                "bytes_sent": wstats.bytes_sent,
                "wall_time": wall,
                "w_time": wstats.wall_time,
                "z_time": zstats.wall_time,
                **wstats.chaos,
                **self._dtype_extras(),
                **respawn_extras,
            },
            bytes_sent=int(wstats.bytes_sent),
            rows_ingested=rows,
            shards_lost=self.dataplane.shards_lost - lost_before,
            n_machines=cluster.n_machines,
            machines_added=added,
            replan_s=replan_s,
        )

    # ----------------------------------------------------------- elasticity
    def _apply_join(self, p: int, after: int | None) -> None:
        """Admit a registered machine: ring insertion, model hand-off from
        a verified-live survivor store, join-stream RNG."""
        self.cluster._admit_machine(p, after=after)

    # ------------------------------------------------------- checkpointing
    def _collect_machine_state(self) -> tuple[dict, dict]:
        # The simulated engines own the shard arrays in-process; deep-copy
        # them so the snapshot is decoupled from further training.
        shards = {p: copy.deepcopy(s) for p, s in self.dataplane.shards.items()}
        _, machine_states = self.cluster.rng_states()
        return shards, copy.deepcopy(machine_states)

    def _ring_order(self) -> list[int]:
        return self.cluster.topology.machines

    def _route_rng_state(self):
        route_state, _ = self.cluster.rng_states()
        return copy.deepcopy(route_state)

    def _join_entropy_value(self):
        return self.cluster._join_entropy

    def restore(self, state: ClusterState, adapter=None) -> None:
        from repro.distributed.topology import RingTopology

        adapter = self._restore_common(state, adapter)
        self.adapter = adapter
        shards = {int(p): copy.deepcopy(s) for p, s in state.shards.items()}
        dataplane = DataPlane(adapter, shards)
        dataplane.restore_bookkeeping(state.bookkeeping)
        self._bind_dataplane(dataplane)
        self._pending_fault = None
        self.cluster = SimulatedCluster(
            adapter,
            shards,
            epochs=self.epochs,
            scheme=self.scheme,
            batch_size=self.batch_size,
            shuffle_within=self.shuffle_within,
            shuffle_ring=self.shuffle_ring,
            cost=self.cost if self.cost is not None else CostModel(),
            engine=self.engine,
            execute_updates=self.execute_updates,
            message_dtype=self.message_dtype,
            batch_units=self.batch_units,
            overlap_send=self.overlap_send,
            chaos=self.chaos,
            dataplane=dataplane,
            seed=self.seed,
        )
        # Overwrite the fresh cluster's stochastic state with the
        # snapshot's: ring order (joins may have inserted mid-cycle),
        # route/machine RNG streams, the join-stream lineage, and the
        # redundant model stores.
        self.cluster.topology = RingTopology(state.ring_order)
        self.cluster.restore_rngs(state.route_rng_state, state.machine_rng_states)
        if state.join_entropy is not None:
            self.cluster._join_entropy = state.join_entropy
        self.cluster.seed_stores(state.params)
        self._restore_pending_ingests(state)

    # The cluster stays accessible after teardown: streaming and fault
    # experiments poke at it between and after fits.


@register_backend("sync")
class SyncSimBackend(_SimBackend):
    """Deterministic synchronous tick engine (paper fig. 3)."""

    engine = "sync"


@register_backend("async")
class AsyncSimBackend(_SimBackend):
    """Discrete-event asynchronous engine (section 4.1's queue semantics)."""

    engine = "async"
