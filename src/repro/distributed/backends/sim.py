"""Simulated-cluster backends: the in-process reference engines.

Thin adapters putting :class:`~repro.distributed.cluster.SimulatedCluster`
behind the generic :class:`~repro.distributed.backends.base.Backend`
lifecycle. ``sync`` is the deterministic tick engine (fig. 3, supports
fault injection via the underlying cluster); ``async`` is the
discrete-event engine the speedup experiments measure. Both report
virtual-clock time in ``IterationStats.time``.
"""

from __future__ import annotations

import time

from repro.distributed.backends.base import BaseBackend, IterationStats, register_backend
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.costmodel import CostModel

__all__ = ["SyncSimBackend", "AsyncSimBackend"]


class _SimBackend(BaseBackend):
    """Common machinery for the two simulated engines.

    Extra parameters beyond :class:`BaseBackend`:

    execute_updates : bool
        When False, skip the numerics and only simulate time (timing-only
        protocol sweeps).
    message_dtype : numpy dtype or None
        Reduced-precision communication (paper section 9).
    """

    engine: str = ""

    def __init__(self, *, execute_updates: bool = True, message_dtype=None, **kwargs):
        super().__init__(**kwargs)
        self.execute_updates = bool(execute_updates)
        self.message_dtype = message_dtype
        self.cluster: SimulatedCluster | None = None

    def setup(self, adapter, shards) -> None:
        self.adapter = adapter
        self.cluster = SimulatedCluster(
            adapter,
            shards,
            epochs=self.epochs,
            scheme=self.scheme,
            batch_size=self.batch_size,
            shuffle_within=self.shuffle_within,
            shuffle_ring=self.shuffle_ring,
            cost=self.cost if self.cost is not None else CostModel(),
            engine=self.engine,
            execute_updates=self.execute_updates,
            message_dtype=self.message_dtype,
            seed=self.seed,
        )

    def run_iteration(self, mu: float) -> IterationStats:
        if self.cluster is None:
            raise RuntimeError("setup() must run before run_iteration()")
        cluster = self.cluster
        t0 = time.perf_counter()
        wstats, zstats = cluster.iteration(mu)
        wall = time.perf_counter() - t0
        violations = sum(
            self.adapter.violations_shard(cluster.shards[p]) for p in cluster.machines
        )
        return IterationStats(
            mu=float(mu),
            e_q=cluster.e_q(mu),
            e_ba=cluster.e_ba(),
            z_changes=zstats.z_changes,
            violations=violations,
            time=wstats.sim_time + zstats.sim_time,
            wall_time=wall,
            extra={
                "w_sim_time": wstats.sim_time,
                "z_sim_time": zstats.sim_time,
                "comp_time": wstats.comp_time,
                "comm_time": wstats.comm_time,
                "bytes_sent": wstats.bytes_sent,
                "wall_time": wall,
            },
            bytes_sent=int(wstats.bytes_sent),
        )

    # The cluster stays accessible after teardown: streaming and fault
    # experiments poke at it between and after fits.


@register_backend("sync")
class SyncSimBackend(_SimBackend):
    """Deterministic synchronous tick engine (paper fig. 3)."""

    engine = "sync"


@register_backend("async")
class AsyncSimBackend(_SimBackend):
    """Discrete-event asynchronous engine (section 4.1's queue semantics)."""

    engine = "async"
