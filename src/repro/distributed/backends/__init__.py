"""Pluggable execution backends for ParMAC training.

One :class:`Backend` interface, four registered engines:

===============  =============================================  ==========
name             implementation                                 time axis
===============  =============================================  ==========
``sync``         deterministic tick simulation (fig. 3)         virtual
``async``        discrete-event simulation (section 4.1)        virtual
``multiprocess`` persistent OS-process pool over shared memory  wall clock
``tcp``          OS processes ringed by framed TCP sockets      wall clock
===============  =============================================  ==========

Resolve engines through the registry — ``get_backend("tcp")`` — rather
than importing concrete classes; the generic
:class:`~repro.core.trainer.ParMACTrainer` accepts either the name or a
constructed instance.
"""

from repro.distributed.backends.base import (
    Backend,
    BaseBackend,
    FaultPolicy,
    IterationStats,
    available_backends,
    get_backend,
    register_backend,
)
from repro.distributed.backends.mp import MultiprocessBackend, home_assignment
from repro.distributed.backends.sim import AsyncSimBackend, SyncSimBackend
from repro.distributed.backends.tcp import TCPBackend
from repro.distributed.dataplane import ClusterState, DataPlane, IngestBatch

__all__ = [
    "Backend",
    "BaseBackend",
    "FaultPolicy",
    "IterationStats",
    "ClusterState",
    "DataPlane",
    "IngestBatch",
    "available_backends",
    "get_backend",
    "register_backend",
    "SyncSimBackend",
    "AsyncSimBackend",
    "MultiprocessBackend",
    "TCPBackend",
    "home_assignment",
]
