"""Submodel and control messages: what actually travels between machines.

Only model parameters are ever communicated on the *ring* — never data
or coordinates (the defining property of ParMAC). A
:class:`SubmodelMessage` carries the flat parameter vector, the SGD step
counter (so the schedule continues seamlessly across machines), a visit
counter (section 4.1 semantics, kept for statistics and the
multiprocessing backend), and explicit visit/broadcast sets — the "more
general mechanism" of section 4.3 that tags each submodel with the
machines it still has to visit, which is what makes per-epoch rerouting
and fault recovery straightforward.

The *control plane* adds two message types for streaming and fault
tolerance (section 4.3): :class:`IngestMessage` ships newly arrived,
already-coded rows to the machine that will own them, and
:class:`ShardRetired` announces that a dead machine's shard has left the
data plane so every survivor can re-plan around the new ring. Both have
pickle-free wire codecs in :mod:`repro.distributed.framing`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.distributed.dataplane import IngestBatch
from repro.distributed.interfaces import SubmodelSpec
from repro.optim.sgd import SGDState

__all__ = ["SubmodelMessage", "IngestMessage", "ShardRetired"]

#: The ingest control message IS the data plane's prepared batch —
#: machine id plus already-coded (X, F, Z, indices) — so the payload has
#: one definition whether it crosses a process boundary or a socket.
IngestMessage = IngestBatch


@dataclass
class SubmodelMessage:
    """One travelling submodel.

    Attributes
    ----------
    spec : SubmodelSpec
    theta : ndarray
        Flat parameters; the authoritative copy during the W step.
    sgd_state : SGDState
        Carried SGD bookkeeping (step counter for the schedule).
    counter : int
        Visits so far. Incremented by the processing machine, so it reads 1
        during the home machine's first visit — the paper's "initially 1".
    to_visit : set[int] or None
        Machines still owed a training visit in the current epoch
        (None until initialised by an engine).
    epochs_left : int
        Remaining training epochs including the current one.
    to_broadcast : set[int] or None
        Machines still owed a copy of the final parameters; None while
        training is ongoing. The W step is over for this submodel when this
        set exists and is empty.
    """

    spec: SubmodelSpec
    theta: np.ndarray
    sgd_state: SGDState = field(default_factory=SGDState)
    counter: int = 0
    to_visit: set | None = None
    epochs_left: int = 0
    to_broadcast: set | None = None

    @property
    def training_done(self) -> bool:
        return self.to_broadcast is not None

    @property
    def done(self) -> bool:
        """True once every machine holds the final parameters."""
        return self.to_broadcast is not None and len(self.to_broadcast) == 0

    @property
    def nbytes(self) -> int:
        """Payload size in bytes (parameters only), for comm accounting."""
        return int(np.asarray(self.theta).nbytes)

    def copy(self) -> "SubmodelMessage":
        return SubmodelMessage(
            spec=self.spec,
            theta=np.array(self.theta, copy=True),
            sgd_state=self.sgd_state.copy(),
            counter=self.counter,
            to_visit=None if self.to_visit is None else set(self.to_visit),
            epochs_left=self.epochs_left,
            to_broadcast=None if self.to_broadcast is None else set(self.to_broadcast),
        )

    # ------------------------------------------------------- wire interface
    # Hooks for repro.distributed.framing: under the counter protocol the
    # complete mutable wire state of a message is four scalars plus the
    # parameter array; the spec is static per fit and referenced by sid.
    def wire_state(self) -> tuple[int, int, int, int]:
        """Scalar header fields: (counter, epochs_left, sgd t, sgd n_updates)."""
        return (
            self.counter,
            self.epochs_left,
            self.sgd_state.t,
            self.sgd_state.n_updates,
        )

    @classmethod
    def from_wire(
        cls, spec, theta, counter: int, epochs_left: int, t: int, n_updates: int
    ) -> "SubmodelMessage":
        """Rebuild a message from decoded frame fields and a spec lookup."""
        return cls(
            spec=spec,
            theta=theta,
            sgd_state=SGDState(t=t, n_updates=n_updates),
            counter=counter,
            epochs_left=epochs_left,
        )

    @classmethod
    def final(cls, spec, theta) -> "SubmodelMessage":
        """A broadcast-style message carrying *final* parameters.

        What a live donor sends a machine joining the ring mid-fit
        (section 4.3, streaming form 2): semantically the last broadcast
        lap replayed for the newcomer — no SGD state, no visits owed,
        just the assembled submodel. Travels inside the WELCOME hand-off
        as an ordinary BATCH frame.
        """
        return cls(
            spec=spec,
            theta=np.array(theta, copy=True),
            sgd_state=SGDState(),
            counter=0,
            epochs_left=0,
            to_broadcast=set(),
        )


@dataclass(frozen=True)
class ShardRetired:
    """A machine died and its shard left the data plane (section 4.3).

    Broadcast to every survivor during ring re-planning so each can
    account the loss; ``rows_lost`` is what the degradation metrics
    aggregate.
    """

    machine: int
    rows_lost: int = 0
