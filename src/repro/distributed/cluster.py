"""The simulated ParMAC cluster: the in-process reference implementation.

Executes the full ParMAC protocol of paper section 4 — travelling
submodels on a (possibly per-epoch reshuffled) ring, a final broadcast lap,
and a communication-free Z step — over in-process "machines", each with a
private shard, its own RNG stream and a local store of the latest submodel
copies that passed through it (the redundancy that fault recovery relies
on, section 4.3).

Two interchangeable engines run the identical protocol:

* ``engine="sync"`` — the tick-based synchronous procedure of fig. 3:
  every tick, each machine processes everything in its queue and forwards;
  the virtual clock advances by the slowest machine's (work + send) time.
  Deterministic, supports fault injection.
* ``engine="async"`` — the discrete-event version of the asynchronous
  implementation (section 4.1's queue description): message deliveries are
  heap events; a machine starts a job at ``max(local_clock, arrival)``.
  This is what the speedup experiments measure.

Virtual-clock costs come from a :class:`~repro.distributed.costmodel.CostModel`;
set ``execute_updates=False`` to sweep timing-only configurations (the
speedup does not depend on parameter values, only on the protocol).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

import numpy as np

from repro.distributed.batching import (
    GroupTable,
    supports_unit_batching,
    train_message_batch,
)
from repro.distributed.chaos import ChaosConfig
from repro.distributed.costmodel import ChaosTimeline, CostModel, OverlapSendTimeline
from repro.distributed.dataplane import DataPlane
from repro.distributed.interfaces import get_params_many, set_params_many
from repro.distributed.messages import SubmodelMessage
from repro.distributed.partition import Shard
from repro.distributed.topology import RingTopology
from repro.optim.sgd import SGDState
from repro.utils.rng import check_random_state, seed_entropy, spawn_rngs

__all__ = ["SimulatedCluster", "WStepStats", "ZStepStats", "FaultEvent"]


@dataclass
class WStepStats:
    """Virtual-clock accounting for one W step.

    ``wall_time`` is the coordinator-observed wall clock of the step —
    virtual time models the cluster, wall time measures this process's
    actual numerics (what the batched-W-step speedup shows up in).
    """

    sim_time: float = 0.0
    comp_time: float = 0.0  # summed over machines
    comm_time: float = 0.0  # summed over hops
    idle_time: float = 0.0  # summed over machines (sync engine only)
    n_messages: int = 0  # hops performed
    bytes_sent: int = 0
    ticks: int = 0  # sync engine only
    wall_time: float = 0.0
    per_machine_comp: dict = field(default_factory=dict)
    per_machine_comm: dict = field(default_factory=dict)
    chaos: dict = field(default_factory=dict)  # injected-event counters


@dataclass
class ZStepStats:
    """Virtual-clock accounting for one Z step."""

    sim_time: float = 0.0
    z_changes: int = 0
    wall_time: float = 0.0
    per_machine_time: dict = field(default_factory=dict)


@dataclass(frozen=True)
class FaultEvent:
    """Kill ``machine`` at the start of tick ``tick`` of a sync W step."""

    machine: int
    tick: int


class SimulatedCluster:
    """P simulated machines executing ParMAC over an adapter's model.

    Parameters
    ----------
    adapter : ParMACAdapter
        The model bridge (e.g. ``BAAdapter``).
    shards : list of Shard
        One per machine; machine ids are assigned 0..P-1.
    epochs : int
        SGD epochs per W step (e).
    scheme : {"rounds", "tworound"}
        Section 4.1 vs section 4.2 W-step communication scheme.
    batch_size : int
        SGD minibatch size within each shard.
    shuffle_within, shuffle_ring : bool
        Within-machine minibatch shuffling and per-epoch ring reshuffling
        (section 4.3).
    cost : CostModel
        Virtual-clock constants; defaults to compute-only (t_wc = 0).
    engine : {"sync", "async"}
    execute_updates : bool
        When False, skip the numerics and only simulate time.
    message_dtype : numpy dtype or None
        Reduced-precision communication (paper section 9: "one can store
        and communicate reduced-precision values for ... parameters with
        little effect on the accuracy"). When set (e.g. ``np.float32``),
        every hop round-trips the parameters through that dtype, and both
        ``bytes_sent`` and the per-hop communication time shrink by the
        itemsize ratio. None keeps messages at the model's full compute
        precision.
    batch_units : bool
        Train co-resident compatible submodels as one stacked pass per
        machine visit (see :mod:`repro.distributed.batching`); engages
        only with ``shuffle_within=False`` on adapters implementing
        ``w_update_batch``.
    overlap_send : bool
        Model pipelined ring sends (default False, the paper's section
        5.1 serial-send accounting). When True, hop time stops occupying
        the sending machine's clock: the sync engine charges each tick
        ``max(work, comm)`` per machine instead of their sum, and the
        discrete-event engine runs each machine's sends through a
        double-buffered :class:`OverlapSendTimeline` — mirroring the
        wall-clock engines' background sender. Timing only; the executed
        numerics are untouched.
    chaos : ChaosConfig, dict or None
        Network/node degradation to charge virtually (loss retransmits,
        delay + jitter, reorder holds, bandwidth throttle, partition
        windows, straggler slowdowns); see
        :class:`~repro.distributed.chaos.ChaosConfig`. A per-W-step
        :class:`~repro.distributed.costmodel.ChaosTimeline` draws the
        same seeded per-link event stream the wall-clock shim injects,
        so degradation curves are directly comparable across engines.
        Timing and accounting only — like ``overlap_send``, the executed
        numerics are untouched on every engine.
    dataplane : DataPlane or None
        Shard-ownership bookkeeping. The execution backends construct one
        and hand it in so streaming/fault counters are visible through the
        generic :class:`~repro.distributed.backends.base.Backend` API;
        standalone clusters build their own.
    seed : int or None
        Master seed; machine RNG streams are derived from it.
    """

    def __init__(
        self,
        adapter,
        shards,
        *,
        epochs: int = 1,
        scheme: str = "rounds",
        batch_size: int = 100,
        shuffle_within: bool = True,
        shuffle_ring: bool = False,
        cost: CostModel | None = None,
        engine: str = "sync",
        execute_updates: bool = True,
        message_dtype=None,
        batch_units: bool = True,
        overlap_send: bool = False,
        chaos=None,
        dataplane: DataPlane | None = None,
        seed=None,
    ):
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        if scheme not in ("rounds", "tworound"):
            raise ValueError(f"unknown scheme {scheme!r}")
        if engine not in ("sync", "async"):
            raise ValueError(f"unknown engine {engine!r}")
        if message_dtype is not None:
            message_dtype = np.dtype(message_dtype)
            if message_dtype.kind != "f":
                raise ValueError(
                    f"message_dtype must be a float dtype, got {message_dtype}"
                )
        self.adapter = adapter
        self.dataplane = (
            dataplane if dataplane is not None else DataPlane(adapter, shards)
        )
        self.epochs = int(epochs)
        self.scheme = scheme
        self.batch_size = int(batch_size)
        self.shuffle_within = bool(shuffle_within)
        self.shuffle_ring = bool(shuffle_ring)
        self.cost = cost if cost is not None else CostModel()
        self.engine = engine
        self.execute_updates = bool(execute_updates)
        self.message_dtype = message_dtype
        self.batch_units = bool(batch_units)
        self.overlap_send = bool(overlap_send)
        self.chaos = ChaosConfig.coerce(chaos)
        self._chaos_timeline: ChaosTimeline | None = None
        self._compute_dtype = np.dtype(
            getattr(adapter, "compute_dtype", np.float64)
        )
        # Hop time and bytes scale with the wire itemsize relative to the
        # compute dtype's (both default to 8 = float64).
        self._comm_scale = (
            1.0
            if message_dtype is None
            else message_dtype.itemsize / self._compute_dtype.itemsize
        )

        self._route_rng = check_random_state(seed)
        self._machine_rngs = dict(
            zip(
                self.dataplane.machines,
                spawn_rngs(self._route_rng, len(self.shards)),
            )
        )
        # Joining machines draw their RNG streams from a side lineage
        # keyed by machine id — independent of the route stream, so a
        # join can never perturb the remaining shuffle_ring schedule
        # (cross-backend bit-parity would silently break otherwise).
        self._join_entropy = seed_entropy(seed)
        if self._join_entropy is None:
            self._join_entropy = np.random.SeedSequence().entropy
        self.topology = RingTopology(self.dataplane.machines)
        # store[p][sid] -> latest SubmodelMessage copy seen by machine p.
        self._stores: dict[int, dict[int, SubmodelMessage]] = {
            p: {} for p in self.shards
        }

    # ------------------------------------------------------------ topology
    @property
    def shards(self) -> dict[int, Shard]:
        """Machine id -> shard, owned by the shared :class:`DataPlane`."""
        return self.dataplane.shards

    @property
    def machines(self) -> list[int]:
        return self.topology.machines

    @property
    def n_machines(self) -> int:
        return self.topology.n_machines

    @property
    def n_points(self) -> int:
        return self.dataplane.n_points

    # -------------------------------------------------------- W-step setup
    @property
    def _sgd_epochs(self) -> int:
        """Ring laps during training (1 for tworound: e passes per visit)."""
        return self.epochs if self.scheme == "rounds" else 1

    @property
    def _passes_per_visit(self) -> int:
        return 1 if self.scheme == "rounds" else self.epochs

    def _rings(self) -> list[RingTopology]:
        """One ring per training epoch plus one for the broadcast lap."""
        n = self._sgd_epochs + 1
        if self.shuffle_ring:
            return [self.topology.rewired(self._route_rng) for _ in range(n)]
        return [self.topology] * n

    def _successor(self, rings: list[RingTopology], msg: SubmodelMessage, p: int) -> int:
        """Next machine for ``msg`` sitting at ``p`` (epoch-indexed ring)."""
        if msg.training_done:
            return rings[-1].successor(p)
        epoch_idx = self._sgd_epochs - msg.epochs_left
        return rings[min(epoch_idx, len(rings) - 1)].successor(p)

    def _home_assignment(self) -> dict[int, int]:
        """sid -> home machine: contiguous portions of the sid-ordered
        submodel list over the machines in cycle order (fig. 2's layout —
        the same dealing the wall-clock engines plan with)."""
        specs = self.adapter.submodel_specs()
        machines = self.machines
        P = len(machines)
        return {
            spec.sid: machines[i * P // len(specs)] for i, spec in enumerate(specs)
        }

    def _units_batched(self) -> bool:
        """Whether this W step runs batched co-resident-unit updates."""
        return (
            self.batch_units
            and self.execute_updates
            and not self.shuffle_within
            and supports_unit_batching(self.adapter)
        )

    def _initial_messages(self) -> dict[int, list[SubmodelMessage]]:
        """Home assignment seeded into each home machine's queue."""
        specs = self.adapter.submodel_specs()
        homes = self._home_assignment()
        queues: dict[int, list[SubmodelMessage]] = {p: [] for p in self.machines}
        for spec, theta in zip(specs, get_params_many(self.adapter, specs)):
            msg = SubmodelMessage(
                spec=spec,
                theta=np.array(theta, copy=True),
                sgd_state=SGDState(),
                to_visit=set(self.machines),
                epochs_left=self._sgd_epochs,
            )
            queues[homes[spec.sid]].append(msg)
        return queues

    def _train_inline(self, msg: SubmodelMessage, p: int, mu: float) -> None:
        """The legacy per-unit SGD pass for one visit of one submodel."""
        for _ in range(self._passes_per_visit):
            msg.theta = self.adapter.w_update(
                msg.spec,
                msg.theta,
                msg.sgd_state,
                self.shards[p],
                mu,
                batch_size=self.batch_size,
                shuffle=self.shuffle_within,
                rng=self._machine_rngs[p],
            )

    def _process_visit(
        self, msg: SubmodelMessage, p: int, mu: float, *, pretrained: bool = False
    ) -> float:
        """Apply one visit of ``msg`` at machine ``p``; returns work time.

        Mutates the message (training, visit bookkeeping) and the machine's
        local store. Does not route. ``pretrained`` marks visits whose
        numerics already ran through the batched co-resident-unit pass.
        """
        msg.counter += 1
        shard = self.shards[p]
        work = 0.0
        if not msg.training_done:
            if p in msg.to_visit:
                if self.execute_updates and not pretrained:
                    self._train_inline(msg, p, mu)
                work = self._charge_work(
                    p, self.cost.w_work(p, shard.n, self._passes_per_visit)
                )
                msg.to_visit.discard(p)
            if not msg.to_visit:
                msg.epochs_left -= 1
                if msg.epochs_left > 0:
                    msg.to_visit = set(self.machines)
                else:
                    msg.to_broadcast = set(self.machines) - {p}
        else:
            msg.to_broadcast.discard(p)
        # Reduced precision applies to storage as well as the wire (the
        # paper "store[s] and communicate[s] reduced-precision values"), so
        # every machine's copy is bit-identical to what travelled. With a
        # single machine nothing is ever serialised.
        if self.n_machines > 1:
            self._transmit(msg)
        self._stores[p][msg.spec.sid] = msg.copy()
        return work

    def _transmit(self, msg: SubmodelMessage) -> SubmodelMessage:
        """Apply wire-precision loss to a message about to be sent."""
        if self.message_dtype is not None:
            msg.theta = msg.theta.astype(self.message_dtype).astype(
                self._compute_dtype
            )
        return msg

    def _assemble(self) -> None:
        """Write final submodel parameters back into the adapter's model.

        Any machine's store works (they all hold the final copies — an
        invariant checked by :meth:`model_copies_consistent`); we read from
        the first machine in the ring.
        """
        store = self._stores[self.machines[0]]
        set_params_many(
            self.adapter,
            [
                (spec, store[spec.sid].theta)
                for spec in self.adapter.submodel_specs()
            ],
        )

    # ------------------------------------------------------------- chaos
    def _charge_work(self, p: int, work: float) -> float:
        """Compute time after chaos straggler scaling (identity without
        an active timeline)."""
        if self._chaos_timeline is None:
            return work
        return self._chaos_timeline.charge_work(p, work)

    def _chaos_hop(self, p: int, q: int, msg, now: float) -> float:
        """Extra virtual seconds chaos charges one routed hop (0 without
        an active timeline or on a self-hop)."""
        if self._chaos_timeline is None or p == q:
            return 0.0
        return self._chaos_timeline.hop_penalty(
            p, q, int(msg.nbytes * self._comm_scale), now
        )

    # ----------------------------------------------------------- W step
    def w_step(self, mu: float, *, fault: FaultEvent | None = None) -> WStepStats:
        """Run one full W step; assembles the final model into the adapter."""
        t0 = time.perf_counter()
        # A fresh timeline per W step: link RNG streams and event
        # counters realign with the wall-clock transports, which are
        # likewise recreated every iteration.
        self._chaos_timeline = (
            ChaosTimeline(self.chaos)
            if self.chaos is not None and self.chaos.active()
            else None
        )
        try:
            if self.engine == "sync":
                stats = self._w_step_sync(mu, fault)
            else:
                if fault is not None:
                    raise ValueError("fault injection is only supported by the sync engine")
                stats = self._w_step_async(mu)
            if self._chaos_timeline is not None:
                stats.chaos = dict(self._chaos_timeline.counters)
        finally:
            self._chaos_timeline = None
        self._assemble()
        stats.wall_time = time.perf_counter() - t0
        return stats

    def _train_tick_groups(
        self, batch, p: int, mu: float, table: GroupTable
    ) -> None:
        """Batched numerics for one machine's tick batch (sync engine).

        Lockstep delivery keeps convoys intact, so the trainable messages
        of one tick partition into complete convoy groups — keyed by the
        shared :class:`GroupTable`'s (home, batch_key) group id plus the
        visit counter, the same definition every other engine uses; each
        group runs as one stacked pass, submodels whose adapter opts out
        (``batch_key`` None) fall back to the per-unit kernel. No
        completeness wait is needed (or wanted: mid-W-step fault recovery
        can strand partial convoys in a queue, and a tick must train
        whatever is co-resident). Visit bookkeeping, cost accounting and
        routing stay per-message in :meth:`_process_visit` (called with
        ``pretrained=True``).
        """
        groups: dict[tuple, list[SubmodelMessage]] = {}
        singles: list[SubmodelMessage] = []
        for msg in batch:
            if msg.training_done or p not in msg.to_visit:
                continue
            gid = table.group_of.get(msg.spec.sid)
            if gid is None:
                singles.append(msg)
            else:
                groups.setdefault((gid, msg.counter), []).append(msg)
        for msgs in groups.values():
            msgs.sort(key=lambda m: m.spec.sid)
            train_message_batch(
                self.adapter, msgs, self.shards[p], mu,
                passes=self._passes_per_visit, batch_size=self.batch_size,
                rng=self._machine_rngs[p],
            )
        for msg in singles:
            self._train_inline(msg, p, mu)

    def _w_step_sync(self, mu: float, fault: FaultEvent | None) -> WStepStats:
        rings = self._rings()
        queues = self._initial_messages()
        table = (
            GroupTable(self.adapter, self._home_assignment())
            if self._units_batched()
            else None
        )
        stats = WStepStats(
            per_machine_comp={p: 0.0 for p in self.machines},
            per_machine_comm={p: 0.0 for p in self.machines},
        )
        tick = 0
        while any(queues.values()):
            if fault is not None and tick == fault.tick:
                queues = self._recover_from_fault(fault.machine, queues, rings)
                rings = [r.without_machine(fault.machine) for r in rings]
            tick += 1
            outgoing: dict[int, list[tuple[int, SubmodelMessage]]] = {}
            tick_cost: dict[int, float] = {}
            for p in list(queues):
                batch, queues[p] = queues[p], []
                work_p = comm_p = 0.0
                sends: list[tuple[int, SubmodelMessage]] = []
                if table is not None:
                    self._train_tick_groups(batch, p, mu, table)
                for msg in batch:
                    work_p += self._process_visit(
                        msg, p, mu, pretrained=table is not None
                    )
                    if not msg.done:
                        q = self._successor(rings, msg, p)
                        comm_p += self.cost.comm(p, q) * self._comm_scale
                        comm_p += self._chaos_hop(p, q, msg, stats.sim_time)
                        if p != q:
                            stats.bytes_sent += int(msg.nbytes * self._comm_scale)
                            self._transmit(msg)
                        stats.n_messages += 1
                        sends.append((q, msg))
                outgoing[p] = sends
                # Overlapped sends: the background sender puts this
                # tick's messages on the wire while the CPU works, so
                # the machine's tick costs the slower of the two instead
                # of their sum (the steady-state pipeline bound).
                tick_cost[p] = (
                    max(work_p, comm_p) if self.overlap_send else work_p + comm_p
                )
                stats.comp_time += work_p
                stats.comm_time += comm_p
                stats.per_machine_comp[p] = stats.per_machine_comp.get(p, 0.0) + work_p
                stats.per_machine_comm[p] = stats.per_machine_comm.get(p, 0.0) + comm_p
            tick_time = max(tick_cost.values(), default=0.0)
            stats.sim_time += tick_time
            stats.idle_time += sum(tick_time - c for c in tick_cost.values())
            for sends in outgoing.values():
                for q, msg in sends:
                    queues[q].append(msg)
        stats.ticks = tick
        return stats

    class _DeferredBatching:
        """Batched-mode visit machinery for the discrete-event engine.

        Bookkeeping, cost accounting and routing state advance at pop time
        exactly as in :meth:`_process_visit` (they never read parameter
        values), but the *numerics* of a training visit are deferred until
        the message's whole convoy group has popped at the machine — then
        the group trains as one stacked pass. Event order makes the
        deferral safe for downstream *training* reads: a group's last
        member is only pushed onward during the pop that completes the
        group, so a successor's deferred numerics always run strictly
        later in the heap order than this machine's.

        Broadcast visits are the one place a reader can outrun pending
        numerics: the message object is pushed onward at pop time, so a
        broadcast machine may pop it while an upstream training visit is
        still waiting for its convoy. Its store copy is therefore
        registered as a *lazy copy* and back-filled (theta, SGD state)
        every time one of the message's outstanding training visits
        completes — the last completion writes the final parameters, which
        is exactly what the legacy engine would have stored.
        """

        def __init__(self, cluster: "SimulatedCluster", mu: float):
            self.cluster = cluster
            self.mu = mu
            self.table = GroupTable(cluster.adapter, cluster._home_assignment())
            self.pending: dict[tuple, list] = {}  # (p, gid, counter) -> pairs
            self.outstanding: dict[int, int] = {}  # sid -> deferred visits
            self.lazy: dict[int, list] = {}  # sid -> store copies to back-fill

        @property
        def n_pending(self) -> int:
            return sum(len(bucket) for bucket in self.pending.values())

        def visit(self, msg: SubmodelMessage, p: int) -> float:
            cluster = self.cluster
            msg.counter += 1
            shard = cluster.shards[p]
            work = 0.0
            trains = False
            if not msg.training_done:
                if p in msg.to_visit:
                    trains = True
                    work = cluster._charge_work(
                        p, cluster.cost.w_work(p, shard.n, cluster._passes_per_visit)
                    )
                    msg.to_visit.discard(p)
                if not msg.to_visit:
                    msg.epochs_left -= 1
                    if msg.epochs_left > 0:
                        msg.to_visit = set(cluster.machines)
                    else:
                        msg.to_broadcast = set(cluster.machines) - {p}
            else:
                msg.to_broadcast.discard(p)
            sid = msg.spec.sid
            if not trains:
                stored = msg.copy()
                cluster._stores[p][sid] = stored
                if self.outstanding.get(sid, 0):
                    # Upstream numerics still pending: back-fill later.
                    self.lazy.setdefault(sid, []).append(stored)
                elif cluster.n_machines > 1:
                    cluster._transmit(msg)
                    stored.theta = np.array(msg.theta, copy=True)
                return work
            # The store receives its copy now (legacy write order) but the
            # parameters land in it when the group's numerics run.
            stored = msg.copy()
            cluster._stores[p][sid] = stored
            self.outstanding[sid] = self.outstanding.get(sid, 0) + 1
            gid = self.table.group_of.get(sid)
            if gid is None:
                self._finish(p, [(msg, stored)], batched=False)
                return work
            bucket = self.pending.setdefault((p, gid, msg.counter), [])
            bucket.append((msg, stored))
            if len(bucket) == self.table.group_size[gid]:
                del self.pending[(p, gid, msg.counter)]
                bucket.sort(key=lambda pair: pair[0].spec.sid)
                self._finish(p, bucket, batched=True)
            return work

        def _finish(self, p: int, pairs, *, batched: bool) -> None:
            """Run a completed group's numerics, wire cast and store fills."""
            cluster = self.cluster
            msgs = [msg for msg, _ in pairs]
            if batched:
                train_message_batch(
                    cluster.adapter, msgs, cluster.shards[p], self.mu,
                    passes=cluster._passes_per_visit,
                    batch_size=cluster.batch_size,
                    rng=cluster._machine_rngs[p],
                )
            else:
                for msg in msgs:
                    cluster._train_inline(msg, p, self.mu)
            for msg, stored in pairs:
                if cluster.n_machines > 1:
                    cluster._transmit(msg)
                sid = msg.spec.sid
                self.outstanding[sid] -= 1
                for copy_ in (stored, *self.lazy.get(sid, ())):
                    copy_.theta = np.array(msg.theta, copy=True)
                    copy_.sgd_state = msg.sgd_state.copy()
                if not self.outstanding[sid]:
                    self.lazy.pop(sid, None)

    def _w_step_async(self, mu: float) -> WStepStats:
        rings = self._rings()
        queues = self._initial_messages()
        deferred = self._DeferredBatching(self, mu) if self._units_batched() else None
        timeline = OverlapSendTimeline() if self.overlap_send else None
        stats = WStepStats(
            per_machine_comp={p: 0.0 for p in self.machines},
            per_machine_comm={p: 0.0 for p in self.machines},
        )
        clock = {p: 0.0 for p in self.machines}
        heap: list[tuple[float, int, int, SubmodelMessage]] = []
        seq = 0
        # Initial local submodels are "delivered" at t=0 with no comm cost.
        for p, batch in queues.items():
            for msg in batch:
                heapq.heappush(heap, (0.0, seq, p, msg))
                seq += 1
        while heap:
            arrival, _, p, msg = heapq.heappop(heap)
            start = max(clock[p], arrival)
            stats.idle_time += max(0.0, arrival - clock[p]) if clock[p] < arrival else 0.0
            if deferred is not None:
                work = deferred.visit(msg, p)
            else:
                work = self._process_visit(msg, p, mu)
            clock[p] = start + work
            stats.comp_time += work
            stats.per_machine_comp[p] += work
            if not msg.done:
                q = self._successor(rings, msg, p)
                hop = self.cost.comm(p, q) * self._comm_scale
                hop += self._chaos_hop(p, q, msg, clock[p])
                stats.comm_time += hop
                stats.per_machine_comm[p] += hop
                if timeline is not None and hop > 0.0:
                    # Overlap: the hop runs on the machine's NIC timeline;
                    # the worker's clock advances only if both send
                    # buffers were full (double-buffer backpressure).
                    resume, delivery = timeline.submit(p, clock[p], hop)
                    clock[p] = resume
                else:
                    # t_wc is time the machine *spends* communicating
                    # (section 5.1: "the time spent by a given machine in
                    # first receiving a submodel and then sending it"), so
                    # it occupies the sender's clock as well as delaying
                    # the delivery.
                    clock[p] += hop
                    delivery = clock[p]
                if p != q:
                    stats.bytes_sent += int(msg.nbytes * self._comm_scale)
                    if deferred is None:
                        # Batched mode applies the wire cast when the
                        # group's deferred numerics run.
                        self._transmit(msg)
                stats.n_messages += 1
                heapq.heappush(heap, (delivery, seq, q, msg))
                seq += 1
        if deferred is not None and deferred.n_pending:
            raise RuntimeError(
                f"{deferred.n_pending} submodel visit(s) never completed "
                "their batch group — convoy tracking bug"
            )
        stats.sim_time = max(clock.values(), default=0.0)
        if timeline is not None:
            # The step is not over until the last NIC finishes draining.
            stats.sim_time = max(stats.sim_time, timeline.tail())
        return stats

    # ----------------------------------------------------- fault recovery
    def _recover_from_fault(
        self,
        dead: int,
        queues: dict[int, list[SubmodelMessage]],
        rings: list[RingTopology],
    ) -> dict[int, list[SubmodelMessage]]:
        """Remove a machine mid-W-step and rescue its in-flight submodels.

        Paper section 4.3: reconnect the ring; submodels lost in the dead
        machine are reverted to "the previously updated copy, which resides
        in the predecessor"; all visit lists drop the dead machine.
        """
        if dead not in self.shards:
            raise KeyError(f"machine {dead} does not exist")
        if self.n_machines == 1:
            raise ValueError("cannot fail the only machine")
        lost = queues.pop(dead, [])
        pred = self.topology.predecessor(dead)
        succ = self.topology.successor(dead)
        # Survivors' in-flight messages must simply forget the dead machine.
        for batch in queues.values():
            for msg in batch:
                if msg.to_visit is not None:
                    msg.to_visit.discard(dead)
                if msg.to_broadcast is not None:
                    msg.to_broadcast.discard(dead)
        for msg in lost:
            rescue = self._stores[pred].get(msg.spec.sid)
            if rescue is None:
                # Not yet processed anywhere downstream: any copy will do
                # (paper: "we can use any copy in any machine"); fall back
                # to the freshest copy among survivors, else the original.
                candidates = [
                    s[msg.spec.sid]
                    for q, s in self._stores.items()
                    if q != dead and msg.spec.sid in s
                ]
                rescue = max(candidates, key=lambda m: m.counter) if candidates else msg
            revived = rescue.copy()
            if revived.to_visit is not None:
                revived.to_visit.discard(dead)
            if revived.to_broadcast is not None:
                revived.to_broadcast.discard(dead)
            if not revived.done:
                queues[succ].append(revived)
        # The machine leaves the cluster for good: shard, store, topology.
        self.dataplane.retire(dead, lost=True)
        del self._stores[dead]
        del self._machine_rngs[dead]
        self.topology = self.topology.without_machine(dead)
        return queues

    # ------------------------------------------------------------- Z step
    def z_step(self, mu: float) -> ZStepStats:
        """Run the Z step on every shard — no communication at all."""
        t0 = time.perf_counter()
        stats = ZStepStats(per_machine_time={})
        n_submodels = len(self.adapter.submodel_specs())
        slow = (
            self.chaos.straggler_factor
            if self.chaos is not None and self.chaos.active()
            else (lambda p: 1.0)
        )
        for p in self.machines:
            shard = self.shards[p]
            if self.execute_updates:
                stats.z_changes += self.adapter.z_update(shard, mu)
            t = self.cost.z_work(p, shard.n, n_submodels) * slow(p)
            stats.per_machine_time[p] = t
        stats.sim_time = max(stats.per_machine_time.values(), default=0.0)
        stats.wall_time = time.perf_counter() - t0
        return stats

    def iteration(self, mu: float, *, fault: FaultEvent | None = None):
        """One MAC iteration: W step then Z step."""
        w = self.w_step(mu, fault=fault)
        z = self.z_step(mu)
        return w, z

    # ---------------------------------------------------------- streaming
    def add_data(self, p: int, X_new: np.ndarray) -> None:
        """Streaming form 1: a machine acquires new points (section 4.3).

        Codes are created locally "by applying the nested model"; nothing
        crosses the network. Validation and application go through the
        shared :class:`DataPlane` — the same code path the wall-clock
        backends' ``ingest`` drains through.
        """
        self.dataplane.apply(self.dataplane.prepare_ingest(p, X_new))

    def remove_data(self, p: int, local_idx) -> None:
        """Streaming form 1: a machine discards points (section 4.3)."""
        self.dataplane.remove_rows(p, local_idx)

    def add_machine(self, X_new: np.ndarray, *, after: int | None = None) -> int:
        """Streaming form 2: a new preloaded machine joins the ring.

        It receives a copy of the current model (trivially: the stores are
        in-process; in the paper it picks the copies up during the final
        broadcast round). Validation goes through the shared
        :meth:`DataPlane.check_join` — the same clear errors ``ingest``
        raises, so a wrong-width shard fails here instead of joining
        silently and exploding later.
        """
        p = self.dataplane.admit(X_new)
        self._admit_machine(p, after=after)
        return p

    def _join_rng(self, p: int) -> np.random.Generator:
        """Machine ``p``'s join-time RNG stream, keyed by id.

        Derived from the cluster's side entropy lineage, never from the
        route RNG: spawning a stream for a join must not advance the
        route stream, or the join would perturb every subsequent
        ``shuffle_ring`` schedule and break cross-backend bit-parity for
        the rest of the fit. Keying by machine id (not join order) also
        makes the stream independent of when the machine joined.
        """
        # spawn_key entries must fit in uint32; 0x4A4F494E is "JOIN".
        ss = np.random.SeedSequence(
            entropy=self._join_entropy, spawn_key=(0x4A4F494E, int(p))
        )
        return np.random.default_rng(ss)

    def _admit_machine(self, p: int, *, after: int | None = None) -> None:
        """Wire an already-registered shard's machine into the cluster:
        ring insertion, model hand-off, private RNG stream."""
        self.topology = self.topology.with_machine(p, after=after)
        # Clone the model from verified-live survivors only, taking the
        # freshest copy of each submodel (highest visit counter; earliest
        # live machine wins ties). Between iterations every store holds
        # identical finals, but a join racing a same-tick retirement must
        # never clone from a stale or deleted store.
        donor: dict[int, SubmodelMessage] = {}
        for q in self.topology.machines:
            if q == p or q not in self._stores or self.dataplane.is_retired(q):
                continue
            for sid, m in self._stores[q].items():
                best = donor.get(sid)
                if best is None or m.counter > best.counter:
                    donor[sid] = m
        self._stores[p] = {sid: m.copy() for sid, m in donor.items()}
        self._machine_rngs[p] = self._join_rng(p)

    def remove_machine(self, p: int) -> None:
        """Streaming form 2 / Z-step fault: drop a machine and its data."""
        if p not in self.shards:
            raise KeyError(f"machine {p} does not exist")
        if self.n_machines == 1:
            raise ValueError("cannot remove the only machine")
        self.dataplane.retire(p, lost=False)
        del self._stores[p]
        del self._machine_rngs[p]
        self.topology = self.topology.without_machine(p)

    # ------------------------------------------------------- checkpointing
    def rng_states(self) -> tuple[dict, dict]:
        """(route RNG state, {machine: RNG state}) as picklable dicts."""
        return (
            self._route_rng.bit_generator.state,
            {p: rng.bit_generator.state for p, rng in self._machine_rngs.items()},
        )

    def restore_rngs(self, route_state, machine_states) -> None:
        """Adopt RNG states captured by :meth:`rng_states`."""
        if route_state is not None:
            self._route_rng.bit_generator.state = route_state
        for p, st in machine_states.items():
            p = int(p)
            if p in self._machine_rngs:
                self._machine_rngs[p].bit_generator.state = st

    def seed_stores(self, params_by_sid: dict) -> None:
        """Fill every machine's store with the given final submodels.

        Restoring a checkpoint recreates the post-W-step invariant (every
        machine holds identical final copies) from the snapshot's
        assembled parameters; the visit counter is set to 0 uniformly —
        nothing between iterations reads it, and the next W step seeds
        fresh messages from the adapter anyway.
        """
        specs = {s.sid: s for s in self.adapter.submodel_specs()}
        self._stores = {
            p: {
                sid: SubmodelMessage(
                    spec=specs[sid],
                    theta=np.array(theta, copy=True),
                    sgd_state=SGDState(),
                )
                for sid, theta in params_by_sid.items()
            }
            for p in self.machines
        }

    # -------------------------------------------------------- diagnostics
    def gather_codes(self) -> tuple[np.ndarray, np.ndarray]:
        """(global_indices, codes) concatenated over shards."""
        idx = np.concatenate([self.shards[p].indices for p in self.machines])
        Z = np.vstack([self.shards[p].Z for p in self.machines])
        order = np.argsort(idx, kind="stable")
        return idx[order], Z[order]

    def model_copies_consistent(self) -> bool:
        """Check the post-W-step invariant: every machine holds identical,
        final copies of every submodel (paper: "each machine contains a
        (redundant) copy of all the current submodels")."""
        specs = self.adapter.submodel_specs()
        ref = self._stores[self.machines[0]]
        for p in self.machines:
            store = self._stores[p]
            for spec in specs:
                if spec.sid not in store or spec.sid not in ref:
                    return False
                if not np.array_equal(store[spec.sid].theta, ref[spec.sid].theta):
                    return False
        return True

    def e_q(self, mu: float) -> float:
        """Global E_Q from per-shard contributions (no data movement)."""
        return float(
            sum(self.adapter.e_q_shard(self.shards[p], mu) for p in self.machines)
        )

    def e_ba(self) -> float:
        """Global nested objective from per-shard contributions."""
        return float(sum(self.adapter.e_ba_shard(self.shards[p]) for p in self.machines))
