"""Baseline binary hash functions: truncated PCA and ITQ.

Truncated PCA (tPCA) is both the BA's initialisation (paper section 3.1:
"initialise Z ... by running PCA and binarising its result") and the
baseline in the SIFT-1B recall figures. ITQ (iterative quantisation, Gong
et al., 2013) is the established unsupervised-hashing method the BA paper
reports beating; we implement it from scratch for the comparison benches.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import check_random_state
from repro.utils.validation import check_array, check_positive_int

__all__ = ["TruncatedPCAHash", "ITQHash", "pca_directions"]


def pca_directions(X: np.ndarray, n_components: int) -> tuple[np.ndarray, np.ndarray]:
    """Top principal directions of ``X``.

    Returns ``(mean, V)`` with ``V`` of shape (n_components, dim); rows are
    unit-norm principal directions sorted by decreasing variance.
    """
    X = check_array(X, name="X")
    n_components = check_positive_int(n_components, name="n_components")
    if n_components > X.shape[1]:
        raise ValueError(
            f"n_components={n_components} exceeds dimension {X.shape[1]}"
        )
    mean = X.mean(axis=0)
    Xc = X - mean
    # SVD of the centred data; right singular vectors are the directions.
    _, _, Vt = np.linalg.svd(Xc, full_matrices=False)
    return mean, Vt[:n_components]


class TruncatedPCAHash:
    """Binary hash by thresholding the top-L PCA projections at zero.

    ``z = step(V (x - mean))``: bit l is 1 when the l-th principal component
    of the centred point is non-negative.
    """

    def __init__(self, n_bits: int):
        self.n_bits = check_positive_int(n_bits, name="n_bits")
        self.mean_: np.ndarray | None = None
        self.V_: np.ndarray | None = None

    def fit(self, X: np.ndarray, *, subset: int | None = None, rng=None) -> "TruncatedPCAHash":
        """Fit PCA on ``X`` (optionally on a random subset, as the paper does
        for sets too large to fit in one machine)."""
        X = check_array(X, name="X")
        if subset is not None and subset < len(X):
            rng = check_random_state(rng)
            X = X[rng.choice(len(X), size=subset, replace=False)]
        self.mean_, self.V_ = pca_directions(X, self.n_bits)
        return self

    def encode(self, X: np.ndarray) -> np.ndarray:
        """Binary codes of shape (n, n_bits), dtype uint8."""
        if self.V_ is None:
            raise RuntimeError("hash is not fitted; call fit() first")
        proj = (np.asarray(X, dtype=np.float64) - self.mean_) @ self.V_.T
        return (proj >= 0.0).astype(np.uint8)


class ITQHash:
    """Iterative quantisation (ITQ): PCA projection + learned rotation.

    Alternates between assigning each projected point to the nearest vertex
    of the binary hypercube ({-1,+1}^L) and solving the orthogonal
    Procrustes problem for the rotation (Gong et al., 2013, as cited in
    paper sections 3.1 and 8).
    """

    def __init__(self, n_bits: int, *, n_iters: int = 50, seed=None):
        self.n_bits = check_positive_int(n_bits, name="n_bits")
        self.n_iters = check_positive_int(n_iters, name="n_iters")
        self.seed = seed
        self.mean_: np.ndarray | None = None
        self.V_: np.ndarray | None = None
        self.R_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "ITQHash":
        X = check_array(X, name="X")
        rng = check_random_state(self.seed)
        self.mean_, self.V_ = pca_directions(X, self.n_bits)
        P = (X - self.mean_) @ self.V_.T  # (n, L) PCA projections
        # Random orthogonal initial rotation.
        R, _ = np.linalg.qr(rng.normal(size=(self.n_bits, self.n_bits)))
        for _ in range(self.n_iters):
            B = np.sign(P @ R)
            B[B == 0] = 1.0
            # Procrustes: R = argmin ||B - P R||_F over orthogonal R.
            U, _, Vt = np.linalg.svd(B.T @ P)
            R = (U @ Vt).T
        self.R_ = R
        return self

    def encode(self, X: np.ndarray) -> np.ndarray:
        """Binary codes of shape (n, n_bits), dtype uint8."""
        if self.R_ is None:
            raise RuntimeError("hash is not fitted; call fit() first")
        proj = (np.asarray(X, dtype=np.float64) - self.mean_) @ self.V_.T @ self.R_
        return (proj >= 0.0).astype(np.uint8)
