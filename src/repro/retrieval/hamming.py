"""Packed binary codes and Hamming-distance search.

The point of binary hashing (paper section 3.1) is that an L-bit code per
point turns nearest-neighbour search into popcounts on machine words: 10^9
points at D=500 floats take 2 TB, but 8 GB at L=64 bits. We reproduce the
packed representation: codes are stored as uint64 words (ceil(L/64) per
point) and distances are computed with vectorised XOR + popcount.

The popcount itself is ``np.bitwise_count`` where available (NumPy >= 2.0)
and a 16-bit lookup table otherwise — same counts either way, parity-tested.
All k-NN paths share one total order: increasing distance, ties broken by
ascending base index (the order a sequential scan in database order would
produce). That contract is what makes sharded retrieval in ``repro.serve``
exactly equal to a single scan.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_binary_codes

__all__ = [
    "HAS_BITWISE_COUNT",
    "pack_bits",
    "unpack_bits",
    "popcount",
    "hamming_cdist",
    "hamming_knn",
]

#: Whether this NumPy has the native popcount ufunc (added in 2.0).
HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

_LUT16: np.ndarray | None = None


def _popcount_table() -> np.ndarray:
    """Popcounts of all 16-bit values, built once by doubling."""
    global _LUT16
    if _LUT16 is None:
        t = np.zeros(1, dtype=np.uint8)
        for _ in range(16):
            t = np.concatenate([t, t + 1])
        _LUT16 = t
    return _LUT16


def _popcount_lut16(a: np.ndarray) -> np.ndarray:
    """Table-driven popcount: view each uint64 as four uint16 halfwords."""
    a = np.ascontiguousarray(a, dtype=np.uint64)
    halves = a.view(np.uint16).reshape(a.shape + (4,))
    return _popcount_table()[halves].sum(axis=-1, dtype=np.uint8)


def popcount(a: np.ndarray) -> np.ndarray:
    """Per-element bit count of a uint64 array, as uint8.

    Dispatches to ``np.bitwise_count`` when the installed NumPy has it
    (>= 2.0); otherwise falls back to a 16-bit lookup table with identical
    results. The NumPy floor in setup.py is set by the *fallback*, not the
    native path.
    """
    if HAS_BITWISE_COUNT:
        return np.bitwise_count(a).astype(np.uint8, copy=False)
    return _popcount_lut16(a)


def pack_bits(Z: np.ndarray) -> np.ndarray:
    """Pack an (n, L) 0/1 matrix into (n, ceil(L/64)) uint64 words.

    Bit ``l`` of point ``i`` is bit ``l % 64`` of word ``l // 64`` — a fixed
    layout so packed codes from different calls are comparable. Vectorised:
    ``np.packbits(..., bitorder="little")`` produces exactly the byte
    ``l // 8`` / bit ``l % 8`` layout, and a little-endian uint64 view of
    each 8-byte group lands byte ``j`` at bits ``8j..8j+7`` of the word —
    together bit ``l`` -> bit ``l % 64`` of word ``l // 64``, byte-identical
    to the original per-bit shift loop.
    """
    Z = check_binary_codes(Z)
    n, L = Z.shape
    n_words = (L + 63) // 64
    nbytes = n_words * 8
    b = np.packbits(Z, axis=1, bitorder="little")
    if b.shape[1] < nbytes:
        b = np.pad(b, ((0, 0), (0, nbytes - b.shape[1])))
    words = np.ascontiguousarray(b).view("<u8")
    # No-op on little-endian hosts; byteswapping copy on big-endian ones.
    return np.ascontiguousarray(words.astype(np.uint64, copy=False))


def unpack_bits(packed: np.ndarray, n_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`; returns an (n, n_bits) uint8 matrix."""
    packed = np.asarray(packed, dtype=np.uint64)
    if packed.ndim != 2:
        raise ValueError(f"packed must be 2-dimensional, got shape {packed.shape}")
    n, n_words = packed.shape
    if n_bits > n_words * 64:
        raise ValueError(f"n_bits={n_bits} exceeds capacity {n_words * 64}")
    b = np.ascontiguousarray(packed).astype("<u8", copy=False).view(np.uint8)
    return np.unpackbits(
        np.ascontiguousarray(b), axis=1, count=n_bits, bitorder="little"
    )


def hamming_cdist(A: np.ndarray, B: np.ndarray, *, chunk: int = 1024) -> np.ndarray:
    """All-pairs Hamming distances between packed code matrices.

    Parameters
    ----------
    A : uint64 array of shape (na, n_words)
    B : uint64 array of shape (nb, n_words)
    chunk : int
        Rows of ``A`` processed per block, bounding peak memory at
        ``chunk * nb * n_words`` words.

    Returns
    -------
    uint16 array of shape (na, nb)
    """
    A = np.asarray(A, dtype=np.uint64)
    B = np.asarray(B, dtype=np.uint64)
    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[1]:
        raise ValueError(f"incompatible packed shapes {A.shape} and {B.shape}")
    na, nb = len(A), len(B)
    out = np.empty((na, nb), dtype=np.uint16)
    for start in range(0, na, chunk):
        blk = A[start : start + chunk]
        xor = blk[:, None, :] ^ B[None, :, :]
        out[start : start + chunk] = popcount(xor).sum(axis=2, dtype=np.uint16)
    return out


def hamming_knn(
    queries: np.ndarray, base: np.ndarray, k: int, *, chunk: int = 1024
) -> np.ndarray:
    """Indices of the k Hamming-nearest base codes for each query.

    Results are sorted by increasing distance; equal-distance neighbours
    come in ascending base-index order — the exact (distance, index)
    lexicographic head, matching a scan in database order. The selection
    runs on a composite integer key ``distance * nb + index`` so the
    argpartition boundary itself respects the tie order (partitioning on
    raw distances may keep an arbitrary subset of the boundary ties).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if k > len(base):
        raise ValueError(f"k={k} exceeds base size {len(base)}")
    D = hamming_cdist(queries, base, chunk=chunk)
    nb = D.shape[1]
    idx = np.arange(nb, dtype=np.int64)[None, :]
    out = np.empty((len(D), k), dtype=np.int64)
    for start in range(0, len(D), chunk):
        key = D[start : start + chunk].astype(np.int64) * nb + idx
        part = np.argpartition(key, k - 1, axis=1)[:, :k]
        rows = np.arange(len(part))[:, None]
        order = np.argsort(key[rows, part], axis=1)
        out[start : start + chunk] = part[rows, order]
    return out
