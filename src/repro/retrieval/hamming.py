"""Packed binary codes and Hamming-distance search.

The point of binary hashing (paper section 3.1) is that an L-bit code per
point turns nearest-neighbour search into popcounts on machine words: 10^9
points at D=500 floats take 2 TB, but 8 GB at L=64 bits. We reproduce the
packed representation: codes are stored as uint64 words (ceil(L/64) per
point) and distances are computed with vectorised XOR + popcount.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_binary_codes

__all__ = ["pack_bits", "unpack_bits", "hamming_cdist", "hamming_knn"]


def pack_bits(Z: np.ndarray) -> np.ndarray:
    """Pack an (n, L) 0/1 matrix into (n, ceil(L/64)) uint64 words.

    Bit ``l`` of point ``i`` is bit ``l % 64`` of word ``l // 64`` — a fixed
    layout so packed codes from different calls are comparable.
    """
    Z = check_binary_codes(Z)
    n, L = Z.shape
    n_words = (L + 63) // 64
    out = np.zeros((n, n_words), dtype=np.uint64)
    for l in range(L):
        word, bit = divmod(l, 64)
        out[:, word] |= Z[:, l].astype(np.uint64) << np.uint64(bit)
    return out


def unpack_bits(packed: np.ndarray, n_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`; returns an (n, n_bits) uint8 matrix."""
    packed = np.asarray(packed, dtype=np.uint64)
    if packed.ndim != 2:
        raise ValueError(f"packed must be 2-dimensional, got shape {packed.shape}")
    n, n_words = packed.shape
    if n_bits > n_words * 64:
        raise ValueError(f"n_bits={n_bits} exceeds capacity {n_words * 64}")
    Z = np.empty((n, n_bits), dtype=np.uint8)
    for l in range(n_bits):
        word, bit = divmod(l, 64)
        Z[:, l] = (packed[:, word] >> np.uint64(bit)) & np.uint64(1)
    return Z


def hamming_cdist(A: np.ndarray, B: np.ndarray, *, chunk: int = 1024) -> np.ndarray:
    """All-pairs Hamming distances between packed code matrices.

    Parameters
    ----------
    A : uint64 array of shape (na, n_words)
    B : uint64 array of shape (nb, n_words)
    chunk : int
        Rows of ``A`` processed per block, bounding peak memory at
        ``chunk * nb * n_words`` words.

    Returns
    -------
    uint16 array of shape (na, nb)
    """
    A = np.asarray(A, dtype=np.uint64)
    B = np.asarray(B, dtype=np.uint64)
    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[1]:
        raise ValueError(f"incompatible packed shapes {A.shape} and {B.shape}")
    na, nb = len(A), len(B)
    out = np.empty((na, nb), dtype=np.uint16)
    for start in range(0, na, chunk):
        blk = A[start : start + chunk]
        xor = blk[:, None, :] ^ B[None, :, :]
        out[start : start + chunk] = np.bitwise_count(xor).sum(axis=2, dtype=np.uint16)
    return out


def hamming_knn(
    queries: np.ndarray, base: np.ndarray, k: int, *, chunk: int = 1024
) -> np.ndarray:
    """Indices of the k Hamming-nearest base codes for each query.

    Results are sorted by increasing distance; ties broken by index (stable),
    matching a scan in database order.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if k > len(base):
        raise ValueError(f"k={k} exceeds base size {len(base)}")
    D = hamming_cdist(queries, base, chunk=chunk)
    # argpartition then stable sort of the k candidates per row.
    part = np.argpartition(D, k - 1, axis=1)[:, :k]
    rows = np.arange(len(D))[:, None]
    order = np.argsort(D[rows, part], axis=1, kind="stable")
    return part[rows, order]
