"""Brute-force Euclidean ground truth for retrieval evaluation."""

from __future__ import annotations

import numpy as np

__all__ = ["euclidean_cdist", "euclidean_knn"]


def euclidean_cdist(A: np.ndarray, B: np.ndarray, *, chunk: int = 256) -> np.ndarray:
    """Squared Euclidean distances between rows of ``A`` and ``B``, chunked.

    Uses the ``||a||^2 - 2 a.b + ||b||^2`` expansion with clipping at zero
    (the expansion can go slightly negative in floating point).
    """
    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[1]:
        raise ValueError(f"incompatible shapes {A.shape} and {B.shape}")
    b2 = (B * B).sum(axis=1)
    out = np.empty((len(A), len(B)), dtype=np.float64)
    for start in range(0, len(A), chunk):
        blk = A[start : start + chunk]
        a2 = (blk * blk).sum(axis=1)
        d = a2[:, None] - 2.0 * blk @ B.T + b2[None, :]
        np.maximum(d, 0.0, out=d)
        out[start : start + chunk] = d
    return out


def euclidean_knn(
    queries: np.ndarray, base: np.ndarray, k: int, *, chunk: int = 256
) -> np.ndarray:
    """Indices of the k Euclidean-nearest base points for each query row."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if k > len(base):
        raise ValueError(f"k={k} exceeds base size {len(base)}")
    queries = np.asarray(queries, dtype=np.float64)
    base = np.asarray(base, dtype=np.float64)
    nn = np.empty((len(queries), k), dtype=np.int64)
    for start in range(0, len(queries), chunk):
        D = euclidean_cdist(queries[start : start + chunk], base)
        part = np.argpartition(D, k - 1, axis=1)[:, :k]
        rows = np.arange(len(D))[:, None]
        order = np.argsort(D[rows, part], axis=1, kind="stable")
        nn[start : start + chunk] = part[rows, order]
    return nn
