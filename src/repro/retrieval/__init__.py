"""Binary-hashing retrieval substrate.

Implements the evaluation pipeline of paper section 8.1: pack L-bit codes
into machine words, search by Hamming distance with popcounts, and score
against brute-force Euclidean ground truth with precision@k (CIFAR/SIFT-10K/
SIFT-1M) and recall@R with tie-as-top-rank (SIFT-1B). Also provides the
truncated-PCA initialisation / baseline and ITQ (Gong et al., 2013), the
established method the BA is compared against.
"""

from repro.retrieval.hamming import (
    hamming_cdist,
    hamming_knn,
    pack_bits,
    popcount,
    unpack_bits,
)
from repro.retrieval.groundtruth import euclidean_cdist, euclidean_knn
from repro.retrieval.metrics import precision_at_k, recall_at_R, recall_curve
from repro.retrieval.baselines import ITQHash, TruncatedPCAHash

__all__ = [
    "pack_bits",
    "unpack_bits",
    "popcount",
    "hamming_cdist",
    "hamming_knn",
    "euclidean_cdist",
    "euclidean_knn",
    "precision_at_k",
    "recall_at_R",
    "recall_curve",
    "TruncatedPCAHash",
    "ITQHash",
]
