"""Retrieval quality metrics.

Paper section 8.1: for CIFAR/SIFT-10K/SIFT-1M the metric is *precision*:
retrieve the k Hamming-nearest base points per query and report the
fraction that are among the K Euclidean-nearest ("true neighbours"). For
SIFT-1B the metric is *recall@R*: the fraction of queries whose true
(Euclidean) nearest neighbour appears within the top R positions of the
Hamming ranking, with ties placed at top rank.
"""

from __future__ import annotations

import numpy as np

from repro.retrieval.hamming import hamming_cdist, hamming_knn

__all__ = ["precision_at_k", "recall_at_R", "recall_curve"]


def precision_at_k(
    query_codes: np.ndarray,
    base_codes: np.ndarray,
    true_neighbours: np.ndarray,
    k: int,
) -> float:
    """Mean fraction of the k Hamming-retrieved points that are true neighbours.

    Parameters
    ----------
    query_codes, base_codes : packed uint64 code matrices
    true_neighbours : int array of shape (n_queries, K)
        Ground-truth Euclidean K-NN indices into the base set.
    k : int
        Retrieval depth in Hamming space.
    """
    if len(true_neighbours) != len(query_codes):
        raise ValueError(
            f"{len(query_codes)} queries but {len(true_neighbours)} ground-truth rows"
        )
    retrieved = hamming_knn(query_codes, base_codes, k)
    hits = 0
    for r, t in zip(retrieved, true_neighbours):
        hits += np.isin(r, t, assume_unique=False).sum()
    return float(hits) / (len(query_codes) * k)


def _optimistic_ranks(query_codes: np.ndarray, base_codes: np.ndarray, nn1: np.ndarray) -> np.ndarray:
    """Rank of each query's true 1-NN under Hamming distance, ties at top.

    The rank is 1 + (number of base points strictly closer than the true
    neighbour), implementing "in case of tied distances, we place the query
    as top rank" (paper section 8.1).
    """
    D = hamming_cdist(query_codes, base_codes)
    rows = np.arange(len(D))
    d_true = D[rows, nn1]
    return 1 + (D < d_true[:, None]).sum(axis=1)


def recall_at_R(
    query_codes: np.ndarray,
    base_codes: np.ndarray,
    nn1: np.ndarray,
    R: int,
) -> float:
    """Fraction of queries whose true 1-NN ranks within the top R."""
    if R < 1:
        raise ValueError(f"R must be >= 1, got {R}")
    nn1 = np.asarray(nn1, dtype=np.int64).ravel()
    if len(nn1) != len(query_codes):
        raise ValueError(f"{len(query_codes)} queries but {len(nn1)} ground-truth entries")
    ranks = _optimistic_ranks(query_codes, base_codes, nn1)
    return float((ranks <= R).mean())


def recall_curve(
    query_codes: np.ndarray,
    base_codes: np.ndarray,
    nn1: np.ndarray,
    Rs,
) -> np.ndarray:
    """recall@R for several R values, computing ranks once (fig. 12)."""
    Rs = np.asarray(list(Rs), dtype=np.int64)
    if (Rs < 1).any():
        raise ValueError("all R values must be >= 1")
    nn1 = np.asarray(nn1, dtype=np.int64).ravel()
    ranks = _optimistic_ranks(query_codes, base_codes, nn1)
    return np.array([(ranks <= R).mean() for R in Rs])
