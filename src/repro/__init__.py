"""repro: ParMAC — distributed optimisation of nested functions.

A from-scratch Python reproduction of Carreira-Perpiñán & Alizadeh,
"ParMAC: distributed optimisation of nested functions, with application to
learning binary autoencoders" (arXiv:1605.09114 / MLSys 2019).

Quickstart
----------
>>> import numpy as np
>>> from repro import BinaryAutoencoder, MACTrainerBA, GeometricSchedule
>>> X = np.random.default_rng(0).normal(size=(500, 32))
>>> ba = BinaryAutoencoder.linear(n_features=32, n_bits=8)
>>> trainer = MACTrainerBA(ba, GeometricSchedule(1e-4, 2.0, 8), seed=0)
>>> history = trainer.fit(X)
>>> codes = ba.encode(X)          # (500, 8) binary codes

Distributed training on a simulated 8-machine ring:

>>> from repro import ParMACTrainerBA
>>> ba2 = BinaryAutoencoder.linear(n_features=32, n_bits=8)
>>> trainer = ParMACTrainerBA(
...     ba2, GeometricSchedule(1e-4, 2.0, 8), n_machines=8, seed=0)
>>> history = trainer.fit(X)

Package map
-----------
- :mod:`repro.core` — MAC and ParMAC training drivers, penalty schedules.
- :mod:`repro.autoencoder` — binary autoencoder model + Z-step solvers.
- :mod:`repro.nets` — K-layer MAC for sigmoid deep nets + backprop baseline.
- :mod:`repro.optim` — SGD substrate: linear SVMs, least squares, schedules.
- :mod:`repro.distributed` — ring topology/protocol, simulated cluster,
  multiprocessing backend, streaming, fault tolerance, allreduce.
- :mod:`repro.perfmodel` — the analytical speedup model (section 5/app. A).
- :mod:`repro.retrieval` — Hamming search, precision/recall, tPCA & ITQ.
- :mod:`repro.data` — synthetic GIST/SIFT-like workloads, uint8 storage.
"""

from repro.autoencoder import BinaryAutoencoder
from repro.autoencoder.adapter import BAAdapter
from repro.core import (
    GeometricSchedule,
    MACTrainerBA,
    ParMACTrainer,
    ParMACTrainerBA,
    ParMACTrainerNet,
    TrainingHistory,
)
from repro.core.evaluation import PrecisionEvaluator, RecallEvaluator
from repro.distributed import (
    CostModel,
    MultiprocessRing,
    SimulatedCluster,
    available_backends,
    get_backend,
)
from repro.nets import BackpropTrainer, DeepNet, MACTrainerNet
from repro.perfmodel import SpeedupParams, speedup
from repro.retrieval import ITQHash, TruncatedPCAHash

__version__ = "1.0.0"

__all__ = [
    "BinaryAutoencoder",
    "BAAdapter",
    "MACTrainerBA",
    "ParMACTrainer",
    "ParMACTrainerBA",
    "ParMACTrainerNet",
    "get_backend",
    "available_backends",
    "GeometricSchedule",
    "TrainingHistory",
    "PrecisionEvaluator",
    "RecallEvaluator",
    "SimulatedCluster",
    "MultiprocessRing",
    "CostModel",
    "DeepNet",
    "MACTrainerNet",
    "BackpropTrainer",
    "SpeedupParams",
    "speedup",
    "TruncatedPCAHash",
    "ITQHash",
    "__version__",
]
