"""The generic ParMAC trainer: any adapter on any execution backend.

ParMAC is a meta-algorithm — "the ring protocol is identical for any
nested model" (paper section 9) — and this module is where that claim
lives in code. One fit loop drives the mu schedule; *what* is trained
comes from a :class:`~repro.distributed.interfaces.ParMACAdapter`
(binary autoencoder, deep net, ...) and *where* it runs comes from a
:class:`~repro.distributed.backends.base.Backend` resolved by name
through the backend registry (``"sync"``, ``"async"``,
``"multiprocess"``).

The model-specific front ends :class:`~repro.core.parmac.ParMACTrainerBA`
and :class:`~repro.core.parmac_net.ParMACTrainerNet` are thin shims over
this class: they prepare shards and initial coordinates, then delegate.

>>> adapter = NetAdapter(net)                        # doctest: +SKIP
>>> shards = make_net_shards(X, Y, Zs, parts)        # doctest: +SKIP
>>> trainer = ParMACTrainer(adapter, backend="multiprocess", seed=0)
>>> history = trainer.fit(shards)                    # doctest: +SKIP
"""

from __future__ import annotations

from pathlib import Path

from repro.core.history import IterationRecord, TrainingHistory
from repro.core.penalty import GeometricSchedule, penalty_schedule
from repro.distributed.backends import get_backend
from repro.distributed.backends.base import Backend
from repro.distributed.dataplane import ClusterState

__all__ = ["ParMACTrainer"]


class ParMACTrainer:
    """Drive distributed MAC over a mu schedule on a pluggable backend.

    Parameters
    ----------
    adapter : ParMACAdapter
        The model bridge; its ``model`` attribute is updated in place.
    schedule : GeometricSchedule or preset name, optional
        The penalty schedule (default: mu0 = 1, x2, 10 iterations).
    backend : str or Backend
        A registry name (``"sync"``, ``"async"``, ``"multiprocess"``,
        ``"tcp"``) or an already-constructed backend instance. When a
        name is given, the backend is built from the keyword arguments
        below; when an instance is given, those arguments are ignored in
        its favour.
    epochs, scheme, batch_size, shuffle_within, shuffle_ring, cost, seed :
        Backend configuration; see :class:`BaseBackend`.
    fault_policy : str or FaultPolicy
        What happens when a machine dies mid-fit: ``"fail_fast"``
        (default — the fit raises and tears down), ``"drop_shard"``
        (the dead machine's shard is excised and training continues on
        the survivors, paper section 4.3), or ``"respawn"`` (the pool is
        rebuilt from the last iteration boundary and the iteration
        retried bit-identically — zero rows lost, same final model as an
        uninterrupted run; bounded by the backend's ``respawn_budget``
        with exponential ``respawn_backoff``, escalating to drop_shard
        once the budget is spent and to fail_fast once no pool
        survives).
    chaos : ChaosConfig or dict, optional
        Network fault injection (:mod:`repro.distributed.chaos`): seeded
        packet loss, delay/jitter, reordering, bandwidth caps, partition
        windows and stragglers, charged virtually on the simulated
        engines and injected for real on the wall-clock ones. Timing
        only — results stay bit-identical.
    evaluator : callable, optional
        Called with the adapter's model after every iteration; may return
        a dict with "precision" / "recall" entries for the history.
    stop_on_fixed_point : bool
        Stop once an iteration changes no auxiliary coordinates and
        leaves no constraint violations (the paper's stopping test; used
        by the binary-autoencoder front end).
    backend_options : dict, optional
        Extra keyword arguments for the backend class (e.g.
        ``message_dtype`` / ``batch_units`` on any engine,
        ``execute_updates`` for simulated engines, ``ctx_method`` for
        the multiprocessing pool, ``ports`` / ``batch_hops`` for the
        TCP ring).

    Attributes
    ----------
    history_ : TrainingHistory
    backend : Backend
        Persistent across ``fit`` calls — the multiprocessing pool is
        reused, not respawned, on a second fit.
    """

    def __init__(
        self,
        adapter,
        schedule=None,
        *,
        backend: str | Backend = "sync",
        epochs: int = 1,
        scheme: str = "rounds",
        batch_size: int = 100,
        shuffle_within: bool = True,
        shuffle_ring: bool = False,
        cost=None,
        fault_policy: str = "fail_fast",
        chaos=None,
        seed=None,
        evaluator=None,
        stop_on_fixed_point: bool = False,
        backend_options: dict | None = None,
    ):
        self.adapter = adapter
        if schedule is None:
            schedule = GeometricSchedule(mu0=1.0, factor=2.0, n_iters=10)
        self.schedule = penalty_schedule(schedule)
        if isinstance(backend, str):
            backend = get_backend(backend)(
                epochs=epochs,
                scheme=scheme,
                batch_size=batch_size,
                shuffle_within=shuffle_within,
                shuffle_ring=shuffle_ring,
                cost=cost,
                fault_policy=fault_policy,
                chaos=chaos,
                seed=seed,
                **(backend_options or {}),
            )
        self.backend = backend
        self.evaluator = evaluator
        self.stop_on_fixed_point = bool(stop_on_fixed_point)
        self.history_: TrainingHistory | None = None

    @property
    def cluster_(self):
        """The underlying SimulatedCluster (simulated backends only)."""
        return getattr(self.backend, "cluster", None)

    def ingest(self, p: int, X_new) -> None:
        """Queue streamed rows for machine ``p`` (paper section 4.3).

        Validated eagerly, applied at the next iteration boundary. Only
        meaningful while a fit is active (``setup`` has run) — typically
        from an ``evaluator`` callback or another thread observing a
        live data source; for a known arrival schedule pass ``arrivals``
        to :meth:`fit` instead.
        """
        self.backend.ingest(p, X_new)

    def add_machine(self, X_new, *, after=None) -> int:
        """A preloaded machine joins the ring mid-fit (section 4.3,
        streaming form 2); returns the new machine id. Admitted at the
        next iteration boundary; for a known join schedule pass
        ``joins`` to :meth:`fit` instead."""
        return self.backend.add_machine(X_new, after=after)

    def checkpoint(self, path=None):
        """Snapshot the active fit into a :class:`ClusterState`.

        With ``path``, the state is also written to that file (loadable
        via ``fit(..., resume=path)``). Callable between iterations —
        e.g. from an ``evaluator`` — or right after :meth:`fit` returns,
        while the backend is still open.
        """
        state = self.backend.checkpoint()
        if path is not None:
            state.save(path)
        return state

    @staticmethod
    def _arrivals_for(arrivals, iteration: int):
        """Arrival schedule lookup: mapping or callable → [(p, X_new)]."""
        if arrivals is None:
            return []
        if callable(arrivals):
            return arrivals(iteration) or []
        return arrivals.get(iteration, [])

    @staticmethod
    def _joins_for(joins, iteration: int):
        """Join schedule lookup; entries are ``X_new`` or ``(X_new, after)``."""
        if joins is None:
            return []
        entries = joins(iteration) if callable(joins) else joins.get(iteration, [])
        out = []
        for entry in entries or []:
            if isinstance(entry, tuple) and len(entry) == 2:
                out.append(entry)
            else:
                out.append((entry, None))
        return out

    def fit(
        self,
        shards=None,
        *,
        arrivals=None,
        joins=None,
        resume=None,
        checkpoint_path=None,
        checkpoint_every: int = 1,
    ) -> TrainingHistory:
        """Run one MAC iteration per mu over the given shards.

        ``shards`` must match the adapter (e.g. :class:`Shard` for a BA,
        :class:`NetShard` for a deep net); one machine per shard.

        ``arrivals`` optionally streams data in mid-fit (section 4.3): a
        mapping ``{iteration: [(machine, X_new), ...]}`` or a callable
        ``iteration -> [(machine, X_new), ...]``. Each batch is queued at
        the boundary before that iteration runs, coded by the current
        nested model, and shipped to its machine — identically on every
        backend, which is what the streaming-parity conformance tests
        assert.

        ``joins`` optionally adds whole machines mid-fit (section 4.3,
        streaming form 2): a mapping ``{iteration: [X_new, ...]}`` (each
        entry an ``X_new`` array or an ``(X_new, after)`` tuple fixing
        the ring insertion point) or the equivalent callable. The machine
        is admitted at that iteration's boundary, receives the current
        submodels, and trains from then on — identically on every
        backend.

        ``resume`` continues a checkpointed fit instead of starting one:
        a path written by :meth:`checkpoint` / ``checkpoint_path``, or a
        :class:`ClusterState`. The snapshot's shards and RNG streams are
        restored (``shards`` is ignored and may be None), this trainer's
        adapter receives the snapshot's parameters, and the mu schedule
        picks up at the first un-run iteration — bit-identically to the
        uninterrupted fit. Schedules (``arrivals``/``joins``) are indexed
        by global iteration number, so the same schedule object works
        for the original and the resumed fit.

        ``checkpoint_path`` writes a snapshot after every
        ``checkpoint_every``-th iteration (atomically replacing the
        file), making the fit resumable after a crash or kill.
        """
        history = TrainingHistory()
        start = 0
        try:
            if resume is not None:
                state = (
                    resume
                    if isinstance(resume, ClusterState)
                    else ClusterState.load(resume)
                )
                self.backend.restore(state, adapter=self.adapter)
                start = int(state.iteration)
            else:
                if shards is None:
                    raise ValueError("fit() needs shards unless resuming")
                self.backend.setup(self.adapter, shards)
            for i, mu in enumerate(self.schedule):
                if i < start:
                    continue  # already trained before the checkpoint
                # Drain this boundary's scheduled joins and arrivals into
                # the backend; run_iteration admits machines first, then
                # applies arrivals, before the W step.
                for X_new, after in self._joins_for(joins, i):
                    self.backend.add_machine(X_new, after=after)
                for p, X_new in self._arrivals_for(arrivals, i):
                    self.backend.ingest(p, X_new)
                stats = self.backend.run_iteration(float(mu))
                record = IterationRecord(
                    iteration=i,
                    mu=float(mu),
                    e_q=stats.e_q,
                    e_ba=stats.e_ba,
                    time=stats.time,
                    z_changes=stats.z_changes,
                    violations=stats.violations,
                    extra=dict(stats.extra),
                )
                record.extra.setdefault("rows_ingested", stats.rows_ingested)
                record.extra.setdefault("shards_lost", stats.shards_lost)
                record.extra.setdefault("n_machines", stats.n_machines)
                record.extra.setdefault("machines_added", stats.machines_added)
                record.extra.setdefault("replan_s", stats.replan_s)
                if self.evaluator is not None:
                    metrics = self.evaluator(self.adapter.model)
                    record.precision = metrics.get("precision")
                    record.recall = metrics.get("recall")
                history.append(record)
                if checkpoint_path is not None and (i + 1) % max(
                    1, int(checkpoint_every)
                ) == 0:
                    self._write_checkpoint(checkpoint_path)
                if (
                    self.stop_on_fixed_point
                    and stats.z_changes == 0
                    and stats.violations == 0
                ):
                    break
        finally:
            # Unconditional: even a fit that failed between shard
            # shipping and the first result must release per-fit
            # resources (e.g. shared-memory segments) on the way out.
            self.backend.teardown()
        self.history_ = history
        return history

    def _write_checkpoint(self, path) -> None:
        """Snapshot to ``path`` atomically (write-temp-then-rename), so a
        kill mid-write leaves the previous checkpoint intact."""
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        self.backend.checkpoint().save(tmp)
        tmp.replace(path)

    def close(self) -> None:
        """Release backend resources (e.g. the multiprocessing pool)."""
        self.backend.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
