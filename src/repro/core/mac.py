"""Serial MAC for binary autoencoders (paper fig. 1).

One MAC iteration per penalty value mu:

* **W step** — fit the L single-bit hash functions by SGD (linear SVMs,
  warm-started, step counter reset per iteration as in the paper's
  auto-tuned SVMSGD) and the decoder exactly by least squares;
* **Z step** — the per-point binary proximal operator, exact by
  enumeration for small L, alternating otherwise;
* stop when Z is a fixed point with satisfied constraints, or when
  validation precision drops (early stopping, optional).
"""

from __future__ import annotations

import time

import numpy as np

from repro.autoencoder.binary_autoencoder import BinaryAutoencoder
from repro.autoencoder.init import init_codes_pca
from repro.autoencoder.zstep import MAX_ENUM_BITS, zstep
from repro.core.convergence import EarlyStopping, z_fixed_point
from repro.core.history import IterationRecord, TrainingHistory
from repro.core.penalty import penalty_schedule
from repro.optim.sgd import SGDState
from repro.utils.rng import check_random_state
from repro.utils.validation import check_array, check_binary_codes

__all__ = ["MACTrainerBA"]


class MACTrainerBA:
    """Serial MAC trainer for a :class:`BinaryAutoencoder`.

    Parameters
    ----------
    model : BinaryAutoencoder
        Trained in place.
    schedule : GeometricSchedule or preset name
        The mu schedule (section 8.1 presets: "cifar", "sift10k", ...).
    w_epochs : int
        SGD passes per hash function per iteration.
    batch_size : int
        SGD minibatch size.
    decoder_exact : bool
        Exact least-squares decoder fit (the serial algorithm of fig. 1);
        False uses SGD like ParMAC does.
    zstep_method : {"auto", "enumerate", "alternate", "relaxed"}
    evaluator : callable, optional
        ``evaluator(model) -> dict`` of retrieval metrics per iteration
        (e.g. :class:`~repro.core.evaluation.PrecisionEvaluator`).
    early_stopping : bool
        Stop (and restore the best model) when the evaluator's score drops
        — requires an evaluator with a ``score_key`` attribute.
    seed : int or None

    Attributes
    ----------
    Z_ : ndarray
        Final auxiliary codes.
    history_ : TrainingHistory
    """

    def __init__(
        self,
        model: BinaryAutoencoder,
        schedule="sift10k",
        *,
        w_epochs: int = 1,
        batch_size: int = 100,
        decoder_exact: bool = True,
        zstep_method: str = "auto",
        max_enum_bits: int = MAX_ENUM_BITS,
        max_sweeps: int = 20,
        evaluator=None,
        early_stopping: bool = False,
        patience: int = 1,
        seed=None,
    ):
        if w_epochs < 1:
            raise ValueError(f"w_epochs must be >= 1, got {w_epochs}")
        if early_stopping and evaluator is None:
            raise ValueError("early_stopping requires an evaluator")
        self.model = model
        self.schedule = penalty_schedule(schedule)
        self.w_epochs = int(w_epochs)
        self.batch_size = int(batch_size)
        self.decoder_exact = bool(decoder_exact)
        self.zstep_method = zstep_method
        self.max_enum_bits = int(max_enum_bits)
        self.max_sweeps = int(max_sweeps)
        self.evaluator = evaluator
        self.early_stopping = bool(early_stopping)
        self.patience = int(patience)
        self.seed = seed
        self.Z_: np.ndarray | None = None
        self.history_: TrainingHistory | None = None

    # ------------------------------------------------------------- steps
    def _w_step(self, X: np.ndarray, F: np.ndarray, Z: np.ndarray, rng) -> None:
        enc, dec = self.model.encoder, self.model.decoder
        for l in range(enc.n_bits):
            state = SGDState()  # schedule restarts each MAC iteration
            for _ in range(self.w_epochs):
                enc.fit_bit(l, F, Z[:, l], state, batch_size=self.batch_size, rng=rng)
        if self.decoder_exact:
            dec.fit_lstsq(Z, X)
        else:
            from repro.optim.linreg import LinearRegression

            reg = LinearRegression(dec.n_bits, dec.n_outputs, schedule=dec.schedule)
            reg.W, reg.c = dec.B.copy(), dec.c.copy()
            state = SGDState()
            for _ in range(self.w_epochs):
                reg.partial_fit(
                    Z.astype(np.float64), X, state, batch_size=self.batch_size, rng=rng
                )
            dec.B, dec.c = reg.W, reg.c

    def _z_step(self, X: np.ndarray, F: np.ndarray, Z: np.ndarray, mu: float) -> np.ndarray:
        enc, dec = self.model.encoder, self.model.decoder
        H = (F @ enc.A.T + enc.a >= 0.0).astype(np.uint8)
        return zstep(
            X,
            dec.B,
            dec.c,
            H,
            mu,
            method=self.zstep_method,
            Z0=Z,
            max_enum_bits=self.max_enum_bits,
            max_sweeps=self.max_sweeps,
        )

    # --------------------------------------------------------------- fit
    def fit(self, X: np.ndarray, Z0: np.ndarray | None = None) -> TrainingHistory:
        """Run MAC over the full mu schedule.

        ``Z0`` defaults to truncated-PCA codes (section 8.1).
        """
        X = check_array(X, name="X")
        rng = check_random_state(self.seed)
        F = self.model.encoder.features(X)
        if Z0 is None:
            Z, _ = init_codes_pca(F, self.model.n_bits, rng=rng)
        else:
            Z = check_binary_codes(Z0)
            if Z.shape != (len(X), self.model.n_bits):
                raise ValueError(
                    f"Z0 must have shape {(len(X), self.model.n_bits)}, got {Z.shape}"
                )

        history = TrainingHistory()
        stopper = EarlyStopping(patience=self.patience) if self.early_stopping else None
        for i, mu in enumerate(self.schedule):
            t0 = time.perf_counter()
            self._w_step(X, F, Z, rng)
            Z_new = self._z_step(X, F, Z, mu)
            elapsed = time.perf_counter() - t0

            H = (F @ self.model.encoder.A.T + self.model.encoder.a >= 0.0).astype(np.uint8)
            record = IterationRecord(
                iteration=i,
                mu=float(mu),
                e_q=self.model.e_q(X, Z_new, mu),
                e_ba=self.model.e_ba(X),
                time=elapsed,
                z_changes=int((Z_new != Z).sum()),
                violations=int((Z_new != H).sum()),
            )
            if self.evaluator is not None:
                metrics = self.evaluator(self.model)
                record.precision = metrics.get("precision")
                record.recall = metrics.get("recall")
            history.append(record)

            stop = z_fixed_point(Z_new, Z, H)
            Z = Z_new
            if stopper is not None:
                score = metrics[self.evaluator.score_key]
                snapshot = (self.model.copy(), Z.copy())
                if stopper.update(score, snapshot):
                    best_model, Z = stopper.best_state
                    self.model.encoder = best_model.encoder
                    self.model.decoder = best_model.decoder
                    break
            if stop:
                break

        self.Z_ = Z
        self.history_ = history
        return history
