"""Penalty-parameter (mu) schedules for the quadratic-penalty method.

The paper uses a multiplicative schedule ``mu_i = mu_0 * a^i`` with
``(mu_0, a)`` tuned offline per dataset (section 8.1): CIFAR uses
``(0.005, 1.2)`` over 26 iterations, SIFT-10K/1M ``(1e-6, 2)`` over 20, and
SIFT-1B ``(1e-4, 2)`` over 10. The schedule "should increase slowly enough
that the binary codes can change considerably and explore better solutions
before the constraints are satisfied" (section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive, check_positive_int

__all__ = ["GeometricSchedule", "penalty_schedule"]


@dataclass(frozen=True)
class GeometricSchedule:
    """``mu_i = mu0 * factor^i`` for ``i = 0 .. n_iters - 1``.

    ``factor`` must be > 1 so that ``mu -> inf`` as the penalty method
    requires for exactness.
    """

    mu0: float
    factor: float
    n_iters: int

    def __post_init__(self):
        check_positive(self.mu0, name="mu0")
        check_positive_int(self.n_iters, name="n_iters")
        if not self.factor > 1.0:
            raise ValueError(f"factor must be > 1, got {self.factor}")

    def values(self) -> np.ndarray:
        """The full mu sequence as a float array."""
        return self.mu0 * self.factor ** np.arange(self.n_iters, dtype=np.float64)

    def __iter__(self):
        return iter(self.values())

    def __len__(self) -> int:
        return self.n_iters


# Paper section 8.1 presets, keyed by workload name.
_PRESETS = {
    "cifar": GeometricSchedule(mu0=5e-3, factor=1.2, n_iters=26),
    "sift10k": GeometricSchedule(mu0=1e-6, factor=2.0, n_iters=20),
    "sift1m": GeometricSchedule(mu0=1e-6, factor=2.0, n_iters=20),
    "sift1b": GeometricSchedule(mu0=1e-4, factor=2.0, n_iters=10),
}


def penalty_schedule(name_or_schedule) -> GeometricSchedule:
    """Resolve a schedule: pass through a schedule, or look up a preset name."""
    if isinstance(name_or_schedule, GeometricSchedule):
        return name_or_schedule
    if isinstance(name_or_schedule, str):
        try:
            return _PRESETS[name_or_schedule]
        except KeyError:
            raise ValueError(
                f"unknown schedule preset {name_or_schedule!r}; "
                f"available: {sorted(_PRESETS)}"
            ) from None
    raise TypeError(
        f"expected a GeometricSchedule or preset name, got {type(name_or_schedule)!r}"
    )
