"""Training history records.

Each MAC iteration (one mu value: one W step + one Z step) appends an
:class:`IterationRecord`; :class:`TrainingHistory` turns the list into the
arrays the paper plots — ``E_Q`` and ``E_BA`` vs iteration or cumulative
time, precision/recall vs iteration (figs. 7–9, 11).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["IterationRecord", "TrainingHistory"]


@dataclass
class IterationRecord:
    """Metrics for one MAC iteration.

    ``time`` is the duration of this iteration: wall-clock seconds for real
    backends, virtual-clock units for the simulated cluster. ``z_changes``
    counts bits of Z that changed in the Z step; together with
    ``violations == 0`` it implements the paper's stopping test.
    """

    iteration: int
    mu: float
    e_q: float
    e_ba: float
    precision: float | None = None
    recall: float | None = None
    time: float = 0.0
    z_changes: int = -1
    violations: int = -1
    extra: dict = field(default_factory=dict)


class TrainingHistory:
    """Ordered collection of per-iteration records with array accessors."""

    def __init__(self):
        self.records: list[IterationRecord] = []

    def append(self, record: IterationRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, i: int) -> IterationRecord:
        return self.records[i]

    def _column(self, name: str) -> np.ndarray:
        return np.array([getattr(r, name) for r in self.records], dtype=np.float64)

    @property
    def iterations(self) -> np.ndarray:
        return self._column("iteration")

    @property
    def mu(self) -> np.ndarray:
        return self._column("mu")

    @property
    def e_q(self) -> np.ndarray:
        return self._column("e_q")

    @property
    def e_ba(self) -> np.ndarray:
        return self._column("e_ba")

    @property
    def precision(self) -> np.ndarray:
        return self._column("precision")

    @property
    def recall(self) -> np.ndarray:
        return self._column("recall")

    @property
    def times(self) -> np.ndarray:
        """Per-iteration durations."""
        return self._column("time")

    @property
    def cumulative_time(self) -> np.ndarray:
        """Elapsed time axis for the error-vs-time plots."""
        return np.cumsum(self.times)

    @property
    def total_time(self) -> float:
        return float(self.times.sum())

    def to_rows(self) -> list[dict]:
        """Per-iteration dictionaries (for CSV/JSON export)."""
        rows = []
        for r in self.records:
            row = {
                "iteration": r.iteration,
                "mu": r.mu,
                "e_q": r.e_q,
                "e_ba": r.e_ba,
                "precision": r.precision,
                "recall": r.recall,
                "time": r.time,
                "z_changes": r.z_changes,
                "violations": r.violations,
            }
            row.update(r.extra)
            rows.append(row)
        return rows

    def to_csv(self, path) -> None:
        """Write the history as CSV (one row per iteration)."""
        import csv

        rows = self.to_rows()
        if not rows:
            raise ValueError("cannot export an empty history")
        fields = sorted({k for row in rows for k in row})
        with open(path, "w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=fields)
            writer.writeheader()
            writer.writerows(rows)

    def summary(self) -> str:
        """One line per iteration, for bench output."""
        lines = []
        for r in self.records:
            parts = [f"iter {r.iteration:3d}", f"mu={r.mu:9.3g}", f"E_Q={r.e_q:12.5g}",
                     f"E_BA={r.e_ba:12.5g}"]
            if r.precision is not None:
                parts.append(f"prec={r.precision:6.4f}")
            if r.recall is not None:
                parts.append(f"recall={r.recall:6.4f}")
            parts.append(f"t={r.time:9.4g}")
            lines.append("  ".join(parts))
        return "\n".join(lines)
