"""Retrieval evaluators used during training (validation curves).

Ground truth (Euclidean K-NN or 1-NN of the queries in the base set) is
computed once at construction; each call encodes the current model and
scores it — this is what produces the precision/recall-vs-iteration curves
of figs. 7–9 and 11.
"""

from __future__ import annotations

import numpy as np

from repro.retrieval.groundtruth import euclidean_knn
from repro.retrieval.hamming import pack_bits
from repro.retrieval.metrics import precision_at_k, recall_at_R

__all__ = ["PrecisionEvaluator", "RecallEvaluator"]


class PrecisionEvaluator:
    """precision@k against Euclidean K-NN ground truth (section 8.1).

    Parameters
    ----------
    queries, base : float arrays
        Query and database points in the original space.
    K : int
        Ground-truth neighbourhood size (true neighbours).
    k : int
        Hamming retrieval depth.
    """

    score_key = "precision"

    def __init__(self, queries: np.ndarray, base: np.ndarray, *, K: int, k: int):
        if k > len(base) or K > len(base):
            raise ValueError(f"K={K}, k={k} must not exceed base size {len(base)}")
        self.queries = np.asarray(queries, dtype=np.float64)
        self.base = np.asarray(base, dtype=np.float64)
        self.k = int(k)
        self.true_neighbours = euclidean_knn(self.queries, self.base, K)

    def __call__(self, model) -> dict:
        qc = pack_bits(model.encode(self.queries))
        bc = pack_bits(model.encode(self.base))
        return {"precision": precision_at_k(qc, bc, self.true_neighbours, self.k)}


class RecallEvaluator:
    """recall@R against the Euclidean 1-NN (SIFT-1B protocol, section 8.1)."""

    score_key = "recall"

    def __init__(self, queries: np.ndarray, base: np.ndarray, *, R: int = 100):
        if R < 1:
            raise ValueError(f"R must be >= 1, got {R}")
        self.queries = np.asarray(queries, dtype=np.float64)
        self.base = np.asarray(base, dtype=np.float64)
        self.R = int(R)
        self.nn1 = euclidean_knn(self.queries, self.base, 1)[:, 0]

    def __call__(self, model) -> dict:
        qc = pack_bits(model.encode(self.queries))
        bc = pack_bits(model.encode(self.base))
        return {"recall": recall_at_R(qc, bc, self.nn1, self.R)}
