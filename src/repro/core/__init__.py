"""MAC training drivers and shared training infrastructure.

:mod:`repro.core.mac` is the serial reference (paper fig. 1);
:mod:`repro.core.parmac` is the distributed driver built on the engines in
:mod:`repro.distributed`. Both share the penalty schedule, history records
and convergence/stopping logic defined here.
"""

from repro.core.penalty import GeometricSchedule, penalty_schedule
from repro.core.history import IterationRecord, TrainingHistory
from repro.core.convergence import (
    constraints_satisfied,
    lagrange_multiplier_estimates,
    z_fixed_point,
)
from repro.core.mac import MACTrainerBA
from repro.core.trainer import ParMACTrainer
from repro.core.parmac import ParMACTrainerBA
from repro.core.parmac_net import ParMACTrainerNet

__all__ = [
    "GeometricSchedule",
    "penalty_schedule",
    "IterationRecord",
    "TrainingHistory",
    "z_fixed_point",
    "constraints_satisfied",
    "lagrange_multiplier_estimates",
    "MACTrainerBA",
    "ParMACTrainer",
    "ParMACTrainerBA",
    "ParMACTrainerNet",
]
