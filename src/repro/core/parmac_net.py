"""ParMAC trainer for K-layer deep nets — the generality of section 3.2.

The same ring engines that train binary autoencoders train sigmoid nets:
the submodels are hidden units (one weight vector each, "M is the number
of hidden units in a deep net", section 4), the Z step is the per-point
generalised proximal problem, and nothing about the protocol changes.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.history import IterationRecord, TrainingHistory
from repro.core.penalty import GeometricSchedule, penalty_schedule
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.costmodel import CostModel
from repro.distributed.partition import partition_indices
from repro.nets.adapter import NetAdapter, make_net_shards
from repro.nets.deepnet import DeepNet
from repro.nets.mac_net import MACTrainerNet
from repro.utils.rng import check_random_state

__all__ = ["ParMACTrainerNet"]


class ParMACTrainerNet:
    """Distributed MAC trainer for a :class:`DeepNet` on least squares.

    Parameters
    ----------
    net : DeepNet
        Trained in place.
    schedule : GeometricSchedule or preset name, optional
        The mu schedule (default: mu0 = 1, x2, 10 iterations).
    n_machines, epochs, scheme, shuffle_within, shuffle_ring, cost, seed :
        As in :class:`~repro.core.parmac.ParMACTrainerBA`.
    z_steps, z_lr : Z-step optimiser settings.

    Attributes
    ----------
    history_ : TrainingHistory
    cluster_ : SimulatedCluster
    """

    def __init__(
        self,
        net: DeepNet,
        schedule=None,
        *,
        n_machines: int,
        epochs: int = 1,
        scheme: str = "rounds",
        batch_size: int = 32,
        shuffle_within: bool = True,
        shuffle_ring: bool = False,
        cost: CostModel | None = None,
        z_steps: int = 10,
        z_lr: float = 0.5,
        seed=None,
    ):
        if n_machines < 1:
            raise ValueError(f"n_machines must be >= 1, got {n_machines}")
        self.net = net
        if schedule is None:
            schedule = GeometricSchedule(mu0=1.0, factor=2.0, n_iters=10)
        self.schedule = penalty_schedule(schedule)
        self.n_machines = int(n_machines)
        self.epochs = int(epochs)
        self.scheme = scheme
        self.batch_size = int(batch_size)
        self.shuffle_within = bool(shuffle_within)
        self.shuffle_ring = bool(shuffle_ring)
        self.cost = cost if cost is not None else CostModel()
        self.z_steps = int(z_steps)
        self.z_lr = float(z_lr)
        self.seed = seed
        self.history_: TrainingHistory | None = None
        self.cluster_: SimulatedCluster | None = None

    def fit(self, X: np.ndarray, Y: np.ndarray) -> TrainingHistory:
        """Run distributed MAC over the mu schedule."""
        X = np.asarray(X, dtype=np.float64)
        Y = np.asarray(Y, dtype=np.float64)
        if Y.ndim == 1:
            Y = Y[:, None]
        if len(X) != len(Y):
            raise ValueError(f"X has {len(X)} rows but Y has {len(Y)}")
        rng = check_random_state(self.seed)

        adapter = NetAdapter(self.net, z_steps=self.z_steps, z_lr=self.z_lr)
        Zs = MACTrainerNet(self.net, seed=self.seed).init_coords(X)
        parts = partition_indices(len(X), self.n_machines, rng=rng)
        shards = make_net_shards(X, Y, Zs, parts)
        cluster = SimulatedCluster(
            adapter,
            shards,
            epochs=self.epochs,
            scheme=self.scheme,
            batch_size=self.batch_size,
            shuffle_within=self.shuffle_within,
            shuffle_ring=self.shuffle_ring,
            cost=self.cost,
            seed=self.seed,
        )
        self.cluster_ = cluster

        history = TrainingHistory()
        for i, mu in enumerate(self.schedule):
            t0 = time.perf_counter()
            wstats, zstats = cluster.iteration(mu)
            wall = time.perf_counter() - t0
            e_q = sum(
                adapter.e_q_shard(cluster.shards[p], mu) for p in cluster.machines
            )
            history.append(
                IterationRecord(
                    iteration=i,
                    mu=float(mu),
                    e_q=e_q,
                    e_ba=self.net.loss(X, Y),  # nested objective
                    time=wstats.sim_time + zstats.sim_time,
                    z_changes=zstats.z_changes,
                    extra={"wall_time": wall},
                )
            )
        self.history_ = history
        return history
