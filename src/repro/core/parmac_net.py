"""ParMAC trainer for K-layer deep nets — the generality of section 3.2.

The same execution backends that train binary autoencoders train sigmoid
nets: the submodels are hidden units (one weight vector each, "M is the
number of hidden units in a deep net", section 4), the Z step is the
per-point generalised proximal problem, and nothing about the protocol
changes. Like :class:`~repro.core.parmac.ParMACTrainerBA`, this class is
a thin front end over the generic :class:`~repro.core.trainer.ParMACTrainer`
— which is why deep nets now run on every backend, including the real
multiprocessing pool.
"""

from __future__ import annotations

import numpy as np

from repro.core.history import TrainingHistory
from repro.core.penalty import GeometricSchedule, penalty_schedule
from repro.core.trainer import ParMACTrainer
from repro.distributed.backends import get_backend
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.costmodel import CostModel
from repro.distributed.partition import partition_indices
from repro.nets.adapter import NetAdapter, make_net_shards
from repro.nets.deepnet import DeepNet
from repro.nets.mac_net import MACTrainerNet
from repro.utils.rng import check_random_state

__all__ = ["ParMACTrainerNet"]


class ParMACTrainerNet:
    """Distributed MAC trainer for a :class:`DeepNet` on least squares.

    Parameters
    ----------
    net : DeepNet
        Trained in place.
    schedule : GeometricSchedule or preset name, optional
        The mu schedule (default: mu0 = 1, x2, 10 iterations).
    backend : str
        Any registered execution backend ("sync", "async",
        "multiprocess", "tcp").
    n_machines, epochs, scheme, shuffle_within, shuffle_ring, cost, seed,
    backend_options :
        As in :class:`~repro.core.parmac.ParMACTrainerBA`.
    z_steps, z_lr : Z-step optimiser settings.
    evaluator : callable, optional
        Per-iteration metric, called with the net.

    Attributes
    ----------
    history_ : TrainingHistory
    cluster_ : SimulatedCluster or None (simulated backends only)
    trainer_ : ParMACTrainer
    """

    def __init__(
        self,
        net: DeepNet,
        schedule=None,
        *,
        n_machines: int,
        epochs: int = 1,
        backend: str = "sync",
        scheme: str = "rounds",
        batch_size: int = 32,
        shuffle_within: bool = True,
        shuffle_ring: bool = False,
        cost: CostModel | None = None,
        z_steps: int = 10,
        z_lr: float = 0.5,
        evaluator=None,
        seed=None,
        backend_options: dict | None = None,
    ):
        get_backend(backend)  # fail fast on unknown names
        if n_machines < 1:
            raise ValueError(f"n_machines must be >= 1, got {n_machines}")
        self.net = net
        if schedule is None:
            schedule = GeometricSchedule(mu0=1.0, factor=2.0, n_iters=10)
        self.schedule = penalty_schedule(schedule)
        self.n_machines = int(n_machines)
        self.epochs = int(epochs)
        self.backend = backend
        self.scheme = scheme
        self.batch_size = int(batch_size)
        self.shuffle_within = bool(shuffle_within)
        self.shuffle_ring = bool(shuffle_ring)
        self.cost = cost
        self.z_steps = int(z_steps)
        self.z_lr = float(z_lr)
        self.evaluator = evaluator
        self.seed = seed
        self.backend_options = backend_options
        self.history_: TrainingHistory | None = None
        self.trainer_: ParMACTrainer | None = None
        self._trainer_config: tuple | None = None

    def _config(self) -> tuple:
        """Everything the generic trainer is built from; a change between
        fits forces a rebuild instead of being silently ignored."""
        return (
            self.schedule,
            self.backend,
            self.epochs,
            self.scheme,
            self.batch_size,
            self.shuffle_within,
            self.shuffle_ring,
            self.cost,
            self.seed,
            self.evaluator,
            None if self.backend_options is None else tuple(
                sorted(self.backend_options.items())
            ),
            self.z_steps,
            self.z_lr,
        )

    def _make_trainer(self) -> ParMACTrainer:
        """Build the generic trainer on first use and reuse it across fits
        (so the multiprocessing worker pool persists), rebuilding only if
        the configuration attributes were changed in between."""
        config = self._config()
        if self.trainer_ is None or self._trainer_config != config:
            if self.trainer_ is not None:
                self.trainer_.close()
            self.trainer_ = ParMACTrainer(
                NetAdapter(self.net, z_steps=self.z_steps, z_lr=self.z_lr),
                self.schedule,
                backend=self.backend,
                epochs=self.epochs,
                scheme=self.scheme,
                batch_size=self.batch_size,
                shuffle_within=self.shuffle_within,
                shuffle_ring=self.shuffle_ring,
                cost=self.cost,
                seed=self.seed,
                evaluator=self.evaluator,
                stop_on_fixed_point=False,
                backend_options=self.backend_options,
            )
            self._trainer_config = config
        return self.trainer_

    @property
    def cluster_(self) -> SimulatedCluster | None:
        return None if self.trainer_ is None else self.trainer_.cluster_

    def fit(self, X: np.ndarray, Y: np.ndarray) -> TrainingHistory:
        """Run distributed MAC over the mu schedule (in the net's
        compute dtype, end to end)."""
        X = np.asarray(X, dtype=self.net.compute_dtype)
        Y = np.asarray(Y, dtype=self.net.compute_dtype)
        if Y.ndim == 1:
            Y = Y[:, None]
        if len(X) != len(Y):
            raise ValueError(f"X has {len(X)} rows but Y has {len(Y)}")
        rng = check_random_state(self.seed)

        trainer = self._make_trainer()
        Zs = MACTrainerNet(self.net, seed=self.seed).init_coords(X)
        parts = partition_indices(len(X), self.n_machines, rng=rng)
        shards = make_net_shards(X, Y, Zs, parts)
        history = trainer.fit(shards)
        self.history_ = history
        return history

    def close(self) -> None:
        """Release backend resources (the multiprocessing pool)."""
        if self.trainer_ is not None:
            self.trainer_.close()
