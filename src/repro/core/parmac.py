"""ParMAC trainer for binary autoencoders — the paper's headline system.

Runs the same MAC outer loop as :class:`~repro.core.mac.MACTrainerBA` but
executes every iteration on a distributed backend:

* ``backend="sync"`` / ``"async"`` — the in-process simulated cluster
  (deterministic / discrete-event), with virtual-clock timing from a
  :class:`~repro.distributed.costmodel.CostModel`;
* ``backend="multiprocess"`` — real OS processes connected in a queue
  ring (the MPI stand-in), with wall-clock timing.

The iteration-time axis in the history is virtual time for simulated
backends and wall-clock for the multiprocessing one.
"""

from __future__ import annotations

import time

import numpy as np

from repro.autoencoder.adapter import BAAdapter
from repro.autoencoder.binary_autoencoder import BinaryAutoencoder
from repro.autoencoder.init import init_codes_pca
from repro.core.history import IterationRecord, TrainingHistory
from repro.core.penalty import penalty_schedule
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.costmodel import CostModel
from repro.distributed.mp_backend import MultiprocessRing
from repro.distributed.partition import make_shards, partition_indices
from repro.utils.rng import check_random_state
from repro.utils.validation import check_array, check_binary_codes

__all__ = ["ParMACTrainerBA"]


class ParMACTrainerBA:
    """Distributed MAC trainer for a :class:`BinaryAutoencoder`.

    Parameters
    ----------
    model : BinaryAutoencoder
        Trained in place.
    schedule : GeometricSchedule or preset name
    n_machines : int
        P.
    epochs : int
        SGD epochs in the W step (e).
    backend : {"sync", "async", "multiprocess"}
    scheme : {"rounds", "tworound"}
        W-step communication scheme (sections 4.1 / 4.2).
    shuffle_within, shuffle_ring : bool
        Data-shuffling options (section 4.3); ``shuffle_ring`` is ignored
        by the multiprocessing backend (fixed ring).
    alphas : array-like, optional
        Relative machine speeds for load balancing (section 4.3).
    cost : CostModel, optional
        Virtual-clock constants for the simulated backends.
    n_decoder_groups : int, optional
        Decoder grouping; default L (M = 2L submodels, section 5.4).
    evaluator : callable, optional
        Per-iteration retrieval metric.
    seed : int or None

    Attributes
    ----------
    history_ : TrainingHistory
    cluster_ : SimulatedCluster or None
        Exposed for streaming / fault-injection experiments.
    """

    def __init__(
        self,
        model: BinaryAutoencoder,
        schedule="sift10k",
        *,
        n_machines: int,
        epochs: int = 1,
        backend: str = "sync",
        scheme: str = "rounds",
        batch_size: int = 100,
        shuffle_within: bool = True,
        shuffle_ring: bool = False,
        alphas=None,
        cost: CostModel | None = None,
        n_decoder_groups: int | None = None,
        zstep_method: str = "auto",
        max_enum_bits: int = 12,
        max_sweeps: int = 20,
        evaluator=None,
        seed=None,
    ):
        if backend not in ("sync", "async", "multiprocess"):
            raise ValueError(f"unknown backend {backend!r}")
        if n_machines < 1:
            raise ValueError(f"n_machines must be >= 1, got {n_machines}")
        self.model = model
        self.schedule = penalty_schedule(schedule)
        self.n_machines = int(n_machines)
        self.epochs = int(epochs)
        self.backend = backend
        self.scheme = scheme
        self.batch_size = int(batch_size)
        self.shuffle_within = bool(shuffle_within)
        self.shuffle_ring = bool(shuffle_ring)
        self.alphas = alphas
        self.cost = cost
        self.n_decoder_groups = n_decoder_groups
        self.zstep_method = zstep_method
        self.max_enum_bits = int(max_enum_bits)
        self.max_sweeps = int(max_sweeps)
        self.evaluator = evaluator
        self.seed = seed
        self.history_: TrainingHistory | None = None
        self.cluster_: SimulatedCluster | None = None

    # ------------------------------------------------------------ helpers
    def _make_adapter(self) -> BAAdapter:
        return BAAdapter(
            self.model,
            n_decoder_groups=self.n_decoder_groups,
            zstep_method=self.zstep_method,
            max_enum_bits=self.max_enum_bits,
            max_sweeps=self.max_sweeps,
        )

    def _make_shards(self, X: np.ndarray, Z: np.ndarray, adapter: BAAdapter, rng):
        F = adapter.features(X)
        parts = partition_indices(
            len(X), self.n_machines, alphas=self.alphas, rng=rng, shuffle=True
        )
        return make_shards(X, F, Z, parts)

    # --------------------------------------------------------------- fit
    def fit(self, X: np.ndarray, Z0: np.ndarray | None = None) -> TrainingHistory:
        """Run distributed MAC over the full mu schedule."""
        X = check_array(X, name="X")
        rng = check_random_state(self.seed)
        adapter = self._make_adapter()
        if Z0 is None:
            Z, _ = init_codes_pca(adapter.features(X), self.model.n_bits, rng=rng)
        else:
            Z = check_binary_codes(Z0)
            if Z.shape != (len(X), self.model.n_bits):
                raise ValueError(
                    f"Z0 must have shape {(len(X), self.model.n_bits)}, got {Z.shape}"
                )
        shards = self._make_shards(X, Z, adapter, rng)

        if self.backend == "multiprocess":
            return self._fit_multiprocess(adapter, shards)
        return self._fit_simulated(adapter, shards)

    def _fit_simulated(self, adapter: BAAdapter, shards) -> TrainingHistory:
        cluster = SimulatedCluster(
            adapter,
            shards,
            epochs=self.epochs,
            scheme=self.scheme,
            batch_size=self.batch_size,
            shuffle_within=self.shuffle_within,
            shuffle_ring=self.shuffle_ring,
            cost=self.cost if self.cost is not None else CostModel(),
            engine=self.backend,
            seed=self.seed,
        )
        self.cluster_ = cluster
        history = TrainingHistory()
        for i, mu in enumerate(self.schedule):
            t0 = time.perf_counter()
            wstats, zstats = cluster.iteration(mu)
            wall = time.perf_counter() - t0
            violations = sum(
                adapter.violations_shard(cluster.shards[p]) for p in cluster.machines
            )
            record = IterationRecord(
                iteration=i,
                mu=float(mu),
                e_q=cluster.e_q(mu),
                e_ba=cluster.e_ba(),
                time=wstats.sim_time + zstats.sim_time,
                z_changes=zstats.z_changes,
                violations=violations,
                extra={
                    "w_sim_time": wstats.sim_time,
                    "z_sim_time": zstats.sim_time,
                    "comp_time": wstats.comp_time,
                    "comm_time": wstats.comm_time,
                    "bytes_sent": wstats.bytes_sent,
                    "wall_time": wall,
                },
            )
            if self.evaluator is not None:
                metrics = self.evaluator(self.model)
                record.precision = metrics.get("precision")
                record.recall = metrics.get("recall")
            history.append(record)
            if record.z_changes == 0 and violations == 0:
                break
        self.history_ = history
        return history

    def _fit_multiprocess(self, adapter: BAAdapter, shards) -> TrainingHistory:
        ring = MultiprocessRing(
            adapter,
            shards,
            epochs=self.epochs,
            scheme=self.scheme,
            batch_size=self.batch_size,
            shuffle_within=self.shuffle_within,
            seed=0 if self.seed is None else int(self.seed),
        )
        history = TrainingHistory()

        def on_iteration(res):
            # Called right after the coordinator's model is synced, so the
            # evaluator scores the model as of *this* iteration.
            record = IterationRecord(
                iteration=len(history),
                mu=res.mu,
                e_q=res.e_q,
                e_ba=res.e_ba,
                time=res.w_time + res.z_time,
                z_changes=res.z_changes,
                violations=res.violations,
                extra={"wall_time": res.wall_time, "w_time": res.w_time, "z_time": res.z_time},
            )
            if self.evaluator is not None:
                metrics = self.evaluator(self.model)
                record.precision = metrics.get("precision")
                record.recall = metrics.get("recall")
            history.append(record)

        ring.run(list(self.schedule), on_iteration=on_iteration)
        self.history_ = history
        return history
