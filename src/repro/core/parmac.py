"""ParMAC trainer for binary autoencoders — the paper's headline system.

A thin front end over the generic :class:`~repro.core.trainer.ParMACTrainer`:
this class owns the BA-specific preparation (PCA code initialisation,
load-balanced partitioning, the BA adapter) and delegates the fit loop to
the generic trainer on whichever execution backend was requested:

* ``backend="sync"`` / ``"async"`` — the in-process simulated cluster
  (deterministic / discrete-event), with virtual-clock timing from a
  :class:`~repro.distributed.costmodel.CostModel`;
* ``backend="multiprocess"`` — a persistent pool of real OS processes
  connected in a queue ring (the MPI stand-in), with wall-clock timing
  and shards shipped once over shared memory.

The iteration-time axis in the history is virtual time for simulated
backends and wall-clock for the multiprocessing one.
"""

from __future__ import annotations

import numpy as np

from repro.autoencoder.adapter import BAAdapter
from repro.autoencoder.zstep import MAX_ENUM_BITS
from repro.autoencoder.binary_autoencoder import BinaryAutoencoder
from repro.autoencoder.init import init_codes_pca
from repro.core.history import TrainingHistory
from repro.core.penalty import penalty_schedule
from repro.core.trainer import ParMACTrainer
from repro.distributed.backends import get_backend
from repro.distributed.cluster import SimulatedCluster
from repro.distributed.costmodel import CostModel
from repro.distributed.partition import make_shards, partition_indices
from repro.utils.rng import check_random_state
from repro.utils.validation import check_array, check_binary_codes

__all__ = ["ParMACTrainerBA"]


class ParMACTrainerBA:
    """Distributed MAC trainer for a :class:`BinaryAutoencoder`.

    Parameters
    ----------
    model : BinaryAutoencoder
        Trained in place.
    schedule : GeometricSchedule or preset name
    n_machines : int
        P.
    epochs : int
        SGD epochs in the W step (e).
    backend : str
        Any registered execution backend ("sync", "async",
        "multiprocess", "tcp").
    scheme : {"rounds", "tworound"}
        W-step communication scheme (sections 4.1 / 4.2).
    shuffle_within, shuffle_ring : bool
        Data-shuffling options (section 4.3); ``shuffle_ring`` reshuffles
        the ring per epoch on every backend, including multiprocess.
    alphas : array-like, optional
        Relative machine speeds for load balancing (section 4.3).
    cost : CostModel, optional
        Virtual-clock constants for the simulated backends.
    n_decoder_groups : int, optional
        Decoder grouping; default L (M = 2L submodels, section 5.4).
    evaluator : callable, optional
        Per-iteration retrieval metric.
    seed : int or None
    backend_options : dict, optional
        Extra keyword arguments for the backend class (e.g. ``ports`` /
        ``batch_hops`` for the TCP ring, ``ctx_method`` for the
        multiprocessing pool).

    Attributes
    ----------
    history_ : TrainingHistory
    cluster_ : SimulatedCluster or None
        Exposed for streaming / fault-injection experiments (simulated
        backends only).
    trainer_ : ParMACTrainer
        The generic trainer; persistent, so the multiprocessing worker
        pool survives across ``fit`` calls.
    """

    def __init__(
        self,
        model: BinaryAutoencoder,
        schedule="sift10k",
        *,
        n_machines: int,
        epochs: int = 1,
        backend: str = "sync",
        scheme: str = "rounds",
        batch_size: int = 100,
        shuffle_within: bool = True,
        shuffle_ring: bool = False,
        alphas=None,
        cost: CostModel | None = None,
        n_decoder_groups: int | None = None,
        zstep_method: str = "auto",
        max_enum_bits: int = MAX_ENUM_BITS,
        max_sweeps: int = 20,
        evaluator=None,
        seed=None,
        backend_options: dict | None = None,
    ):
        get_backend(backend)  # fail fast on unknown names
        if n_machines < 1:
            raise ValueError(f"n_machines must be >= 1, got {n_machines}")
        self.model = model
        self.schedule = penalty_schedule(schedule)
        self.n_machines = int(n_machines)
        self.epochs = int(epochs)
        self.backend = backend
        self.scheme = scheme
        self.batch_size = int(batch_size)
        self.shuffle_within = bool(shuffle_within)
        self.shuffle_ring = bool(shuffle_ring)
        self.alphas = alphas
        self.cost = cost
        self.n_decoder_groups = n_decoder_groups
        self.zstep_method = zstep_method
        self.max_enum_bits = int(max_enum_bits)
        self.max_sweeps = int(max_sweeps)
        self.evaluator = evaluator
        self.seed = seed
        self.backend_options = backend_options
        self.history_: TrainingHistory | None = None
        self.trainer_: ParMACTrainer | None = None
        self._trainer_config: tuple | None = None

    # ------------------------------------------------------------ helpers
    def _make_adapter(self) -> BAAdapter:
        return BAAdapter(
            self.model,
            n_decoder_groups=self.n_decoder_groups,
            zstep_method=self.zstep_method,
            max_enum_bits=self.max_enum_bits,
            max_sweeps=self.max_sweeps,
        )

    def _make_shards(self, X: np.ndarray, Z: np.ndarray, adapter: BAAdapter, rng):
        F = adapter.features(X)
        parts = partition_indices(
            len(X), self.n_machines, alphas=self.alphas, rng=rng, shuffle=True
        )
        return make_shards(X, F, Z, parts)

    def _config(self) -> tuple:
        """Everything the generic trainer is built from; a change between
        fits forces a rebuild instead of being silently ignored."""
        return (
            self.schedule,
            self.backend,
            self.epochs,
            self.scheme,
            self.batch_size,
            self.shuffle_within,
            self.shuffle_ring,
            self.cost,
            self.seed,
            self.evaluator,
            None if self.backend_options is None else tuple(
                sorted(self.backend_options.items())
            ),
            self.n_decoder_groups,
            self.zstep_method,
            self.max_enum_bits,
            self.max_sweeps,
        )

    def _make_trainer(self) -> ParMACTrainer:
        """Build the generic trainer on first use and reuse it across fits
        (so the multiprocessing worker pool persists), rebuilding only if
        the configuration attributes were changed in between."""
        config = self._config()
        if self.trainer_ is None or self._trainer_config != config:
            if self.trainer_ is not None:
                self.trainer_.close()
            self.trainer_ = ParMACTrainer(
                self._make_adapter(),
                self.schedule,
                backend=self.backend,
                epochs=self.epochs,
                scheme=self.scheme,
                batch_size=self.batch_size,
                shuffle_within=self.shuffle_within,
                shuffle_ring=self.shuffle_ring,
                cost=self.cost,
                seed=self.seed,
                evaluator=self.evaluator,
                stop_on_fixed_point=True,
                backend_options=self.backend_options,
            )
            self._trainer_config = config
        return self.trainer_

    @property
    def cluster_(self) -> SimulatedCluster | None:
        return None if self.trainer_ is None else self.trainer_.cluster_

    # --------------------------------------------------------------- fit
    def fit(self, X: np.ndarray, Z0: np.ndarray | None = None) -> TrainingHistory:
        """Run distributed MAC over the full mu schedule (in the model's
        compute dtype, end to end)."""
        X = check_array(X, name="X", dtype=self.model.compute_dtype)
        rng = check_random_state(self.seed)
        trainer = self._make_trainer()
        adapter = trainer.adapter
        if Z0 is None:
            Z, _ = init_codes_pca(adapter.features(X), self.model.n_bits, rng=rng)
        else:
            Z = check_binary_codes(Z0)
            if Z.shape != (len(X), self.model.n_bits):
                raise ValueError(
                    f"Z0 must have shape {(len(X), self.model.n_bits)}, got {Z.shape}"
                )
        shards = self._make_shards(X, Z, adapter, rng)
        history = trainer.fit(shards)
        self.history_ = history
        return history

    def close(self) -> None:
        """Release backend resources (the multiprocessing pool)."""
        if self.trainer_ is not None:
            self.trainer_.close()
