"""Convergence and stopping machinery for MAC / ParMAC.

Implements the checks behind paper sections 3.1 and 6:

* the practical BA stopping criterion — "if no change in Z and Z = h(X)
  then stop" (fig. 1), i.e. a Z fixed point with satisfied constraints;
* the Lagrange-multiplier estimates of theorem 6.1,
  ``lambda_n = -mu (z_n - h(x_n))``, whose convergence the quadratic-penalty
  theory tracks;
* an early-stopping monitor on validation retrieval precision — "we stop
  iterating for a mu value ... when the precision of the hash function in a
  validation set decreases", guaranteeing the initial codes are only
  improved.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "z_fixed_point",
    "constraints_satisfied",
    "lagrange_multiplier_estimates",
    "EarlyStopping",
]


def constraints_satisfied(Z: np.ndarray, H: np.ndarray) -> bool:
    """True when ``Z == h(X)`` bitwise (the penalty constraints hold)."""
    return bool(np.array_equal(np.asarray(Z), np.asarray(H)))


def z_fixed_point(Z_new: np.ndarray, Z_old: np.ndarray, H: np.ndarray) -> bool:
    """The BA-MAC stopping test: Z unchanged by the Z step *and* Z = h(X).

    When both hold, larger mu values cannot change anything: the penalty
    term is zero and the reconstruction term is already minimised over the
    reachable codes, so MAC stops at a finite mu (section 3.1).
    """
    return bool(np.array_equal(np.asarray(Z_new), np.asarray(Z_old))) and constraints_satisfied(
        Z_new, H
    )


def lagrange_multiplier_estimates(Z: np.ndarray, H: np.ndarray, mu: float) -> np.ndarray:
    """Penalty-method multiplier estimates ``lambda_n = -mu (z_n - h(x_n))``.

    Theorem 6.1: along the quadratic-penalty path these converge to the KKT
    multipliers of the constrained problem. Returned per point and bit.
    """
    if mu < 0:
        raise ValueError(f"mu must be >= 0, got {mu}")
    return -mu * (np.asarray(Z, dtype=np.float64) - np.asarray(H, dtype=np.float64))


class EarlyStopping:
    """Validation-precision early stopping with best-snapshot restore.

    Tracks the best validation score seen; :meth:`update` returns True
    (stop) when the score has dropped below the best by more than ``tol``
    for ``patience`` consecutive iterations. The caller restores the
    snapshot stored in :attr:`best_state`.
    """

    def __init__(self, *, patience: int = 1, tol: float = 0.0):
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        if tol < 0:
            raise ValueError(f"tol must be >= 0, got {tol}")
        self.patience = patience
        self.tol = tol
        self.best_score = -np.inf
        self.best_state = None
        self._bad_iters = 0

    def update(self, score: float, state) -> bool:
        """Record a new validation score; return True when training should stop.

        ``state`` is an opaque snapshot (e.g. a model copy) retained when
        the score improves.
        """
        if score >= self.best_score:
            self.best_score = score
            self.best_state = state
            self._bad_iters = 0
            return False
        if score < self.best_score - self.tol:
            self._bad_iters += 1
        return self._bad_iters >= self.patience
