"""Synthetic dataset substrate.

The paper evaluates on CIFAR (GIST-320 features), SIFT-10K, SIFT-1M and
SIFT-1B. Those corpora are not redistributable here, so this package
provides generators producing feature clouds with the statistical structure
the algorithms actually exploit — cluster structure (so nearest-neighbour
retrieval is meaningful) and redundancy (so few SGD epochs suffice, paper
section 8.2) — plus the uint8 storage trick of section 8.4.
"""

from repro.data.datasets import RetrievalDataset, train_test_split
from repro.data.quantize import dequantize_uint8, quantize_uint8, Uint8Store
from repro.data.synthetic import (
    make_clustered,
    make_gist_like,
    make_sift_like,
    sift_10k,
    cifar_like,
    sift_1m_scaled,
    sift_1b_scaled,
)

__all__ = [
    "RetrievalDataset",
    "train_test_split",
    "quantize_uint8",
    "dequantize_uint8",
    "Uint8Store",
    "make_clustered",
    "make_gist_like",
    "make_sift_like",
    "sift_10k",
    "cifar_like",
    "sift_1m_scaled",
    "sift_1b_scaled",
]
