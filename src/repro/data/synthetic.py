"""Generators for GIST-like and SIFT-like feature clouds.

Design notes
------------
Binary-hashing retrieval benchmarks need two properties from the data:

* **cluster structure** — true Euclidean neighbours concentrate inside
  clusters, so a good L-bit code can separate them;
* **anisotropy / redundancy** — real descriptors have rapidly decaying
  spectra, which is why truncated PCA is a sensible initialisation and why
  one SGD epoch already fits well (paper section 8.2).

``make_clustered`` draws a Gaussian mixture with per-cluster anisotropic
covariances (decaying eigenspectrum, random orientation). GIST-like data
keeps the float profile of GIST (D=320, roughly centred); SIFT-like data is
clipped non-negative and quantised to uint8 like real SIFT descriptors.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import check_random_state
from repro.utils.validation import check_positive_int

__all__ = [
    "make_clustered",
    "make_gist_like",
    "make_sift_like",
    "sift_10k",
    "cifar_like",
    "sift_1m_scaled",
    "sift_1b_scaled",
]


def make_clustered(
    n: int,
    dim: int,
    *,
    n_clusters: int = 10,
    spread: float = 1.0,
    cluster_scale: float = 4.0,
    decay: float = 0.9,
    rng=None,
) -> np.ndarray:
    """Anisotropic Gaussian-mixture cloud of shape ``(n, dim)``.

    Each cluster has covariance ``R diag(s) R^T`` with eigenvalues
    ``s_j = spread^2 * decay^j`` and a random rotation ``R``; centres are
    drawn from ``N(0, cluster_scale^2 I)``. ``decay < 1`` produces the fast
    spectral decay typical of image descriptors.
    """
    n = check_positive_int(n, name="n")
    dim = check_positive_int(dim, name="dim")
    n_clusters = check_positive_int(n_clusters, name="n_clusters")
    rng = check_random_state(rng)

    centres = rng.normal(0.0, cluster_scale, size=(n_clusters, dim))
    assign = rng.integers(0, n_clusters, size=n)
    X = np.empty((n, dim), dtype=np.float64)
    # Eigen-spectrum shared across clusters; orientation differs per cluster.
    eigs = spread * decay ** (0.5 * np.arange(dim))
    for c in range(n_clusters):
        mask = assign == c
        m = int(mask.sum())
        if m == 0:
            continue
        # Random orthogonal matrix via QR of a Gaussian matrix.
        Q, _ = np.linalg.qr(rng.normal(size=(dim, dim)))
        X[mask] = centres[c] + (rng.normal(size=(m, dim)) * eigs) @ Q.T
    return X


def make_gist_like(n: int, dim: int = 320, *, n_clusters: int = 10, rng=None) -> np.ndarray:
    """GIST-like float features (CIFAR stand-in): D=320, centred, anisotropic."""
    return make_clustered(n, dim, n_clusters=n_clusters, spread=1.0, cluster_scale=2.0, rng=rng)


def make_sift_like(
    n: int, dim: int = 128, *, n_clusters: int = 20, rng=None, as_uint8: bool = False
) -> np.ndarray:
    """SIFT-like features: non-negative, heavy cluster structure, uint8 range.

    Values are clipped to ``[0, 255]``; with ``as_uint8`` the array is
    returned quantised, matching the one-byte-per-feature storage of the
    real SIFT corpora (paper section 8.4).
    """
    rng = check_random_state(rng)
    X = make_clustered(
        n, dim, n_clusters=n_clusters, spread=12.0, cluster_scale=35.0, rng=rng
    )
    X = np.clip(np.abs(X) , 0.0, 255.0)
    if as_uint8:
        return np.round(X).astype(np.uint8)
    return X


# --------------------------------------------------------------------------
# Named workloads mirroring the paper's four benchmarks (scaled to CI size).
# Each returns (X_train, X_test) float arrays.
# --------------------------------------------------------------------------

def sift_10k(*, n_train: int = 10_000, n_test: int = 100, rng=None):
    """SIFT-10K stand-in: N=10000 training, 100 test queries, D=128."""
    rng = check_random_state(rng)
    X = make_sift_like(n_train + n_test, 128, rng=rng)
    return X[:n_train], X[n_train:]


def cifar_like(*, n_train: int = 50_000, n_test: int = 10_000, rng=None):
    """CIFAR stand-in: D=320 GIST-like features."""
    rng = check_random_state(rng)
    X = make_gist_like(n_train + n_test, 320, rng=rng)
    return X[:n_train], X[n_train:]


def sift_1m_scaled(*, scale: float = 0.1, rng=None):
    """SIFT-1M stand-in, scaled by ``scale`` (default 100K train / 1K test)."""
    n_train = max(100, int(1_000_000 * scale))
    n_test = max(10, int(10_000 * scale))
    rng = check_random_state(rng)
    X = make_sift_like(n_train + n_test, 128, rng=rng)
    return X[:n_train], X[n_train:]


def sift_1b_scaled(*, scale: float = 1e-4, rng=None):
    """SIFT-1B stand-in, heavily scaled (default 10K learn / 100 queries).

    The real corpus has 10^8 learning vectors; the *speedup* analysis for it
    in the paper (fig. 10 right) is itself theoretical, which we reproduce
    exactly from the model; this generator supports the learning-curve and
    recall experiments at laptop scale.
    """
    n_train = max(1_000, int(1e8 * scale))
    n_test = max(100, int(1e4 * scale))
    rng = check_random_state(rng)
    X = make_sift_like(n_train + n_test, 128, rng=rng)
    return X[:n_train], X[n_train:]
