"""uint8 feature storage with on-demand float conversion.

For SIFT-1B the paper stores each feature as one byte and converts to
double only as needed — one point at a time in the Z step, one minibatch at
a time in the W step (section 8.4) — because the float version would not
fit in memory. :class:`Uint8Store` reproduces that access pattern: it holds
the quantised array plus the affine dequantisation constants, and hands out
float views of requested row subsets only.
"""

from __future__ import annotations

import numpy as np

__all__ = ["quantize_uint8", "dequantize_uint8", "Uint8Store"]


def quantize_uint8(X: np.ndarray) -> tuple[np.ndarray, float, float]:
    """Affinely quantise a float array to uint8.

    Returns ``(Q, lo, scale)`` such that ``X ~= lo + scale * Q``. Constant
    arrays get ``scale = 1`` to keep dequantisation well defined.
    """
    X = np.asarray(X, dtype=np.float64)
    lo = float(X.min()) if X.size else 0.0
    hi = float(X.max()) if X.size else 0.0
    scale = (hi - lo) / 255.0 if hi > lo else 1.0
    Q = np.round((X - lo) / scale).astype(np.uint8)
    return Q, lo, scale


def dequantize_uint8(Q: np.ndarray, lo: float, scale: float) -> np.ndarray:
    """Inverse of :func:`quantize_uint8` (up to quantisation error)."""
    return lo + scale * Q.astype(np.float64)


class Uint8Store:
    """Memory-frugal feature matrix: uint8 at rest, float64 on access.

    Parameters
    ----------
    X : ndarray
        Float matrix to store quantised, or an existing uint8 matrix (then
        ``lo=0, scale=1``, i.e. raw byte values as in real SIFT).
    """

    def __init__(self, X: np.ndarray):
        X = np.asarray(X)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-dimensional, got shape {X.shape}")
        if X.dtype == np.uint8:
            self._Q = X.copy()
            self._lo, self._scale = 0.0, 1.0
        else:
            self._Q, self._lo, self._scale = quantize_uint8(X)

    @property
    def shape(self) -> tuple[int, int]:
        return self._Q.shape

    @property
    def nbytes(self) -> int:
        """Bytes at rest (the point of the exercise: 8x less than float64)."""
        return self._Q.nbytes

    def __len__(self) -> int:
        return len(self._Q)

    def rows(self, idx) -> np.ndarray:
        """Dequantised float64 copy of the requested rows (a minibatch)."""
        return dequantize_uint8(self._Q[idx], self._lo, self._scale)

    def all_rows(self) -> np.ndarray:
        """Dequantised float64 copy of the full matrix (test-size data only)."""
        return dequantize_uint8(self._Q, self._lo, self._scale)
