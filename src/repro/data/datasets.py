"""Dataset containers for retrieval experiments."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import check_random_state
from repro.utils.validation import check_array

__all__ = ["RetrievalDataset", "train_test_split"]


def train_test_split(X: np.ndarray, n_test: int, *, rng=None):
    """Random split into ``(train, test)`` with ``n_test`` test rows."""
    X = np.asarray(X)
    if not 0 < n_test < len(X):
        raise ValueError(f"n_test must be in (0, {len(X)}), got {n_test}")
    rng = check_random_state(rng)
    perm = rng.permutation(len(X))
    return X[perm[n_test:]], X[perm[:n_test]]


@dataclass
class RetrievalDataset:
    """A retrieval benchmark: training cloud, base set and queries.

    The paper's protocol (section 8.1): hash functions are learnt on the
    training set; retrieval quality is then evaluated by querying the base
    set. For CIFAR/SIFT-10K/SIFT-1M, base == training set and queries ==
    test set; SIFT-1B has separate base/learn subsets, which this container
    also supports.
    """

    train: np.ndarray
    queries: np.ndarray
    base: np.ndarray | None = None
    name: str = "dataset"

    def __post_init__(self):
        self.train = check_array(self.train, name="train")
        self.queries = check_array(self.queries, name="queries")
        if self.base is None:
            self.base = self.train
        else:
            self.base = check_array(self.base, name="base")
        if self.queries.shape[1] != self.train.shape[1]:
            raise ValueError(
                f"queries dim {self.queries.shape[1]} != train dim {self.train.shape[1]}"
            )
        if self.base.shape[1] != self.train.shape[1]:
            raise ValueError(
                f"base dim {self.base.shape[1]} != train dim {self.train.shape[1]}"
            )

    @property
    def dim(self) -> int:
        return self.train.shape[1]

    @property
    def n_train(self) -> int:
        return len(self.train)

    def validation_split(self, fraction: float = 0.1, *, rng=None):
        """Carve a validation subset out of the training set.

        Used for the early-stopping criterion of the MAC driver (stop
        iterating on a given mu when validation precision drops, paper
        section 3.1).
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        rng = check_random_state(rng)
        n_val = max(1, int(len(self.train) * fraction))
        perm = rng.permutation(len(self.train))
        return self.train[perm[n_val:]], self.train[perm[:n_val]]
