"""The ParMAC parallel-speedup model (paper section 5 and appendix A).

Closed-form runtime and speedup as a function of the cluster parameters,
with the full piecewise analysis: per-interval maxima, the global maximum,
divisible-P and large-dataset special cases, and the invariance
transformations — plus utilities to pick the optimal machine count and to
fit the time constants to measured speedups (what the paper does "by trial
and error" for fig. 10).
"""

from repro.perfmodel.speedup import (
    SpeedupParams,
    interval_bounds,
    interval_max,
    global_max,
    speedup,
    speedup_divisible,
    speedup_large_dataset,
    total_time,
    t_w,
    t_z,
)
from repro.perfmodel.analysis import (
    effective_submodels,
    fit_time_constants,
    optimal_machines,
    perfect_speedup_limit,
    scale_invariant_transforms,
)
from repro.perfmodel.presets import (
    FIG4_PARAMS,
    FIG10_CIFAR,
    FIG10_SIFT1B,
    FIG10_SIFT1M,
    CLUSTER_PRESETS,
    cluster_cost_model,
)

__all__ = [
    "SpeedupParams",
    "t_w",
    "t_z",
    "total_time",
    "speedup",
    "speedup_divisible",
    "speedup_large_dataset",
    "interval_bounds",
    "interval_max",
    "global_max",
    "optimal_machines",
    "perfect_speedup_limit",
    "effective_submodels",
    "fit_time_constants",
    "scale_invariant_transforms",
    "FIG4_PARAMS",
    "FIG10_CIFAR",
    "FIG10_SIFT1M",
    "FIG10_SIFT1B",
    "CLUSTER_PRESETS",
    "cluster_cost_model",
]
