"""Analysis utilities on top of the speedup model (paper sections 5.2-5.4).

* pick the best integer machine count for a workload;
* the perfect-speedup condition ``P << rho N`` (eq. 15);
* the invariance transformations of section 5.2 (exposed so tests can
  verify S(P) is unchanged under them);
* submodel grouping: M = 2L effective submodels for the BA (section 5.4);
* least-squares fitting of ``(t_wc, t_zr)`` to measured speedups — the
  principled version of the paper's "set by trial and error to achieve a
  reasonably good fit" (fig. 10 bottom).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from repro.perfmodel.speedup import SpeedupParams, global_max, speedup
from repro.utils.validation import check_positive_int

__all__ = [
    "optimal_machines",
    "perfect_speedup_limit",
    "effective_submodels",
    "scale_invariant_transforms",
    "fit_time_constants",
]


def optimal_machines(params: SpeedupParams, *, max_P: int | None = None) -> tuple[int, float]:
    """Best integer machine count and its speedup.

    Scans divisors-of-M and the neighbourhood of the analytic optimum
    ``P*`` (theorem A.1 says interval starts M/k dominate everything before
    them, so non-boundary P need only be checked near P*), then verifies by
    a dense scan up to ``max_P`` (default: a little past P*).
    """
    P_star, _ = global_max(params)
    if not np.isfinite(P_star):
        P_star = 4 * params.M
    if max_P is None:
        max_P = max(int(2 * P_star) + 2, params.M + 2, 4)
    max_P = min(max_P, params.N)  # at least one point per machine
    Ps = np.arange(1, max_P + 1)
    S = speedup(Ps, params)
    i = int(np.argmax(S))
    return int(Ps[i]), float(S[i])


def perfect_speedup_limit(params: SpeedupParams, *, tolerance: float = 0.05) -> float:
    """Largest P with near-perfect speedup in the divisible regime.

    Eq. (15): ``S ~= P  <=>  P << rho N``. Concretely the divisible-case
    speedup is ``P / (1 + P/(rho N))``, so the efficiency drops below
    ``1 - tolerance`` at ``P > tolerance/(1-tolerance) * rho N``.
    """
    if not 0 < tolerance < 1:
        raise ValueError(f"tolerance must be in (0,1), got {tolerance}")
    if not np.isfinite(params.rho):
        return float(params.N)
    return float(tolerance / (1.0 - tolerance) * params.rho * params.N)


def effective_submodels(n_bits: int, n_outputs: int) -> int:
    """Section 5.4 grouping: the D decoder rows (size ~L each) group into L
    encoder-sized submodels (size ~D), assuming ratio L/D of unit costs —
    so M = 2L effective equal-size submodels."""
    check_positive_int(n_bits, name="n_bits")
    check_positive_int(n_outputs, name="n_outputs")
    return 2 * n_bits


def scale_invariant_transforms(params: SpeedupParams, alpha: float) -> list[SpeedupParams]:
    """The three transformations of section 5.2 that leave S(P) unchanged.

    1. ``N -> aN, t_wr -> t_wr/a, t_zr -> t_zr/a`` (larger dataset, faster
       computation);
    2. ``N -> aN, t_wc -> a t_wc`` (larger dataset, slower communication);
    3. ``t_wr, t_zr, t_wc -> a * (...)`` (uniformly faster/slower).

    N is rounded to the nearest integer >= 1 where it scales, so exact
    invariance requires ``alpha * N`` integral.
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be > 0, got {alpha}")
    N2 = max(1, int(round(params.N * alpha)))
    return [
        SpeedupParams(
            N=N2, M=params.M, e=params.e,
            t_wr=params.t_wr / alpha, t_wc=params.t_wc, t_zr=params.t_zr / alpha,
        ),
        SpeedupParams(
            N=N2, M=params.M, e=params.e,
            t_wr=params.t_wr, t_wc=params.t_wc * alpha, t_zr=params.t_zr,
        ),
        SpeedupParams(
            N=params.N, M=params.M, e=params.e,
            t_wr=params.t_wr * alpha, t_wc=params.t_wc * alpha, t_zr=params.t_zr * alpha,
        ),
    ]


def fit_time_constants(
    P_values,
    measured_speedups,
    *,
    N: int,
    M: int,
    e: int,
    t_wr: float = 1.0,
    x0: tuple[float, float] = (1e3, 10.0),
) -> SpeedupParams:
    """Fit ``(t_wc, t_zr)`` to measured speedups by least squares.

    Minimises ``sum_P (S_model(P) - S_measured(P))^2`` over positive
    ``(t_wc, t_zr)`` (optimised in log-space), with ``t_wr`` fixed as the
    time unit. This replaces the paper's by-hand fudge-factor fitting for
    the fig. 10 theory rows.
    """
    P_values = np.asarray(list(P_values), dtype=np.int64)
    measured = np.asarray(list(measured_speedups), dtype=np.float64)
    if P_values.shape != measured.shape:
        raise ValueError("P_values and measured_speedups must have equal length")
    if len(P_values) < 2:
        raise ValueError("need at least two measurements to fit two constants")

    def loss(log_params):
        t_wc, t_zr = np.exp(log_params)
        params = SpeedupParams(N=N, M=M, e=e, t_wr=t_wr, t_wc=t_wc, t_zr=t_zr)
        return float(np.sum((speedup(P_values, params) - measured) ** 2))

    res = minimize(loss, np.log(np.asarray(x0)), method="Nelder-Mead",
                   options={"xatol": 1e-6, "fatol": 1e-10, "maxiter": 2000})
    t_wc, t_zr = np.exp(res.x)
    return SpeedupParams(N=N, M=M, e=e, t_wr=t_wr, t_wc=float(t_wc), t_zr=float(t_zr))
