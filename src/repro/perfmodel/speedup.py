"""Closed-form ParMAC runtime and speedup (paper section 5, appendix A).

Model parameters (section 5.1): P machines, N training points, M
equal-size submodels, e epochs, and three time constants — ``t_wr``
(W-step computation per submodel per point), ``t_wc`` (communication per
submodel hop), ``t_zr`` (Z-step computation per point per submodel).

Equations implemented (paper numbering):

* (7)  ``T_Z(P) = M (N/P) t_zr``
* (8)  ``T_W(P) = ceil(M/P) (t_wr N/P + t_wc) P e + ceil(M/P) t_wc P``
* (9/10) total time ``T(P)``, with ``t_wc = 0`` at P = 1
* (12/13) speedup ``S(P)`` and the rho constants
* (14) the divisible case ``S(P) = P / (1 + P / (rho N))``
* (16/17) the continuity intervals ``[M/k, M/(k-1))`` and their interior
  maxima ``P*_k, S*_k``
* (19) the last-interval maximum ``P*_1, S*_1``
* (20) the large-dataset approximation
* appendix A.2: the global maximum ``S*``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive, check_positive_int

__all__ = [
    "SpeedupParams",
    "t_w",
    "t_z",
    "total_time",
    "speedup",
    "speedup_divisible",
    "speedup_large_dataset",
    "interval_bounds",
    "interval_max",
    "global_max",
]


@dataclass(frozen=True)
class SpeedupParams:
    """The six parameters of the speedup model.

    ``t_wr`` conventionally sets the time unit (the paper uses
    ``t_wr = 1``).
    """

    N: int
    M: int
    e: int = 1
    t_wr: float = 1.0
    t_wc: float = 0.0
    t_zr: float = 1.0

    def __post_init__(self):
        check_positive_int(self.N, name="N")
        check_positive_int(self.M, name="M")
        check_positive_int(self.e, name="e")
        check_positive(self.t_wr, name="t_wr")
        check_positive(self.t_zr, name="t_zr")
        if self.t_wc < 0:
            raise ValueError(f"t_wc must be >= 0, got {self.t_wc}")

    # Computation/communication ratios, eq. (13).
    @property
    def rho1(self) -> float:
        if self.t_wc == 0:
            return np.inf
        return self.t_zr / ((self.e + 1) * self.t_wc)

    @property
    def rho2(self) -> float:
        if self.t_wc == 0:
            return np.inf
        return self.e * self.t_wr / ((self.e + 1) * self.t_wc)

    @property
    def rho(self) -> float:
        if self.t_wc == 0:
            return np.inf
        return (self.e * self.t_wr + self.t_zr) / ((self.e + 1) * self.t_wc)


def _ceil_div(M: int, P) -> np.ndarray:
    """ceil(M/P) for integer array P."""
    P = np.asarray(P, dtype=np.int64)
    return -(-M // P)


def t_z(P, params: SpeedupParams) -> np.ndarray:
    """Z-step runtime, eq. (7): ``M (N/P) t_zr``."""
    P = np.asarray(P, dtype=np.float64)
    return params.M * (params.N / P) * params.t_zr


def t_w(P, params: SpeedupParams) -> np.ndarray:
    """W-step runtime, eq. (8). ``t_wc = 0`` is used at P = 1."""
    P_arr = np.asarray(P, dtype=np.int64)
    scalar = P_arr.ndim == 0
    P_arr = np.atleast_1d(P_arr)
    if (P_arr < 1).any():
        raise ValueError("P must be >= 1")
    ceil = _ceil_div(params.M, P_arr).astype(np.float64)
    Pf = P_arr.astype(np.float64)
    twc = np.where(P_arr == 1, 0.0, params.t_wc)
    out = ceil * (params.t_wr * params.N / Pf + twc) * Pf * params.e + ceil * twc * Pf
    return float(out[0]) if scalar else out


def total_time(P, params: SpeedupParams) -> np.ndarray:
    """Total per-iteration runtime ``T(P)``, eqs. (9)/(10)."""
    P_arr = np.atleast_1d(np.asarray(P, dtype=np.int64))
    out = t_z(P_arr, params) + t_w(P_arr, params)
    return float(out[0]) if np.asarray(P).ndim == 0 else out


def speedup(P, params: SpeedupParams) -> np.ndarray:
    """Parallel speedup ``S(P) = T(1) / T(P)``, eq. (12)."""
    P_arr = np.atleast_1d(np.asarray(P, dtype=np.int64))
    T1 = total_time(1, params)
    out = T1 / total_time(P_arr, params)
    return float(out[0]) if np.asarray(P).ndim == 0 else out


def speedup_divisible(P, params: SpeedupParams) -> np.ndarray:
    """Eq. (14): ``S(P) = P / (1 + P / (rho N))`` when P divides M.

    Valid only for ``P <= M`` with ``M % P == 0``; the caller is trusted on
    that (tests verify it agrees with :func:`speedup` there).
    """
    P = np.asarray(P, dtype=np.float64)
    if not np.isfinite(params.rho):
        return P.copy()
    return P / (1.0 + P / (params.rho * params.N))


def speedup_large_dataset(P, params: SpeedupParams) -> np.ndarray:
    """Eq. (20): the ``P << rho2 N`` approximation.

    ``S ~= P`` when P divides M; ``S ~= rho / (rho1/P + rho2/M)`` for
    ``M > P`` generally (weighted harmonic mean of M and P); for ``M < P``
    it equals the k = 1 case of the same formula.
    """
    P = np.asarray(P, dtype=np.float64)
    if not np.isfinite(params.rho):
        return np.minimum(P, params.M * params.rho2 if np.isfinite(params.rho2) else P)
    return params.rho / (params.rho1 / P + params.rho2 / params.M)


def interval_bounds(M: int) -> list[tuple[float, float]]:
    """The continuity intervals of S(P), eq. (16): ``[M/k, M/(k-1))`` for
    k = M..2, then ``[M, inf)``."""
    check_positive_int(M, name="M")
    out = []
    for k in range(M, 1, -1):
        out.append((M / k, M / (k - 1)))
    out.append((float(M), np.inf))
    return out


def interval_max(k: int, params: SpeedupParams) -> tuple[float, float]:
    """Interior stationary point of S(P) in interval k, eq. (17):
    ``P*_k = sqrt(rho1 M N / k)`` and ``S*_k = S(P*_k)``.

    Returns ``(P*_k, S*_k)``. The point is a maximum of the continuous
    extension; it only matters when it lies inside the interval.
    """
    check_positive_int(k, name="k")
    if k > params.M:
        raise ValueError(f"k must be <= M={params.M}, got {k}")
    if not np.isfinite(params.rho1):
        return np.inf, np.inf
    P_star = float(np.sqrt(params.rho1 * params.M * params.N / k))
    S_star = (params.rho * params.M / k) / (
        params.rho2 + 2.0 * np.sqrt(params.rho1 * params.M / (params.N * k))
    )
    return P_star, float(S_star)


def global_max(params: SpeedupParams) -> tuple[float, float]:
    """Global maximum of S(P) over P >= 1 (appendix A.2).

    Returns ``(P*, S*)``:

    * if ``M >= rho1 N``: at ``P = M`` with ``S* = M / (1 + M/(rho N))``;
    * else at ``P*_1 = sqrt(rho1 M N) > M`` with ``S*_1 > M``.

    With no communication cost (``t_wc = 0``) the speedup is unbounded in
    the model (S -> rho M / rho2 only in the limit); we return
    ``(inf, (rho/rho2) M)`` following the paper's limit expression.
    """
    if not np.isfinite(params.rho1):
        # tWc = 0: S(P) monotonically increasing, sup = (rho/rho2) M.
        limit = params.M * (params.e * params.t_wr + params.t_zr) / (
            params.e * params.t_wr
        )
        return np.inf, float(limit)
    if params.M >= params.rho1 * params.N:
        S = params.M / (1.0 + params.M / (params.rho * params.N))
        return float(params.M), float(S)
    return interval_max(1, params)
