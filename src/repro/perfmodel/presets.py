"""Named parameter sets from the paper's figures and clusters.

``FIG4_PARAMS`` reproduces fig. 4 exactly (N = 10^6, M = 512, e = 1,
t_wr = 1, t_zr = 5, t_wc = 10^3, so rho1 = 0.0025, rho2 = 0.0005).

``FIG10_*`` are the constants the paper fits for the fig. 10 theory rows:
t_wc = 10^4 for both datasets, t_zr = 200 for CIFAR and 40 for SIFT-1M /
SIFT-1B, with M = 2L effective submodels (32 for L=16, 128 for L=64).

``CLUSTER_PRESETS`` is the Table-1 substitution: the paper's two systems
reduced to virtual-clock constants. The shared-memory machine was measured
3-4x faster overall with markedly cheaper communication (fig. 13 reports,
for 16 processors, 2.57 s comm / 8.76 s comp on shared memory vs growing
comm as processors spread over nodes on the distributed system).
"""

from __future__ import annotations

from repro.distributed.costmodel import CostModel
from repro.perfmodel.speedup import SpeedupParams

__all__ = [
    "FIG4_PARAMS",
    "FIG10_CIFAR",
    "FIG10_SIFT1M",
    "FIG10_SIFT1B",
    "CLUSTER_PRESETS",
    "cluster_cost_model",
]

FIG4_PARAMS = SpeedupParams(N=1_000_000, M=512, e=1, t_wr=1.0, t_zr=5.0, t_wc=1_000.0)

FIG10_CIFAR = SpeedupParams(N=50_000, M=32, e=1, t_wr=1.0, t_wc=10_000.0, t_zr=200.0)
FIG10_SIFT1M = SpeedupParams(N=1_000_000, M=32, e=1, t_wr=1.0, t_wc=10_000.0, t_zr=40.0)
FIG10_SIFT1B = SpeedupParams(N=100_000_000, M=128, e=1, t_wr=1.0, t_wc=10_000.0, t_zr=40.0)

# Table-1 substitution: virtual-clock constants per system. Units are
# arbitrary but consistent: the shared-memory system computes ~3.5x faster
# and communicates ~10x faster than the 10GbE distributed system.
CLUSTER_PRESETS = {
    "distributed": {"t_wr": 1.0, "t_wc": 10_000.0, "t_zr": 40.0,
                    "description": "TSCC-like: Xeon E5-2670, 10GbE between nodes"},
    "shared": {"t_wr": 1.0 / 3.5, "t_wc": 1_000.0, "t_zr": 40.0 / 3.5,
               "description": "UC-Merced-like: Xeon E5-2699 v3, shared memory"},
}


def cluster_cost_model(name: str) -> CostModel:
    """A :class:`CostModel` for one of the named cluster presets."""
    try:
        p = CLUSTER_PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown cluster preset {name!r}; available: {sorted(CLUSTER_PRESETS)}"
        ) from None
    return CostModel(t_wr=p["t_wr"], t_wc=p["t_wc"], t_zr=p["t_zr"])
