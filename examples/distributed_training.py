"""Distributed ParMAC: simulated rings vs real wall-clock rings.

Trains the same binary autoencoder five ways —

* serially (P = 1 reference),
* on the in-process simulated cluster (virtual clock; what the speedup
  analysis measures), with both the sync and async engines,
* on real OS processes connected in a queue ring,
* on real OS processes connected by TCP sockets, submodels travelling
  as length-prefixed framed batches (the closest single-host stand-in
  for the paper's MPI deployment) —

and reports learning quality and timing for each, the measured wire
cost of the socket ring, plus the theoretical speedup the section-5
model predicts for the configuration.

Run:  python examples/distributed_training.py
"""


from repro import (
    BinaryAutoencoder,
    CostModel,
    GeometricSchedule,
    ParMACTrainerBA,
    available_backends,
)
from repro.data.synthetic import make_gist_like
from repro.perfmodel.speedup import SpeedupParams, speedup


def main():
    n, dim, n_bits, P, epochs = 6000, 64, 16, 8, 2
    X = make_gist_like(n, dim, n_clusters=8, rng=0)
    schedule = GeometricSchedule(mu0=5e-3, factor=1.5, n_iters=10)
    cost = CostModel(t_wr=1.0, t_wc=200.0, t_zr=5.0)

    print(f"workload: N={n}, D={dim}, L={n_bits} -> M=2L={2*n_bits} submodels")
    print(f"cluster: P={P} machines, e={epochs} epochs/W-step")
    print(f"registered execution backends: {available_backends()}\n")

    runs = {}
    for label, kwargs in [
        ("serial (P=1)", dict(n_machines=1, backend="sync")),
        ("simulated ring", dict(n_machines=P, backend="sync", cost=cost)),
        ("async ring", dict(n_machines=P, backend="async", cost=cost)),
        ("multiprocessing", dict(n_machines=P, backend="multiprocess")),
        ("tcp sockets", dict(n_machines=P, backend="tcp")),
    ]:
        ba = BinaryAutoencoder.linear(dim, n_bits)
        # This demo is about the execution backends; pin the alternating
        # Z solver so the L=16 runs don't spend their time enumerating
        # 2^16 codes per iteration (auto dispatch would, exactly).
        trainer = ParMACTrainerBA(ba, schedule, epochs=epochs, seed=0,
                                  zstep_method="alternate", **kwargs)
        history = trainer.fit(X)
        runs[label] = (ba, history)
        wallclock = label in ("multiprocessing", "tcp sockets")
        unit = "s wall" if wallclock else "virt units"
        print(f"{label:>16}: final E_BA = {history.e_ba[-1]:10.0f}   "
              f"total time = {history.total_time:12.1f} {unit}")

    tcp_rec = runs["tcp sockets"][1].records[-1]
    print(f"\ntcp wire cost per MAC iteration: "
          f"{tcp_rec.extra['hops']} hops in {tcp_rec.extra['frames']} framed "
          f"batches, {tcp_rec.extra['bytes_sent']:,} B on the wire "
          f"({tcp_rec.extra['payload_bytes']:,} B of parameters)")

    params = SpeedupParams(N=n, M=2 * n_bits, e=epochs,
                           t_wr=cost.t_wr, t_wc=cost.t_wc, t_zr=cost.t_zr)
    predicted = float(speedup(P, params))
    t1 = runs["serial (P=1)"][1].total_time
    tp = runs["simulated ring"][1].total_time
    # The serial run used a no-comm cost model; recompute its virtual time
    # under the same constants for a fair ratio.
    serial_virtual = (params.M * n * epochs * params.t_wr
                      + params.M * n * params.t_zr) * len(schedule)
    print(f"\nvirtual-clock speedup at P={P}: "
          f"{serial_virtual / tp:.1f} measured vs {predicted:.1f} predicted "
          f"by the section-5 model")

    print("\nall five runs should reach similar E_BA: the distributed W step")
    print("is just SGD with a different minibatch visiting order.")


if __name__ == "__main__":
    main()
