"""Streaming and fault tolerance on the simulated cluster (section 4.3).

Walks the four operational scenarios ParMAC supports without any central
coordinator:

1. a machine collects new data mid-training (within-machine streaming);
2. a machine discards stale data;
3. a brand-new, preloaded machine joins the ring;
4. a machine dies mid-W-step and its in-flight submodels are recovered
   from the predecessor's copies;
5. the network turns hostile — lossy, jittery, briefly partitioned,
   with one straggling machine — and the fit degrades in *time only*:
   the final model is bit-identical to the clean run's.

Run:  python examples/streaming_and_faults.py
"""

import numpy as np

from repro import BinaryAutoencoder
from repro.autoencoder.adapter import BAAdapter
from repro.autoencoder.init import init_codes_pca
from repro.data.synthetic import make_clustered
from repro.distributed import ChaosConfig, PartitionWindow
from repro.distributed.cluster import FaultEvent, SimulatedCluster
from repro.distributed.partition import make_shards, partition_indices


def main():
    dim, n_bits, P = 24, 8, 4
    X = make_clustered(800, dim, n_clusters=6, rng=0)
    stream = make_clustered(400, dim, n_clusters=6, rng=1)

    ba = BinaryAutoencoder.linear(dim, n_bits)
    adapter = BAAdapter(ba)
    Z, _ = init_codes_pca(X, n_bits, rng=0)
    parts = partition_indices(len(X), P, rng=0)
    shards = make_shards(X, adapter.features(X), Z, parts)
    cluster = SimulatedCluster(adapter, shards, epochs=2, seed=0)

    mus = iter(1e-3 * 2.0 ** np.arange(12))

    def iterate(label, **kwargs):
        mu = next(mus)
        cluster.iteration(mu, **kwargs)
        print(f"{label:>34}: machines={cluster.n_machines} "
              f"points={cluster.n_points} E_Q={cluster.e_q(mu):9.1f} "
              f"copies-consistent={cluster.model_copies_consistent()}")

    print("warm-up iterations")
    iterate("iteration 1")
    iterate("iteration 2")

    print("\n1) machine 1 collects 150 new points (codes = h(x), no comm)")
    cluster.add_data(1, stream[:150])
    iterate("after add_data")

    print("\n2) machine 0 discards its 20 oldest points")
    cluster.remove_data(0, list(range(20)))
    iterate("after remove_data")

    print("\n3) a new preloaded machine joins the ring")
    new_id = cluster.add_machine(stream[150:300])
    print(f"   machine {new_id} inserted; ring: {cluster.topology}")
    iterate("after add_machine")

    print("\n4) machine 2 dies at tick 1 of the next W step")
    iterate("fault + recovery", fault=FaultEvent(machine=2, tick=1))
    iterate("next full iteration")

    print("\n5) the network turns hostile (loss, jitter, a partition, a straggler)")
    chaos = ChaosConfig(
        packet_loss_rate=0.2,
        delay_ms=2.0,
        jitter_ms=1.0,
        # Default cost model: a W-step tick is ~1600 virtual s, so this
        # window cuts the ring across the 2nd and 3rd rounds of hops.
        partitions=[PartitionWindow(1500.0, 4000.0)],
        stragglers={1: 2.0},
        seed=7,
    )

    def short_fit(chaos_cfg):
        ba = BinaryAutoencoder.linear(dim, n_bits)
        adapter = BAAdapter(ba)
        Z, _ = init_codes_pca(X, n_bits, rng=0)
        shards = make_shards(X, adapter.features(X), Z, parts)
        cluster = SimulatedCluster(
            adapter, shards, epochs=2, seed=0, chaos=chaos_cfg
        )
        w, _ = cluster.iteration(1e-3)
        finals = [adapter.get_params(s).copy() for s in adapter.submodel_specs()]
        return w, finals

    clean_w, clean_finals = short_fit(None)
    chaos_w, chaos_finals = short_fit(chaos)
    identical = all(
        np.array_equal(a, b) for a, b in zip(clean_finals, chaos_finals)
    )
    print(f"   clean   W step: {clean_w.sim_time:8.1f} virtual s")
    print(f"   chaotic W step: {chaos_w.sim_time:8.1f} virtual s "
          f"(drops={chaos_w.chaos['chaos_drops']}, "
          f"partition holds={chaos_w.chaos['chaos_partition_holds']})")
    print(f"   final submodels bit-identical to the clean run: {identical}")

    print("\nThe model kept training through every event; at the end of every")
    print("W step all surviving machines still hold identical final submodels,")
    print("and chaos only moved the clock — never the bits.")


if __name__ == "__main__":
    main()
