"""Streaming and fault tolerance on the simulated cluster (section 4.3).

Walks the four operational scenarios ParMAC supports without any central
coordinator:

1. a machine collects new data mid-training (within-machine streaming);
2. a machine discards stale data;
3. a brand-new, preloaded machine joins the ring;
4. a machine dies mid-W-step and its in-flight submodels are recovered
   from the predecessor's copies.

Run:  python examples/streaming_and_faults.py
"""

import numpy as np

from repro import BinaryAutoencoder
from repro.autoencoder.adapter import BAAdapter
from repro.autoencoder.init import init_codes_pca
from repro.data.synthetic import make_clustered
from repro.distributed.cluster import FaultEvent, SimulatedCluster
from repro.distributed.partition import make_shards, partition_indices


def main():
    dim, n_bits, P = 24, 8, 4
    X = make_clustered(800, dim, n_clusters=6, rng=0)
    stream = make_clustered(400, dim, n_clusters=6, rng=1)

    ba = BinaryAutoencoder.linear(dim, n_bits)
    adapter = BAAdapter(ba)
    Z, _ = init_codes_pca(X, n_bits, rng=0)
    parts = partition_indices(len(X), P, rng=0)
    shards = make_shards(X, adapter.features(X), Z, parts)
    cluster = SimulatedCluster(adapter, shards, epochs=2, seed=0)

    mus = iter(1e-3 * 2.0 ** np.arange(12))

    def iterate(label, **kwargs):
        mu = next(mus)
        cluster.iteration(mu, **kwargs)
        print(f"{label:>34}: machines={cluster.n_machines} "
              f"points={cluster.n_points} E_Q={cluster.e_q(mu):9.1f} "
              f"copies-consistent={cluster.model_copies_consistent()}")

    print("warm-up iterations")
    iterate("iteration 1")
    iterate("iteration 2")

    print("\n1) machine 1 collects 150 new points (codes = h(x), no comm)")
    cluster.add_data(1, stream[:150])
    iterate("after add_data")

    print("\n2) machine 0 discards its 20 oldest points")
    cluster.remove_data(0, list(range(20)))
    iterate("after remove_data")

    print("\n3) a new preloaded machine joins the ring")
    new_id = cluster.add_machine(stream[150:300])
    print(f"   machine {new_id} inserted; ring: {cluster.topology}")
    iterate("after add_machine")

    print("\n4) machine 2 dies at tick 1 of the next W step")
    iterate("fault + recovery", fault=FaultEvent(machine=2, tick=1))
    iterate("next full iteration")

    print("\nThe model kept training through every event; at the end of every")
    print("W step all surviving machines still hold identical final submodels.")


if __name__ == "__main__":
    main()
