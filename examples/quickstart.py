"""Quickstart: train a binary autoencoder with MAC and search with it.

Covers the core loop of the paper in ~50 lines:

1. make a feature cloud (stand-in for GIST/SIFT descriptors);
2. train an L-bit binary autoencoder with the method of auxiliary
   coordinates (alternating W and Z steps over an increasing penalty);
3. compress the database to packed binary codes;
4. answer nearest-neighbour queries by Hamming distance and score them
   against the exact Euclidean ground truth.

Run:  python examples/quickstart.py
"""


from repro import BinaryAutoencoder, GeometricSchedule, MACTrainerBA
from repro.data.synthetic import make_clustered
from repro.retrieval.groundtruth import euclidean_knn
from repro.retrieval.hamming import hamming_knn, pack_bits
from repro.retrieval.metrics import precision_at_k


def main():
    rng_seed = 0
    n_base, n_queries, dim, n_bits = 2000, 50, 48, 12

    print(f"1) dataset: {n_base} base + {n_queries} query points, D={dim}")
    cloud = make_clustered(n_base + n_queries, dim, n_clusters=8, rng=rng_seed)
    X, queries = cloud[:n_base], cloud[n_base:]

    print(f"2) training a {n_bits}-bit binary autoencoder with MAC ...")
    ba = BinaryAutoencoder.linear(n_features=dim, n_bits=n_bits)
    trainer = MACTrainerBA(
        ba,
        GeometricSchedule(mu0=1e-3, factor=2.0, n_iters=12),
        w_epochs=2,
        seed=rng_seed,
    )
    history = trainer.fit(X)
    print(f"   E_BA: {history.e_ba[0]:.0f} -> {history.e_ba[-1]:.0f} "
          f"over {len(history)} iterations "
          f"({history.records[-1].violations} constraint violations left)")

    print("3) compressing the database to packed codes ...")
    base_codes = pack_bits(ba.encode(X))
    query_codes = pack_bits(ba.encode(queries))
    print(f"   {X.nbytes / 1e6:.1f} MB of floats -> "
          f"{base_codes.nbytes / 1e3:.1f} kB of codes")

    print("4) Hamming search vs exact search ...")
    k = 10
    retrieved = hamming_knn(query_codes, base_codes, k)
    truth = euclidean_knn(queries, X, 20)
    prec = precision_at_k(query_codes, base_codes, truth, k)
    print(f"   precision@{k} (K=20 true neighbours): {prec:.3f}")
    print(f"   first query retrieves rows {retrieved[0].tolist()}")


if __name__ == "__main__":
    main()
