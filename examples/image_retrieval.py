"""Image-retrieval scenario: BA vs truncated PCA vs ITQ hash functions.

The application from the paper's section 3.1: learn an unsupervised binary
hash for fast approximate nearest-neighbour search, comparing the MAC-
trained binary autoencoder against the two standard baselines it is
evaluated against (tPCA — also its initialisation — and ITQ, Gong et al.
2013). Prints precision@k and recall@R for all three plus an RBF-encoder
variant (section 8.4).

Then stands the best model up as a micro-batched retrieval service
(``repro.serve``) and reports measured QPS: per-query sequential loop vs
64 concurrent clients coalescing into shared encode+scan batches.

Run:  python examples/image_retrieval.py
"""

import threading
import time


from repro import BinaryAutoencoder, GeometricSchedule, ITQHash, MACTrainerBA, TruncatedPCAHash
from repro.data.synthetic import make_sift_like
from repro.retrieval.groundtruth import euclidean_knn
from repro.retrieval.hamming import pack_bits
from repro.retrieval.metrics import precision_at_k, recall_curve
from repro.serve import RetrievalService


def standardise(X):
    sd = X.std(axis=0)
    sd[sd == 0] = 1.0
    return (X - X.mean(axis=0)) / sd


def main():
    n_base, n_queries, dim, n_bits = 3000, 80, 64, 16
    cloud = standardise(make_sift_like(n_base + n_queries, dim, n_clusters=12, rng=0))
    X, Q = cloud[:n_base], cloud[n_base:]
    truth_k = euclidean_knn(Q, X, 50)
    nn1 = truth_k[:, 0]

    schedule = GeometricSchedule(mu0=1e-3, factor=2.0, n_iters=12)

    print("training hash functions ...")
    models = {}
    models["tPCA"] = TruncatedPCAHash(n_bits).fit(X)
    models["ITQ"] = ITQHash(n_bits, seed=0).fit(X)

    ba_lin = BinaryAutoencoder.linear(dim, n_bits)
    MACTrainerBA(ba_lin, schedule, w_epochs=2, seed=0).fit(X)
    models["BA (linear)"] = ba_lin

    ba_rbf = BinaryAutoencoder.rbf(X, n_centres=200, n_bits=n_bits, rng=0)
    MACTrainerBA(ba_rbf, schedule, w_epochs=2, seed=0).fit(X)
    models["BA (RBF)"] = ba_rbf

    print(f"\n{'hash':>14} | {'prec@30':>8} | recall@R for R=1,10,100")
    print("-" * 60)
    Rs = [1, 10, 100]
    for name, model in models.items():
        qc, bc = pack_bits(model.encode(Q)), pack_bits(model.encode(X))
        prec = precision_at_k(qc, bc, truth_k, 30)
        rec = recall_curve(qc, bc, nn1, Rs)
        rec_str = ", ".join(f"{r:.3f}" for r in rec)
        print(f"{name:>14} | {prec:8.4f} | {rec_str}")

    print("\nNotes: the RBF encoder usually dominates at small R (paper")
    print("fig. 12); on synthetic Gaussian clouds tPCA is a strong baseline")
    print("because the neighbourhood structure is exactly its subspace.")

    serve_demo(ba_lin, X, Q)


def serve_demo(model, X, Q, k=10, n_requests=2000):
    """Stand up a RetrievalService over X and measure QPS two ways."""
    print("\nserving: micro-batched retrieval over the trained BA ...")
    with RetrievalService.from_data(
        model, X, k=k, max_wait_ms=2.0, max_batch=128
    ) as svc:
        # One sequential client: a lone request waits out the batching
        # window before paying encode + scan alone — the latency tax an
        # idle service charges for its throughput under load.
        t0 = time.perf_counter()
        for i in range(200):
            svc.query(Q[i % len(Q)])
        seq_qps = 200 / (time.perf_counter() - t0)

        # Concurrent clients: requests coalesce into shared batches.
        per_client = n_requests // 64

        def client(j):
            for i in range(per_client):
                svc.query(Q[(j * per_client + i) % len(Q)])

        t0 = time.perf_counter()
        threads = [threading.Thread(target=client, args=(j,)) for j in range(64)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        batched_qps = 64 * per_client / (time.perf_counter() - t0)
        snap = svc.stats.snapshot()

    print(f"  1 client (window tax): {seq_qps:10.0f} qps")
    print(
        f"  64 clients, batched  : {batched_qps:10.0f} qps"
        f"  (mean batch {snap['mean_batch']:.1f}, "
        f"speedup {batched_qps / seq_qps:.1f}x)"
    )


if __name__ == "__main__":
    main()
