"""Capacity planning with the analytical speedup model (section 5.4).

"In practice, given a specific problem ..., our theoretical speedup curves
can be used to determine optimal values for the number of machines P."
This example walks that workflow: measure the three time constants from
two short calibration runs, fit the model, and read off the optimal P and
the largest P that still gives near-perfect efficiency.

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro.perfmodel.analysis import (
    effective_submodels,
    fit_time_constants,
    optimal_machines,
    perfect_speedup_limit,
)
from repro.perfmodel.speedup import SpeedupParams, global_max, speedup
from repro.utils.ascii_plot import ascii_plot


def main():
    # Your workload: 2M points, 64-bit codes -> M = 2L = 128 submodels.
    N, L, e = 2_000_000, 64, 1
    M = effective_submodels(L, 256)
    print(f"workload: N={N:.0e}, L={L} bits, e={e} -> M={M} submodels\n")

    # Step 1: suppose calibration runs on a few machine counts measured
    # these speedups (here generated from a hidden ground truth).
    truth = SpeedupParams(N=N, M=M, e=e, t_wr=1.0, t_wc=8_000.0, t_zr=60.0)
    P_cal = np.array([1, 4, 16, 64])
    S_cal = speedup(P_cal, truth) * (1 + 0.02 * np.random.default_rng(0).normal(size=4))
    print("calibration measurements:")
    for P, S in zip(P_cal, S_cal):
        print(f"   P={P:>3}: speedup {S:6.2f}")

    # Step 2: fit (t_wc, t_zr) with t_wr = 1 fixing the time unit.
    fitted = fit_time_constants(P_cal, S_cal, N=N, M=M, e=e)
    print(f"\nfitted constants: t_wc={fitted.t_wc:.0f}, t_zr={fitted.t_zr:.1f} "
          f"(truth: 8000, 60)")

    # Step 3: read off the planning quantities.
    P_opt, S_opt = optimal_machines(fitted)
    P_star, S_star = global_max(fitted)
    P_eff = perfect_speedup_limit(fitted, tolerance=0.05)
    print(f"\n  analytic optimum:      P* = {P_star:.0f}  (S* = {S_star:.0f})")
    print(f"  best integer choice:   P = {P_opt}  (S = {S_opt:.0f})")
    print(f"  95%-efficiency limit:  P <= {P_eff:.0f} (divisible-P regime)")

    Ps = np.unique(np.geomspace(1, 2 * P_opt, 60).astype(int))
    print()
    print(ascii_plot(
        {"fitted": (Ps, speedup(Ps, fitted)), "ideal": (Ps, Ps)},
        xlabel="machines P", ylabel="speedup",
        title="planned speedup curve",
    ))


if __name__ == "__main__":
    main()
