"""K-layer MAC beyond autoencoders: a sigmoid deep net (section 3.2).

MAC is a meta-algorithm: the same W/Z alternation trains any nested model.
This example fits a 2-hidden-layer sigmoid regression net three ways —

* conventional backprop SGD (the chain-rule baseline),
* serial MAC with per-unit W steps and the generalised-proximal Z step,
* ParMAC on a simulated 4-machine ring, one travelling submodel per
  hidden unit,
* ParMAC on *real OS processes* (``backend="multiprocess"``) — the same
  generic trainer, a different entry in the backend registry —

and compares the nested objective reached by each.

Run:  python examples/deep_net_mac.py
"""

import numpy as np

from repro import (
    BackpropTrainer,
    DeepNet,
    GeometricSchedule,
    MACTrainerNet,
    ParMACTrainerNet,
)


def make_problem(n=600, d_in=6, d_out=2, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d_in))
    W1 = rng.normal(size=(d_in, 8))
    W2 = rng.normal(size=(8, d_out))
    Y = np.tanh(np.tanh(X @ W1) @ W2)
    return X, Y


def main():
    X, Y = make_problem()
    sizes = [6, 10, 8, 2]
    schedule = GeometricSchedule(mu0=0.5, factor=1.6, n_iters=10)
    print(f"problem: {len(X)} points, net {sizes} (K=2 hidden layers)\n")

    net_bp = DeepNet.create(sizes, rng=0)
    print(f"initial nested loss: {net_bp.loss(X, Y):.2f}\n")

    print("1) backprop SGD (10 epochs)")
    BackpropTrainer(net_bp, seed=0).fit(X, Y, epochs=10)
    print(f"   nested loss: {net_bp.loss(X, Y):.2f}")

    print("2) serial MAC (10 iterations, no chain rule anywhere)")
    net_mac = DeepNet.create(sizes, rng=0)
    trainer = MACTrainerNet(net_mac, schedule, w_epochs=3, seed=0)
    history = trainer.fit(X, Y)
    print(f"   nested loss: {net_mac.loss(X, Y):.2f} "
          f"(E_Q {history.e_q[0]:.1f} -> {history.e_q[-1]:.1f})")

    print("3) ParMAC: hidden units travel a simulated 4-machine ring")
    net_par = DeepNet.create(sizes, rng=0)
    trainer = ParMACTrainerNet(
        net_par, schedule, n_machines=4, epochs=2, z_steps=8, seed=0
    )
    M = sum(layer.n_out for layer in net_par.layers)
    print(f"   M = {M} submodels (one per unit) over P = 4 machines")
    trainer.fit(X, Y)
    print(f"   nested loss: {net_par.loss(X, Y):.2f}  "
          f"copies-consistent={trainer.cluster_.model_copies_consistent()}")

    print("4) ParMAC on real OS processes (backend='multiprocess')")
    net_mp = DeepNet.create(sizes, rng=0)
    trainer_mp = ParMACTrainerNet(
        net_mp, schedule, n_machines=4, epochs=2, z_steps=8,
        backend="multiprocess", seed=0,
    )
    history = trainer_mp.fit(X, Y)
    trainer_mp.close()
    print(f"   nested loss: {net_mp.loss(X, Y):.2f}  "
          f"({history.total_time:.2f} s wall across {len(history)} iterations)")

    print("\nMAC reaches comparable quality to backprop without ever")
    print("computing a backpropagated gradient — and its W step exposes one")
    print("independent submodel per unit for distributed training, on")
    print("simulated or real machines alike.")


if __name__ == "__main__":
    main()
