"""Packaging for the ParMAC reproduction.

The NumPy floor is 1.21 — the oldest release with every API the code
relies on (``numpy.typing``-era dtypes, ``bitorder`` packbits). The
native ``np.bitwise_count`` ufunc needs NumPy >= 2.0, but the popcount
in ``repro.retrieval.hamming`` falls back to a parity-tested 16-bit
lookup table on older NumPy, so 2.0 is a fast path, not a requirement.
"""

from setuptools import find_packages, setup

setup(
    name="repro-parmac",
    version="0.8.0",
    description=(
        "Reproduction of ParMAC (Carreira-Perpinan & Alizadeh, MLSys 2019): "
        "distributed MAC training of binary autoencoders and deep nets, "
        "with a micro-batched Hamming retrieval service"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.21",
    ],
    extras_require={
        "test": ["pytest", "hypothesis", "scipy"],
    },
)
