import numpy as np
import pytest

from repro.core.penalty import GeometricSchedule
from repro.nets.deepnet import DeepNet
from repro.nets.mac_net import MACTrainerNet


@pytest.fixture(scope="module")
def regression_problem():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(120, 4))
    Y = np.sin(X @ rng.normal(size=(4, 2)))
    return X, Y


class TestCoordinates:
    def test_init_from_forward_pass(self, regression_problem):
        X, Y = regression_problem
        net = DeepNet.create([4, 6, 2], rng=0)
        trainer = MACTrainerNet(net, seed=0)
        Zs = trainer.init_coords(X)
        assert len(Zs) == 1 and Zs[0].shape == (120, 6)
        assert np.allclose(Zs[0], net.activations(X)[0])

    def test_e_q_at_init_equals_nested_loss(self, regression_problem):
        # With Z = forward activations, every penalty term is zero.
        X, Y = regression_problem
        net = DeepNet.create([4, 6, 2], rng=0)
        trainer = MACTrainerNet(net, seed=0)
        Zs = trainer.init_coords(X)
        assert trainer.e_q(X, Y, Zs, mu=5.0) == pytest.approx(net.loss(X, Y))


class TestZStep:
    def test_never_increases_e_q(self, regression_problem):
        X, Y = regression_problem
        net = DeepNet.create([4, 6, 2], rng=1)
        trainer = MACTrainerNet(net, z_steps=5, seed=0)
        Zs = [z + 0.3 for z in trainer.init_coords(X)]  # perturbed start
        before = trainer.e_q(X, Y, Zs, 1.0)
        Zs_new = trainer.z_step(X, Y, Zs, 1.0)
        assert trainer.e_q(X, Y, Zs_new, 1.0) <= before + 1e-9

    def test_gradient_matches_finite_difference(self, regression_problem):
        X, Y = regression_problem
        net = DeepNet.create([4, 5, 3, 2], rng=2)
        trainer = MACTrainerNet(net, seed=0)
        Zs = trainer.init_coords(X[:6])
        Zs = [z + 0.1 for z in Zs]
        grads = trainer._z_gradients(X[:6], Y[:6], Zs, mu=0.7)
        eps = 1e-6
        for k in range(len(Zs)):
            i, j = 2, 1
            Zs[k][i, j] += eps
            up = trainer.e_q(X[:6], Y[:6], Zs, 0.7)
            Zs[k][i, j] -= 2 * eps
            down = trainer.e_q(X[:6], Y[:6], Zs, 0.7)
            Zs[k][i, j] += eps
            numeric = (up - down) / (2 * eps)
            assert grads[k][i, j] == pytest.approx(numeric, abs=1e-4)


class TestWStep:
    def test_reduces_layer_losses(self, regression_problem):
        X, Y = regression_problem
        net = DeepNet.create([4, 6, 2], rng=3)
        trainer = MACTrainerNet(net, w_epochs=5, seed=0)
        Zs = trainer.init_coords(X)
        # Perturb weights so there is something to recover.
        for layer in net.layers:
            layer.W += 0.5 * np.random.default_rng(1).normal(size=layer.W.shape)
        before = trainer.e_q(X, Y, Zs, 1.0)
        trainer.w_step(X, Y, Zs)
        assert trainer.e_q(X, Y, Zs, 1.0) < before


class TestFit:
    def test_nested_loss_decreases(self, regression_problem):
        X, Y = regression_problem
        net = DeepNet.create([4, 8, 2], rng=4)
        trainer = MACTrainerNet(
            net, GeometricSchedule(0.5, 1.5, 8), w_epochs=2, seed=0
        )
        before = net.loss(X, Y)
        h = trainer.fit(X, Y)
        assert h.records[-1].e_ba < before
        assert len(h) == 8

    def test_comparable_to_backprop(self, regression_problem):
        # MAC should land within a reasonable factor of backprop's loss.
        X, Y = regression_problem
        from repro.nets.backprop import BackpropTrainer

        mac_net = DeepNet.create([4, 8, 2], rng=5)
        MACTrainerNet(mac_net, GeometricSchedule(0.5, 1.6, 10), w_epochs=3,
                      seed=0).fit(X, Y)
        bp_net = DeepNet.create([4, 8, 2], rng=5)
        BackpropTrainer(bp_net, seed=0).fit(X, Y, epochs=10)
        assert mac_net.loss(X, Y) <= bp_net.loss(X, Y) * 2.0

    def test_two_hidden_layers(self, regression_problem):
        X, Y = regression_problem
        net = DeepNet.create([4, 6, 5, 2], rng=6)
        h = MACTrainerNet(net, GeometricSchedule(0.5, 1.5, 5), seed=0).fit(X, Y)
        assert np.isfinite(h.records[-1].e_ba)

    def test_1d_targets(self):
        rng = np.random.default_rng(7)
        X = rng.normal(size=(60, 3))
        y = X[:, 0] ** 2
        net = DeepNet.create([3, 5, 1], rng=0)
        h = MACTrainerNet(net, GeometricSchedule(0.5, 1.5, 4), seed=0).fit(X, y)
        assert np.isfinite(h.records[-1].e_ba)

    def test_rejects_length_mismatch(self):
        net = DeepNet.create([3, 4, 2], rng=0)
        with pytest.raises(ValueError):
            MACTrainerNet(net, seed=0).fit(np.zeros((5, 3)), np.zeros((4, 2)))


class TestZStepStackedParity:
    """The activation-cached z_step must reproduce z_step_reference
    bit for bit — same forwards on the same rows, just fewer of them."""

    @pytest.mark.parametrize("dims", [[4, 6, 2], [4, 5, 3, 2]])
    def test_bit_identical_to_reference(self, regression_problem, dims):
        X, Y = regression_problem
        net = DeepNet.create(dims, rng=3)
        trainer = MACTrainerNet(net, z_steps=6, seed=0)
        Zs = [z + 0.3 for z in trainer.init_coords(X)]  # off the fixed point
        ref = trainer.z_step_reference(X, Y, Zs, mu=0.7)
        fast = trainer.z_step(X, Y, Zs, mu=0.7)
        assert len(ref) == len(fast)
        for R, F in zip(ref, fast):
            assert np.array_equal(R, F)

    def test_bit_identical_float32(self, regression_problem):
        X, Y = regression_problem
        net = DeepNet.create([4, 6, 2], rng=3, dtype=np.float32)
        trainer = MACTrainerNet(net, z_steps=6, seed=0)
        Zs = [(z + 0.3).astype(np.float32) for z in trainer.init_coords(X)]
        ref = trainer.z_step_reference(X, Y, Zs, mu=0.7)
        fast = trainer.z_step(X, Y, Zs, mu=0.7)
        for R, F in zip(ref, fast):
            assert np.array_equal(R, F)
