import numpy as np
import pytest

from repro.nets.layers import ACTIVATIONS, DenseLayer


class TestActivations:
    def test_sigmoid_range(self):
        f, _ = ACTIVATIONS["sigmoid"]
        t = np.linspace(-50, 50, 101)
        out = f(t)
        assert (out >= 0).all() and (out <= 1).all()
        # Strictly interior on moderate inputs (saturates to 1.0 in float64
        # only beyond |t| ~ 37).
        mid = f(np.linspace(-30, 30, 61))
        assert (mid > 0).all() and (mid < 1).all()

    def test_sigmoid_extreme_stability(self):
        f, _ = ACTIVATIONS["sigmoid"]
        assert np.isfinite(f(np.array([-1000.0, 1000.0]))).all()
        assert f(np.array([0.0]))[0] == pytest.approx(0.5)

    @pytest.mark.parametrize("name", ["sigmoid", "tanh", "linear"])
    def test_derivative_matches_finite_difference(self, name):
        f, fprime = ACTIVATIONS[name]
        t = np.linspace(-3, 3, 25)
        eps = 1e-6
        numeric = (f(t + eps) - f(t - eps)) / (2 * eps)
        analytic = fprime(f(t))
        assert np.allclose(analytic, numeric, atol=1e-6)


class TestDenseLayer:
    def test_forward_shape(self):
        layer = DenseLayer.create(4, 3, rng=0)
        out = layer.forward(np.zeros((7, 4)))
        assert out.shape == (7, 3)

    def test_linear_layer_is_affine(self):
        layer = DenseLayer(np.array([[1.0, 2.0]]), np.array([3.0]), "linear")
        assert layer.forward(np.array([[1.0, 1.0]]))[0, 0] == 6.0

    def test_create_glorot_scale(self):
        layer = DenseLayer.create(100, 100, rng=0)
        assert abs(layer.W.std() - np.sqrt(2.0 / 200)) < 0.02

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            DenseLayer(np.zeros((3, 2)), np.zeros(4))

    def test_rejects_unknown_activation(self):
        with pytest.raises(ValueError):
            DenseLayer(np.zeros((2, 2)), np.zeros(2), "softplus")

    def test_copy_deep(self):
        layer = DenseLayer.create(3, 2, rng=0)
        cp = layer.copy()
        cp.W[0, 0] += 1.0
        assert layer.W[0, 0] != cp.W[0, 0]
