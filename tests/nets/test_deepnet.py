import numpy as np
import pytest

from repro.nets.deepnet import DeepNet
from repro.nets.layers import DenseLayer


class TestConstruction:
    def test_create_sizes(self):
        net = DeepNet.create([4, 8, 6, 2], rng=0)
        assert net.sizes == [4, 8, 6, 2]
        assert net.K == 2  # hidden layers

    def test_output_activation_linear_by_default(self):
        net = DeepNet.create([3, 5, 2], rng=0)
        assert net.layers[-1].activation == "linear"
        assert net.layers[0].activation == "sigmoid"

    def test_rejects_size_mismatch(self):
        with pytest.raises(ValueError):
            DeepNet([DenseLayer.create(3, 4), DenseLayer.create(5, 2)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            DeepNet([])

    def test_rejects_short_sizes(self):
        with pytest.raises(ValueError):
            DeepNet.create([4])


class TestForward:
    def test_activations_list(self):
        net = DeepNet.create([4, 8, 2], rng=0)
        X = np.random.default_rng(0).normal(size=(10, 4))
        acts = net.activations(X)
        assert len(acts) == 2
        assert acts[0].shape == (10, 8) and acts[1].shape == (10, 2)
        assert np.allclose(acts[-1], net.forward(X))

    def test_forward_composition(self):
        net = DeepNet.create([3, 5, 2], rng=1)
        X = np.random.default_rng(1).normal(size=(6, 3))
        manual = net.layers[1].forward(net.layers[0].forward(X))
        assert np.allclose(net.forward(X), manual)

    def test_loss_definition(self):
        net = DeepNet.create([3, 4, 2], rng=2)
        X = np.random.default_rng(2).normal(size=(5, 3))
        Y = np.random.default_rng(3).normal(size=(5, 2))
        R = Y - net.forward(X)
        assert net.loss(X, Y) == pytest.approx(0.5 * (R * R).sum())

    def test_copy_independent(self):
        net = DeepNet.create([3, 4, 2], rng=0)
        cp = net.copy()
        cp.layers[0].W[0, 0] += 5.0
        X = np.zeros((2, 3))
        assert not np.allclose(net.forward(X), cp.forward(X)) or True
        assert net.layers[0].W[0, 0] != cp.layers[0].W[0, 0]
