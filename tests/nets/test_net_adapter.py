"""Deep nets on the ParMAC ring: the generality claim of the paper."""

import numpy as np
import pytest

from repro.distributed.cluster import SimulatedCluster
from repro.distributed.partition import partition_indices
from repro.nets.adapter import NetAdapter, NetShard, make_net_shards
from repro.nets.deepnet import DeepNet
from repro.nets.mac_net import MACTrainerNet


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(120, 4))
    Y = np.sin(X @ rng.normal(size=(4, 2)))
    return X, Y


def build_net_cluster(X, Y, P=3, seed=0, **kwargs):
    net = DeepNet.create([4, 6, 2], rng=seed)
    adapter = NetAdapter(net, z_steps=5)
    Zs = MACTrainerNet(net, seed=seed).init_coords(X)
    parts = partition_indices(len(X), P, rng=seed)
    shards = make_net_shards(X, Y, Zs, parts)
    cluster = SimulatedCluster(adapter, shards, seed=seed, **kwargs)
    return cluster, adapter, net


class TestNetShard:
    def test_lengths_validated(self):
        with pytest.raises(ValueError):
            NetShard(X=np.zeros((3, 2)), Y=np.zeros((2, 1)), Zs=[np.zeros((3, 4))])

    def test_n(self):
        s = NetShard(X=np.zeros((5, 2)), Y=np.zeros((5, 1)), Zs=[np.zeros((5, 3))])
        assert s.n == 5


class TestNetAdapter:
    def test_one_submodel_per_hidden_unit(self, problem):
        X, Y = problem
        net = DeepNet.create([4, 6, 2], rng=0)
        adapter = NetAdapter(net)
        # M = hidden units + output units = 6 + 2 (paper: weight vector of
        # each hidden unit is a submodel).
        assert len(adapter.submodel_specs()) == 8

    def test_params_roundtrip(self, problem):
        X, Y = problem
        net = DeepNet.create([4, 6, 2], rng=0)
        adapter = NetAdapter(net)
        for spec in adapter.submodel_specs():
            theta = adapter.get_params(spec)
            adapter.set_params(spec, theta * 1.5)
            assert np.allclose(adapter.get_params(spec), theta * 1.5)

    def test_w_update_reduces_unit_loss(self, problem):
        X, Y = problem
        net = DeepNet.create([4, 6, 2], rng=1)
        adapter = NetAdapter(net)
        Zs = MACTrainerNet(net, seed=0).init_coords(X)
        shard = make_net_shards(X, Y, Zs, [np.arange(len(X))])[0]
        spec = adapter.submodel_specs()[0]
        theta = adapter.get_params(spec) + 0.5  # perturb

        def unit_loss(th):
            k, j = spec.index
            A_in = shard.X
            from repro.nets.layers import ACTIVATIONS

            f, _ = ACTIVATIONS[net.layers[k].activation]
            pred = f(A_in @ th[:-1] + th[-1])
            return float(((pred - shard.Zs[k][:, j]) ** 2).sum())

        from repro.optim.sgd import SGDState

        before = unit_loss(theta)
        state = SGDState()
        for _ in range(10):
            theta = adapter.w_update(spec, theta, state, shard, 1.0,
                                     batch_size=32, shuffle=True,
                                     rng=np.random.default_rng(0))
        assert unit_loss(theta) < before


class TestNetOnRing:
    def test_w_step_invariants(self, problem):
        X, Y = problem
        cluster, adapter, net = build_net_cluster(X, Y, P=3)
        cluster.w_step(mu=1.0)
        assert cluster.model_copies_consistent()

    def test_full_iterations_reduce_nested_loss(self, problem):
        X, Y = problem
        cluster, adapter, net = build_net_cluster(X, Y, P=3, epochs=2)
        before = net.loss(X, Y)
        for mu in (0.5, 1.0, 2.0, 4.0, 8.0):
            cluster.iteration(mu)
        assert net.loss(X, Y) < before

    def test_z_step_never_increases_e_q(self, problem):
        X, Y = problem
        cluster, adapter, net = build_net_cluster(X, Y, P=2)
        cluster.w_step(1.0)
        before = sum(
            adapter.e_q_shard(cluster.shards[p], 1.0) for p in cluster.machines
        )
        cluster.z_step(1.0)
        after = sum(
            adapter.e_q_shard(cluster.shards[p], 1.0) for p in cluster.machines
        )
        assert after <= before + 1e-9


class TestBatchedParams:
    """The vectorised per-layer param path must be bit-identical to the
    per-unit one — it is the shard-local hot path every engine drives
    through ``get_params_many`` / ``set_params_many``."""

    def test_get_batch_matches_per_unit(self, problem):
        X, Y = problem
        net = DeepNet.create([4, 6, 2], rng=3)
        adapter = NetAdapter(net)
        specs = adapter.submodel_specs()
        batched = adapter.get_params_batch(specs)
        for spec, theta in zip(specs, batched):
            assert np.array_equal(theta, adapter.get_params(spec))

    def test_get_batch_preserves_arbitrary_spec_order(self, problem):
        net = DeepNet.create([4, 6, 2], rng=3)
        adapter = NetAdapter(net)
        specs = adapter.submodel_specs()[::-1]  # interleaves the layers
        batched = adapter.get_params_batch(specs)
        for spec, theta in zip(specs, batched):
            assert np.array_equal(theta, adapter.get_params(spec))

    def test_set_batch_matches_per_unit(self, problem):
        rng = np.random.default_rng(7)
        net_a = DeepNet.create([4, 6, 2], rng=3)
        net_b = DeepNet.create([4, 6, 2], rng=3)
        a = NetAdapter(net_a)
        b = NetAdapter(net_b)
        specs = a.submodel_specs()
        thetas = [rng.normal(size=a.get_params(s).shape) for s in specs]
        for spec, theta in zip(specs, thetas):
            a.set_params(spec, theta)
        b.set_params_batch(list(zip(specs, thetas)))
        for la, lb in zip(net_a.layers, net_b.layers):
            assert np.array_equal(la.W, lb.W)
            assert np.array_equal(la.b, lb.b)

    def test_set_batch_rejects_wrong_width(self, problem):
        net = DeepNet.create([4, 6, 2], rng=3)
        adapter = NetAdapter(net)
        spec = adapter.submodel_specs()[0]
        with pytest.raises(ValueError, match="params"):
            adapter.set_params_batch([(spec, np.zeros(99))])

    def test_engines_use_the_batch_path(self, problem):
        # get_params_many / set_params_many must dispatch to the batch
        # implementations when an adapter provides them.
        from repro.distributed.interfaces import get_params_many, set_params_many

        net = DeepNet.create([4, 6, 2], rng=3)
        adapter = NetAdapter(net)
        calls = {"get": 0, "set": 0}
        orig_get, orig_set = adapter.get_params_batch, adapter.set_params_batch
        adapter.get_params_batch = lambda specs: (
            calls.__setitem__("get", calls["get"] + 1) or orig_get(specs)
        )
        adapter.set_params_batch = lambda items: (
            calls.__setitem__("set", calls["set"] + 1) or orig_set(items)
        )
        specs = adapter.submodel_specs()
        thetas = get_params_many(adapter, specs)
        set_params_many(adapter, list(zip(specs, thetas)))
        assert calls == {"get": 1, "set": 1}
