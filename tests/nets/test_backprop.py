import numpy as np
import pytest

from repro.nets.backprop import BackpropTrainer
from repro.nets.deepnet import DeepNet


def numeric_gradients(net, X, Y, eps=1e-6):
    grads = []
    for layer in net.layers:
        gW = np.zeros_like(layer.W)
        gb = np.zeros_like(layer.b)
        for i in range(layer.W.shape[0]):
            for j in range(layer.W.shape[1]):
                layer.W[i, j] += eps
                up = net.loss(X, Y)
                layer.W[i, j] -= 2 * eps
                down = net.loss(X, Y)
                layer.W[i, j] += eps
                gW[i, j] = (up - down) / (2 * eps)
            layer.b[i] += eps
            up = net.loss(X, Y)
            layer.b[i] -= 2 * eps
            down = net.loss(X, Y)
            layer.b[i] += eps
            gb[i] = (up - down) / (2 * eps)
        grads.append((gW, gb))
    return grads


class TestGradients:
    def test_chain_rule_matches_finite_differences(self):
        rng = np.random.default_rng(0)
        net = DeepNet.create([3, 4, 3, 2], rng=0)
        X = rng.normal(size=(6, 3))
        Y = rng.normal(size=(6, 2))
        trainer = BackpropTrainer(net, seed=0)
        analytic = trainer.gradients(X, Y)
        numeric = numeric_gradients(net, X, Y)
        for (aW, ab), (nW, nb) in zip(analytic, numeric):
            assert np.allclose(aW, nW, atol=1e-5)
            assert np.allclose(ab, nb, atol=1e-5)

    def test_gradients_zero_at_perfect_fit(self):
        net = DeepNet.create([2, 3, 1], rng=1)
        X = np.random.default_rng(1).normal(size=(5, 2))
        Y = net.forward(X)  # targets equal outputs
        grads = BackpropTrainer(net, seed=0).gradients(X, Y)
        for gW, gb in grads:
            assert np.allclose(gW, 0.0, atol=1e-12)
            assert np.allclose(gb, 0.0, atol=1e-12)


class TestTraining:
    def test_loss_decreases(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(100, 4))
        Y = np.tanh(X @ rng.normal(size=(4, 2)))
        net = DeepNet.create([4, 10, 2], rng=0)
        trainer = BackpropTrainer(net, seed=0)
        before = net.loss(X, Y)
        losses = trainer.fit(X, Y, epochs=20)
        assert losses[-1] < before
        assert losses[-1] < losses[0] * 1.01

    def test_reproducible(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(40, 3))
        Y = rng.normal(size=(40, 2))
        a = DeepNet.create([3, 5, 2], rng=9)
        b = DeepNet.create([3, 5, 2], rng=9)
        la = BackpropTrainer(a, seed=4).fit(X, Y, epochs=3)
        lb = BackpropTrainer(b, seed=4).fit(X, Y, epochs=3)
        assert la == pytest.approx(lb)
