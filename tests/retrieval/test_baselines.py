import numpy as np
import pytest

from repro.data.synthetic import make_clustered
from repro.retrieval.baselines import ITQHash, TruncatedPCAHash, pca_directions


class TestPCADirections:
    def test_orthonormal(self):
        X = np.random.default_rng(0).normal(size=(100, 8))
        _, V = pca_directions(X, 4)
        assert np.allclose(V @ V.T, np.eye(4), atol=1e-8)

    def test_ordered_by_variance(self):
        X = np.random.default_rng(1).normal(size=(200, 6)) * np.array(
            [10.0, 5.0, 2.0, 1.0, 0.5, 0.1]
        )
        mean, V = pca_directions(X, 6)
        proj = (X - mean) @ V.T
        var = proj.var(axis=0)
        assert (np.diff(var) <= 1e-8).all()

    def test_rejects_too_many_components(self):
        with pytest.raises(ValueError):
            pca_directions(np.zeros((10, 3)), 4)


class TestTruncatedPCAHash:
    def test_encode_shape_and_dtype(self):
        X = np.random.default_rng(0).normal(size=(50, 8))
        h = TruncatedPCAHash(4).fit(X)
        Z = h.encode(X)
        assert Z.shape == (50, 4) and Z.dtype == np.uint8
        assert set(np.unique(Z)) <= {0, 1}

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            TruncatedPCAHash(4).encode(np.zeros((2, 8)))

    def test_subset_fit(self):
        X = np.random.default_rng(0).normal(size=(100, 8))
        h = TruncatedPCAHash(4).fit(X, subset=20, rng=0)
        assert h.encode(X).shape == (100, 4)

    def test_bits_split_on_principal_axis(self):
        # Two clusters separated along one axis must get different first bits.
        X = make_clustered(100, 6, n_clusters=2, spread=0.05, cluster_scale=30.0, rng=0)
        h = TruncatedPCAHash(2).fit(X)
        Z = h.encode(X)
        # First bit should split the data roughly in half.
        frac = Z[:, 0].mean()
        assert 0.2 < frac < 0.8


class TestITQ:
    def test_rotation_orthogonal(self):
        X = np.random.default_rng(0).normal(size=(80, 10))
        itq = ITQHash(5, n_iters=10, seed=0).fit(X)
        assert np.allclose(itq.R_ @ itq.R_.T, np.eye(5), atol=1e-8)

    def test_encode_binary(self):
        X = np.random.default_rng(0).normal(size=(40, 8))
        itq = ITQHash(4, seed=0).fit(X)
        Z = itq.encode(X)
        assert Z.shape == (40, 4) and set(np.unique(Z)) <= {0, 1}

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            ITQHash(3).encode(np.zeros((2, 8)))

    def test_quantisation_loss_decreases_vs_random_rotation(self):
        # ITQ minimises ||B - P R||_F; its loss must beat a random rotation.
        rng = np.random.default_rng(3)
        X = make_clustered(300, 12, n_clusters=5, rng=3)
        itq = ITQHash(6, n_iters=30, seed=0).fit(X)
        P = (X - itq.mean_) @ itq.V_.T

        def qloss(R):
            B = np.sign(P @ R)
            B[B == 0] = 1
            return np.linalg.norm(B - P @ R)

        R_rand, _ = np.linalg.qr(rng.normal(size=(6, 6)))
        assert qloss(itq.R_) <= qloss(R_rand) + 1e-9

    def test_deterministic_given_seed(self):
        X = np.random.default_rng(0).normal(size=(60, 8))
        a = ITQHash(4, seed=5).fit(X)
        b = ITQHash(4, seed=5).fit(X)
        assert np.array_equal(a.encode(X), b.encode(X))
