import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.retrieval.hamming import (
    HAS_BITWISE_COUNT,
    _popcount_lut16,
    hamming_cdist,
    hamming_knn,
    pack_bits,
    popcount,
    unpack_bits,
)

code_matrices = hnp.arrays(
    np.uint8,
    st.tuples(st.integers(1, 12), st.integers(1, 130)),
    elements=st.integers(0, 1),
)


class TestPacking:
    @given(code_matrices)
    @settings(max_examples=40)
    def test_roundtrip(self, Z):
        packed = pack_bits(Z)
        assert np.array_equal(unpack_bits(packed, Z.shape[1]), Z)

    def test_word_count(self):
        assert pack_bits(np.zeros((2, 64), dtype=np.uint8)).shape == (2, 1)
        assert pack_bits(np.zeros((2, 65), dtype=np.uint8)).shape == (2, 2)

    def test_bit_layout(self):
        Z = np.zeros((1, 8), dtype=np.uint8)
        Z[0, 3] = 1
        assert pack_bits(Z)[0, 0] == 8  # bit 3 -> value 2^3

    def test_rejects_nonbinary(self):
        with pytest.raises(ValueError):
            pack_bits(np.full((2, 3), 2))

    def test_unpack_rejects_overflow(self):
        with pytest.raises(ValueError):
            unpack_bits(np.zeros((2, 1), dtype=np.uint64), 65)

    @pytest.mark.parametrize("L", [1, 7, 63, 64, 65, 100, 128, 130])
    def test_byte_parity_with_shift_loop(self, L):
        # The vectorised packbits path must be byte-identical to the
        # definitional per-bit shift loop, including ragged last words.
        rng = np.random.default_rng(L)
        Z = rng.integers(0, 2, size=(9, L), dtype=np.uint8)
        ref = np.zeros((9, (L + 63) // 64), dtype=np.uint64)
        for l in range(L):
            ref[:, l // 64] |= Z[:, l].astype(np.uint64) << np.uint64(l % 64)
        assert np.array_equal(pack_bits(Z), ref)


class TestPopcount:
    def test_lut_matches_definition(self):
        rng = np.random.default_rng(6)
        a = rng.integers(0, 2**64, size=257, dtype=np.uint64)
        ref = np.array([bin(int(v)).count("1") for v in a], dtype=np.uint8)
        assert np.array_equal(_popcount_lut16(a), ref)
        assert np.array_equal(popcount(a), ref)

    @pytest.mark.skipif(not HAS_BITWISE_COUNT, reason="NumPy < 2.0")
    def test_lut_matches_native(self):
        # The setup.py floor is set by the fallback; on NumPy >= 2.0 both
        # paths exist and must agree everywhere we can afford to check.
        rng = np.random.default_rng(7)
        a = rng.integers(0, 2**64, size=(13, 101), dtype=np.uint64)
        edge = np.array([0, 1, 2**63, 2**64 - 1, 0x5555555555555555], dtype=np.uint64)
        for arr in (a, edge):
            assert np.array_equal(
                _popcount_lut16(arr), np.bitwise_count(arr).astype(np.uint8)
            )


class TestHammingCdist:
    @given(code_matrices)
    @settings(max_examples=30)
    def test_matches_direct_bit_count(self, Z):
        packed = pack_bits(Z)
        D = hamming_cdist(packed, packed)
        direct = (Z[:, None, :] != Z[None, :, :]).sum(axis=2)
        assert np.array_equal(D, direct)

    def test_diagonal_zero(self):
        Z = np.random.default_rng(0).integers(0, 2, size=(10, 33), dtype=np.uint8)
        D = hamming_cdist(pack_bits(Z), pack_bits(Z))
        assert (np.diag(D) == 0).all()

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        A = pack_bits(rng.integers(0, 2, size=(6, 20), dtype=np.uint8))
        B = pack_bits(rng.integers(0, 2, size=(9, 20), dtype=np.uint8))
        assert np.array_equal(hamming_cdist(A, B), hamming_cdist(B, A).T)

    def test_triangle_inequality(self):
        Z = np.random.default_rng(1).integers(0, 2, size=(8, 16), dtype=np.uint8)
        D = hamming_cdist(pack_bits(Z), pack_bits(Z)).astype(int)
        for i in range(8):
            for j in range(8):
                assert (D[i] + D[j] >= D[i, j]).all()

    def test_chunking_equivalence(self):
        rng = np.random.default_rng(2)
        A = pack_bits(rng.integers(0, 2, size=(30, 40), dtype=np.uint8))
        B = pack_bits(rng.integers(0, 2, size=(11, 40), dtype=np.uint8))
        assert np.array_equal(hamming_cdist(A, B, chunk=7), hamming_cdist(A, B, chunk=1024))

    def test_rejects_word_mismatch(self):
        with pytest.raises(ValueError):
            hamming_cdist(np.zeros((2, 1), np.uint64), np.zeros((2, 2), np.uint64))


class TestHammingKnn:
    def test_exact_neighbours(self):
        rng = np.random.default_rng(3)
        Z = rng.integers(0, 2, size=(40, 24), dtype=np.uint8)
        Q = rng.integers(0, 2, size=(5, 24), dtype=np.uint8)
        pq, pb = pack_bits(Q), pack_bits(Z)
        nn = hamming_knn(pq, pb, 7)
        D = hamming_cdist(pq, pb)
        for i in range(5):
            retrieved = sorted(D[i, nn[i]].tolist())
            best = sorted(D[i].tolist())[:7]
            assert retrieved == best

    def test_sorted_by_distance(self):
        rng = np.random.default_rng(4)
        Z = rng.integers(0, 2, size=(30, 16), dtype=np.uint8)
        pq, pb = pack_bits(Z[:3]), pack_bits(Z)
        nn = hamming_knn(pq, pb, 10)
        D = hamming_cdist(pq, pb)
        for i in range(3):
            ds = D[i, nn[i]]
            assert (np.diff(ds.astype(int)) >= 0).all()

    def test_self_is_first(self):
        Z = np.random.default_rng(5).integers(0, 2, size=(20, 32), dtype=np.uint8)
        packed = pack_bits(Z)
        nn = hamming_knn(packed[:4], packed, 1)
        # Query codes are in the base; distance-0 match must rank first
        # (possibly another identical code — check distance, not index).
        D = hamming_cdist(packed[:4], packed)
        assert (D[np.arange(4), nn[:, 0]] == 0).all()

    def test_ties_break_by_ascending_index(self):
        # Duplicate every code so each distance value ties across copies:
        # the result must be the (distance, index) lexicographic head.
        rng = np.random.default_rng(8)
        Z = np.repeat(rng.integers(0, 2, size=(20, 16), dtype=np.uint8), 5, axis=0)
        Q = rng.integers(0, 2, size=(6, 16), dtype=np.uint8)
        pq, pb = pack_bits(Q), pack_bits(Z)
        nn = hamming_knn(pq, pb, 30)
        D = hamming_cdist(pq, pb)
        key = D.astype(np.int64) * len(Z) + np.arange(len(Z))
        ref = np.argsort(key, axis=1)[:, :30]
        assert np.array_equal(nn, ref)

    def test_tie_order_is_chunk_invariant(self):
        rng = np.random.default_rng(9)
        Z = np.repeat(rng.integers(0, 2, size=(10, 8), dtype=np.uint8), 8, axis=0)
        pq, pb = pack_bits(Z[:7]), pack_bits(Z)
        for chunk in (1, 3, 1024):
            assert np.array_equal(
                hamming_knn(pq, pb, 20, chunk=chunk), hamming_knn(pq, pb, 20)
            )

    def test_rejects_bad_k(self):
        packed = pack_bits(np.zeros((5, 8), dtype=np.uint8))
        with pytest.raises(ValueError):
            hamming_knn(packed, packed, 0)
        with pytest.raises(ValueError):
            hamming_knn(packed, packed, 6)
