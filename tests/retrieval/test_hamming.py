import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.retrieval.hamming import hamming_cdist, hamming_knn, pack_bits, unpack_bits

code_matrices = hnp.arrays(
    np.uint8,
    st.tuples(st.integers(1, 12), st.integers(1, 130)),
    elements=st.integers(0, 1),
)


class TestPacking:
    @given(code_matrices)
    @settings(max_examples=40)
    def test_roundtrip(self, Z):
        packed = pack_bits(Z)
        assert np.array_equal(unpack_bits(packed, Z.shape[1]), Z)

    def test_word_count(self):
        assert pack_bits(np.zeros((2, 64), dtype=np.uint8)).shape == (2, 1)
        assert pack_bits(np.zeros((2, 65), dtype=np.uint8)).shape == (2, 2)

    def test_bit_layout(self):
        Z = np.zeros((1, 8), dtype=np.uint8)
        Z[0, 3] = 1
        assert pack_bits(Z)[0, 0] == 8  # bit 3 -> value 2^3

    def test_rejects_nonbinary(self):
        with pytest.raises(ValueError):
            pack_bits(np.full((2, 3), 2))

    def test_unpack_rejects_overflow(self):
        with pytest.raises(ValueError):
            unpack_bits(np.zeros((2, 1), dtype=np.uint64), 65)


class TestHammingCdist:
    @given(code_matrices)
    @settings(max_examples=30)
    def test_matches_direct_bit_count(self, Z):
        packed = pack_bits(Z)
        D = hamming_cdist(packed, packed)
        direct = (Z[:, None, :] != Z[None, :, :]).sum(axis=2)
        assert np.array_equal(D, direct)

    def test_diagonal_zero(self):
        Z = np.random.default_rng(0).integers(0, 2, size=(10, 33), dtype=np.uint8)
        D = hamming_cdist(pack_bits(Z), pack_bits(Z))
        assert (np.diag(D) == 0).all()

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        A = pack_bits(rng.integers(0, 2, size=(6, 20), dtype=np.uint8))
        B = pack_bits(rng.integers(0, 2, size=(9, 20), dtype=np.uint8))
        assert np.array_equal(hamming_cdist(A, B), hamming_cdist(B, A).T)

    def test_triangle_inequality(self):
        Z = np.random.default_rng(1).integers(0, 2, size=(8, 16), dtype=np.uint8)
        D = hamming_cdist(pack_bits(Z), pack_bits(Z)).astype(int)
        for i in range(8):
            for j in range(8):
                assert (D[i] + D[j] >= D[i, j]).all()

    def test_chunking_equivalence(self):
        rng = np.random.default_rng(2)
        A = pack_bits(rng.integers(0, 2, size=(30, 40), dtype=np.uint8))
        B = pack_bits(rng.integers(0, 2, size=(11, 40), dtype=np.uint8))
        assert np.array_equal(hamming_cdist(A, B, chunk=7), hamming_cdist(A, B, chunk=1024))

    def test_rejects_word_mismatch(self):
        with pytest.raises(ValueError):
            hamming_cdist(np.zeros((2, 1), np.uint64), np.zeros((2, 2), np.uint64))


class TestHammingKnn:
    def test_exact_neighbours(self):
        rng = np.random.default_rng(3)
        Z = rng.integers(0, 2, size=(40, 24), dtype=np.uint8)
        Q = rng.integers(0, 2, size=(5, 24), dtype=np.uint8)
        pq, pb = pack_bits(Q), pack_bits(Z)
        nn = hamming_knn(pq, pb, 7)
        D = hamming_cdist(pq, pb)
        for i in range(5):
            retrieved = sorted(D[i, nn[i]].tolist())
            best = sorted(D[i].tolist())[:7]
            assert retrieved == best

    def test_sorted_by_distance(self):
        rng = np.random.default_rng(4)
        Z = rng.integers(0, 2, size=(30, 16), dtype=np.uint8)
        pq, pb = pack_bits(Z[:3]), pack_bits(Z)
        nn = hamming_knn(pq, pb, 10)
        D = hamming_cdist(pq, pb)
        for i in range(3):
            ds = D[i, nn[i]]
            assert (np.diff(ds.astype(int)) >= 0).all()

    def test_self_is_first(self):
        Z = np.random.default_rng(5).integers(0, 2, size=(20, 32), dtype=np.uint8)
        packed = pack_bits(Z)
        nn = hamming_knn(packed[:4], packed, 1)
        # Query codes are in the base; distance-0 match must rank first
        # (possibly another identical code — check distance, not index).
        D = hamming_cdist(packed[:4], packed)
        assert (D[np.arange(4), nn[:, 0]] == 0).all()

    def test_rejects_bad_k(self):
        packed = pack_bits(np.zeros((5, 8), dtype=np.uint8))
        with pytest.raises(ValueError):
            hamming_knn(packed, packed, 0)
        with pytest.raises(ValueError):
            hamming_knn(packed, packed, 6)
