import numpy as np
import pytest
from scipy.spatial.distance import cdist

from repro.retrieval.groundtruth import euclidean_cdist, euclidean_knn


class TestEuclideanCdist:
    def test_matches_scipy(self):
        rng = np.random.default_rng(0)
        A = rng.normal(size=(20, 5))
        B = rng.normal(size=(30, 5))
        assert np.allclose(euclidean_cdist(A, B), cdist(A, B, "sqeuclidean"), atol=1e-8)

    def test_nonnegative(self):
        rng = np.random.default_rng(1)
        A = rng.normal(size=(10, 3)) * 1e6  # large values stress the expansion
        assert (euclidean_cdist(A, A) >= 0).all()

    def test_chunking_equivalence(self):
        rng = np.random.default_rng(2)
        A = rng.normal(size=(25, 4))
        assert np.allclose(
            euclidean_cdist(A, A, chunk=3), euclidean_cdist(A, A, chunk=1000)
        )

    def test_rejects_dim_mismatch(self):
        with pytest.raises(ValueError):
            euclidean_cdist(np.zeros((2, 3)), np.zeros((2, 4)))


class TestEuclideanKnn:
    def test_exact_vs_argsort(self):
        rng = np.random.default_rng(3)
        Q = rng.normal(size=(6, 4))
        B = rng.normal(size=(50, 4))
        nn = euclidean_knn(Q, B, 5)
        D = cdist(Q, B, "sqeuclidean")
        for i in range(6):
            assert np.allclose(sorted(D[i, nn[i]]), sorted(D[i])[:5])

    def test_self_nearest(self):
        X = np.random.default_rng(4).normal(size=(20, 3))
        nn = euclidean_knn(X, X, 1)
        assert np.array_equal(nn[:, 0], np.arange(20))

    def test_rejects_bad_k(self):
        X = np.zeros((4, 2))
        with pytest.raises(ValueError):
            euclidean_knn(X, X, 5)
        with pytest.raises(ValueError):
            euclidean_knn(X, X, 0)
