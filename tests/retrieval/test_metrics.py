import numpy as np
import pytest

from repro.retrieval.hamming import pack_bits
from repro.retrieval.metrics import precision_at_k, recall_at_R, recall_curve


def codes(Z):
    return pack_bits(np.asarray(Z, dtype=np.uint8))


class TestPrecisionAtK:
    def test_perfect_when_hamming_matches_truth(self):
        # Base codes 0..3 at increasing distance from the query code 0000.
        base = codes([[0, 0, 0, 0], [1, 0, 0, 0], [1, 1, 0, 0], [1, 1, 1, 0]])
        query = codes([[0, 0, 0, 0]])
        truth = np.array([[0, 1]])
        assert precision_at_k(query, base, truth, k=2) == 1.0

    def test_zero_when_disjoint(self):
        base = codes([[0, 0], [0, 1], [1, 1]])
        query = codes([[0, 0]])
        truth = np.array([[2]])  # true neighbour is Hamming-farthest
        assert precision_at_k(query, base, truth, k=1) == 0.0

    def test_fractional(self):
        base = codes([[0, 0, 0], [0, 0, 1], [1, 1, 1]])
        query = codes([[0, 0, 0]])
        truth = np.array([[0, 2]])  # one of two retrieved is a true one
        assert precision_at_k(query, base, truth, k=2) == pytest.approx(0.5)

    def test_averages_over_queries(self):
        base = codes([[0, 0], [1, 1]])
        query = codes([[0, 0], [1, 1]])
        truth = np.array([[0], [0]])  # second query's truth not retrieved
        assert precision_at_k(query, base, truth, k=1) == pytest.approx(0.5)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            precision_at_k(codes([[0, 0]]), codes([[0, 0]]), np.zeros((2, 1), int), 1)


class TestRecallAtR:
    def test_rank_one_hit(self):
        base = codes([[0, 0, 0], [1, 1, 1]])
        query = codes([[0, 0, 0]])
        assert recall_at_R(query, base, np.array([0]), R=1) == 1.0

    def test_far_neighbour_missed_at_small_R(self):
        base = codes([[0, 0, 0], [0, 0, 1], [0, 1, 1], [1, 1, 1]])
        query = codes([[0, 0, 0]])
        nn1 = np.array([3])  # true neighbour is Hamming rank 4
        assert recall_at_R(query, base, nn1, R=1) == 0.0
        assert recall_at_R(query, base, nn1, R=4) == 1.0

    def test_ties_placed_top_rank(self):
        # Many codes at the same distance as the true neighbour: the paper's
        # protocol counts only *strictly closer* codes, so rank stays 1.
        base = codes([[0, 0, 1], [0, 1, 0], [1, 0, 0]])  # all at distance 1
        query = codes([[0, 0, 0]])
        assert recall_at_R(query, base, np.array([2]), R=1) == 1.0

    def test_monotone_in_R(self):
        rng = np.random.default_rng(0)
        Z = rng.integers(0, 2, size=(50, 16), dtype=np.uint8)
        q = rng.integers(0, 2, size=(10, 16), dtype=np.uint8)
        nn1 = rng.integers(0, 50, size=10)
        vals = recall_curve(codes(q), codes(Z), nn1, [1, 2, 5, 10, 25, 50])
        assert (np.diff(vals) >= 0).all()

    def test_recall_at_full_base_is_one(self):
        rng = np.random.default_rng(1)
        Z = rng.integers(0, 2, size=(20, 8), dtype=np.uint8)
        q = rng.integers(0, 2, size=(5, 8), dtype=np.uint8)
        nn1 = rng.integers(0, 20, size=5)
        assert recall_at_R(codes(q), codes(Z), nn1, R=20) == 1.0

    def test_curve_matches_pointwise(self):
        rng = np.random.default_rng(2)
        Z = rng.integers(0, 2, size=(30, 12), dtype=np.uint8)
        q = rng.integers(0, 2, size=(6, 12), dtype=np.uint8)
        nn1 = rng.integers(0, 30, size=6)
        Rs = [1, 3, 9, 27]
        curve = recall_curve(codes(q), codes(Z), nn1, Rs)
        single = [recall_at_R(codes(q), codes(Z), nn1, R) for R in Rs]
        assert np.allclose(curve, single)

    def test_rejects_bad_R(self):
        with pytest.raises(ValueError):
            recall_at_R(codes([[0]]), codes([[0]]), np.array([0]), R=0)
