import pytest

from repro.utils.ascii_plot import ascii_plot, ascii_table


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        out = ascii_plot({"a": ([1, 2, 3], [1, 4, 9])})
        assert "*" in out and "*=a" in out

    def test_multiple_series_distinct_markers(self):
        out = ascii_plot({"a": ([1, 2], [1, 2]), "b": ([1, 2], [2, 1])})
        assert "*=a" in out and "o=b" in out

    def test_dimensions(self):
        out = ascii_plot({"a": ([0, 1], [0, 1])}, width=30, height=5)
        grid_lines = [l for l in out.splitlines() if "|" in l]
        assert len(grid_lines) == 5
        assert all(len(l.split("|")[1]) == 30 for l in grid_lines)

    def test_log_x_axis(self):
        out = ascii_plot({"a": ([1, 10, 100], [1, 2, 3])}, logx=True)
        assert "100" in out

    def test_logx_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": ([0, 1], [1, 2])}, logx=True)

    def test_constant_series_ok(self):
        out = ascii_plot({"a": ([1, 2, 3], [5, 5, 5])})
        assert "*" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({})

    def test_title_first_line(self):
        out = ascii_plot({"a": ([1], [1])}, title="hello")
        assert out.splitlines()[0] == "hello"

    def test_extremes_plotted_at_edges(self):
        out = ascii_plot({"a": ([0, 10], [0, 10])}, width=20, height=5)
        rows = [l for l in out.splitlines() if "|" in l]
        assert rows[0].split("|")[1][-1] == "*"  # max at top-right
        assert rows[-1].split("|")[1][0] == "*"  # min at bottom-left


class TestAsciiTable:
    def test_alignment_and_rows(self):
        out = ascii_table(["x", "value"], [[1, 2.0], [10, 3.14159]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, separator, 2 rows
        assert "3.142" in out  # floats shortened to 4 significant digits

    def test_title(self):
        out = ascii_table(["a"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_string_cells(self):
        out = ascii_table(["name"], [["hello"]])
        assert "hello" in out
