import numpy as np
import pytest

from repro.utils.validation import (
    check_array,
    check_binary_codes,
    check_positive,
    check_positive_int,
)


class TestCheckArray:
    def test_accepts_list(self):
        X = check_array([[1.0, 2.0], [3.0, 4.0]])
        assert X.dtype == np.float64 and X.shape == (2, 2)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_array(np.zeros(3))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN or Inf"):
            check_array(np.array([[np.nan, 1.0]]))

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="NaN or Inf"):
            check_array(np.array([[np.inf, 1.0]]))

    def test_custom_ndim(self):
        assert check_array(np.zeros(4), ndim=1).shape == (4,)

    def test_contiguous_output(self):
        X = np.zeros((4, 4))[::2]
        assert check_array(X).flags["C_CONTIGUOUS"]


class TestCheckBinaryCodes:
    def test_accepts_01(self):
        Z = check_binary_codes(np.array([[0, 1], [1, 0]]))
        assert Z.dtype == np.uint8

    def test_rejects_other_values(self):
        with pytest.raises(ValueError, match="0/1"):
            check_binary_codes(np.array([[0, 2]]))

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_binary_codes(np.array([0, 1]))

    def test_returns_copy(self):
        Z = np.array([[0, 1]], dtype=np.uint8)
        out = check_binary_codes(Z)
        out[0, 0] = 1
        assert Z[0, 0] == 0


class TestScalars:
    def test_positive_float(self):
        assert check_positive(2.5, name="x") == 2.5

    @pytest.mark.parametrize("bad", [0, -1.0, np.inf, np.nan])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError):
            check_positive(bad, name="x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive(True, name="x")

    def test_positive_int(self):
        assert check_positive_int(3, name="n") == 3

    def test_int_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, name="n")

    def test_int_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.0, name="n")
