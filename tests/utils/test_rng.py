import numpy as np
import pytest

from repro.utils.rng import check_random_state, spawn_rngs


class TestCheckRandomState:
    def test_none_gives_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = check_random_state(42).integers(0, 1000, size=10)
        b = check_random_state(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = check_random_state(1).integers(0, 10**9, size=8)
        b = check_random_state(2).integers(0, 10**9, size=8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert check_random_state(g) is g

    def test_seedsequence_accepted(self):
        ss = np.random.SeedSequence(5)
        assert isinstance(check_random_state(ss), np.random.Generator)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            check_random_state("not a seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_streams_independent(self):
        rngs = spawn_rngs(0, 3)
        draws = [r.integers(0, 10**9, size=4) for r in rngs]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_reproducible_from_seed(self):
        a = [r.integers(0, 100, 3) for r in spawn_rngs(9, 2)]
        b = [r.integers(0, 100, 3) for r in spawn_rngs(9, 2)]
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_from_generator_parent(self):
        parent = np.random.default_rng(3)
        rngs = spawn_rngs(parent, 4)
        assert len(rngs) == 4

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, 0)
