"""ParMAC trainer: distributed training matches serial behaviour."""

import numpy as np
import pytest

from repro.autoencoder import BinaryAutoencoder
from repro.core.evaluation import PrecisionEvaluator
from repro.core.mac import MACTrainerBA
from repro.core.parmac import ParMACTrainerBA
from repro.core.penalty import GeometricSchedule
from repro.distributed.costmodel import CostModel


@pytest.fixture(scope="module")
def X():
    from repro.data.synthetic import make_clustered

    return make_clustered(240, 10, n_clusters=4, rng=2)


SCHED = GeometricSchedule(1e-4, 2.0, 6)


class TestSimulatedBackends:
    @pytest.mark.parametrize("backend", ["sync", "async"])
    def test_trains_and_records(self, X, backend):
        ba = BinaryAutoencoder.linear(10, 4)
        tr = ParMACTrainerBA(ba, SCHED, n_machines=4, backend=backend, seed=0)
        h = tr.fit(X)
        assert len(h) >= 1
        assert np.isfinite(h.records[-1].e_q)
        assert h.records[-1].time > 0  # virtual clock populated

    def test_close_to_serial_mac(self, X):
        # ParMAC "gives almost identical results to MAC" (section 6).
        serial = BinaryAutoencoder.linear(10, 4)
        MACTrainerBA(serial, SCHED, w_epochs=2, decoder_exact=False, seed=0).fit(X)
        par = BinaryAutoencoder.linear(10, 4)
        ParMACTrainerBA(par, SCHED, n_machines=4, epochs=2, seed=0).fit(X)
        e_serial = serial.e_ba(X)
        e_par = par.e_ba(X)
        assert e_par <= e_serial * 1.25 + 1e-9

    def test_machine_count_does_not_degrade(self, X):
        # Figs. 7-8: varying P jitters the curve (minibatch ordering) but
        # does not systematically degrade the result.
        sched = GeometricSchedule(1e-3, 2.5, 8)
        finals = []
        for P in (1, 2, 4, 8):
            ba = BinaryAutoencoder.linear(10, 4)
            h = ParMACTrainerBA(ba, sched, n_machines=P, seed=0).fit(X)
            finals.append(h.records[-1].e_ba)
        assert max(finals) <= min(finals) * 2.0

    def test_evaluator_integration(self, X):
        ba = BinaryAutoencoder.linear(10, 4)
        ev = PrecisionEvaluator(X[:15], X, K=20, k=10)
        h = ParMACTrainerBA(ba, SCHED, n_machines=3, evaluator=ev, seed=0).fit(X)
        assert all(r.precision is not None for r in h.records)

    def test_cost_model_drives_times(self, X):
        cheap = ParMACTrainerBA(
            BinaryAutoencoder.linear(10, 4), SCHED, n_machines=4,
            cost=CostModel(t_wr=1, t_wc=0, t_zr=1), seed=0,
        )
        pricey = ParMACTrainerBA(
            BinaryAutoencoder.linear(10, 4), SCHED, n_machines=4,
            cost=CostModel(t_wr=1, t_wc=10_000, t_zr=1), seed=0,
        )
        t_cheap = cheap.fit(X).total_time
        t_pricey = pricey.fit(X).total_time
        assert t_pricey > t_cheap

    def test_alphas_load_balancing(self, X):
        ba = BinaryAutoencoder.linear(10, 4)
        tr = ParMACTrainerBA(
            ba, SCHED, n_machines=3, alphas=[2.0, 1.0, 1.0], seed=0
        )
        tr.fit(X)
        sizes = [tr.cluster_.shards[p].n for p in tr.cluster_.machines]
        assert sizes[0] == pytest.approx(2 * sizes[1], abs=2)

    def test_shuffle_ring_works(self, X):
        ba = BinaryAutoencoder.linear(10, 4)
        h = ParMACTrainerBA(
            ba, SCHED, n_machines=4, shuffle_ring=True, epochs=2, seed=0
        ).fit(X)
        assert np.isfinite(h.records[-1].e_q)

    def test_tworound_scheme(self, X):
        ba = BinaryAutoencoder.linear(10, 4)
        h = ParMACTrainerBA(
            ba, SCHED, n_machines=4, epochs=2, scheme="tworound", seed=0
        ).fit(X)
        assert np.isfinite(h.records[-1].e_q)

    def test_rejects_bad_backend(self, X):
        with pytest.raises(ValueError):
            ParMACTrainerBA(
                BinaryAutoencoder.linear(10, 4), SCHED, n_machines=2,
                backend="smoke-signals",
            )

    def test_rejects_bad_z0(self, X):
        tr = ParMACTrainerBA(
            BinaryAutoencoder.linear(10, 4), SCHED, n_machines=2, seed=0
        )
        with pytest.raises(ValueError):
            tr.fit(X, Z0=np.zeros((10, 4), dtype=np.uint8))


class TestMultiprocessBackend:
    def test_trains(self, X):
        ba = BinaryAutoencoder.linear(10, 4)
        tr = ParMACTrainerBA(
            ba, GeometricSchedule(1e-4, 2.0, 4), n_machines=2,
            backend="multiprocess", seed=0,
        )
        h = tr.fit(X)
        assert len(h) == 4
        assert np.isfinite(h.records[-1].e_q)
        assert h.records[-1].e_q < h.records[0].e_q * 1.5

    def test_evaluator_sees_each_iteration(self, X):
        ba = BinaryAutoencoder.linear(10, 4)
        ev = PrecisionEvaluator(X[:10], X, K=20, k=10)
        tr = ParMACTrainerBA(
            ba, GeometricSchedule(1e-4, 2.0, 3), n_machines=2,
            backend="multiprocess", evaluator=ev, seed=0,
        )
        h = tr.fit(X)
        assert all(r.precision is not None for r in h.records)
