"""Serial MAC trainer: algorithmic behaviour of fig. 1."""

import numpy as np
import pytest

from repro.autoencoder import BinaryAutoencoder
from repro.core.evaluation import PrecisionEvaluator
from repro.core.mac import MACTrainerBA
from repro.core.penalty import GeometricSchedule


@pytest.fixture(scope="module")
def X():
    from repro.data.synthetic import make_clustered

    return make_clustered(250, 12, n_clusters=5, rng=1)


class TestFit:
    def test_improves_over_pca_init(self, X):
        ba = BinaryAutoencoder.linear(12, 6)
        trainer = MACTrainerBA(ba, GeometricSchedule(1e-4, 2.0, 10), seed=0)
        history = trainer.fit(X)
        # MAC must beat the tPCA initialisation on the nested error.
        from repro.autoencoder.init import init_codes_pca
        from repro.autoencoder.decoder import LinearDecoder

        Z0, _ = init_codes_pca(X, 6, rng=0)
        dec0 = LinearDecoder(6, 12).fit_lstsq(Z0, X)
        resid0 = X - dec0.decode(Z0)
        baseline = float((resid0 * resid0).sum())  # best case for tPCA codes
        assert history.records[-1].e_ba < baseline * 1.5
        assert history.records[-1].e_ba <= history.records[0].e_ba

    def test_history_fields_populated(self, X):
        ba = BinaryAutoencoder.linear(12, 4)
        h = MACTrainerBA(ba, GeometricSchedule(1e-3, 2.0, 3), seed=0).fit(X)
        for r in h.records:
            assert np.isfinite(r.e_q) and np.isfinite(r.e_ba)
            assert r.z_changes >= 0 and r.violations >= 0
            assert r.time > 0

    def test_z_returned_matches_shape(self, X):
        ba = BinaryAutoencoder.linear(12, 4)
        trainer = MACTrainerBA(ba, GeometricSchedule(1e-3, 2.0, 3), seed=0)
        trainer.fit(X)
        assert trainer.Z_.shape == (len(X), 4)

    def test_custom_z0(self, X):
        ba = BinaryAutoencoder.linear(12, 4)
        Z0 = np.random.default_rng(0).integers(0, 2, size=(len(X), 4)).astype(np.uint8)
        h = MACTrainerBA(ba, GeometricSchedule(1e-3, 2.0, 3), seed=0).fit(X, Z0=Z0)
        assert len(h) >= 1

    def test_rejects_bad_z0(self, X):
        ba = BinaryAutoencoder.linear(12, 4)
        trainer = MACTrainerBA(ba, GeometricSchedule(1e-3, 2.0, 3))
        with pytest.raises(ValueError):
            trainer.fit(X, Z0=np.zeros((len(X), 5), dtype=np.uint8))

    def test_stops_at_z_fixed_point(self):
        # A trivially encodable dataset converges early: Z = h(X) fixed.
        rng = np.random.default_rng(0)
        B = rng.normal(size=(8, 3))
        Z = rng.integers(0, 2, size=(150, 3)).astype(np.uint8)
        X = Z.astype(float) @ B.T + 0.01 * rng.normal(size=(150, 8))
        ba = BinaryAutoencoder.linear(8, 3)
        trainer = MACTrainerBA(
            ba, GeometricSchedule(1e-2, 3.0, 25), w_epochs=3, seed=0
        )
        h = trainer.fit(X)
        assert len(h) < 25  # stopped before exhausting the schedule
        assert h.records[-1].violations == 0 and h.records[-1].z_changes == 0

    def test_deterministic(self, X):
        a = BinaryAutoencoder.linear(12, 4)
        b = BinaryAutoencoder.linear(12, 4)
        MACTrainerBA(a, GeometricSchedule(1e-3, 2.0, 3), seed=7).fit(X)
        MACTrainerBA(b, GeometricSchedule(1e-3, 2.0, 3), seed=7).fit(X)
        assert np.array_equal(a.encoder.A, b.encoder.A)
        assert np.array_equal(a.decoder.B, b.decoder.B)

    def test_decoder_sgd_variant(self, X):
        ba = BinaryAutoencoder.linear(12, 4)
        h = MACTrainerBA(
            ba, GeometricSchedule(1e-3, 2.0, 3), decoder_exact=False, seed=0
        ).fit(X)
        assert np.isfinite(h.records[-1].e_ba)

    def test_more_w_epochs_not_worse(self, X):
        # More exact W steps should not substantially hurt E_Q (fig. 7).
        h1 = MACTrainerBA(
            BinaryAutoencoder.linear(12, 4),
            GeometricSchedule(1e-3, 2.0, 6), w_epochs=1, seed=0,
        ).fit(X)
        h8 = MACTrainerBA(
            BinaryAutoencoder.linear(12, 4),
            GeometricSchedule(1e-3, 2.0, 6), w_epochs=8, seed=0,
        ).fit(X)
        assert h8.records[-1].e_q <= h1.records[-1].e_q * 1.15


class TestEvaluatorIntegration:
    def test_precision_recorded(self, X):
        ba = BinaryAutoencoder.linear(12, 4)
        ev = PrecisionEvaluator(X[:20], X, K=20, k=10)
        h = MACTrainerBA(
            ba, GeometricSchedule(1e-3, 2.0, 3), evaluator=ev, seed=0
        ).fit(X)
        assert all(0.0 <= r.precision <= 1.0 for r in h.records)

    def test_early_stopping_restores_best(self, X):
        ba = BinaryAutoencoder.linear(12, 4)
        ev = PrecisionEvaluator(X[:20], X, K=20, k=10)
        trainer = MACTrainerBA(
            ba, GeometricSchedule(1e-3, 2.0, 12), evaluator=ev,
            early_stopping=True, seed=0,
        )
        h = trainer.fit(X)
        final_prec = ev(ba)["precision"]
        best_seen = max(r.precision for r in h.records)
        assert final_prec == pytest.approx(best_seen, abs=1e-9)

    def test_early_stopping_requires_evaluator(self, X):
        with pytest.raises(ValueError):
            MACTrainerBA(
                BinaryAutoencoder.linear(12, 4),
                GeometricSchedule(1e-3, 2.0, 3),
                early_stopping=True,
            )


class TestRBFTraining:
    def test_rbf_encoder_trains(self, X):
        ba = BinaryAutoencoder.rbf(X, n_centres=30, n_bits=4, rng=0)
        h = MACTrainerBA(ba, GeometricSchedule(1e-3, 2.0, 4), seed=0).fit(X)
        assert np.isfinite(h.records[-1].e_ba)
        assert ba.encode(X).shape == (len(X), 4)
