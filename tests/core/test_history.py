import numpy as np
import pytest

from repro.core.history import IterationRecord, TrainingHistory


def make_history(n=4):
    h = TrainingHistory()
    for i in range(n):
        h.append(
            IterationRecord(
                iteration=i, mu=2.0**i, e_q=100.0 - i, e_ba=50.0 - i,
                precision=0.1 * i, time=1.5,
            )
        )
    return h


class TestTrainingHistory:
    def test_len_and_indexing(self):
        h = make_history(3)
        assert len(h) == 3
        assert h[1].iteration == 1

    def test_column_arrays(self):
        h = make_history(4)
        assert np.allclose(h.e_q, [100, 99, 98, 97])
        assert np.allclose(h.mu, [1, 2, 4, 8])
        assert np.allclose(h.precision, [0.0, 0.1, 0.2, 0.3])

    def test_cumulative_time(self):
        h = make_history(4)
        assert np.allclose(h.cumulative_time, [1.5, 3.0, 4.5, 6.0])
        assert h.total_time == pytest.approx(6.0)

    def test_summary_one_line_per_iteration(self):
        h = make_history(3)
        lines = h.summary().splitlines()
        assert len(lines) == 3
        assert "E_Q" in lines[0] and "prec" in lines[0]

    def test_missing_metrics_are_nan(self):
        h = TrainingHistory()
        h.append(IterationRecord(iteration=0, mu=1.0, e_q=1.0, e_ba=1.0))
        assert np.isnan(h.precision[0])

    def test_extra_dict(self):
        r = IterationRecord(iteration=0, mu=1.0, e_q=1.0, e_ba=1.0,
                            extra={"comm_time": 7.0})
        assert r.extra["comm_time"] == 7.0
