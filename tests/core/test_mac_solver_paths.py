"""MAC trainer exercised through every Z-step solver path."""

import numpy as np
import pytest

from repro.autoencoder import BinaryAutoencoder
from repro.core.mac import MACTrainerBA
from repro.core.penalty import GeometricSchedule


@pytest.fixture(scope="module")
def X():
    from repro.data.synthetic import make_clustered

    return make_clustered(200, 10, n_clusters=4, rng=50)


SCHED = GeometricSchedule(1e-3, 2.0, 5)


class TestSolverPaths:
    @pytest.mark.parametrize("method", ["enumerate", "alternate", "relaxed"])
    def test_all_methods_train(self, X, method):
        ba = BinaryAutoencoder.linear(10, 5)
        h = MACTrainerBA(ba, SCHED, zstep_method=method, seed=0).fit(X)
        assert np.isfinite(h.records[-1].e_q)
        assert h.records[-1].e_q < h.records[0].e_q * 1.5

    def test_auto_switches_on_max_enum_bits(self, X):
        # With max_enum_bits below L the auto path must use alternation;
        # both runs stay finite and close in objective.
        enum_ba = BinaryAutoencoder.linear(10, 5)
        h_enum = MACTrainerBA(enum_ba, SCHED, max_enum_bits=5, seed=0).fit(X)
        alt_ba = BinaryAutoencoder.linear(10, 5)
        h_alt = MACTrainerBA(alt_ba, SCHED, max_enum_bits=2, seed=0).fit(X)
        assert h_alt.records[-1].e_q <= h_enum.records[-1].e_q * 1.3

    def test_enumerate_no_worse_than_alternate(self, X):
        # Exact Z steps can only help the penalised objective per step.
        enum_ba = BinaryAutoencoder.linear(10, 5)
        h_enum = MACTrainerBA(
            enum_ba, SCHED, zstep_method="enumerate", seed=0
        ).fit(X)
        alt_ba = BinaryAutoencoder.linear(10, 5)
        h_alt = MACTrainerBA(
            alt_ba, SCHED, zstep_method="alternate", seed=0
        ).fit(X)
        # Same W-step trajectory seeds; exact solver ends at least as low
        # up to SGD noise.
        assert h_enum.records[-1].e_q <= h_alt.records[-1].e_q * 1.1

    def test_max_sweeps_one_still_trains(self, X):
        ba = BinaryAutoencoder.linear(10, 5)
        h = MACTrainerBA(
            ba, SCHED, zstep_method="alternate", max_sweeps=1, seed=0
        ).fit(X)
        assert np.isfinite(h.records[-1].e_q)

    def test_rejects_bad_w_epochs(self, X):
        with pytest.raises(ValueError):
            MACTrainerBA(BinaryAutoencoder.linear(10, 5), SCHED, w_epochs=0)
