"""ParMACTrainerNet: deep nets through the public distributed API."""

import numpy as np
import pytest

from repro.core.parmac_net import ParMACTrainerNet
from repro.core.penalty import GeometricSchedule
from repro.nets.deepnet import DeepNet


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(150, 4))
    Y = np.sin(X @ rng.normal(size=(4, 2)))
    return X, Y


class TestParMACTrainerNet:
    def test_reduces_nested_loss(self, problem):
        X, Y = problem
        net = DeepNet.create([4, 8, 2], rng=0)
        before = net.loss(X, Y)
        trainer = ParMACTrainerNet(
            net, GeometricSchedule(0.5, 1.6, 8), n_machines=3, epochs=2, seed=0
        )
        h = trainer.fit(X, Y)
        assert h.records[-1].e_ba < before
        assert len(h) == 8

    def test_ring_invariants(self, problem):
        X, Y = problem
        net = DeepNet.create([4, 6, 2], rng=1)
        trainer = ParMACTrainerNet(net, n_machines=4, seed=0)
        trainer.fit(X, Y)
        assert trainer.cluster_.model_copies_consistent()

    def test_close_to_serial_mac_net(self, problem):
        X, Y = problem
        from repro.nets.mac_net import MACTrainerNet

        sched = GeometricSchedule(0.5, 1.6, 6)
        serial = DeepNet.create([4, 8, 2], rng=2)
        MACTrainerNet(serial, sched, w_epochs=2, seed=0).fit(X, Y)
        par = DeepNet.create([4, 8, 2], rng=2)
        ParMACTrainerNet(par, sched, n_machines=3, epochs=2, seed=0).fit(X, Y)
        assert par.loss(X, Y) <= serial.loss(X, Y) * 1.6

    def test_1d_targets(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(80, 3))
        y = X[:, 0] ** 2
        net = DeepNet.create([3, 5, 1], rng=0)
        h = ParMACTrainerNet(net, n_machines=2, seed=0).fit(X, y)
        assert np.isfinite(h.records[-1].e_ba)

    def test_rejects_length_mismatch(self):
        net = DeepNet.create([3, 4, 2], rng=0)
        with pytest.raises(ValueError):
            ParMACTrainerNet(net, n_machines=2).fit(
                np.zeros((5, 3)), np.zeros((4, 2))
            )

    def test_virtual_time_recorded(self, problem):
        X, Y = problem
        from repro.distributed.costmodel import CostModel

        net = DeepNet.create([4, 6, 2], rng=4)
        trainer = ParMACTrainerNet(
            net, n_machines=3, cost=CostModel(t_wr=1, t_wc=50, t_zr=2), seed=0
        )
        h = trainer.fit(X, Y)
        assert all(r.time > 0 for r in h.records)


class TestHistoryExport:
    def test_to_rows_includes_extras(self, problem):
        X, Y = problem
        net = DeepNet.create([4, 6, 2], rng=5)
        h = ParMACTrainerNet(
            net, GeometricSchedule(0.5, 2.0, 3), n_machines=2, seed=0
        ).fit(X, Y)
        rows = h.to_rows()
        assert len(rows) == 3
        assert "wall_time" in rows[0] and "e_q" in rows[0]

    def test_to_csv_roundtrip(self, problem, tmp_path):
        import csv

        X, Y = problem
        net = DeepNet.create([4, 6, 2], rng=6)
        h = ParMACTrainerNet(
            net, GeometricSchedule(0.5, 2.0, 3), n_machines=2, seed=0
        ).fit(X, Y)
        path = tmp_path / "history.csv"
        h.to_csv(path)
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 3
        assert float(rows[0]["mu"]) == pytest.approx(0.5)

    def test_empty_history_export_rejected(self, tmp_path):
        from repro.core.history import TrainingHistory

        with pytest.raises(ValueError):
            TrainingHistory().to_csv(tmp_path / "x.csv")
