import numpy as np
import pytest

from repro.core.evaluation import PrecisionEvaluator, RecallEvaluator


class PerfectHashModel:
    """A 'model' whose codes perfectly preserve identity (for testing)."""

    def __init__(self, table):
        self.table = table  # dict: row-bytes -> code

    def encode(self, X):
        return np.array([self.table[x.tobytes()] for x in X], dtype=np.uint8)


@pytest.fixture(scope="module")
def cloud():
    from repro.data.synthetic import make_clustered

    return make_clustered(80, 6, n_clusters=3, rng=8)


class TestPrecisionEvaluator:
    def test_range_and_keys(self, cloud, fitted_ba):
        ev = PrecisionEvaluator(cloud[:10], cloud, K=10, k=5)
        # fitted_ba encodes 12-d inputs; build matching data.
        from repro.data.synthetic import make_clustered

        X12 = make_clustered(60, 12, rng=0)
        ev = PrecisionEvaluator(X12[:8], X12, K=10, k=5)
        out = ev(fitted_ba)
        assert set(out) == {"precision"}
        assert 0.0 <= out["precision"] <= 1.0

    def test_identity_codes_score_high(self, cloud):
        # Codes equal to cluster labels in binary: neighbours share codes.
        from repro.retrieval.baselines import TruncatedPCAHash

        class HashModel:
            def __init__(self, h):
                self.h = h

            def encode(self, X):
                return self.h.encode(X)

        h = TruncatedPCAHash(6).fit(cloud)
        ev = PrecisionEvaluator(cloud[:10], cloud, K=15, k=10)
        score = ev(HashModel(h))["precision"]
        # tPCA on well-separated clusters must beat random guessing by far.
        assert score > 15.0 / len(cloud)

    def test_ground_truth_precomputed_once(self, cloud):
        ev = PrecisionEvaluator(cloud[:5], cloud, K=10, k=5)
        gt = ev.true_neighbours.copy()
        ev(PerfectHashModel({x.tobytes(): np.zeros(4, np.uint8) for x in cloud}))
        assert np.array_equal(ev.true_neighbours, gt)

    def test_rejects_oversized_k(self, cloud):
        with pytest.raises(ValueError):
            PrecisionEvaluator(cloud[:5], cloud, K=10, k=len(cloud) + 1)


class TestRecallEvaluator:
    def test_range_and_keys(self, fitted_ba):
        from repro.data.synthetic import make_clustered

        X12 = make_clustered(60, 12, rng=0)
        ev = RecallEvaluator(X12[:8], X12, R=10)
        out = ev(fitted_ba)
        assert set(out) == {"recall"}
        assert 0.0 <= out["recall"] <= 1.0

    def test_full_R_gives_recall_one(self, fitted_ba):
        from repro.data.synthetic import make_clustered

        X12 = make_clustered(40, 12, rng=1)
        ev = RecallEvaluator(X12[:5], X12, R=40)
        assert ev(fitted_ba)["recall"] == 1.0

    def test_score_key(self):
        assert RecallEvaluator.score_key == "recall"
        assert PrecisionEvaluator.score_key == "precision"

    def test_rejects_bad_R(self, cloud):
        with pytest.raises(ValueError):
            RecallEvaluator(cloud[:2], cloud, R=0)
