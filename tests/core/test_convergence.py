import numpy as np
import pytest

from repro.core.convergence import (
    EarlyStopping,
    constraints_satisfied,
    lagrange_multiplier_estimates,
    z_fixed_point,
)


class TestConstraints:
    def test_satisfied(self):
        Z = np.array([[0, 1], [1, 0]], dtype=np.uint8)
        assert constraints_satisfied(Z, Z.copy())

    def test_violated(self):
        Z = np.array([[0, 1]], dtype=np.uint8)
        assert not constraints_satisfied(Z, 1 - Z)


class TestZFixedPoint:
    def test_stop_condition(self):
        Z = np.array([[0, 1], [1, 1]], dtype=np.uint8)
        assert z_fixed_point(Z, Z.copy(), Z.copy())

    def test_changed_codes_do_not_stop(self):
        Z_old = np.array([[0, 1]], dtype=np.uint8)
        Z_new = np.array([[1, 1]], dtype=np.uint8)
        assert not z_fixed_point(Z_new, Z_old, Z_new.copy())

    def test_unsatisfied_constraints_do_not_stop(self):
        Z = np.array([[0, 1]], dtype=np.uint8)
        H = np.array([[1, 1]], dtype=np.uint8)
        assert not z_fixed_point(Z, Z.copy(), H)


class TestMultipliers:
    def test_formula(self):
        Z = np.array([[1, 0]], dtype=np.uint8)
        H = np.array([[0, 0]], dtype=np.uint8)
        lam = lagrange_multiplier_estimates(Z, H, mu=3.0)
        assert np.allclose(lam, [[-3.0, 0.0]])

    def test_zero_at_constraints(self):
        Z = np.array([[1, 1]], dtype=np.uint8)
        assert np.allclose(lagrange_multiplier_estimates(Z, Z, 10.0), 0.0)

    def test_rejects_negative_mu(self):
        Z = np.zeros((1, 2), dtype=np.uint8)
        with pytest.raises(ValueError):
            lagrange_multiplier_estimates(Z, Z, -1.0)


class TestEarlyStopping:
    def test_improvement_never_stops(self):
        es = EarlyStopping()
        assert not es.update(0.1, "a")
        assert not es.update(0.2, "b")
        assert es.best_state == "b"

    def test_drop_stops_with_patience_one(self):
        es = EarlyStopping(patience=1)
        es.update(0.5, "best")
        assert es.update(0.4, "worse")
        assert es.best_state == "best"

    def test_patience_two_needs_two_drops(self):
        es = EarlyStopping(patience=2)
        es.update(0.5, "best")
        assert not es.update(0.4, "w1")
        assert es.update(0.3, "w2")

    def test_equal_score_counts_as_improvement(self):
        # The paper guarantees "improve (or leave unchanged)".
        es = EarlyStopping()
        es.update(0.5, "a")
        assert not es.update(0.5, "b")
        assert es.best_state == "b"

    def test_tol_ignores_tiny_drops(self):
        es = EarlyStopping(patience=1, tol=0.05)
        es.update(0.5, "best")
        assert not es.update(0.48, "meh")

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)
        with pytest.raises(ValueError):
            EarlyStopping(tol=-0.1)
