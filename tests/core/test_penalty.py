import numpy as np
import pytest

from repro.core.penalty import GeometricSchedule, penalty_schedule


class TestGeometricSchedule:
    def test_values(self):
        s = GeometricSchedule(mu0=1.0, factor=2.0, n_iters=4)
        assert np.allclose(s.values(), [1.0, 2.0, 4.0, 8.0])

    def test_iterable(self):
        s = GeometricSchedule(mu0=0.5, factor=3.0, n_iters=3)
        assert list(s) == pytest.approx([0.5, 1.5, 4.5])

    def test_len(self):
        assert len(GeometricSchedule(1.0, 2.0, 7)) == 7

    def test_strictly_increasing(self):
        vals = GeometricSchedule(1e-6, 1.5, 20).values()
        assert (np.diff(vals) > 0).all()

    def test_rejects_factor_leq_one(self):
        with pytest.raises(ValueError):
            GeometricSchedule(1.0, 1.0, 5)

    def test_rejects_nonpositive_mu0(self):
        with pytest.raises(ValueError):
            GeometricSchedule(0.0, 2.0, 5)


class TestPresets:
    def test_paper_cifar_preset(self):
        # Section 8.1: mu0 = 0.005, a = 1.2, 26 iterations.
        s = penalty_schedule("cifar")
        assert s.mu0 == 5e-3 and s.factor == 1.2 and s.n_iters == 26

    def test_paper_sift_presets(self):
        assert penalty_schedule("sift10k").mu0 == 1e-6
        assert penalty_schedule("sift1m").n_iters == 20
        assert penalty_schedule("sift1b").mu0 == 1e-4
        assert penalty_schedule("sift1b").n_iters == 10

    def test_passthrough(self):
        s = GeometricSchedule(1.0, 2.0, 3)
        assert penalty_schedule(s) is s

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown"):
            penalty_schedule("mnist")

    def test_bad_type(self):
        with pytest.raises(TypeError):
            penalty_schedule(3.14)
