"""Exactness contracts of the packed-code index and its sharded variant.

Everything here checks *exact* equality against a brute-force
(distance, id)-lexicographic reference — ids AND distances AND tie
order — because that total order is what makes sharded merges
associative and batched serving bit-identical to offline retrieval.
"""

import numpy as np
import pytest

from repro.retrieval.hamming import hamming_cdist, pack_bits
from repro.serve import (
    HammingIndex,
    ShardedHammingIndex,
    hamming_topk,
    merge_topk,
)


def ref_topk(Zq, Zb, k):
    """Brute-force (distance, id) lexicographic top-k via a full cdist."""
    D = hamming_cdist(pack_bits(Zq), pack_bits(Zb))
    key = D.astype(np.int64) * (len(Zb) + 1) + np.arange(len(Zb))
    order = np.argsort(key, axis=1)[:, :k]
    rows = np.arange(len(Zq))[:, None]
    return order, D[rows, order]


def random_codes(rng, n, L):
    return rng.integers(0, 2, size=(n, L)).astype(np.uint8)


class TestHammingTopk:
    @pytest.mark.parametrize(
        "n_q,n_b,L,k,block",
        [
            (7, 500, 16, 5, 64),
            (32, 3000, 64, 10, 512),
            (5, 100, 100, 100, 16),   # k == n_b, L > one word
            (1, 1, 64, 1, 4096),      # degenerate single pair
            (16, 2048, 32, 3, 2048),  # single-block scan
            (4, 333, 7, 12, 50),      # k > block, odd sizes
        ],
    )
    def test_matches_bruteforce(self, n_q, n_b, L, k, block):
        rng = np.random.default_rng(n_q * n_b)
        Zq, Zb = random_codes(rng, n_q, L), random_codes(rng, n_b, L)
        ids, ds = hamming_topk(pack_bits(Zq), pack_bits(Zb), k, block=block)
        rid, rd = ref_topk(Zq, Zb, min(k, n_b))
        assert np.array_equal(ids, rid)
        assert np.array_equal(ds, rd)

    def test_block_size_invariance(self):
        rng = np.random.default_rng(0)
        Q = pack_bits(random_codes(rng, 9, 48))
        B = pack_bits(random_codes(rng, 700, 48))
        ref = hamming_topk(Q, B, 15, block=700)
        for block in (1, 3, 64, 256, 4096):
            ids, ds = hamming_topk(Q, B, 15, block=block)
            assert np.array_equal(ids, ref[0]) and np.array_equal(ds, ref[1])

    def test_ties_break_by_ascending_id(self):
        # Heavy duplication: every distance value ties across 40 copies.
        rng = np.random.default_rng(1)
        Zb = np.repeat(random_codes(rng, 50, 32), 40, axis=0)
        Zq = random_codes(rng, 9, 32)
        ids, ds = hamming_topk(pack_bits(Zq), pack_bits(Zb), 25, block=128)
        rid, rd = ref_topk(Zq, Zb, 25)
        assert np.array_equal(ids, rid)
        assert np.array_equal(ds, rd)

    def test_adversarial_descending_distances(self):
        # Base sorted worst-to-best: every block improves every query,
        # exercising the dense tighten/fallback paths.
        Zq = np.zeros((4, 64), dtype=np.uint8)
        Zb = np.zeros((2000, 64), dtype=np.uint8)
        for i in range(2000):
            Zb[i, : 64 - (i * 64 // 2000)] = 1
        ids, ds = hamming_topk(pack_bits(Zq), pack_bits(Zb), 10, block=256)
        rid, rd = ref_topk(Zq, Zb, 10)
        assert np.array_equal(ids, rid)
        assert np.array_equal(ds, rd)

    def test_offset_shifts_ids(self):
        rng = np.random.default_rng(2)
        Q = pack_bits(random_codes(rng, 3, 16))
        B = pack_bits(random_codes(rng, 64, 16))
        base_ids, base_ds = hamming_topk(Q, B, 5, block=16)
        off_ids, off_ds = hamming_topk(Q, B, 5, block=16, offset=1000)
        assert np.array_equal(off_ids, base_ids + 1000)
        assert np.array_equal(off_ds, base_ds)

    def test_rejects_bad_inputs(self):
        Q = np.zeros((2, 1), dtype=np.uint64)
        with pytest.raises(ValueError):
            hamming_topk(Q, np.zeros((4, 2), dtype=np.uint64), 1)
        with pytest.raises(ValueError):
            hamming_topk(Q, Q, 0)
        with pytest.raises(ValueError):
            hamming_topk(Q, Q, 1, block=0)
        with pytest.raises(ValueError):
            hamming_topk(np.zeros((2, 1024), dtype=np.uint64),
                         np.zeros((2, 1024), dtype=np.uint64), 1)


class TestMergeTopk:
    def test_associative_over_partitions(self):
        rng = np.random.default_rng(3)
        Zq, Zb = random_codes(rng, 6, 24), random_codes(rng, 501, 24)
        Q, B = pack_bits(Zq), pack_bits(Zb)
        k = 17
        flat = hamming_topk(Q, B, k, block=64)
        for cuts in ([250], [100, 300], [1, 2, 3, 500]):
            bounds = [0, *cuts, len(Zb)]
            parts = [
                hamming_topk(Q, B[lo:hi], k, block=64, offset=lo)
                for lo, hi in zip(bounds[:-1], bounds[1:])
            ]
            ids, ds = merge_topk(parts, k)
            assert np.array_equal(ids, flat[0])
            assert np.array_equal(ds, flat[1])

    def test_narrow_parts(self):
        # A shard smaller than k contributes a narrow result pane.
        rng = np.random.default_rng(4)
        Zq, Zb = random_codes(rng, 3, 16), random_codes(rng, 20, 16)
        Q, B = pack_bits(Zq), pack_bits(Zb)
        parts = [
            hamming_topk(Q, B[:2], 8, offset=0),
            hamming_topk(Q, B[2:], 8, offset=2),
        ]
        ids, ds = merge_topk(parts, 8)
        flat = hamming_topk(Q, B, 8)
        assert np.array_equal(ids, flat[0]) and np.array_equal(ds, flat[1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_topk([], 3)


class TestHammingIndex:
    def test_search_matches_bruteforce(self):
        rng = np.random.default_rng(5)
        Zq, Zb = random_codes(rng, 8, 40), random_codes(rng, 300, 40)
        index = HammingIndex.from_codes(pack_bits(Zb), 40, block=64)
        ids, ds = index.search(pack_bits(Zq), 12)
        rid, rd = ref_topk(Zq, Zb, 12)
        assert np.array_equal(ids, rid) and np.array_equal(ds, rd)

    def test_accepts_raw_bits(self):
        rng = np.random.default_rng(6)
        Zb = random_codes(rng, 50, 20)
        index = HammingIndex.from_codes(Zb, 20)
        ids_bits, ds_bits = index.search(Zb[:3], 4)
        ids_packed, ds_packed = index.search(pack_bits(Zb[:3]), 4)
        assert np.array_equal(ids_bits, ids_packed)
        assert np.array_equal(ds_bits, ds_packed)

    def test_incremental_add_equals_rebuild(self):
        rng = np.random.default_rng(7)
        Zq, Zb = random_codes(rng, 5, 32), random_codes(rng, 400, 32)
        whole = HammingIndex.from_codes(pack_bits(Zb), 32, block=128)
        grown = HammingIndex(32, block=128)
        for lo in range(0, 400, 37):  # uneven increments
            ids = grown.add(pack_bits(Zb[lo : lo + 37]))
            assert ids[0] == lo
        assert grown.n == whole.n
        q = pack_bits(Zq)
        a, b = grown.search(q, 19), whole.search(q, 19)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_codes_view_and_memory_bound(self):
        Zb = random_codes(np.random.default_rng(8), 10, 16)
        index = HammingIndex.from_codes(pack_bits(Zb), 16)
        assert np.array_equal(index.codes, pack_bits(Zb))
        with pytest.raises(ValueError):
            index.codes[0, 0] = 0  # read-only view
        assert index.memory_bound(4, 3) > 0

    def test_errors(self):
        index = HammingIndex(16)
        with pytest.raises(ValueError):
            index.search(np.zeros((1, 1), dtype=np.uint64), 1)  # empty
        index.add(np.zeros((3, 16), dtype=np.uint8))
        with pytest.raises(ValueError):
            index.search(np.zeros((1, 1), dtype=np.uint64), 4)  # k > n
        with pytest.raises(ValueError):
            index.add(np.zeros((2, 17), dtype=np.uint8))  # wrong width
        with pytest.raises(ValueError):
            HammingIndex(0)


class TestShardedHammingIndex:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5])
    def test_thread_shards_exactly_equal_single(self, n_shards):
        rng = np.random.default_rng(9)
        Zq, Zb = random_codes(rng, 11, 48), random_codes(rng, 1501, 48)
        q = pack_bits(Zq)
        flat = HammingIndex.from_codes(pack_bits(Zb), 48, block=256).search(q, 20)
        with ShardedHammingIndex(
            pack_bits(Zb), 48, n_shards, mode="thread", block=128
        ) as sharded:
            ids, ds = sharded.search(q, 20)
        assert np.array_equal(ids, flat[0])
        assert np.array_equal(ds, flat[1])

    def test_thread_shards_tie_order(self):
        # Duplicated codes across shard boundaries: the merge must keep
        # ascending-id tie order across shards, not just within one.
        rng = np.random.default_rng(10)
        Zb = np.repeat(random_codes(rng, 30, 16), 10, axis=0)
        Zq = random_codes(rng, 4, 16)
        q = pack_bits(Zq)
        flat = HammingIndex.from_codes(pack_bits(Zb), 16, block=64).search(q, 25)
        with ShardedHammingIndex(pack_bits(Zb), 16, 4, mode="thread", block=64) as s:
            ids, ds = s.search(q, 25)
        assert np.array_equal(ids, flat[0]) and np.array_equal(ds, flat[1])

    def test_process_shards_exactly_equal_single(self):
        rng = np.random.default_rng(11)
        Zq, Zb = random_codes(rng, 6, 32), random_codes(rng, 901, 32)
        q = pack_bits(Zq)
        flat = HammingIndex.from_codes(pack_bits(Zb), 32, block=128).search(q, 15)
        with ShardedHammingIndex(
            pack_bits(Zb), 32, 3, mode="process", block=128
        ) as sharded:
            ids, ds = sharded.search(q, 15)
        assert np.array_equal(ids, flat[0])
        assert np.array_equal(ds, flat[1])

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_add_then_query_equals_rebuild(self, mode):
        rng = np.random.default_rng(12)
        Zq, Zb = random_codes(rng, 5, 24), random_codes(rng, 600, 24)
        q = pack_bits(Zq)
        flat = HammingIndex.from_codes(pack_bits(Zb), 24, block=100).search(q, 11)
        with ShardedHammingIndex(
            pack_bits(Zb[:450]), 24, 3, mode=mode, block=100
        ) as sharded:
            ids = sharded.add(pack_bits(Zb[450:]))
            assert ids[0] == 450 and ids[-1] == 599
            got = sharded.search(q, 11)
        assert np.array_equal(got[0], flat[0])
        assert np.array_equal(got[1], flat[1])

    def test_errors_and_close(self):
        Zb = random_codes(np.random.default_rng(13), 10, 16)
        with pytest.raises(ValueError):
            ShardedHammingIndex(pack_bits(Zb), 16, 11)  # more shards than rows
        with pytest.raises(ValueError):
            ShardedHammingIndex(pack_bits(Zb), 16, 2, mode="coroutine")
        sharded = ShardedHammingIndex(pack_bits(Zb), 16, 2)
        sharded.close()
        sharded.close()  # idempotent
        with pytest.raises(RuntimeError):
            sharded.search(pack_bits(Zb[:1]), 2)
