"""Load generator and its accounting primitives."""

import numpy as np
import pytest

from repro.serve import (
    LatencyStats,
    RetrievalService,
    ThroughputStats,
    poisson_arrivals,
    run_open_loop,
)
from tests.serve.test_service import SignHashModel


class TestLatencyStats:
    def test_percentiles_match_numpy(self):
        rng = np.random.default_rng(0)
        samples = rng.exponential(scale=0.01, size=500)
        stats = LatencyStats()
        for s in samples:
            stats.record(s)
        assert stats.n == 500
        assert stats.p50 == pytest.approx(np.percentile(samples, 50))
        assert stats.p95 == pytest.approx(np.percentile(samples, 95))
        assert stats.p99 == pytest.approx(np.percentile(samples, 99))
        assert stats.mean == pytest.approx(np.mean(samples))

    def test_summary_is_milliseconds(self):
        stats = LatencyStats()
        stats.record(0.002)
        stats.record(0.004)
        summary = stats.summary()
        assert summary["n"] == 2
        assert summary["mean_ms"] == pytest.approx(3.0)
        assert summary["max_ms"] == pytest.approx(4.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            LatencyStats().p50


class TestThroughputStats:
    def test_rows_accumulate(self):
        stats = ThroughputStats()
        stats.start()
        stats.record(3)
        stats.record(2)
        assert stats.rows == 5
        assert stats.elapsed_s >= 0.0
        assert stats.summary()["rows"] == 5

    def test_zero_elapsed_is_zero_rate(self):
        assert ThroughputStats().rows_per_s == 0.0


class TestPoissonArrivals:
    def test_monotone_and_deterministic(self):
        a = poisson_arrivals(1000.0, 200, rng=0)
        b = poisson_arrivals(1000.0, 200, rng=0)
        assert np.array_equal(a, b)
        assert np.all(np.diff(a) > 0)
        assert a[0] > 0

    def test_rate_sets_mean_gap(self):
        a = poisson_arrivals(500.0, 20000, rng=1)
        assert np.mean(np.diff(a)) == pytest.approx(1 / 500.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 10)
        with pytest.raises(ValueError):
            poisson_arrivals(100.0, 0)


class TestRunOpenLoop:
    def test_end_to_end_accounting(self):
        rng = np.random.default_rng(3)
        model = SignHashModel(16, 32, seed=2)
        X_base = rng.standard_normal((300, 16))
        queries = rng.standard_normal((40, 16))
        with RetrievalService.from_data(
            model, X_base, k=5, max_wait_ms=1.0, max_batch=32
        ) as svc:
            report = run_open_loop(
                svc, queries, 2000.0, k=5, n_requests=100, rng=0
            )
        assert report["n_requests"] == 100
        assert report["latency"]["n"] == 100
        assert report["throughput"]["rows"] == 100
        assert report["achieved_qps"] > 0
        assert report["latency"]["p50_ms"] <= report["latency"]["p99_ms"]

    def test_rejects_bad_queries(self):
        rng = np.random.default_rng(4)
        model = SignHashModel(8, 16, seed=3)
        X_base = rng.standard_normal((50, 8))
        with RetrievalService.from_data(model, X_base, k=3) as svc:
            with pytest.raises(ValueError):
                run_open_loop(svc, np.zeros(8), 100.0)
